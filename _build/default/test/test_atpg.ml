(* Tests for the PODEM baseline, cross-validated against Difference
   Propagation: a fault has a PODEM test iff its DP test set is
   non-empty, and PODEM's vectors must actually detect. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let cross_validate c faults =
  let engine = Engine.create c in
  List.iter
    (fun f ->
      let fault = Fault.Stuck f in
      let dp_detectable =
        (Engine.analyze engine fault).Engine.detectable
      in
      match Podem.generate c f with
      | Podem.Test v ->
        check bool_t
          ("vector detects " ^ Sa_fault.to_string c f)
          true
          (Fault_sim.detects c fault v);
        check bool_t "DP agrees detectable" true dp_detectable
      | Podem.Redundant ->
        check bool_t
          ("DP agrees redundant " ^ Sa_fault.to_string c f)
          false dp_detectable
      | Podem.Aborted -> Alcotest.fail "unexpected abort on small circuit")
    faults

let test_podem_c17 () =
  let c = Bench_suite.find "c17" in
  cross_validate c (Sa_fault.all_line_faults c)

let test_podem_fulladder () =
  let c = Bench_suite.find "fulladder" in
  cross_validate c (Sa_fault.all_line_faults c)

let test_podem_c95 () =
  let c = Bench_suite.find "c95" in
  cross_validate c (Sa_fault.collapsed_faults c)

let test_podem_random_circuits () =
  List.iter
    (fun seed ->
      let c = Generate.random ~seed ~inputs:8 ~gates:35 ~outputs:3 in
      cross_validate c (Sa_fault.collapsed_faults c))
    [ 301; 302; 303 ]

let test_podem_finds_redundancy () =
  (* y = a or not a is constant one; s-a-1 on y is undetectable. *)
  let c =
    Circuit.create ~title:"taut" ~inputs:[ "a" ] ~outputs:[ "y" ]
      [ ("na", Gate.Not, [ "a" ]); ("y", Gate.Or, [ "a"; "na" ]) ]
  in
  let y = Option.get (Circuit.index_of_name c "y") in
  (match Podem.generate c { Sa_fault.line = Sa_fault.Stem y; value = true } with
  | Podem.Redundant -> ()
  | Podem.Test _ -> Alcotest.fail "found a test for a redundant fault"
  | Podem.Aborted -> Alcotest.fail "aborted");
  match Podem.generate c { Sa_fault.line = Sa_fault.Stem y; value = false } with
  | Podem.Test v ->
    check bool_t "s-a-0 test detects" true
      (Fault_sim.detects c
         (Fault.Stuck { Sa_fault.line = Sa_fault.Stem y; value = false })
         v)
  | Podem.Redundant | Podem.Aborted -> Alcotest.fail "s-a-0 must be testable"

let test_podem_branch_fault () =
  let c = Bench_suite.find "c17" in
  let g16 = Option.get (Circuit.index_of_name c "G16") in
  let branch =
    List.find (fun b -> b.Circuit.stem = g16) (Circuit.branches c)
  in
  let f = { Sa_fault.line = Sa_fault.Branch branch; value = true } in
  match Podem.generate c f with
  | Podem.Test v ->
    check bool_t "branch test detects" true
      (Fault_sim.detects c (Fault.Stuck f) v)
  | Podem.Redundant | Podem.Aborted -> Alcotest.fail "branch fault testable"

let test_podem_abort_budget () =
  (* With a zero backtrack budget, hard faults must abort rather than
     loop; easy faults may still succeed first try. *)
  let c = Bench_suite.find "c95" in
  let outcomes =
    List.map (fun f -> Podem.generate ~backtrack_limit:0 c f)
      (Sa_fault.collapsed_faults c)
  in
  check bool_t "no infinite loops" true (List.length outcomes > 0)

let test_run_all_coverage () =
  let c = Bench_suite.find "c95" in
  let run = Podem.run_all c (Sa_fault.collapsed_faults c) in
  check bool_t "full coverage on c95" true (run.Podem.coverage >= 1.0 -. 1e-9);
  check int_t "no aborts" 0 (List.length run.Podem.aborted);
  (* Fault dropping must give fewer explicit tests than faults. *)
  check bool_t "dropping compacts" true
    (List.length run.Podem.tests
    < List.length (Sa_fault.collapsed_faults c));
  List.iter
    (fun (f, v) ->
      check bool_t "run_all vectors detect" true
        (Fault_sim.detects c (Fault.Stuck f) v))
    run.Podem.tests

let test_run_all_no_drop () =
  let c = Bench_suite.find "c17" in
  let faults = Sa_fault.collapsed_faults c in
  let run = Podem.run_all ~drop:false c faults in
  check int_t "one test per detectable fault"
    (List.length faults - List.length run.Podem.redundant)
    (List.length run.Podem.tests)

let () =
  Alcotest.run "atpg"
    [
      ( "podem",
        [
          Alcotest.test_case "c17 cross-validation" `Quick test_podem_c17;
          Alcotest.test_case "fulladder cross-validation" `Quick
            test_podem_fulladder;
          Alcotest.test_case "c95 cross-validation" `Quick test_podem_c95;
          Alcotest.test_case "random circuits" `Slow test_podem_random_circuits;
          Alcotest.test_case "redundancy proof" `Quick test_podem_finds_redundancy;
          Alcotest.test_case "branch fault" `Quick test_podem_branch_fault;
          Alcotest.test_case "abort budget" `Quick test_podem_abort_budget;
        ] );
      ( "run-all",
        [
          Alcotest.test_case "coverage with dropping" `Quick test_run_all_coverage;
          Alcotest.test_case "without dropping" `Quick test_run_all_no_drop;
        ] );
    ]
