(* Tests for the fault models: checkpoints, collapsing, bridging
   enumeration / screening / sampling, and the PRNG / union-find
   utilities underneath them. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let c17 () = Bench_suite.find "c17"

(* ------------------------------------------------------------------ *)
(* Utilities                                                           *)

let test_prng_determinism () =
  let a = Prng.create ~seed:5 and b = Prng.create ~seed:5 in
  for _ = 1 to 100 do
    check bool_t "same stream" true (Prng.word a = Prng.word b)
  done;
  let c = Prng.create ~seed:6 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.word a <> Prng.word c then differs := true
  done;
  check bool_t "different seeds differ" true !differs

let test_prng_ranges () =
  let rng = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check bool_t "int in range" true (v >= 0 && v < 17);
    let f = Prng.float rng in
    check bool_t "float in range" true (f >= 0.0 && f < 1.0)
  done;
  check bool_t "int rejects zero bound" true
    (try
       ignore (Prng.int rng 0);
       false
     with Invalid_argument _ -> true)

let test_prng_uniformity () =
  let rng = Prng.create ~seed:9 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let v = Prng.int rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> check bool_t "roughly uniform" true (c > 800 && c < 1200))
    counts

let test_union_find () =
  let uf = Union_find.create 10 in
  check bool_t "initially apart" false (Union_find.same uf 0 1);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 3;
  check bool_t "transitive union" true (Union_find.same uf 0 2);
  check bool_t "others untouched" false (Union_find.same uf 0 4);
  let classes = Union_find.classes uf in
  let nonempty = Array.to_list classes |> List.filter (fun l -> l <> []) in
  check int_t "7 classes remain" 7 (List.length nonempty);
  let big = List.find (fun l -> List.length l = 4) nonempty in
  check (Alcotest.list int_t) "merged class members" [ 0; 1; 2; 3 ] big

(* ------------------------------------------------------------------ *)
(* Stuck-at checkpoints and collapsing                                 *)

let test_checkpoints_c17 () =
  let c = c17 () in
  let cps = Sa_fault.checkpoints c in
  (* 5 PIs; fanout stems: G3 (to G10, G11), G11 (to G16, G19), G16 (to
     G22, G23) -> 6 branches.  11 checkpoints total. *)
  check int_t "checkpoint count" 11 (List.length cps);
  check int_t "uncollapsed faults" 22
    (List.length (Sa_fault.checkpoint_faults c))

let test_collapsing_reduces () =
  let c = c17 () in
  let collapsed = Sa_fault.collapsed_faults c in
  check bool_t "collapsing reduces" true
    (List.length collapsed < List.length (Sa_fault.checkpoint_faults c))

let test_classes_partition () =
  let c = Bench_suite.find "c95" in
  let classes = Sa_fault.equivalence_classes c in
  let all = List.concat classes in
  check int_t "partition covers all checkpoint faults"
    (List.length (Sa_fault.checkpoint_faults c))
    (List.length all);
  let sorted = List.sort Sa_fault.compare all in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> (not (Sa_fault.equal a b)) && no_dup rest
    | [ _ ] | [] -> true
  in
  check bool_t "no duplicates across classes" true (no_dup sorted)

let test_equivalent_faults_same_test_set () =
  (* Every fault in a structural equivalence class must have exactly the
     same complete test set — checked with the engine on c17. *)
  let c = c17 () in
  let engine = Engine.create c in
  List.iter
    (fun cls ->
      match cls with
      | [] -> ()
      | first :: rest ->
        let reference = Engine.test_set engine (Fault.Stuck first) in
        List.iter
          (fun f ->
            check bool_t
              (Sa_fault.to_string c first ^ " ~ " ^ Sa_fault.to_string c f)
              true
              (Bdd.equal reference (Engine.test_set engine (Fault.Stuck f))))
          rest)
    (Sa_fault.equivalence_classes c)

let test_all_line_faults () =
  let c = c17 () in
  (* 11 stems + 6 branches = 17 lines, two polarities each. *)
  check int_t "line fault universe" 34
    (List.length (Sa_fault.all_line_faults c))

let test_site_gate () =
  let c = c17 () in
  let g3 = Option.get (Circuit.index_of_name c "G3") in
  let g10 = Option.get (Circuit.index_of_name c "G10") in
  check int_t "stem site" g3
    (Sa_fault.site_gate c { Sa_fault.line = Sa_fault.Stem g3; value = false });
  let branch =
    List.find
      (fun b -> b.Circuit.stem = g3 && b.Circuit.sink = g10)
      (Circuit.branches c)
  in
  check int_t "branch site is sink" g10
    (Sa_fault.site_gate c
       { Sa_fault.line = Sa_fault.Branch branch; value = true })

(* ------------------------------------------------------------------ *)
(* Bridging faults                                                     *)

let test_bridge_make_normalises () =
  let b = Bridge.make 7 3 Bridge.Wired_and in
  check int_t "a" 3 b.Bridge.a;
  check int_t "b" 7 b.Bridge.b;
  check bool_t "self bridge rejected" true
    (try
       ignore (Bridge.make 4 4 Bridge.Wired_or);
       false
     with Invalid_argument _ -> true)

let test_ancestors () =
  let c = c17 () in
  let anc = Bridge.ancestors c in
  let idx n = Option.get (Circuit.index_of_name c n) in
  check bool_t "G3 ancestor of G22" true
    (Bridge.in_fanin anc ~net:(idx "G3") ~of_:(idx "G22"));
  check bool_t "G22 not ancestor of G3" false
    (Bridge.in_fanin anc ~net:(idx "G22") ~of_:(idx "G3"));
  check bool_t "feedback pair" true
    (Bridge.is_feedback anc (idx "G3") (idx "G22"));
  check bool_t "sibling inputs not feedback" false
    (Bridge.is_feedback anc (idx "G1") (idx "G2"))

let test_enumerate_excludes_feedback () =
  let c = c17 () in
  let anc = Bridge.ancestors c in
  List.iter
    (fun f ->
      check bool_t "non-feedback" false
        (Bridge.is_feedback anc f.Bridge.a f.Bridge.b))
    (Bridge.enumerate c)

let test_enumerate_screens_trivial () =
  (* Two inputs feeding only a single AND gate: the AND bridge between
     them is trivially undetectable and must be screened out. *)
  let c =
    Circuit.create ~title:"screen" ~inputs:[ "a"; "b" ] ~outputs:[ "y" ]
      [ ("y", Gate.And, [ "a"; "b" ]) ]
  in
  let bridges = Bridge.enumerate c in
  let a = Option.get (Circuit.index_of_name c "a") in
  let b = Option.get (Circuit.index_of_name c "b") in
  check bool_t "AND bridge screened" false
    (List.exists
       (fun f ->
         f.Bridge.a = min a b
         && f.Bridge.b = max a b
         && f.Bridge.kind = Bridge.Wired_and)
       bridges);
  check bool_t "OR bridge kept" true
    (List.exists
       (fun f ->
         f.Bridge.a = min a b
         && f.Bridge.b = max a b
         && f.Bridge.kind = Bridge.Wired_or)
       bridges)

let test_screen_spares_observable_nets () =
  (* Same shape, but one bridged net is also a primary output: the
     bridge is observable there, so it must be kept. *)
  let c =
    Circuit.create ~title:"screen2" ~inputs:[ "a"; "b" ] ~outputs:[ "a"; "y" ]
      [ ("y", Gate.And, [ "a"; "b" ]) ]
  in
  let a = Option.get (Circuit.index_of_name c "a") in
  let b = Option.get (Circuit.index_of_name c "b") in
  check bool_t "kept when observable" false
    (Bridge.trivially_undetectable c
       { Bridge.a = min a b; b = max a b; kind = Bridge.Wired_and })

let test_screened_bridges_are_undetectable () =
  (* Everything the screen removes really is undetectable (checked by
     exhaustive simulation on a small circuit). *)
  let c =
    Circuit.create ~title:"screen3" ~inputs:[ "a"; "b"; "c" ] ~outputs:[ "y" ]
      [ ("t", Gate.Nand, [ "a"; "b" ]); ("y", Gate.Or, [ "t"; "c" ]) ]
  in
  let n = Circuit.num_gates c in
  for a = 0 to n - 2 do
    for b = a + 1 to n - 1 do
      List.iter
        (fun kind ->
          let f = { Bridge.a; b; kind } in
          if Bridge.trivially_undetectable c f then
            check (Alcotest.float 1e-12)
              (Bridge.to_string c f ^ " undetectable")
              0.0
              (Fault_sim.exhaustive_detectability c (Fault.Bridged f)))
        [ Bridge.Wired_and; Bridge.Wired_or ]
    done
  done

let test_count_matches_enumerate () =
  let c = c17 () in
  check int_t "count = |enumerate|"
    (List.length (Bridge.enumerate c))
    (Bridge.count c)

let test_sample_deterministic_and_valid () =
  let c = Bench_suite.find "c432" in
  let f1, s1 = Bridge.sample ~seed:7 ~size:40 c in
  let f2, _ = Bridge.sample ~seed:7 ~size:40 c in
  check bool_t "deterministic" true (List.equal Bridge.equal f1 f2);
  check int_t "requested" 40 s1.Bridge.requested;
  check int_t "accepted pairs" 40 s1.Bridge.accepted;
  check bool_t "max distance positive" true (s1.Bridge.max_distance > 0.0);
  let anc = Bridge.ancestors c in
  List.iter
    (fun f ->
      check bool_t "valid pair" true
        (f.Bridge.a < f.Bridge.b
        && (not (Bridge.is_feedback anc f.Bridge.a f.Bridge.b))
        && not (Bridge.trivially_undetectable c f)))
    f1

let test_sample_prefers_close_pairs () =
  (* With a steep exponential the accepted pairs should sit closer than
     the theoretical maximum distance on average. *)
  let c = Bench_suite.find "c432" in
  let faults, stats = Bridge.sample ~theta:0.1 ~seed:3 ~size:60 c in
  let layout = Layout.compute c in
  let mean_z =
    let zs =
      List.map
        (fun f ->
          Layout.normalized_distance layout ~max:stats.Bridge.max_distance
            f.Bridge.a f.Bridge.b)
        faults
    in
    List.fold_left ( +. ) 0.0 zs /. float_of_int (List.length zs)
  in
  check bool_t "mean normalized distance below 0.5" true (mean_z < 0.5)

let test_sample_both_kinds () =
  let c = Bench_suite.find "c499" in
  let faults, _ = Bridge.sample ~seed:11 ~size:30 c in
  let ands =
    List.length (List.filter (fun f -> f.Bridge.kind = Bridge.Wired_and) faults)
  in
  let ors =
    List.length (List.filter (fun f -> f.Bridge.kind = Bridge.Wired_or) faults)
  in
  check bool_t "both kinds present" true (ands > 0 && ors > 0)

(* ------------------------------------------------------------------ *)
(* Unified fault type                                                  *)

let test_fault_sites () =
  let c = c17 () in
  let g3 = Option.get (Circuit.index_of_name c "G3") in
  let g10 = Option.get (Circuit.index_of_name c "G10") in
  check (Alcotest.list int_t) "stem fault site" [ g3 ]
    (Fault.sites (Fault.Stuck { Sa_fault.line = Sa_fault.Stem g3; value = true }));
  check (Alcotest.list int_t) "bridge sites"
    (List.sort Stdlib.compare [ g3; g10 ])
    (List.sort Stdlib.compare
       (Fault.sites (Fault.Bridged (Bridge.make g3 g10 Bridge.Wired_or))))

let test_fault_printing () =
  let c = c17 () in
  let g3 = Option.get (Circuit.index_of_name c "G3") in
  let fault = Fault.Stuck { Sa_fault.line = Sa_fault.Stem g3; value = false } in
  check Alcotest.string "stuck print" "G3 s-a-0" (Fault.to_string c fault);
  let g10 = Option.get (Circuit.index_of_name c "G10") in
  let bridge = Fault.Bridged (Bridge.make g10 g3 Bridge.Wired_and) in
  check Alcotest.string "bridge print" "AND-bridge(G3, G10)"
    (Fault.to_string c bridge)

let () =
  Alcotest.run "faults"
    [
      ( "util",
        [
          Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
          Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
          Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "union-find" `Quick test_union_find;
        ] );
      ( "stuck-at",
        [
          Alcotest.test_case "c17 checkpoints" `Quick test_checkpoints_c17;
          Alcotest.test_case "collapsing reduces" `Quick test_collapsing_reduces;
          Alcotest.test_case "classes partition" `Quick test_classes_partition;
          Alcotest.test_case "equivalent faults share test sets" `Quick
            test_equivalent_faults_same_test_set;
          Alcotest.test_case "line fault universe" `Quick test_all_line_faults;
          Alcotest.test_case "site gates" `Quick test_site_gate;
        ] );
      ( "bridging",
        [
          Alcotest.test_case "make normalises" `Quick test_bridge_make_normalises;
          Alcotest.test_case "ancestors" `Quick test_ancestors;
          Alcotest.test_case "enumerate excludes feedback" `Quick
            test_enumerate_excludes_feedback;
          Alcotest.test_case "trivial screen" `Quick
            test_enumerate_screens_trivial;
          Alcotest.test_case "screen spares observable nets" `Quick
            test_screen_spares_observable_nets;
          Alcotest.test_case "screened bridges undetectable" `Quick
            test_screened_bridges_are_undetectable;
          Alcotest.test_case "count" `Quick test_count_matches_enumerate;
          Alcotest.test_case "sampling valid and deterministic" `Quick
            test_sample_deterministic_and_valid;
          Alcotest.test_case "sampling prefers close pairs" `Quick
            test_sample_prefers_close_pairs;
          Alcotest.test_case "sampling emits both kinds" `Quick
            test_sample_both_kinds;
        ] );
      ( "fault",
        [
          Alcotest.test_case "sites" `Quick test_fault_sites;
          Alcotest.test_case "printing" `Quick test_fault_printing;
        ] );
    ]
