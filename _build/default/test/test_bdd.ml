(* Unit and property tests for the OBDD engine. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Random Boolean expressions: reference semantics vs BDD semantics.  *)

type expr =
  | T
  | F
  | V of int
  | Neg of expr
  | Conj of expr * expr
  | Disj of expr * expr
  | Excl of expr * expr

let rec eval_expr env = function
  | T -> true
  | F -> false
  | V i -> env.(i)
  | Neg e -> not (eval_expr env e)
  | Conj (a, b) -> eval_expr env a && eval_expr env b
  | Disj (a, b) -> eval_expr env a || eval_expr env b
  | Excl (a, b) -> eval_expr env a <> eval_expr env b

let rec bdd_of_expr m = function
  | T -> Bdd.one m
  | F -> Bdd.zero m
  | V i -> Bdd.var m i
  | Neg e -> Bdd.bnot m (bdd_of_expr m e)
  | Conj (a, b) -> Bdd.band m (bdd_of_expr m a) (bdd_of_expr m b)
  | Disj (a, b) -> Bdd.bor m (bdd_of_expr m a) (bdd_of_expr m b)
  | Excl (a, b) -> Bdd.bxor m (bdd_of_expr m a) (bdd_of_expr m b)

let nvars = 6

let expr_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof [ return T; return F; map (fun i -> V i) (int_bound (nvars - 1)) ]
      else
        frequency
          [
            (1, map (fun i -> V i) (int_bound (nvars - 1)));
            (2, map (fun e -> Neg e) (self (n - 1)));
            (2, map2 (fun a b -> Conj (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Disj (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Excl (a, b)) (self (n / 2)) (self (n / 2)));
          ])

let rec expr_to_string = function
  | T -> "1"
  | F -> "0"
  | V i -> Printf.sprintf "x%d" i
  | Neg e -> Printf.sprintf "~%s" (expr_to_string e)
  | Conj (a, b) -> Printf.sprintf "(%s&%s)" (expr_to_string a) (expr_to_string b)
  | Disj (a, b) -> Printf.sprintf "(%s|%s)" (expr_to_string a) (expr_to_string b)
  | Excl (a, b) -> Printf.sprintf "(%s^%s)" (expr_to_string a) (expr_to_string b)

let arbitrary_expr = QCheck.make ~print:expr_to_string expr_gen

let all_envs n =
  List.init (1 lsl n) (fun bits ->
      Array.init n (fun i -> (bits lsr i) land 1 = 1))

let agree m f e =
  List.for_all
    (fun env -> Bdd.eval m f (fun i -> env.(i)) = eval_expr env e)
    (all_envs nvars)

let prop name arb p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb p)

let qcheck_cases =
  [
    prop "expr and BDD agree on all assignments" arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        agree m (bdd_of_expr m e) e);
    prop "reduction invariants hold" arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        Bdd.check_invariants m (bdd_of_expr m e));
    prop "double negation is identity" arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        Bdd.equal (Bdd.bnot m (Bdd.bnot m f)) f);
    prop "De Morgan" (QCheck.pair arbitrary_expr arbitrary_expr)
      (fun (ea, eb) ->
        let m = Bdd.create nvars in
        let a = bdd_of_expr m ea and b = bdd_of_expr m eb in
        Bdd.equal
          (Bdd.bnot m (Bdd.band m a b))
          (Bdd.bor m (Bdd.bnot m a) (Bdd.bnot m b)));
    prop "xor ring: a^b = (a|b) & ~(a&b)"
      (QCheck.pair arbitrary_expr arbitrary_expr) (fun (ea, eb) ->
        let m = Bdd.create nvars in
        let a = bdd_of_expr m ea and b = bdd_of_expr m eb in
        Bdd.equal (Bdd.bxor m a b)
          (Bdd.band m (Bdd.bor m a b) (Bdd.bnot m (Bdd.band m a b))));
    prop "ite f 1 0 = f" arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        Bdd.equal (Bdd.ite m f (Bdd.one m) (Bdd.zero m)) f);
    prop "ite against or/and decomposition"
      (QCheck.triple arbitrary_expr arbitrary_expr arbitrary_expr)
      (fun (ef, eg, eh) ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m ef in
        let g = bdd_of_expr m eg in
        let h = bdd_of_expr m eh in
        Bdd.equal (Bdd.ite m f g h)
          (Bdd.bor m (Bdd.band m f g) (Bdd.band m (Bdd.bnot m f) h)));
    prop "sat_count equals truth-table count" arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        let expected =
          List.length (List.filter (fun env -> eval_expr env e) (all_envs nvars))
        in
        int_of_float (Bdd.sat_count m f) = expected);
    prop "restrict = semantic cofactor"
      (QCheck.pair arbitrary_expr (QCheck.int_bound (nvars - 1)))
      (fun (e, v) ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        let f1 = Bdd.restrict m f ~var:v ~value:true in
        List.for_all
          (fun env ->
            let env' = Array.copy env in
            env'.(v) <- true;
            Bdd.eval m f1 (fun i -> env.(i)) = eval_expr env' e)
          (all_envs nvars));
    prop "restricted variable leaves the support"
      (QCheck.pair arbitrary_expr (QCheck.int_bound (nvars - 1)))
      (fun (e, v) ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        not
          (List.mem v (Bdd.support m (Bdd.restrict m f ~var:v ~value:false))));
    prop "compose matches substitution semantics"
      (QCheck.triple arbitrary_expr arbitrary_expr (QCheck.int_bound (nvars - 1)))
      (fun (ef, eg, v) ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m ef and g = bdd_of_expr m eg in
        let composed = Bdd.compose m f ~var:v g in
        List.for_all
          (fun env ->
            let env' = Array.copy env in
            env'.(v) <- eval_expr env eg;
            Bdd.eval m composed (fun i -> env.(i)) = eval_expr env' ef)
          (all_envs nvars));
    prop "exists v f = f|v=0 or f|v=1"
      (QCheck.pair arbitrary_expr (QCheck.int_bound (nvars - 1)))
      (fun (e, v) ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        let f0, f1 = Bdd.cofactors m f v in
        Bdd.equal (Bdd.exists m [ v ] f) (Bdd.bor m f0 f1));
    prop "forall dual to exists"
      (QCheck.pair arbitrary_expr (QCheck.int_bound (nvars - 1)))
      (fun (e, v) ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        Bdd.equal
          (Bdd.forall m [ v ] f)
          (Bdd.bnot m (Bdd.exists m [ v ] (Bdd.bnot m f))));
    prop "any_sat satisfies" arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        match Bdd.any_sat m f with
        | None -> Bdd.is_zero m f
        | Some literals ->
          let env = Array.make nvars false in
          List.iter (fun (v, value) -> env.(v) <- value) literals;
          Bdd.eval m f (fun i -> env.(i)));
    prop "sat_cubes cover exactly the on-set" arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        let cubes = Bdd.sat_cubes m f in
        let covered env =
          List.exists
            (fun cube -> List.for_all (fun (v, value) -> env.(v) = value) cube)
            cubes
        in
        List.for_all (fun env -> covered env = eval_expr env e) (all_envs nvars));
    prop "of_fun reproduces the function" arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        let direct = bdd_of_expr m e in
        let from_fun = Bdd.of_fun m ~arity:nvars (fun env -> eval_expr env e) in
        Bdd.equal direct from_fun);
    prop "rebuild to a shuffled order preserves the function"
      arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        let order = [| 3; 1; 5; 0; 4; 2 |] in
        let m' = Bdd.create ~order nvars in
        let f' = Bdd.rebuild ~src:m ~dst:m' f in
        Bdd.check_invariants m' f'
        && List.for_all
             (fun env ->
               Bdd.eval m' f' (fun i -> env.(i)) = eval_expr env e)
             (all_envs nvars));
    prop "sat_fraction of complement sums to one" arbitrary_expr (fun e ->
        let m = Bdd.create nvars in
        let f = bdd_of_expr m e in
        let total = Bdd.sat_fraction m f +. Bdd.sat_fraction m (Bdd.bnot m f) in
        Float.abs (total -. 1.0) < 1e-12);
  ]

(* ------------------------------------------------------------------ *)
(* Unit tests.                                                         *)

let test_constants () =
  let m = Bdd.create 3 in
  check bool_t "zero is const" true (Bdd.is_const m (Bdd.zero m));
  check bool_t "one is const" true (Bdd.is_const m (Bdd.one m));
  check bool_t "zero <> one" false (Bdd.equal (Bdd.zero m) (Bdd.one m));
  check bool_t "var not const" false (Bdd.is_const m (Bdd.var m 0))

let test_var_nvar () =
  let m = Bdd.create 3 in
  check bool_t "nvar = not var" true
    (Bdd.equal (Bdd.nvar m 1) (Bdd.bnot m (Bdd.var m 1)));
  check bool_t "var and nvar conflict" true
    (Bdd.is_zero m (Bdd.band m (Bdd.var m 1) (Bdd.nvar m 1)));
  check bool_t "var or nvar tautology" true
    (Bdd.is_one m (Bdd.bor m (Bdd.var m 1) (Bdd.nvar m 1)))

let test_out_of_range () =
  let m = Bdd.create 3 in
  Alcotest.check_raises "var 3" (Bdd.Variable_out_of_range 3) (fun () ->
      ignore (Bdd.var m 3));
  Alcotest.check_raises "var -1" (Bdd.Variable_out_of_range (-1)) (fun () ->
      ignore (Bdd.var m (-1)))

let test_hash_consing () =
  let m = Bdd.create 4 in
  let f1 = Bdd.band m (Bdd.var m 0) (Bdd.var m 1) in
  let f2 = Bdd.band m (Bdd.var m 1) (Bdd.var m 0) in
  check bool_t "commutativity gives identical handles" true (Bdd.equal f1 f2)

let test_derived_connectives () =
  let m = Bdd.create 2 in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  check bool_t "nand" true
    (Bdd.equal (Bdd.bnand m a b) (Bdd.bnot m (Bdd.band m a b)));
  check bool_t "nor" true
    (Bdd.equal (Bdd.bnor m a b) (Bdd.bnot m (Bdd.bor m a b)));
  check bool_t "xnor" true
    (Bdd.equal (Bdd.bxnor m a b) (Bdd.bnot m (Bdd.bxor m a b)));
  check bool_t "imp" true
    (Bdd.equal (Bdd.bimp m a b) (Bdd.bor m (Bdd.bnot m a) b))

let test_list_connectives () =
  let m = Bdd.create 4 in
  let vs = List.init 4 (Bdd.var m) in
  check (Alcotest.float 1e-12) "and_list satfrac" (1.0 /. 16.0)
    (Bdd.sat_fraction m (Bdd.band_list m vs));
  check (Alcotest.float 1e-12) "or_list satfrac" (15.0 /. 16.0)
    (Bdd.sat_fraction m (Bdd.bor_list m vs));
  check (Alcotest.float 1e-12) "xor_list satfrac" 0.5
    (Bdd.sat_fraction m (Bdd.bxor_list m vs))

let test_support_and_size () =
  let m = Bdd.create 5 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.bxor m (Bdd.var m 2) (Bdd.var m 4)) in
  check (Alcotest.list int_t) "support" [ 0; 2; 4 ] (Bdd.support m f);
  check bool_t "size positive" true (Bdd.size m f > 0);
  check int_t "const size" 0 (Bdd.size m (Bdd.one m))

let test_top_var () =
  let m = Bdd.create 3 in
  check (Alcotest.option int_t) "top of var 1" (Some 1)
    (Bdd.top_var m (Bdd.var m 1));
  check (Alcotest.option int_t) "top of const" None (Bdd.top_var m (Bdd.one m))

let test_top_var_respects_order () =
  let m = Bdd.create ~order:[| 2; 0; 1 |] 3 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.var m 2) in
  check (Alcotest.option int_t) "var 2 is topmost under the order" (Some 2)
    (Bdd.top_var m f)

let test_cube () =
  let m = Bdd.create 4 in
  let f = Bdd.cube m [ (0, true); (2, false) ] in
  check (Alcotest.float 1e-12) "cube satfrac" 0.25 (Bdd.sat_fraction m f);
  check bool_t "cube eval" true
    (Bdd.eval m f (fun i -> i = 0 || i = 1 || i = 3))

let test_sat_cubes_limit () =
  let m = Bdd.create 4 in
  let f = Bdd.bxor_list m (List.init 4 (Bdd.var m)) in
  let limited = Bdd.sat_cubes m ~limit:3 f in
  check int_t "limit respected" 3 (List.length limited)

let test_parity_bdd_is_linear_size () =
  let n = 40 in
  let m = Bdd.create n in
  let f = Bdd.bxor_list m (List.init n (Bdd.var m)) in
  check bool_t "parity size is linear" true (Bdd.size m f <= 2 * n);
  check (Alcotest.float 1e-12) "parity satfrac" 0.5 (Bdd.sat_fraction m f)

let test_clear_caches_preserves_results () =
  let m = Bdd.create 6 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.bor m (Bdd.var m 1) (Bdd.var m 2)) in
  Bdd.clear_caches m;
  let g = Bdd.band m (Bdd.var m 0) (Bdd.bor m (Bdd.var m 1) (Bdd.var m 2)) in
  check bool_t "same node after cache clear" true (Bdd.equal f g)

let test_many_nodes_grow () =
  (* Push past the initial arena capacity to exercise growth & rehash. *)
  let n = 16 in
  let m = Bdd.create n in
  let rng = Prng.create ~seed:3 in
  let f = ref (Bdd.zero m) in
  for _ = 1 to 200 do
    let v1 = Bdd.var m (Prng.int rng n) in
    let v2 = Bdd.var m (Prng.int rng n) in
    f := Bdd.bxor m !f (Bdd.band m v1 v2)
  done;
  check bool_t "invariants after heavy growth" true (Bdd.check_invariants m !f);
  check bool_t "allocated nodes grew" true (Bdd.allocated_nodes m > 1024)

let test_rebuild_rejects_mismatch () =
  let m1 = Bdd.create 3 and m2 = Bdd.create 4 in
  let f = Bdd.var m1 0 in
  Alcotest.check_raises "universe mismatch"
    (Invalid_argument "Bdd.rebuild: variable universes differ") (fun () ->
      ignore (Bdd.rebuild ~src:m1 ~dst:m2 f))

let test_create_rejects_bad_order () =
  Alcotest.check_raises "short order"
    (Invalid_argument "Bdd.create: order length mismatch") (fun () ->
      ignore (Bdd.create ~order:[| 0 |] 2));
  Alcotest.check_raises "duplicate order"
    (Invalid_argument "Bdd.create: order is not a permutation") (fun () ->
      ignore (Bdd.create ~order:[| 0; 0 |] 2))

let unit_cases =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "var / nvar" `Quick test_var_nvar;
    Alcotest.test_case "variable range checks" `Quick test_out_of_range;
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "derived connectives" `Quick test_derived_connectives;
    Alcotest.test_case "list connectives" `Quick test_list_connectives;
    Alcotest.test_case "support and size" `Quick test_support_and_size;
    Alcotest.test_case "top_var" `Quick test_top_var;
    Alcotest.test_case "top_var under custom order" `Quick
      test_top_var_respects_order;
    Alcotest.test_case "cube" `Quick test_cube;
    Alcotest.test_case "sat_cubes limit" `Quick test_sat_cubes_limit;
    Alcotest.test_case "parity stays linear" `Quick
      test_parity_bdd_is_linear_size;
    Alcotest.test_case "clear_caches keeps hash consing" `Quick
      test_clear_caches_preserves_results;
    Alcotest.test_case "arena growth and rehash" `Quick test_many_nodes_grow;
    Alcotest.test_case "rebuild universe check" `Quick
      test_rebuild_rejects_mismatch;
    Alcotest.test_case "create order validation" `Quick
      test_create_rejects_bad_order;
  ]

let () =
  Alcotest.run "bdd"
    [ ("unit", unit_cases); ("properties", qcheck_cases) ]
