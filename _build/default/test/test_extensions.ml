(* Tests for the extension modules: equivalence checking, SCOAP,
   approximate signal probabilities, multiple stuck-at faults, test-set
   compaction, functional collapsing, correlation statistics. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Equiv                                                               *)

let test_equiv_c499_c1355 () =
  check bool_t "c499 = c1355 (formally)" true
    (Equiv.equivalent (Bench_suite.find "c499") (Bench_suite.find "c1355"))

let test_equiv_transforms () =
  let c = Bench_suite.find "alu74181" in
  check bool_t "expand_to_two_input preserves" true
    (Equiv.equivalent c (Transform.expand_to_two_input c));
  let two = Transform.expand_to_two_input c in
  check bool_t "xor_to_nand preserves" true
    (Equiv.equivalent two (Transform.xor_to_nand two))

let test_equiv_detects_difference () =
  let c1 =
    Circuit.create ~title:"a" ~inputs:[ "x"; "y" ] ~outputs:[ "o" ]
      [ ("o", Gate.And, [ "x"; "y" ]) ]
  in
  let c2 =
    Circuit.create ~title:"b" ~inputs:[ "x"; "y" ] ~outputs:[ "o" ]
      [ ("o", Gate.Or, [ "x"; "y" ]) ]
  in
  (match Equiv.check c1 c2 with
  | Equiv.Different { output; witness } ->
    check int_t "first output differs" 0 output;
    (* The witness must actually separate the two circuits. *)
    check bool_t "witness separates" true
      (Circuit.eval_outputs c1 witness <> Circuit.eval_outputs c2 witness)
  | Equiv.Equivalent | Equiv.Interface_mismatch _ ->
    Alcotest.fail "AND vs OR must differ");
  match Equiv.check c1 (Bench_suite.find "c17") with
  | Equiv.Interface_mismatch _ -> ()
  | Equiv.Equivalent | Equiv.Different _ ->
    Alcotest.fail "interface mismatch expected"

let test_equiv_random_rewrites () =
  List.iter
    (fun seed ->
      let c = Generate.random ~seed ~inputs:8 ~gates:40 ~outputs:4 in
      check bool_t "two-input expansion equivalent" true
        (Equiv.equivalent c (Transform.expand_to_two_input c)))
    [ 1; 2; 3 ]

(* Every function-preserving transform, proven (not sampled) equivalent
   on random circuits: the strongest form of the transform tests. *)
let prop_transforms_preserve_function =
  let test seed =
    let rng = Prng.create ~seed:(seed + 9000) in
    let c =
      Generate.random ~seed:(seed + 1) ~inputs:(4 + Prng.int rng 6)
        ~gates:(8 + Prng.int rng 40)
        ~outputs:(1 + Prng.int rng 4)
    in
    let two = Transform.expand_to_two_input c in
    Equiv.equivalent c two
    && Equiv.equivalent two (Transform.xor_to_nand two)
    && Equiv.equivalent c (Transform.strip_unreachable c)
    &&
    (* A control point held at the non-controlling value is transparent:
       compose it away by checking outputs under a fixed control. *)
    let net = Prng.int rng (Circuit.num_gates c) in
    let forced = Transform.add_control_point c ~net ~polarity:`Force0 in
    let ok = ref true in
    for _ = 1 to 16 do
      let v = Prng.bool_array rng (Circuit.num_inputs c) in
      if
        Circuit.eval_outputs c v
        <> Circuit.eval_outputs forced (Array.append v [| true |])
      then ok := false
    done;
    !ok
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"transforms preserve the function (formally checked)"
       QCheck.small_nat test)

(* ------------------------------------------------------------------ *)
(* SCOAP                                                               *)

let test_scoap_inputs () =
  let c = Bench_suite.find "c17" in
  let m = Scoap.compute c in
  Array.iter
    (fun g ->
      check int_t "PI cc0" 1 (Scoap.controllability m ~net:g ~value:false);
      check int_t "PI cc1" 1 (Scoap.controllability m ~net:g ~value:true))
    c.Circuit.inputs;
  Array.iter
    (fun o -> check int_t "PO co" 0 (Scoap.observability m o))
    c.Circuit.outputs

let test_scoap_and_gate () =
  let c =
    Circuit.create ~title:"and3" ~inputs:[ "a"; "b"; "c" ] ~outputs:[ "y" ]
      [ ("y", Gate.And, [ "a"; "b"; "c" ]) ]
  in
  let m = Scoap.compute c in
  let y = Option.get (Circuit.index_of_name c "y") in
  (* CC1(AND) = sum of input CC1s + 1 = 4; CC0 = min CC0 + 1 = 2. *)
  check int_t "cc1" 4 (Scoap.controllability m ~net:y ~value:true);
  check int_t "cc0" 2 (Scoap.controllability m ~net:y ~value:false);
  let a = Option.get (Circuit.index_of_name c "a") in
  (* CO(a) = CO(y) + CC1(b) + CC1(c) + 1 = 0 + 1 + 1 + 1. *)
  check int_t "co of input" 3 (Scoap.observability m a)

let test_scoap_constants () =
  let c =
    Circuit.create ~title:"k" ~inputs:[ "a" ] ~outputs:[ "y" ]
      [ ("one", Gate.Const1, []); ("y", Gate.And, [ "a"; "one" ]) ]
  in
  let m = Scoap.compute c in
  let one = Option.get (Circuit.index_of_name c "one") in
  check int_t "const1 cc1" 1 (Scoap.controllability m ~net:one ~value:true);
  check int_t "const1 cc0 unreachable" max_int
    (Scoap.controllability m ~net:one ~value:false)

let test_scoap_deeper_is_harder () =
  let c = Bench_suite.find "c1355" in
  let m = Scoap.compute c in
  let levels = Circuit.levels c in
  (* Controllability cost grows with depth on average. *)
  let avg predicate =
    let sum = ref 0 and n = ref 0 in
    Array.iteri
      (fun g _ ->
        if predicate levels.(g) then begin
          let v = Scoap.controllability m ~net:g ~value:true in
          if v < max_int then begin
            sum := !sum + v;
            incr n
          end
        end)
      c.Circuit.gates;
    float_of_int !sum /. float_of_int (max 1 !n)
  in
  check bool_t "deep nets cost more" true (avg (fun l -> l > 10) > avg (fun l -> l <= 2))

(* ------------------------------------------------------------------ *)
(* Signal probabilities                                                *)

let test_signal_prob_tree_exact () =
  (* Fanout-free circuit: the estimator is exact. *)
  let c =
    Circuit.create ~title:"tree" ~inputs:[ "a"; "b"; "c"; "d" ]
      ~outputs:[ "y" ]
      [
        ("t1", Gate.And, [ "a"; "b" ]);
        ("t2", Gate.Or, [ "c"; "d" ]);
        ("y", Gate.Xor, [ "t1"; "t2" ]);
      ]
  in
  let p = Signal_prob.estimate c in
  let sym = Symbolic.build c in
  Array.iteri
    (fun g _ ->
      check float_t
        (Printf.sprintf "net %d" g)
        (Symbolic.syndrome sym g) p.(g))
    c.Circuit.gates;
  let s = Signal_prob.compare_with_exact c sym in
  check bool_t "flagged exact on trees" true s.Signal_prob.exact_on_trees;
  check float_t "zero max error" 0.0 s.Signal_prob.max_abs_error

let test_signal_prob_reconvergence_errs () =
  (* y = a AND a (through two paths) has probability 1/2, but the
     independence assumption predicts 1/4. *)
  let c =
    Circuit.create ~title:"reconv" ~inputs:[ "a" ] ~outputs:[ "y" ]
      [
        ("b1", Gate.Buf, [ "a" ]);
        ("b2", Gate.Buf, [ "a" ]);
        ("y", Gate.And, [ "b1"; "b2" ]);
      ]
  in
  let p = Signal_prob.estimate c in
  let y = Option.get (Circuit.index_of_name c "y") in
  check float_t "estimator says 1/4" 0.25 p.(y);
  let sym = Symbolic.build c in
  check float_t "exact is 1/2" 0.5 (Symbolic.syndrome sym y);
  let s = Signal_prob.compare_with_exact c sym in
  check float_t "max error 1/4" 0.25 s.Signal_prob.max_abs_error

let test_signal_prob_custom_input_probability () =
  let c =
    Circuit.create ~title:"p" ~inputs:[ "a"; "b" ] ~outputs:[ "y" ]
      [ ("y", Gate.And, [ "a"; "b" ]) ]
  in
  let p = Signal_prob.estimate ~input_probability:0.9 c in
  let y = Option.get (Circuit.index_of_name c "y") in
  check float_t "0.81" 0.81 p.(y)

(* ------------------------------------------------------------------ *)
(* Multiple stuck-at faults                                            *)

let test_multi_constructor () =
  check bool_t "empty rejected" true
    (try
       ignore (Fault.multi []);
       false
     with Invalid_argument _ -> true);
  check bool_t "duplicates rejected" true
    (try
       ignore (Fault.multi [ (3, true); (3, false) ]);
       false
     with Invalid_argument _ -> true);
  (* Normalisation makes order irrelevant. *)
  check bool_t "order-insensitive equality" true
    (Fault.equal
       (Fault.multi [ (5, true); (2, false) ])
       (Fault.multi [ (2, false); (5, true) ]))

let test_multi_matches_simulation () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  let rng = Prng.create ~seed:55 in
  let n = Circuit.num_gates c in
  for _ = 1 to 40 do
    let a = Prng.int rng n in
    let b = (a + 1 + Prng.int rng (n - 1)) mod n in
    let fault = Fault.multi [ (a, Prng.bool rng); (b, Prng.bool rng) ] in
    check float_t
      (Fault.to_string c fault)
      (Fault_sim.exhaustive_detectability c fault)
      (Engine.analyze engine fault).Engine.detectability
  done

let test_multi_singleton_matches_stem () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let g11 = Option.get (Circuit.index_of_name c "G11") in
  let single =
    Fault.Stuck { Sa_fault.line = Sa_fault.Stem g11; value = true }
  in
  check float_t "singleton multi = stem fault"
    (Engine.analyze engine single).Engine.detectability
    (Engine.analyze engine (Fault.multi [ (g11, true) ])).Engine.detectability

let test_multi_triple () =
  let c = Bench_suite.find "fulladder" in
  let engine = Engine.create c in
  let fault = Fault.multi [ (0, true); (2, false); (5, true) ] in
  check float_t "triple fault exact"
    (Fault_sim.exhaustive_detectability c fault)
    (Engine.analyze engine fault).Engine.detectability

let test_multi_masking_possible () =
  (* Two faults can mask each other: x s-a-1 with not(x) s-a-1 feeding
     an AND — the pair's detectability can differ from either single. *)
  let c =
    Circuit.create ~title:"mask" ~inputs:[ "a" ] ~outputs:[ "y" ]
      [ ("na", Gate.Not, [ "a" ]); ("y", Gate.And, [ "a"; "na" ]) ]
  in
  let engine = Engine.create c in
  let a = Option.get (Circuit.index_of_name c "a") in
  let na = Option.get (Circuit.index_of_name c "na") in
  (* y == 0 always; a s-a-1 alone makes y = na = not(1)... still 0 for
     a=1.  Forcing both a=1 and na=1 makes y = 1: detectable always. *)
  let pair = Fault.multi [ (a, true); (na, true) ] in
  check float_t "double detectable everywhere" 1.0
    (Engine.analyze engine pair).Engine.detectability;
  check float_t "simulation agrees" 1.0
    (Fault_sim.exhaustive_detectability c pair)

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)

let test_compaction_covers () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let outcome = Compact.greedy engine faults in
  check int_t "everything covered" (List.length faults)
    (outcome.Compact.covered + outcome.Compact.undetectable);
  check bool_t "verified by simulation" true
    (Compact.verify c faults outcome.Compact.vectors);
  (* Compaction must not be worse than one vector per fault. *)
  check bool_t "fewer vectors than faults" true
    (List.length outcome.Compact.vectors < List.length faults)

let test_compaction_beats_podem_counts () =
  let c = Bench_suite.find "alu74181" in
  let engine = Engine.create c in
  let sa = Sa_fault.collapsed_faults c in
  let outcome =
    Compact.greedy engine (List.map (fun f -> Fault.Stuck f) sa)
  in
  let podem = Podem.run_all c sa in
  check bool_t "no more vectors than PODEM-with-dropping" true
    (List.length outcome.Compact.vectors
    <= List.length podem.Podem.tests)

let test_compaction_handles_redundant () =
  let c =
    Circuit.create ~title:"taut" ~inputs:[ "a"; "b" ] ~outputs:[ "y" ]
      [ ("na", Gate.Not, [ "a" ]); ("y", Gate.Or, [ "a"; "na" ]) ]
  in
  let engine = Engine.create c in
  let y = Option.get (Circuit.index_of_name c "y") in
  let faults =
    [
      Fault.Stuck { Sa_fault.line = Sa_fault.Stem y; value = true };
      Fault.Stuck { Sa_fault.line = Sa_fault.Stem y; value = false };
    ]
  in
  let outcome = Compact.greedy engine faults in
  check int_t "one undetectable" 1 outcome.Compact.undetectable;
  check int_t "one covered" 1 outcome.Compact.covered

(* ------------------------------------------------------------------ *)
(* Functional collapsing                                               *)

let test_fun_collapse_refines_structural () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let s = Fun_collapse.summarize engine c in
  check int_t "faults" 22 s.Fun_collapse.faults;
  check bool_t "functional <= structural" true
    (s.Fun_collapse.functional_classes <= s.Fun_collapse.structural_classes);
  check bool_t "detection <= functional" true
    (s.Fun_collapse.detection_classes <= s.Fun_collapse.functional_classes)

let test_fun_collapse_classes_consistent () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.checkpoint_faults c)
  in
  let classes = Fun_collapse.by_test_set engine faults in
  check int_t "partition" (List.length faults)
    (List.length (List.concat classes));
  (* Members of one class must have identical detectability. *)
  List.iter
    (fun cls ->
      match cls with
      | [] -> ()
      | first :: rest ->
        let d0 = (Engine.analyze engine first).Engine.detectability in
        List.iter
          (fun f ->
            check float_t "same detectability" d0
              (Engine.analyze engine f).Engine.detectability)
          rest)
    classes

(* ------------------------------------------------------------------ *)
(* Transition faults                                                   *)

let test_transition_exact_vs_pair_enumeration () =
  (* Count detecting (v1, v2) pairs exhaustively on c17 (2^10 pairs)
     and compare with the closed-form pair detectability. *)
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let vectors =
    List.init 32 (fun bits -> Array.init 5 (fun i -> (bits lsr i) land 1 = 1))
  in
  let faults =
    Transition.all c |> List.filteri (fun i _ -> i mod 3 = 0)
  in
  List.iter
    (fun f ->
      let count =
        List.fold_left
          (fun acc v1 ->
            List.fold_left
              (fun acc v2 ->
                if Transition.detect_pair c f v1 v2 then acc + 1 else acc)
              acc vectors)
          0 vectors
      in
      let enumerated = float_of_int count /. 1024.0 in
      check float_t
        (Format.asprintf "%a" (Transition.pp c) f)
        enumerated
        (Transition.pair_detectability engine f))
    faults

let test_transition_test_pair_detects () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  List.iter
    (fun f ->
      match Transition.test_pair engine f with
      | Some (v1, v2) ->
        check bool_t
          (Format.asprintf "%a" (Transition.pp c) f)
          true
          (Transition.detect_pair c f v1 v2)
      | None ->
        check float_t "undetectable means zero" 0.0
          (Transition.pair_detectability engine f))
    (Transition.all c |> List.filteri (fun i _ -> i mod 7 = 0))

let test_transition_relates_to_stuck_at () =
  (* Pair detectability = launch probability x stuck-at detectability,
     so it can never exceed the stuck-at detectability. *)
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  List.iter
    (fun (f : Transition.t) ->
      let sa_value = match f.Transition.edge with
        | Transition.Rise -> false
        | Transition.Fall -> true
      in
      let sa =
        (Engine.analyze engine
           (Fault.Stuck
              { Sa_fault.line = Sa_fault.Stem f.Transition.net;
                value = sa_value }))
          .Engine.detectability
      in
      check bool_t "bounded by stuck-at" true
        (Transition.pair_detectability engine f <= sa +. 1e-12))
    (Transition.all c)

(* ------------------------------------------------------------------ *)
(* CATAPULT-style Boolean-difference baseline                          *)

let test_catapult_matches_dp_c17 () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  List.iter
    (fun f ->
      check float_t
        (Sa_fault.to_string c f)
        (Engine.analyze engine (Fault.Stuck f)).Engine.detectability
        (Catapult.detectability engine f))
    (Sa_fault.all_line_faults c)

let test_catapult_matches_dp_c95 () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  List.iter
    (fun f ->
      check float_t
        (Sa_fault.to_string c f)
        (Engine.analyze engine (Fault.Stuck f)).Engine.detectability
        (Catapult.detectability engine f))
    (Sa_fault.collapsed_faults c)

let test_catapult_cubes_detect () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  List.iter
    (fun f ->
      List.iter
        (fun cube ->
          let v = Array.make 5 false in
          List.iter (fun (pos, value) -> v.(pos) <- value) cube;
          check bool_t "catapult cube detects" true
            (Fault_sim.detects c (Fault.Stuck f) v))
        (Catapult.test_cubes ~limit:4 engine f))
    (Sa_fault.collapsed_faults c)

let test_catapult_observability_bounds_detectability () =
  (* Observability of a stem upper-bounds the detectability of stem
     faults on it (changing a single branch can escape cancellation, so
     the bound is claimed for stem faults only). *)
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  let stem_faults =
    Sa_fault.collapsed_faults c
    |> List.filter (fun f ->
           match f.Sa_fault.line with
           | Sa_fault.Stem _ -> true
           | Sa_fault.Branch _ -> false)
  in
  List.iter
    (fun f ->
      let stem = Sa_fault.stem_of_line f.Sa_fault.line in
      let obs = Catapult.observability_fraction engine stem in
      let det = (Engine.analyze engine (Fault.Stuck f)).Engine.detectability in
      check bool_t
        ("obs bound " ^ Sa_fault.to_string c f)
        true
        (det <= obs +. 1e-12))
    stem_faults

(* ------------------------------------------------------------------ *)
(* Diagnosis                                                           *)

let test_diagnosis_predict_matches_observe () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let rng = Prng.create ~seed:71 in
  List.iter
    (fun f ->
      let fault = Fault.Stuck f in
      for _ = 1 to 8 do
        let v = Prng.bool_array rng 5 in
        let obs = Diagnosis.observe c fault v in
        check (Alcotest.array bool_t) "prediction = simulation"
          obs.Diagnosis.failing
          (Diagnosis.predict engine fault v)
      done)
    (Sa_fault.collapsed_faults c)

let test_diagnosis_actual_survives () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let universe =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  List.iter
    (fun actual ->
      let session = Diagnosis.diagnose engine universe ~actual in
      check bool_t
        ("actual survives " ^ Fault.to_string c actual)
        true
        (List.exists (Fault.equal actual) session.Diagnosis.remaining);
      (* Survivors must be pairwise indistinguishable. *)
      let rec all_equiv = function
        | f1 :: rest ->
          List.for_all
            (fun f2 -> Diagnosis.distinguishing_vector engine f1 f2 = None)
            rest
          && all_equiv rest
        | [] -> true
      in
      check bool_t "resolution limit reached" true
        (all_equiv session.Diagnosis.remaining))
    universe

let test_distinguishing_vector_separates () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let universe =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let pairs =
    match universe with
    | a :: b :: d :: e :: _ -> [ (a, b); (a, d); (b, e) ]
    | _ -> []
  in
  List.iter
    (fun (f1, f2) ->
      match Diagnosis.distinguishing_vector engine f1 f2 with
      | None ->
        (* Functionally equivalent: identical responses everywhere. *)
        let rng = Prng.create ~seed:3 in
        for _ = 1 to 16 do
          let v = Prng.bool_array rng 5 in
          check (Alcotest.array bool_t) "equal responses"
            (Diagnosis.observe c f1 v).Diagnosis.failing
            (Diagnosis.observe c f2 v).Diagnosis.failing
        done
      | Some v ->
        check bool_t "vector separates the pair" false
          ((Diagnosis.observe c f1 v).Diagnosis.failing
          = (Diagnosis.observe c f2 v).Diagnosis.failing))
    pairs

let test_diagnosis_equivalent_faults_inseparable () =
  (* Faults in one structural equivalence class admit no distinguishing
     vector. *)
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  List.iter
    (fun cls ->
      match List.map (fun f -> Fault.Stuck f) cls with
      | f1 :: f2 :: _ ->
        check bool_t "no distinguishing vector inside a class" true
          (Diagnosis.distinguishing_vector engine f1 f2 = None)
      | [ _ ] | [] -> ())
    (Sa_fault.equivalence_classes c)

(* ------------------------------------------------------------------ *)
(* Correlation                                                         *)

let test_correlation_basics () =
  check float_t "perfect" 1.0
    (Correlation.pearson [ (1.0, 2.0); (2.0, 4.0); (3.0, 6.0) ]);
  check float_t "perfect negative" (-1.0)
    (Correlation.pearson [ (1.0, 3.0); (2.0, 2.0); (3.0, 1.0) ]);
  check float_t "degenerate" 0.0 (Correlation.pearson [ (1.0, 1.0) ]);
  check float_t "spearman monotone nonlinear" 1.0
    (Correlation.spearman [ (1.0, 1.0); (2.0, 10.0); (3.0, 11.0) ])

let test_correlation_ties () =
  (* Ties get averaged ranks; a constant column correlates with nothing. *)
  check float_t "constant column" 0.0
    (Correlation.spearman [ (1.0, 5.0); (2.0, 5.0); (3.0, 5.0) ])

let () =
  Alcotest.run "extensions"
    [
      ( "equiv",
        [
          Alcotest.test_case "c499 = c1355" `Quick test_equiv_c499_c1355;
          Alcotest.test_case "transforms preserve" `Quick test_equiv_transforms;
          Alcotest.test_case "difference witness" `Quick
            test_equiv_detects_difference;
          Alcotest.test_case "random rewrites" `Quick test_equiv_random_rewrites;
          prop_transforms_preserve_function;
        ] );
      ( "scoap",
        [
          Alcotest.test_case "inputs and outputs" `Quick test_scoap_inputs;
          Alcotest.test_case "AND gate" `Quick test_scoap_and_gate;
          Alcotest.test_case "constants" `Quick test_scoap_constants;
          Alcotest.test_case "depth monotonicity" `Quick
            test_scoap_deeper_is_harder;
        ] );
      ( "signal-prob",
        [
          Alcotest.test_case "exact on trees" `Quick test_signal_prob_tree_exact;
          Alcotest.test_case "reconvergence errs" `Quick
            test_signal_prob_reconvergence_errs;
          Alcotest.test_case "custom input probability" `Quick
            test_signal_prob_custom_input_probability;
        ] );
      ( "multi-stuck",
        [
          Alcotest.test_case "constructor" `Quick test_multi_constructor;
          Alcotest.test_case "matches simulation" `Quick
            test_multi_matches_simulation;
          Alcotest.test_case "singleton = stem" `Quick
            test_multi_singleton_matches_stem;
          Alcotest.test_case "triple fault" `Quick test_multi_triple;
          Alcotest.test_case "mutual masking" `Quick test_multi_masking_possible;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "covers everything" `Quick test_compaction_covers;
          Alcotest.test_case "at most PODEM size" `Quick
            test_compaction_beats_podem_counts;
          Alcotest.test_case "redundant faults" `Quick
            test_compaction_handles_redundant;
        ] );
      ( "fun-collapse",
        [
          Alcotest.test_case "refines structural" `Quick
            test_fun_collapse_refines_structural;
          Alcotest.test_case "classes consistent" `Quick
            test_fun_collapse_classes_consistent;
        ] );
      ( "transition",
        [
          Alcotest.test_case "exact vs pair enumeration" `Quick
            test_transition_exact_vs_pair_enumeration;
          Alcotest.test_case "test pairs detect" `Quick
            test_transition_test_pair_detects;
          Alcotest.test_case "bounded by stuck-at" `Quick
            test_transition_relates_to_stuck_at;
        ] );
      ( "catapult",
        [
          Alcotest.test_case "matches DP on c17" `Quick
            test_catapult_matches_dp_c17;
          Alcotest.test_case "matches DP on c95" `Quick
            test_catapult_matches_dp_c95;
          Alcotest.test_case "cubes detect" `Quick test_catapult_cubes_detect;
          Alcotest.test_case "observability bound" `Quick
            test_catapult_observability_bounds_detectability;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "predictions match simulation" `Quick
            test_diagnosis_predict_matches_observe;
          Alcotest.test_case "actual fault survives" `Quick
            test_diagnosis_actual_survives;
          Alcotest.test_case "distinguishing vectors separate" `Quick
            test_distinguishing_vector_separates;
          Alcotest.test_case "equivalent faults inseparable" `Quick
            test_diagnosis_equivalent_faults_inseparable;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "basics" `Quick test_correlation_basics;
          Alcotest.test_case "ties" `Quick test_correlation_ties;
        ] );
      ( "dot",
        [
          Alcotest.test_case "circuit rendering" `Quick (fun () ->
              let c = Bench_suite.find "c17" in
              let text = Dot.circuit ~highlight:[ 5 ] c in
              check bool_t "digraph" true
                (String.length text > 0
                && String.sub text 0 7 = "digraph");
              (* One node statement per net and the highlight colour. *)
              Array.iteri
                (fun g _ ->
                  let needle = Printf.sprintf "g%d [" g in
                  let contains =
                    let rec scan i =
                      i + String.length needle <= String.length text
                      && (String.sub text i (String.length needle) = needle
                         || scan (i + 1))
                    in
                    scan 0
                  in
                  check bool_t (Printf.sprintf "net %d present" g) true contains)
                c.Circuit.gates);
          Alcotest.test_case "bdd rendering" `Quick (fun () ->
              let m = Bdd.create 3 in
              let f = Bdd.band m (Bdd.var m 0) (Bdd.bxor m (Bdd.var m 1) (Bdd.var m 2)) in
              let text = Bdd.to_dot m f in
              check bool_t "has terminals" true
                (String.length text > 40
                && String.sub text 0 7 = "digraph");
              (* Node count in the text matches the BDD size. *)
              let circles = ref 0 in
              String.iteri
                (fun i ch ->
                  if ch = 'c' && i + 6 <= String.length text
                     && String.sub text i 6 = "circle" then incr circles)
                text;
              check int_t "one circle per node" (Bdd.size m f) !circles);
        ] );
    ]
