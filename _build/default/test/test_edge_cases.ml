(* Edge-case batch: API misuse, degenerate inputs, and cross-module
   consistency checks that did not fit the per-module suites. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-12

let expect_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* BDD edge cases                                                      *)

let test_bdd_zero_vars () =
  let m = Bdd.create 0 in
  check bool_t "one" true (Bdd.is_one m (Bdd.one m));
  check float_t "satfrac of one" 1.0 (Bdd.sat_fraction m (Bdd.one m));
  check float_t "satcount of one" 1.0 (Bdd.sat_count m (Bdd.one m))

let test_bdd_conflicting_cube () =
  let m = Bdd.create 3 in
  check bool_t "x and not x is zero" true
    (Bdd.is_zero m (Bdd.cube m [ (1, true); (1, false) ]))

let test_bdd_multi_var_quantification () =
  let m = Bdd.create 4 in
  let f =
    Bdd.band m
      (Bdd.bxor m (Bdd.var m 0) (Bdd.var m 1))
      (Bdd.bor m (Bdd.var m 2) (Bdd.var m 3))
  in
  (* Quantifying every variable collapses to a constant: exists = 1 for
     a satisfiable f, forall = 0 for a refutable f. *)
  check bool_t "exists all" true (Bdd.is_one m (Bdd.exists m [ 0; 1; 2; 3 ] f));
  check bool_t "forall all" true (Bdd.is_zero m (Bdd.forall m [ 0; 1; 2; 3 ] f))

let test_bdd_compose_chain () =
  let m = Bdd.create 3 in
  (* f = x0 xor x1; substituting x1 := x2 then x2 := x0 gives zero. *)
  let f = Bdd.bxor m (Bdd.var m 0) (Bdd.var m 1) in
  let g = Bdd.compose m f ~var:1 (Bdd.var m 2) in
  let h = Bdd.compose m g ~var:2 (Bdd.var m 0) in
  check bool_t "composition collapses" true (Bdd.is_zero m h)

let test_bdd_of_fun_arity_guard () =
  let m = Bdd.create 2 in
  check bool_t "arity too large" true
    (expect_invalid (fun () -> Bdd.of_fun m ~arity:3 (fun _ -> true)))

(* ------------------------------------------------------------------ *)
(* Circuit / format edge cases                                         *)

let test_eval_width_guard () =
  let c = Bench_suite.find "c17" in
  check bool_t "short vector rejected" true
    (expect_invalid (fun () -> Circuit.eval c [| true |]))

let test_retitle_preserves_structure () =
  let c = Bench_suite.find "c17" in
  let r = Circuit.retitle c "renamed" in
  check Alcotest.string "title" "renamed" r.Circuit.title;
  check int_t "same nets" (Circuit.num_gates c) (Circuit.num_gates r)

let test_large_roundtrip_c1908 () =
  let c = Bench_suite.find "c1908" in
  let c' = Bench_format.parse ~title:"c1908" (Bench_format.print c) in
  check int_t "same size" (Circuit.num_gates c) (Circuit.num_gates c');
  check bool_t "formally equivalent" true (Equiv.equivalent c c')

let test_unroll_one_frame_matches_core_step () =
  let seq =
    Seq_circuit.parse ~title:"toggle"
      "INPUT(en)\nOUTPUT(o)\nqn = XOR(q, en)\no = BUF(q)\nq = DFF(qn)\n"
  in
  let unrolled = Seq_circuit.unroll seq ~frames:1 ~init:Seq_circuit.Zero in
  (* One frame with zero init: output is the initial state. *)
  List.iter
    (fun en ->
      let out = Circuit.eval_outputs unrolled [| en |] in
      let ref_out, _ = Seq_circuit.step seq ~state:[| false |] ~inputs:[| en |] in
      check (Alcotest.array bool_t) "frame 0" ref_out out)
    [ false; true ]

let test_unroll_rejects_zero_frames () =
  let seq =
    Seq_circuit.parse ~title:"toggle"
      "INPUT(en)\nOUTPUT(o)\nqn = XOR(q, en)\no = BUF(q)\nq = DFF(qn)\n"
  in
  check bool_t "zero frames" true
    (expect_invalid (fun () ->
         Seq_circuit.unroll seq ~frames:0 ~init:Seq_circuit.Zero))

(* ------------------------------------------------------------------ *)
(* Engine consistency across representations                           *)

let test_engine_on_parsed_equals_built () =
  (* The same circuit reached through the builder and through parsed
     text yields identical per-fault statistics. *)
  let built = Bench_suite.find "c95" in
  let parsed = Bench_format.parse ~title:"c95" (Bench_format.print built) in
  let e1 = Engine.create built and e2 = Engine.create parsed in
  List.iter
    (fun f1 ->
      let name = Sa_fault.to_string built f1 in
      (* Rebind stem faults by name (branch pins require care; skip). *)
      match f1.Sa_fault.line with
      | Sa_fault.Stem s ->
        let s' =
          Option.get
            (Circuit.index_of_name parsed (Circuit.gate built s).Circuit.name)
        in
        let f2 = { f1 with Sa_fault.line = Sa_fault.Stem s' } in
        check float_t name
          (Engine.analyze e1 (Fault.Stuck f1)).Engine.detectability
          (Engine.analyze e2 (Fault.Stuck f2)).Engine.detectability
      | Sa_fault.Branch _ -> ())
    (Sa_fault.collapsed_faults built)

let test_result_invariants_hold_broadly () =
  (* Structural invariants of every analysis result on one mid-size
     circuit: counts within range, bound respected, consistency between
     detectable and test_count. *)
  let c = Bench_suite.find "c432" in
  let engine = Engine.create c in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    |> List.filteri (fun i _ -> i mod 3 = 0)
  in
  List.iter
    (fun fault ->
      let r = Engine.analyze engine fault in
      check bool_t "detectability in range" true
        (r.Engine.detectability >= 0.0 && r.Engine.detectability <= 1.0);
      check bool_t "bound respected" true
        (r.Engine.detectability <= r.Engine.upper_bound +. 1e-12);
      check bool_t "detectable iff positive count" true
        (r.Engine.detectable = (r.Engine.test_count > 0.0));
      check bool_t "observed <= fed" true
        (r.Engine.pos_observed <= r.Engine.pos_fed);
      check bool_t "fed <= outputs" true
        (r.Engine.pos_fed <= Circuit.num_outputs c))
    faults

let test_podem_rejects_nothing_dp_accepts () =
  (* On a circuit with genuine redundancy (c432 has undetectable
     checkpoint faults), PODEM and DP partition the faults the same
     way. *)
  let c = Bench_suite.find "c432" in
  let engine = Engine.create c in
  let disagreements = ref 0 in
  List.iteri
    (fun i f ->
      if i mod 6 = 0 then begin
        let dp = (Engine.analyze engine (Fault.Stuck f)).Engine.detectable in
        match Podem.generate c f with
        | Podem.Test _ -> if not dp then incr disagreements
        | Podem.Redundant -> if dp then incr disagreements
        | Podem.Aborted -> ()
      end)
    (Sa_fault.collapsed_faults c);
  check int_t "no disagreements" 0 !disagreements

let () =
  Alcotest.run "edge-cases"
    [
      ( "bdd",
        [
          Alcotest.test_case "zero variables" `Quick test_bdd_zero_vars;
          Alcotest.test_case "conflicting cube" `Quick test_bdd_conflicting_cube;
          Alcotest.test_case "multi-var quantification" `Quick
            test_bdd_multi_var_quantification;
          Alcotest.test_case "compose chain" `Quick test_bdd_compose_chain;
          Alcotest.test_case "of_fun arity guard" `Quick
            test_bdd_of_fun_arity_guard;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "eval width guard" `Quick test_eval_width_guard;
          Alcotest.test_case "retitle" `Quick test_retitle_preserves_structure;
          Alcotest.test_case "c1908 roundtrip + equivalence" `Quick
            test_large_roundtrip_c1908;
          Alcotest.test_case "one-frame unroll" `Quick
            test_unroll_one_frame_matches_core_step;
          Alcotest.test_case "zero frames rejected" `Quick
            test_unroll_rejects_zero_frames;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "parsed = built" `Quick
            test_engine_on_parsed_equals_built;
          Alcotest.test_case "result invariants" `Quick
            test_result_invariants_hold_broadly;
          Alcotest.test_case "PODEM/DP partition agreement" `Quick
            test_podem_rejects_nothing_dp_accepts;
        ] );
    ]
