(* Functional validation of the benchmark suite against independent
   reference models. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let bits_of value width = Array.init width (fun i -> (value lsr i) land 1 = 1)

let int_of_bits bits =
  Array.to_list bits
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

(* ------------------------------------------------------------------ *)

let test_suite_inventory () =
  check (Alcotest.list Alcotest.string) "names"
    [ "c17"; "fulladder"; "c95"; "alu74181"; "c432"; "c499"; "c1355"; "c1908" ]
    Bench_suite.names;
  check int_t "small set" 4 (List.length (Bench_suite.small ()));
  check int_t "large set" 4 (List.length (Bench_suite.large ()));
  check bool_t "find raises on unknown" true
    (try
       ignore (Bench_suite.find "c6288");
       false
     with Not_found -> true)

let test_sizes_strictly_increase () =
  let sizes = List.map Circuit.num_gates (Bench_suite.all ()) in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  check bool_t "netlist sizes increase along the suite" true (increasing sizes)

let test_io_footprints () =
  let expect =
    [
      ("c17", 5, 2);
      ("fulladder", 5, 3);
      ("c95", 9, 7);
      ("alu74181", 14, 8);
      ("c432", 36, 7);
      ("c499", 41, 32);
      ("c1355", 41, 32);
      ("c1908", 33, 25);
    ]
  in
  List.iter
    (fun (name, pis, pos) ->
      let c = Bench_suite.find name in
      check int_t (name ^ " PIs") pis (Circuit.num_inputs c);
      check int_t (name ^ " POs") pos (Circuit.num_outputs c))
    expect

(* ------------------------------------------------------------------ *)
(* c17: compare against its published NAND equations. *)

let test_c17_truth_table () =
  let c = Bench_suite.find "c17" in
  for bits = 0 to 31 do
    let v = bits_of bits 5 in
    (* inputs in order G1 G2 G3 G6 G7 *)
    let g1 = v.(0) and g2 = v.(1) and g3 = v.(2) and g6 = v.(3) and g7 = v.(4) in
    let nand a b = not (a && b) in
    let g10 = nand g1 g3 in
    let g11 = nand g3 g6 in
    let g16 = nand g2 g11 in
    let g19 = nand g11 g7 in
    let expected = [| nand g10 g16; nand g16 g19 |] in
    check (Alcotest.array bool_t) "c17" expected (Circuit.eval_outputs c v)
  done

let test_fulladder () =
  (* 2-bit ripple adder: inputs a0 b0 a1 b1 cin; outputs s0 s1 cout. *)
  let c = Bench_suite.find "fulladder" in
  for bits = 0 to 31 do
    let v = bits_of bits 5 in
    let a = Bool.to_int v.(0) + (2 * Bool.to_int v.(2)) in
    let b = Bool.to_int v.(1) + (2 * Bool.to_int v.(3)) in
    let total = a + b + Bool.to_int v.(4) in
    let out = Circuit.eval_outputs c v in
    check int_t "sum" (total land 3) (int_of_bits (Array.sub out 0 2));
    check bool_t "carry" (total >= 4) out.(2)
  done

(* ------------------------------------------------------------------ *)
(* c95: 4-bit CLA adder with comparator. *)

let test_c95_exhaustive () =
  let c = Bench_suite.find "c95" in
  for a = 0 to 15 do
    for b = 0 to 15 do
      for cin = 0 to 1 do
        let v = Array.concat [ bits_of a 4; bits_of b 4; bits_of cin 1 ] in
        let out = Circuit.eval_outputs c v in
        let sum = a + b + cin in
        check int_t "sum bits" (sum land 15) (int_of_bits (Array.sub out 0 4));
        check bool_t "cout" (sum >= 16) out.(4);
        check bool_t "eq" (a = b) out.(5);
        check bool_t "gt" (a > b) out.(6)
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* alu74181: all 16 logic functions and arithmetic spot checks. *)

let alu_vector ~a ~b ~s ~m ~cn =
  Array.concat [ bits_of a 4; bits_of b 4; bits_of s 4; [| m; cn |] ]

let logic_reference s a b =
  let na = lnot a land 15 and nb = lnot b land 15 in
  match s with
  | 0 -> na
  | 1 -> lnot (a lor b) land 15
  | 2 -> na land b
  | 3 -> 0
  | 4 -> lnot (a land b) land 15
  | 5 -> nb
  | 6 -> a lxor b
  | 7 -> a land nb
  | 8 -> na lor b
  | 9 -> lnot (a lxor b) land 15
  | 10 -> b
  | 11 -> a land b
  | 12 -> 15
  | 13 -> a lor nb
  | 14 -> a lor b
  | 15 -> a
  | _ -> assert false

let test_alu74181_logic_mode () =
  let c = Bench_suite.find "alu74181" in
  for s = 0 to 15 do
    for a = 0 to 15 do
      for b = 0 to 15 do
        let v = alu_vector ~a ~b ~s ~m:true ~cn:false in
        let out = Circuit.eval_outputs c v in
        check int_t
          (Printf.sprintf "logic s=%d a=%d b=%d" s a b)
          (logic_reference s a b)
          (int_of_bits (Array.sub out 0 4))
      done
    done
  done

let test_alu74181_add_mode () =
  let c = Bench_suite.find "alu74181" in
  (* s = 1001 computes A plus B plus cn (active-high carry). *)
  for a = 0 to 15 do
    for b = 0 to 15 do
      for cn = 0 to 1 do
        let v = alu_vector ~a ~b ~s:9 ~m:false ~cn:(cn = 1) in
        let out = Circuit.eval_outputs c v in
        let sum = a + b + cn in
        check int_t "add F" (sum land 15) (int_of_bits (Array.sub out 0 4));
        check bool_t "add cn4" (sum >= 16) out.(4)
      done
    done
  done

let test_alu74181_group_signals () =
  let c = Bench_suite.find "alu74181" in
  (* At s = 1001, gp = AND of (a|b) bits, gg = carry generate. *)
  for a = 0 to 15 do
    for b = 0 to 15 do
      let v = alu_vector ~a ~b ~s:9 ~m:false ~cn:false in
      let out = Circuit.eval_outputs c v in
      check bool_t "gp" (a lor b = 15) out.(5);
      check bool_t "gg" (a + b >= 16) out.(6);
      check bool_t "aeqb" ((a + b) land 15 = 15) out.(7)
    done
  done

let test_alu74181_arithmetic_identities () =
  let c = Bench_suite.find "alu74181" in
  for a = 0 to 15 do
    (* s = 0000: F = A plus cn. *)
    let out =
      Circuit.eval_outputs c (alu_vector ~a ~b:5 ~s:0 ~m:false ~cn:true)
    in
    check int_t "A plus 1" ((a + 1) land 15) (int_of_bits (Array.sub out 0 4));
    (* s = 1111: F = A minus 1 plus cn = A when cn = 1. *)
    let out =
      Circuit.eval_outputs c (alu_vector ~a ~b:3 ~s:15 ~m:false ~cn:true)
    in
    check int_t "A - 1 + 1" a (int_of_bits (Array.sub out 0 4))
  done

(* ------------------------------------------------------------------ *)
(* c432: priority/interrupt controller reference model. *)

let c432_reference e a bb cc =
  let gated bus = Array.init 9 (fun i -> bus.(i) && e.(i)) in
  let ra = gated a and rb = gated bb and rc = gated cc in
  let any v = Array.exists Fun.id v in
  let granta = any ra in
  let grantb = any rb && not granta in
  let grantc = any rc && (not granta) && not grantb in
  let winning =
    Array.init 9 (fun i ->
        (granta && ra.(i)) || (grantb && rb.(i)) || (grantc && rc.(i)))
  in
  let rec first i =
    if i >= 9 then None else if winning.(i) then Some i else first (i + 1)
  in
  let idx = match first 0 with None -> 0 | Some i -> i in
  let has_winner = first 0 <> None in
  ( granta,
    grantb,
    grantc,
    Array.init 4 (fun bit -> has_winner && idx land (1 lsl bit) <> 0) )

let test_c432_against_reference () =
  let c = Bench_suite.find "c432" in
  let rng = Prng.create ~seed:21 in
  for _ = 1 to 500 do
    let e = Prng.bool_array rng 9 in
    let a = Prng.bool_array rng 9 in
    let bb = Prng.bool_array rng 9 in
    let cc = Prng.bool_array rng 9 in
    let v = Array.concat [ e; a; bb; cc ] in
    let out = Circuit.eval_outputs c v in
    let granta, grantb, grantc, idx = c432_reference e a bb cc in
    check bool_t "granta" granta out.(0);
    check bool_t "grantb" grantb out.(1);
    check bool_t "grantc" grantc out.(2);
    for bit = 0 to 3 do
      check bool_t (Printf.sprintf "idx%d" bit) idx.(bit) out.(bit + 3)
    done
  done

(* ------------------------------------------------------------------ *)
(* c499 / c1355: single-error correction and mutual equivalence. *)

let c499_vector ~data ~checks ~en = Array.concat [ data; checks; [| en |] ]

let test_c499_clean_word_passes () =
  let c = Bench_suite.find "c499" in
  let rng = Prng.create ~seed:31 in
  for _ = 1 to 50 do
    let data = Prng.bool_array rng 32 in
    let checks = Bench_c499.encode_checks data in
    let out = Circuit.eval_outputs c (c499_vector ~data ~checks ~en:true) in
    check (Alcotest.array bool_t) "clean passes" data out
  done

let test_c499_corrects_single_error () =
  let c = Bench_suite.find "c499" in
  let rng = Prng.create ~seed:32 in
  for _ = 1 to 50 do
    let data = Prng.bool_array rng 32 in
    let checks = Bench_c499.encode_checks data in
    let flip = Prng.int rng 32 in
    let corrupted = Array.copy data in
    corrupted.(flip) <- not corrupted.(flip);
    let out =
      Circuit.eval_outputs c (c499_vector ~data:corrupted ~checks ~en:true)
    in
    check (Alcotest.array bool_t) "corrected" data out
  done

let test_c499_enable_off_passes_errors () =
  let c = Bench_suite.find "c499" in
  let data = Array.make 32 false in
  let checks = Bench_c499.encode_checks data in
  let corrupted = Array.copy data in
  corrupted.(7) <- true;
  let out =
    Circuit.eval_outputs c (c499_vector ~data:corrupted ~checks ~en:false)
  in
  check (Alcotest.array bool_t) "no correction" corrupted out

let test_c499_check_bit_error_harmless () =
  let c = Bench_suite.find "c499" in
  let rng = Prng.create ~seed:33 in
  for _ = 1 to 20 do
    let data = Prng.bool_array rng 32 in
    let checks = Bench_c499.encode_checks data in
    let j = Prng.int rng 8 in
    let bad = Array.copy checks in
    bad.(j) <- not bad.(j);
    let out = Circuit.eval_outputs c (c499_vector ~data ~checks:bad ~en:true) in
    (* A single check-bit error has a weight-one syndrome, which matches
       no data signature (all have weight >= 2). *)
    check (Alcotest.array bool_t) "data untouched" data out
  done

let test_c499_patterns_valid () =
  let seen = Hashtbl.create 64 in
  for i = 0 to 31 do
    let p = Bench_c499.pattern i in
    check bool_t "nonzero" true (p <> 0);
    let rec weight v = if v = 0 then 0 else (v land 1) + weight (v lsr 1) in
    check bool_t "weight >= 2" true (weight p >= 2);
    check bool_t "distinct" false (Hashtbl.mem seen p);
    Hashtbl.replace seen p ()
  done

let test_c1355_equivalent_to_c499 () =
  let c499 = Bench_suite.find "c499" in
  let c1355 = Bench_suite.find "c1355" in
  check bool_t "c1355 is larger" true
    (Circuit.num_gates c1355 > Circuit.num_gates c499);
  let rng = Prng.create ~seed:34 in
  for _ = 1 to 100 do
    let v = Prng.bool_array rng 41 in
    check (Alcotest.array bool_t) "same function"
      (Circuit.eval_outputs c499 v)
      (Circuit.eval_outputs c1355 v)
  done

let test_c1355_has_no_xor () =
  let c = Bench_suite.find "c1355" in
  Array.iter
    (fun (g : Circuit.gate) ->
      match g.Circuit.kind with
      | Gate.Xor | Gate.Xnor ->
        Alcotest.failf "xor gate %s survived expansion" g.Circuit.name
      | Gate.Input | Gate.Nand | Gate.Not | Gate.Buf | Gate.And | Gate.Or
      | Gate.Nor | Gate.Const0 | Gate.Const1 -> ())
    c.Circuit.gates

(* ------------------------------------------------------------------ *)
(* c1908 *)

let test_c1908_two_input_only () =
  let c = Bench_suite.find "c1908" in
  Array.iter
    (fun (g : Circuit.gate) ->
      check bool_t "fanin <= 2" true (Array.length g.Circuit.fanins <= 2))
    c.Circuit.gates

(* Output layout: f0..15 (0-15), cout 16, heq 17, hgt 18, spar 19,
   idx0..2 (20-22), anyerr 23, uncorr 24. *)

let test_c1908_corrects_single_error () =
  let c = Bench_suite.find "c1908" in
  let rng = Prng.create ~seed:41 in
  let ctl = [| true; false; false |] in
  for _ = 1 to 25 do
    let word = Prng.bool_array rng 24 in
    let checks = Bench_c1908.encode_checks word in
    let flip = Prng.int rng 24 in
    let corrupted = Array.copy word in
    corrupted.(flip) <- not corrupted.(flip);
    let out =
      Circuit.eval_outputs c (Bench_c1908.vector_of ~word:corrupted ~checks ~ctl)
    in
    (* Corrected data outputs recover the original low 16 word bits. *)
    for i = 0 to 15 do
      check bool_t (Printf.sprintf "f%d" i) word.(i) out.(i)
    done;
    check bool_t "anyerr raised" true out.(23);
    check bool_t "uncorr quiet" false out.(24)
  done

let test_c1908_clean_flags_quiet () =
  let c = Bench_suite.find "c1908" in
  let rng = Prng.create ~seed:42 in
  for _ = 1 to 25 do
    let word = Prng.bool_array rng 24 in
    let checks = Bench_c1908.encode_checks word in
    let out =
      Circuit.eval_outputs c
        (Bench_c1908.vector_of ~word ~checks ~ctl:[| true; false; false |])
    in
    for i = 0 to 15 do
      check bool_t "data passes" word.(i) out.(i)
    done;
    check bool_t "anyerr quiet" false out.(23);
    check bool_t "uncorr quiet" false out.(24)
  done

let test_c1908_uncorrectable_flag () =
  (* A weight-one syndrome (single check-bit error) matches no data
     signature: flagged as uncorrectable. *)
  let c = Bench_suite.find "c1908" in
  let word = Array.make 24 false in
  let checks = Bench_c1908.encode_checks word in
  let bad = Array.copy checks in
  bad.(0) <- not bad.(0);
  let out =
    Circuit.eval_outputs c
      (Bench_c1908.vector_of ~word ~checks:bad ~ctl:[| true; false; false |])
  in
  check bool_t "anyerr" true out.(23);
  check bool_t "uncorr" true out.(24)

let parity n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc <> (n land 1 = 1)) in
  go n false

let test_c1908_datapath () =
  let c = Bench_suite.find "c1908" in
  let rng = Prng.create ~seed:43 in
  for _ = 1 to 50 do
    let word = Prng.bool_array rng 24 in
    let checks = Bench_c1908.encode_checks word in
    let increment = Prng.bool rng in
    let cin = Prng.bool rng in
    let out =
      Circuit.eval_outputs c
        (Bench_c1908.vector_of ~word ~checks ~ctl:[| false; increment; cin |])
    in
    let wordint = int_of_bits word in
    let w' = (wordint + Bool.to_int increment) land 0xFFFFFF in
    let lo = w' land 0xFFF and hi = w' lsr 12 in
    let sum = lo + hi + Bool.to_int cin in
    check bool_t "cout" (sum >= 4096) out.(16);
    check bool_t "heq" (lo = hi) out.(17);
    check bool_t "hgt" (hi > lo) out.(18);
    check bool_t "spar" (parity (sum land 0xFFF)) out.(19)
  done

let () =
  Alcotest.run "benchmarks"
    [
      ( "suite",
        [
          Alcotest.test_case "inventory" `Quick test_suite_inventory;
          Alcotest.test_case "sizes increase" `Quick test_sizes_strictly_increase;
          Alcotest.test_case "I/O footprints" `Quick test_io_footprints;
        ] );
      ( "small",
        [
          Alcotest.test_case "c17 truth table" `Quick test_c17_truth_table;
          Alcotest.test_case "fulladder" `Quick test_fulladder;
          Alcotest.test_case "c95 exhaustive" `Quick test_c95_exhaustive;
        ] );
      ( "alu74181",
        [
          Alcotest.test_case "logic mode (all 16)" `Quick test_alu74181_logic_mode;
          Alcotest.test_case "addition" `Quick test_alu74181_add_mode;
          Alcotest.test_case "group signals" `Quick test_alu74181_group_signals;
          Alcotest.test_case "arithmetic identities" `Quick
            test_alu74181_arithmetic_identities;
        ] );
      ( "c432",
        [
          Alcotest.test_case "reference model" `Quick
            test_c432_against_reference;
        ] );
      ( "c499-c1355",
        [
          Alcotest.test_case "clean word passes" `Quick
            test_c499_clean_word_passes;
          Alcotest.test_case "corrects single error" `Quick
            test_c499_corrects_single_error;
          Alcotest.test_case "enable off" `Quick
            test_c499_enable_off_passes_errors;
          Alcotest.test_case "check-bit error harmless" `Quick
            test_c499_check_bit_error_harmless;
          Alcotest.test_case "signature validity" `Quick test_c499_patterns_valid;
          Alcotest.test_case "c1355 equivalent" `Quick
            test_c1355_equivalent_to_c499;
          Alcotest.test_case "c1355 xor-free" `Quick test_c1355_has_no_xor;
        ] );
      ( "c1908",
        [
          Alcotest.test_case "two-input only" `Quick test_c1908_two_input_only;
          Alcotest.test_case "corrects single error" `Quick
            test_c1908_corrects_single_error;
          Alcotest.test_case "clean flags quiet" `Quick
            test_c1908_clean_flags_quiet;
          Alcotest.test_case "uncorrectable flag" `Quick
            test_c1908_uncorrectable_flag;
          Alcotest.test_case "raw datapath" `Quick test_c1908_datapath;
        ] );
    ]
