(* Tests for the logic/fault simulation substrate. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let c17 () = Bench_suite.find "c17"

let stem_fault c name value =
  let s = Option.get (Circuit.index_of_name c name) in
  Fault.Stuck { Sa_fault.line = Sa_fault.Stem s; value }

(* ------------------------------------------------------------------ *)
(* Word-level simulation                                               *)

let test_words_match_scalar () =
  let c = Generate.random ~seed:23 ~inputs:9 ~gates:60 ~outputs:4 in
  let rng = Prng.create ~seed:24 in
  let vectors = List.init 64 (fun _ -> Prng.bool_array rng 9) in
  let words = Logic_sim.pack_patterns c vectors in
  let values = Logic_sim.eval_words c words in
  let outs = Logic_sim.outputs_of c values in
  List.iteri
    (fun i v ->
      let expected = Circuit.eval_outputs c v in
      Array.iteri
        (fun o word ->
          let bit = Int64.logand (Int64.shift_right_logical word i) 1L = 1L in
          check bool_t (Printf.sprintf "pattern %d out %d" i o) expected.(o) bit)
        outs)
    vectors

let test_base_words_enumerate () =
  let c = c17 () in
  let words = Logic_sim.base_words c 0 in
  (* Bit i of input word j must be bit j of the number i. *)
  for i = 0 to 31 do
    for j = 0 to 4 do
      let bit =
        Int64.logand (Int64.shift_right_logical words.(j) i) 1L = 1L
      in
      check bool_t "encoding" ((i lsr j) land 1 = 1) bit
    done
  done

let test_pack_rejects_excess () =
  let c = c17 () in
  let too_many = List.init 65 (fun _ -> Array.make 5 false) in
  check bool_t "more than 64 rejected" true
    (try
       ignore (Logic_sim.pack_patterns c too_many);
       false
     with Invalid_argument _ -> true)

let test_popcount () =
  check int_t "zero" 0 (Logic_sim.popcount 0L);
  check int_t "all ones" 64 (Logic_sim.popcount Int64.minus_one);
  check int_t "0b1011" 3 (Logic_sim.popcount 11L)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let test_stem_fault_injection () =
  let c = c17 () in
  (* G16 s-a-1 with all inputs 1: good G16 = nand(G2=1, G11=nand(1,1)=0)=1,
     so no difference; with G2=0,G3=1,G6=1: G11=0, G16=nand(0,0)=1 ... use
     simulation against a hand-built faulty evaluation instead. *)
  let fault = stem_fault c "G16" true in
  let rng = Prng.create ~seed:31 in
  for _ = 1 to 32 do
    let v = Prng.bool_array rng 5 in
    let words = Logic_sim.pack_patterns c [ v ] in
    let faulty = Logic_sim.eval_words_faulty c fault words in
    let g16 = Option.get (Circuit.index_of_name c "G16") in
    check bool_t "stem forced" true (Int64.logand faulty.(g16) 1L = 1L)
  done

let test_branch_fault_vs_stem_fault_differ () =
  (* A branch fault affects one sink only; the stem fault affects all.
     On c17, G16->G22 s-a-1 must leave G23 at its good value. *)
  let c = c17 () in
  let g16 = Option.get (Circuit.index_of_name c "G16") in
  let g22 = Option.get (Circuit.index_of_name c "G22") in
  let branch =
    List.find
      (fun b -> b.Circuit.stem = g16 && b.Circuit.sink = g22)
      (Circuit.branches c)
  in
  let branch_fault =
    Fault.Stuck { Sa_fault.line = Sa_fault.Branch branch; value = true }
  in
  let g23 = Option.get (Circuit.index_of_name c "G23") in
  let rng = Prng.create ~seed:32 in
  for _ = 1 to 32 do
    let v = Prng.bool_array rng 5 in
    let words = Logic_sim.pack_patterns c [ v ] in
    let good = Logic_sim.eval_words c words in
    let faulty = Logic_sim.eval_words_faulty c branch_fault words in
    check bool_t "G23 untouched by branch fault" true
      (Int64.logand good.(g23) 1L = Int64.logand faulty.(g23) 1L)
  done

let test_bridge_fault_semantics () =
  let c = c17 () in
  let g10 = Option.get (Circuit.index_of_name c "G10") in
  let g19 = Option.get (Circuit.index_of_name c "G19") in
  let fault = Fault.Bridged (Bridge.make g10 g19 Bridge.Wired_and) in
  let rng = Prng.create ~seed:33 in
  for _ = 1 to 32 do
    let v = Prng.bool_array rng 5 in
    let words = Logic_sim.pack_patterns c [ v ] in
    let good = Logic_sim.eval_words c words in
    let faulty = Logic_sim.eval_words_faulty c fault words in
    let wired = Int64.logand good.(g10) good.(g19) in
    check bool_t "a wired" true
      (Int64.logand faulty.(g10) 1L = Int64.logand wired 1L);
    check bool_t "b wired" true
      (Int64.logand faulty.(g19) 1L = Int64.logand wired 1L)
  done

(* ------------------------------------------------------------------ *)
(* Exhaustive fault simulation                                         *)

let test_exhaustive_counts_c17 () =
  (* Cross-validated reference values come from the symbolic engine,
     which test_core checks independently; here spot-check a fault whose
     detectability is known by hand: G1 s-a-1 on c17 requires G1=0,
     G3=1 (excite), and propagation G16=1, i.e. patterns where the
     fault flips G22.  The easy hand-checkable case is the PI G7:
     detection of G7 s-a-0 requires G7=1 and G11=1 and observation at
     G23 with G16=1. *)
  let c = c17 () in
  let fault = stem_fault c "G7" false in
  let count = Fault_sim.exhaustive_count c fault in
  (* G23 = nand(G16, G19); fault flips G19 = nand(G11, G7) only when
     G11=1; flip matters when G16=1.  G11=1 means not(G3&G6).
     Conditions: G7=1, G11=1, G16=nand(G2,G11)=nand(G2,1)=~G2 -> G2=0.
     Free: G1, G3, G6 with not(G3&G6): 2 * 3 = 6 patterns. *)
  check int_t "G7 s-a-0 count" 6 count

let test_exhaustive_detectability_range () =
  let c = c17 () in
  List.iter
    (fun f ->
      let d = Fault_sim.exhaustive_detectability c (Fault.Stuck f) in
      check bool_t "in [0,1]" true (d >= 0.0 && d <= 1.0))
    (Sa_fault.collapsed_faults c)

let test_exhaustive_test_set_detects () =
  let c = c17 () in
  let fault = stem_fault c "G16" false in
  let tests = Fault_sim.exhaustive_test_set c fault in
  check int_t "count matches set size"
    (Fault_sim.exhaustive_count c fault)
    (List.length tests);
  List.iter
    (fun v -> check bool_t "each vector detects" true (Fault_sim.detects c fault v))
    tests

let test_exhaustive_rejects_wide () =
  let c = Bench_suite.find "c432" in
  check bool_t "36 inputs rejected" true
    (try
       ignore (Fault_sim.exhaustive_count c (stem_fault c "e0" false));
       false
     with Invalid_argument _ -> true)

let test_partial_block_masking () =
  (* A 3-input circuit exercises the partial final block (8 < 64). *)
  let c =
    Circuit.create ~title:"tiny" ~inputs:[ "a"; "b"; "c" ] ~outputs:[ "y" ]
      [ ("y", Gate.And, [ "a"; "b"; "c" ]) ]
  in
  let a = Option.get (Circuit.index_of_name c "a") in
  let fault = Fault.Stuck { Sa_fault.line = Sa_fault.Stem a; value = false } in
  (* y flips only at a=b=c=1: one pattern. *)
  check int_t "single test" 1 (Fault_sim.exhaustive_count c fault)

(* ------------------------------------------------------------------ *)
(* Random-pattern fault simulation                                     *)

let test_random_coverage_monotone () =
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let points = Fault_sim.random_coverage ~seed:3 ~patterns:512 c faults in
  check bool_t "has points" true (points <> []);
  let rec monotone = function
    | (a : Fault_sim.coverage_point) :: (b :: _ as rest) ->
      a.Fault_sim.coverage <= b.Fault_sim.coverage && monotone rest
    | [ _ ] | [] -> true
  in
  check bool_t "coverage monotone" true (monotone points);
  let last = List.nth points (List.length points - 1) in
  check bool_t "most faults found quickly" true
    (last.Fault_sim.coverage > 0.9)

let test_estimated_detectability_converges () =
  let c = Bench_suite.find "c95" in
  let fault = stem_fault c "cin" true in
  let exact = Fault_sim.exhaustive_detectability c fault in
  let estimate =
    Fault_sim.estimated_detectability ~seed:5 ~patterns:8192 c fault
  in
  check bool_t "within 10% of exact" true
    (Float.abs (estimate -. exact) < 0.1 *. Float.max exact 0.05)

let test_estimated_detectability_zero_for_redundant () =
  let c =
    Circuit.create ~title:"taut" ~inputs:[ "a" ] ~outputs:[ "y" ]
      [ ("na", Gate.Not, [ "a" ]); ("y", Gate.Or, [ "a"; "na" ]) ]
  in
  let y = Option.get (Circuit.index_of_name c "y") in
  let fault = Fault.Stuck { Sa_fault.line = Sa_fault.Stem y; value = true } in
  check (Alcotest.float 1e-12) "never detected" 0.0
    (Fault_sim.estimated_detectability ~seed:1 ~patterns:1024 c fault)

let test_random_coverage_deterministic () =
  let c = c17 () in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let p1 = Fault_sim.random_coverage ~seed:5 ~patterns:128 c faults in
  let p2 = Fault_sim.random_coverage ~seed:5 ~patterns:128 c faults in
  check bool_t "same curve" true (p1 = p2)

let () =
  Alcotest.run "sim"
    [
      ( "logic",
        [
          Alcotest.test_case "words match scalar" `Quick test_words_match_scalar;
          Alcotest.test_case "base word encoding" `Quick test_base_words_enumerate;
          Alcotest.test_case "pack limit" `Quick test_pack_rejects_excess;
          Alcotest.test_case "popcount" `Quick test_popcount;
        ] );
      ( "injection",
        [
          Alcotest.test_case "stem fault" `Quick test_stem_fault_injection;
          Alcotest.test_case "branch vs stem" `Quick
            test_branch_fault_vs_stem_fault_differ;
          Alcotest.test_case "bridge semantics" `Quick test_bridge_fault_semantics;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "hand-checked count" `Quick test_exhaustive_counts_c17;
          Alcotest.test_case "detectability range" `Quick
            test_exhaustive_detectability_range;
          Alcotest.test_case "test set detects" `Quick
            test_exhaustive_test_set_detects;
          Alcotest.test_case "width guard" `Quick test_exhaustive_rejects_wide;
          Alcotest.test_case "partial block masking" `Quick
            test_partial_block_masking;
        ] );
      ( "random",
        [
          Alcotest.test_case "coverage monotone" `Quick
            test_random_coverage_monotone;
          Alcotest.test_case "estimate converges" `Quick
            test_estimated_detectability_converges;
          Alcotest.test_case "estimate zero for redundant" `Quick
            test_estimated_detectability_zero_for_redundant;
          Alcotest.test_case "deterministic" `Quick
            test_random_coverage_deterministic;
        ] );
    ]
