test/test_core.ml: Alcotest Array Bdd Bench_suite Bridge Bridge_class Circuit Decompose Engine Fault Fault_sim Float Gate Generate List Option Ordering Prng QCheck QCheck_alcotest Rules Sa_fault
