test/test_atpg.ml: Alcotest Bench_suite Circuit Engine Fault Fault_sim Gate Generate List Option Podem Sa_fault
