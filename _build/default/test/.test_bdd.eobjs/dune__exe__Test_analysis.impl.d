test/test_analysis.ml: Alcotest Array Bathtub Bench_suite Bridge Circuit Dft Engine Experiments Fault Fun Histogram List Order_search Ordering Po_stats Sa_fault Symbolic Trends
