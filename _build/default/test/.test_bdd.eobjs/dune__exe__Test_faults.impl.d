test/test_faults.ml: Alcotest Array Bdd Bench_suite Bridge Circuit Engine Fault Fault_sim Gate Layout List Option Prng Sa_fault Stdlib Union_find
