test/test_sim.ml: Alcotest Array Bench_suite Bridge Circuit Fault Fault_sim Float Gate Generate Int64 List Logic_sim Option Printf Prng Sa_fault
