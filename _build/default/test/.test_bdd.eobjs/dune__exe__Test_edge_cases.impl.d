test/test_edge_cases.ml: Alcotest Bdd Bench_format Bench_suite Circuit Engine Equiv Fault List Option Podem Sa_fault Seq_circuit
