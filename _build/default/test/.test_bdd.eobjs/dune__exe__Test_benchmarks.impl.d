test/test_benchmarks.ml: Alcotest Array Bench_c1908 Bench_c499 Bench_suite Bool Circuit Fun Gate Hashtbl List Printf Prng
