test/test_bdd.ml: Alcotest Array Bdd Float List Printf Prng QCheck QCheck_alcotest
