bin/gen_data.ml: Array Bench_format Bench_suite Filename List Printf Sys
