bin/gen_data.mli:
