bin/dpa.mli:
