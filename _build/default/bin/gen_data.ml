(* Writes the benchmark suite as .bench files under data/ so the CLI and
   parser can be exercised on real files. *)
let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "data" in
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      let path = Filename.concat dir (name ^ ".bench") in
      let oc = open_out path in
      output_string oc (Bench_format.print c);
      close_out oc;
      Printf.printf "wrote %s\n" path)
    Bench_suite.names
