(* Fault diagnosis from complete test sets: a "defective chip" (one
   secretly injected fault) is diagnosed by applying vectors and
   matching the observed failing outputs against the exact per-output
   difference functions — a full-response fault dictionary that exists
   in symbolic form the moment Difference Propagation has run.

     dune exec examples/diagnose_demo.exe [circuit] [fault-index] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c95" in
  let pick = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 17 in
  let circuit = Bench_suite.find name in
  Format.printf "circuit: %a@.@." Circuit.pp_summary circuit;
  let engine = Engine.create circuit in

  (* Candidate universe: all collapsed checkpoint faults. *)
  let universe =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults circuit)
  in
  Format.printf "candidate universe: %d faults@." (List.length universe);

  (* The secret defect. *)
  let actual = List.nth universe (pick mod List.length universe) in
  Format.printf "secret defect (not known to the diagnoser): %s@.@."
    (Fault.to_string circuit actual);

  (* Adaptive diagnosis: detect, then split candidates with
     distinguishing vectors until nothing separates them. *)
  let session = Diagnosis.diagnose engine universe ~actual in
  Format.printf "applied %d vectors:@." (List.length session.Diagnosis.applied);
  List.iteri
    (fun i obs ->
      let bits a =
        String.concat ""
          (Array.to_list (Array.map (fun b -> if b then "1" else "0") a))
      in
      Format.printf "  #%d  input %s  failing POs %s@." (i + 1)
        (bits obs.Diagnosis.vector)
        (bits obs.Diagnosis.failing))
    session.Diagnosis.applied;

  Format.printf "@.surviving candidates (%d):@."
    (List.length session.Diagnosis.remaining);
  List.iter
    (fun f -> Format.printf "  %s@." (Fault.to_string circuit f))
    session.Diagnosis.remaining;

  (* Sanity: the secret defect must survive its own diagnosis, and the
     survivors must be pairwise indistinguishable (one functional
     equivalence class = the best possible resolution). *)
  assert (List.exists (Fault.equal actual) session.Diagnosis.remaining);
  let rec pairwise_equiv = function
    | f1 :: rest ->
      List.for_all
        (fun f2 -> Diagnosis.distinguishing_vector engine f1 f2 = None)
        rest
      && pairwise_equiv rest
    | [] -> true
  in
  Format.printf
    "@.survivors are pairwise indistinguishable by any test: %b@."
    (pairwise_equiv session.Diagnosis.remaining);
  Format.printf
    "(they form one functional equivalence class — the exact resolution \
     limit of any diagnosis)@."
