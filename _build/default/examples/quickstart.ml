(* Quickstart: parse a netlist, pick a fault, and get its complete test
   set with exact statistics via Difference Propagation.

     dune exec examples/quickstart.exe *)

let netlist =
  "INPUT(a)\n\
   INPUT(b)\n\
   INPUT(c)\n\
   INPUT(d)\n\
   OUTPUT(y)\n\
   OUTPUT(z)\n\
   t1 = NAND(a, b)\n\
   t2 = NOR(c, d)\n\
   y = XOR(t1, t2)\n\
   z = AND(t1, c)\n"

let () =
  (* 1. Load a circuit (from text here; Bench_format.parse_file reads
     .bench files, Bench_suite.find returns the paper's benchmarks). *)
  let circuit = Bench_format.parse ~title:"demo" netlist in
  Format.printf "circuit: %a@.@." Circuit.pp_summary circuit;

  (* 2. Build the Difference Propagation engine (symbolic good
     functions as OBDDs). *)
  let engine = Engine.create circuit in

  (* 3. Analyse one stuck-at fault on net t1. *)
  let t1 = Option.get (Circuit.index_of_name circuit "t1") in
  let fault = Fault.Stuck { Sa_fault.line = Sa_fault.Stem t1; value = false } in
  let r = Engine.analyze engine fault in
  Format.printf "fault %s:@." (Fault.to_string circuit fault);
  Format.printf "  exact detectability  %.4f (%g of 16 input vectors)@."
    r.Engine.detectability r.Engine.test_count;
  Format.printf "  syndrome upper bound %.4f, adherence %s@."
    r.Engine.upper_bound
    (match r.Engine.adherence with
    | Some a -> Printf.sprintf "%.4f" a
    | None -> "n/a");
  Format.printf "  observable at %d of the %d outputs it feeds@."
    r.Engine.pos_observed r.Engine.pos_fed;

  (* 4. The complete test set, as cubes and as one concrete vector. *)
  Format.printf "  test cubes:@.";
  List.iter
    (fun cube ->
      let literal (pos, value) =
        let name = (Circuit.gate circuit circuit.Circuit.inputs.(pos)).Circuit.name in
        Printf.sprintf "%s=%d" name (Bool.to_int value)
      in
      Format.printf "    %s@." (String.concat " " (List.map literal cube)))
    (Engine.test_cubes engine fault);
  (match Engine.test_vector engine fault with
  | Some v ->
    Format.printf "  one full test vector: %s@."
      (String.concat ""
         (Array.to_list (Array.map (fun b -> if b then "1" else "0") v)));
    assert (Fault_sim.detects circuit fault v)
  | None -> Format.printf "  fault is undetectable@.");

  (* 5. A wired-AND bridging fault between two internal wires. *)
  let t2 = Option.get (Circuit.index_of_name circuit "t2") in
  let bridge = Fault.Bridged (Bridge.make t1 t2 Bridge.Wired_and) in
  let rb = Engine.analyze engine bridge in
  Format.printf "@.fault %s:@." (Fault.to_string circuit bridge);
  Format.printf "  exact detectability  %.4f@." rb.Engine.detectability;
  Format.printf "  wired function support: %d variable(s)%s@."
    (Option.value rb.Engine.wired_support ~default:0)
    (if rb.Engine.wired_support = Some 0 then
       " (degenerates to stuck-at behaviour)"
     else "");

  (* 6. Cross-check against exhaustive simulation (4 inputs only!). *)
  let sim = Fault_sim.exhaustive_detectability circuit fault in
  Format.printf "@.exhaustive simulation agrees: %.4f = %.4f@." sim
    r.Engine.detectability
