(* Sequential test generation by time-frame expansion + multiple-fault
   Difference Propagation.

   A physical defect in a sequential circuit is present in *every* clock
   cycle, so after unrolling k time frames it becomes one multiple
   stuck-at fault covering the k copies of the faulted net.  The
   Table-1 rules are exact under simultaneous differences, so DP on the
   unrolled circuit gives the exact probability that a random k-cycle
   input sequence detects the defect — and a concrete detecting
   sequence.  (The paper is combinational-only and defers sequential
   circuits to symbolic fault simulation [16]; this example shows how
   far the combinational machinery alone reaches.)

     dune exec examples/sequential_frames.exe *)

let counter_bench =
  "INPUT(en)\n\
   OUTPUT(carry)\n\
   q0n = XOR(q0, en)\n\
   t = AND(q0, en)\n\
   q1n = XOR(q1, t)\n\
   carry = AND(q1, t)\n\
   q0 = DFF(q0n)\n\
   q1 = DFF(q1n)\n"

let () =
  let seq = Seq_circuit.parse ~title:"counter2" counter_bench in
  Format.printf
    "sequential circuit: 2-bit enabled counter (%d PI, %d PO, %d flops)@.@."
    seq.Seq_circuit.num_inputs seq.Seq_circuit.num_outputs
    seq.Seq_circuit.num_flops;
  Format.printf
    "defect under study: net t (the q0 AND en carry term) stuck at 0@.@.";
  Format.printf "  %-7s %-10s %-14s %s@." "frames" "inputs"
    "detectability" "a detecting enable sequence";
  List.iter
    (fun frames ->
      let unrolled = Seq_circuit.unroll seq ~frames ~init:Seq_circuit.Zero in
      (* The same physical defect in every frame. *)
      let sites =
        List.init frames (fun i ->
            let name = Printf.sprintf "t@%d" i in
            (Option.get (Circuit.index_of_name unrolled name), false))
      in
      let fault = Fault.multi sites in
      let engine = Engine.create unrolled in
      let r = Engine.analyze engine fault in
      let sequence =
        match Engine.test_vector engine fault with
        | None -> "none (undetectable within this horizon)"
        | Some v ->
          (* Inputs are en@0 .. en@k-1 in declaration order. *)
          String.concat ""
            (Array.to_list (Array.map (fun b -> if b then "1" else "0") v))
      in
      Format.printf "  %-7d %-10d %-14.4f %s@." frames
        (Circuit.num_inputs unrolled) r.Engine.detectability sequence;
      (* Cross-check by simulating the unrolled multiple fault. *)
      assert (
        Float.abs
          (r.Engine.detectability
          -. Fault_sim.exhaustive_detectability unrolled fault)
        < 1e-12))
    [ 1; 2; 3; 4; 5; 6 ];
  Format.printf
    "@.the defect needs the counter driven from 00 up to the carry wrap: \
     undetectable until enough frames exist to reach and observe it — the \
     classic sequential test-generation horizon, measured exactly.@."
