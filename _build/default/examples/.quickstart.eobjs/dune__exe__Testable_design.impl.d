examples/testable_design.ml: Array Bathtub Bench_suite Circuit Engine Fault Format List Sa_fault Transform
