examples/sequential_frames.ml: Array Circuit Engine Fault Fault_sim Float Format List Option Printf Seq_circuit String
