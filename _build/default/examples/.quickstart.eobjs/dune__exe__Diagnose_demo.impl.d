examples/diagnose_demo.ml: Array Bench_suite Circuit Diagnosis Engine Fault Format List Sa_fault String Sys
