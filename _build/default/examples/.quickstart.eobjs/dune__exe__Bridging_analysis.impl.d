examples/bridging_analysis.ml: Array Bench_suite Bridge Bridge_class Circuit Engine Fault Format Histogram List Printf Sa_fault Sys
