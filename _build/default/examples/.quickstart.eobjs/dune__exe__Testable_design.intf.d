examples/testable_design.mli:
