examples/atpg_vs_dp.mli:
