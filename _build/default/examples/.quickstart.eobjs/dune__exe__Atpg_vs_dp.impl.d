examples/atpg_vs_dp.ml: Array Bench_suite Circuit Engine Fault Fault_sim Float Format List Podem Sa_fault Sys Unix
