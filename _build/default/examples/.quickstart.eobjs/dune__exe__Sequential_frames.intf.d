examples/sequential_frames.mli:
