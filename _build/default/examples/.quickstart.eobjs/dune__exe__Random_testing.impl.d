examples/random_testing.ml: Array Bench_suite Circuit Engine Fault Fault_sim Float Format List Sa_fault Sys
