examples/bridging_analysis.mli:
