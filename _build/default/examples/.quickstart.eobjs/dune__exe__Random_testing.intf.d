examples/random_testing.mli:
