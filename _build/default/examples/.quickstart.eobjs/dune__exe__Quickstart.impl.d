examples/quickstart.ml: Array Bench_format Bool Bridge Circuit Engine Fault Fault_sim Format List Option Printf Sa_fault String
