examples/quickstart.mli:
