(** Bit-parallel (64 patterns per word) logic simulation with fault
    injection — the simulation substrate the paper positions Difference
    Propagation against, and the oracle our tests validate it with. *)

val eval_words : Circuit.t -> int64 array -> int64 array
(** Good-machine simulation: input words (one per primary input, bit [i]
    of every word forming pattern [i]) to one word per net. *)

val eval_words_faulty : Circuit.t -> Fault.t -> int64 array -> int64 array
(** Faulty-machine simulation.  Stuck stems force the net, stuck
    branches force a single gate pin, bridges replace both nets by their
    wired-AND / wired-OR combination (two-pass, sound because only
    non-feedback bridges are representable). *)

val outputs_of : Circuit.t -> int64 array -> int64 array
(** Select the primary-output words from a net-indexed array. *)

val detect_word : Circuit.t -> Fault.t -> int64 array -> int64
(** Bit mask of the patterns (among the 64 encoded in the input words)
    that detect the fault at some primary output. *)

val pack_patterns : Circuit.t -> bool array list -> int64 array
(** Pack up to 64 input vectors into simulation words (pattern [i] goes
    to bit [i]). *)

val base_words : Circuit.t -> int -> int64 array
(** Words encoding the 64 consecutive exhaustive patterns starting at
    [base] (pattern number [base + i] assigns input [j] the [j]-th bit
    of the pattern number). *)

val popcount : int64 -> int
