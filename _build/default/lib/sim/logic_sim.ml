let eval_with_overrides c ~force_net ~force_pin inputs =
  if Array.length inputs <> Circuit.num_inputs c then
    invalid_arg "Logic_sim: input word count mismatch";
  let values = Array.make (Circuit.num_gates c) 0L in
  Array.iteri (fun pos g -> values.(g) <- inputs.(pos)) c.Circuit.inputs;
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      (match gate.kind with
      | Gate.Input -> ()
      | kind ->
        let operands =
          Array.mapi
            (fun pin f ->
              match force_pin g pin with
              | Some w -> w
              | None -> values.(f))
            gate.fanins
        in
        values.(g) <- Gate.eval_word kind operands);
      match force_net g with Some w -> values.(g) <- w | None -> ())
    c.Circuit.gates;
  values

let no_net _ = None
let no_pin _ _ = None

let eval_words c inputs =
  eval_with_overrides c ~force_net:no_net ~force_pin:no_pin inputs

let eval_words_faulty c fault inputs =
  match fault with
  | Fault.Stuck { Sa_fault.line = Sa_fault.Stem s; value } ->
    let w = if value then Int64.minus_one else 0L in
    let force_net g = if g = s then Some w else None in
    eval_with_overrides c ~force_net ~force_pin:no_pin inputs
  | Fault.Stuck { Sa_fault.line = Sa_fault.Branch br; value } ->
    let w = if value then Int64.minus_one else 0L in
    let force_pin g pin =
      if g = br.Circuit.sink && pin = br.Circuit.pin then Some w else None
    in
    eval_with_overrides c ~force_net:no_net ~force_pin inputs
  | Fault.Bridged { Bridge.a; b; kind } ->
    (* The bridged value depends on the two nets' good values, which a
       non-feedback bridge cannot disturb: take them from a good pass. *)
    let good = eval_words c inputs in
    let wired =
      match kind with
      | Bridge.Wired_and -> Int64.logand good.(a) good.(b)
      | Bridge.Wired_or -> Int64.logor good.(a) good.(b)
    in
    let force_net g = if g = a || g = b then Some wired else None in
    eval_with_overrides c ~force_net ~force_pin:no_pin inputs
  | Fault.Multi_stuck sites ->
    let force_net g =
      List.assoc_opt g sites
      |> Option.map (fun v -> if v then Int64.minus_one else 0L)
    in
    eval_with_overrides c ~force_net ~force_pin:no_pin inputs

let outputs_of c values = Array.map (Array.get values) c.Circuit.outputs

let detect_word c fault inputs =
  let good = outputs_of c (eval_words c inputs) in
  let faulty = outputs_of c (eval_words_faulty c fault inputs) in
  let acc = ref 0L in
  Array.iteri
    (fun i g -> acc := Int64.logor !acc (Int64.logxor g faulty.(i)))
    good;
  !acc

let pack_patterns c patterns =
  let n = Circuit.num_inputs c in
  let words = Array.make n 0L in
  List.iteri
    (fun i vector ->
      if i >= 64 then invalid_arg "Logic_sim.pack_patterns: more than 64";
      if Array.length vector <> n then
        invalid_arg "Logic_sim.pack_patterns: vector length mismatch";
      Array.iteri
        (fun j bit ->
          if bit then words.(j) <- Int64.logor words.(j) (Int64.shift_left 1L i))
        vector)
    patterns;
  words

let base_words c base =
  let n = Circuit.num_inputs c in
  Array.init n (fun j ->
      let word = ref 0L in
      for i = 0 to 63 do
        if (base + i) lsr j land 1 = 1 then
          word := Int64.logor !word (Int64.shift_left 1L i)
      done;
      !word)

let popcount w =
  let rec go w acc =
    if Int64.equal w 0L then acc
    else go (Int64.logand w (Int64.sub w 1L)) (acc + 1)
  in
  go w 0
