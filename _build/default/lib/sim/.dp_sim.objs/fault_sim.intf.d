lib/sim/fault_sim.mli: Circuit Fault
