lib/sim/logic_sim.mli: Circuit Fault
