lib/sim/logic_sim.ml: Array Bridge Circuit Fault Gate Int64 List Option Sa_fault
