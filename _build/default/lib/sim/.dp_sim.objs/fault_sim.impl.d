lib/sim/fault_sim.ml: Array Circuit Float Int64 List Logic_sim Printf Prng
