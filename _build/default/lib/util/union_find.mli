(** Union-find over integer elements, with path compression and union by
    rank.  Used to collapse stuck-at fault equivalence classes. *)

type t

val create : int -> t
(** [create n] starts with elements [0 .. n-1], each in its own class. *)

val find : t -> int -> int
(** Canonical representative of an element's class. *)

val union : t -> int -> int -> unit
(** Merge two classes (no-op when already merged). *)

val same : t -> int -> int -> bool

val classes : t -> int list array
(** Members of each class, indexed by representative; non-representative
    slots hold the empty list.  Members appear in increasing order. *)
