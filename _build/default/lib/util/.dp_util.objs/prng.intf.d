lib/util/prng.mli:
