type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int ((seed * 2) + 1) }

let word t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let masked = Int64.logand (word t) Int64.max_int in
  Int64.to_int (Int64.rem masked (Int64.of_int bound))

let bool t = Int64.logand (word t) 1L = 1L

let float t =
  let bits53 = Int64.shift_right_logical (word t) 11 in
  Int64.to_float bits53 /. 9007199254740992.0

let bool_array t n = Array.init n (fun _ -> bool t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
