(** Deterministic splitmix64 pseudo-random generator.

    Every sampled artifact in this repository (bridging-fault sets,
    random circuits, shuffled variable orders, random test vectors) is
    reproducible from an integer seed through this module; the OCaml
    [Random] module is deliberately not used. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1].
    @raise Invalid_argument when [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform draw from [0, 1). *)

val word : t -> int64
(** Raw 64-bit output. *)

val bool_array : t -> int -> bool array
(** Uniform vector of booleans. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
