(* Everything happens in a private manager with one auxiliary variable z
   (placed last in the order) standing for the faulted line.  Outputs
   are built over inputs + z, the Boolean difference is the XOR of the
   two z-cofactors, and the control condition comes from a normal
   evaluation.  Nothing is shared with the engine's manager — part of
   the point is measuring the cost of not sharing. *)

let aux_manager c =
  let n = Circuit.num_inputs c in
  (Bdd.create (n + 1), n (* the auxiliary variable index *))

(* Evaluate all nets, with either one whole net or one gate pin replaced
   by the auxiliary variable. *)
let evaluate c m ~z ~force_net ~force_pin =
  let node = Array.make (Circuit.num_gates c) (Bdd.zero m) in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      node.(g) <-
        (match gate.Circuit.kind with
        | Gate.Input ->
          (match Circuit.input_position c g with
          | Some pos -> Bdd.var m pos
          | None -> assert false)
        | kind ->
          let operands =
            Array.mapi
              (fun pin f -> if force_pin g pin then Bdd.var m z else node.(f))
              gate.Circuit.fanins
          in
          Rules.gate_output m kind operands);
      if force_net g then node.(g) <- Bdd.var m z)
    c.Circuit.gates;
  node

let no_net _ = false
let no_pin _ _ = false

let observability_from c m ~z nodes =
  Array.fold_left
    (fun acc o ->
      let f0, f1 = Bdd.cofactors m nodes.(o) z in
      Bdd.bor m acc (Bdd.bxor m f0 f1))
    (Bdd.zero m) c.Circuit.outputs

let observability_fraction engine net =
  let c = Engine.circuit engine in
  let m, z = aux_manager c in
  let nodes =
    evaluate c m ~z ~force_net:(fun g -> g = net) ~force_pin:no_pin
  in
  Bdd.sat_fraction m (observability_from c m ~z nodes)

let test_set_in engine fault =
  let c = Engine.circuit engine in
  let m, z = aux_manager c in
  let force_net, force_pin, stem =
    match fault.Sa_fault.line with
    | Sa_fault.Stem s -> ((fun g -> g = s), no_pin, s)
    | Sa_fault.Branch br ->
      ( no_net,
        (fun g pin -> g = br.Circuit.sink && pin = br.Circuit.pin),
        br.Circuit.stem )
  in
  let substituted = evaluate c m ~z ~force_net ~force_pin in
  let observability = observability_from c m ~z substituted in
  let normal = evaluate c m ~z ~force_net:no_net ~force_pin:no_pin in
  let control =
    if fault.Sa_fault.value then Bdd.bnot m normal.(stem) else normal.(stem)
  in
  (m, Bdd.band m control observability)

let detectability engine fault =
  let m, t = test_set_in engine fault in
  (* The test set never mentions z, so the fraction over n+1 variables
     equals the fraction over the n real inputs. *)
  Bdd.sat_fraction m t

let test_cubes ?limit engine fault =
  let m, t = test_set_in engine fault in
  Bdd.sat_cubes m ?limit t
