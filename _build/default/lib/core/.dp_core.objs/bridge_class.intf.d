lib/core/bridge_class.mli: Bridge Engine
