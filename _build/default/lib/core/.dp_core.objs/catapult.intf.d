lib/core/catapult.mli: Engine Sa_fault
