lib/core/rules.ml: Array Bdd Gate
