lib/core/fun_collapse.mli: Circuit Engine Fault Format
