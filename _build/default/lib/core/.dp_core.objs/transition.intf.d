lib/core/transition.mli: Circuit Engine Format
