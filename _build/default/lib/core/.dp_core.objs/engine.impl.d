lib/core/engine.ml: Array Bdd Bridge Circuit Fault Gate List Ordering Rules Sa_fault Symbolic
