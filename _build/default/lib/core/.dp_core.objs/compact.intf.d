lib/core/compact.mli: Circuit Engine Fault
