lib/core/rules.mli: Bdd Gate
