lib/core/decompose.ml: Array Bdd Bridge Circuit Fault Fun Gate List Rules Sa_fault
