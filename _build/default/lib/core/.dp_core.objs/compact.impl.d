lib/core/compact.ml: Array Bdd Circuit Engine Fault_sim List
