lib/core/transition.ml: Array Bdd Circuit Engine Fault Format Int64 List Logic_sim Sa_fault Symbolic
