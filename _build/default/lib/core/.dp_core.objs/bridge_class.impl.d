lib/core/bridge_class.ml: Bdd Bridge Engine List Symbolic
