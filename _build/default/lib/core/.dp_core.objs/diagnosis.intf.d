lib/core/diagnosis.mli: Circuit Engine Fault
