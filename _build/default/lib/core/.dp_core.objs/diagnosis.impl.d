lib/core/diagnosis.ml: Array Bdd Circuit Engine Fault Int64 List Logic_sim
