lib/core/decompose.mli: Bdd Circuit Fault
