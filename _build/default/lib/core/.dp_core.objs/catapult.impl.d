lib/core/catapult.ml: Array Bdd Circuit Engine Gate Rules Sa_fault
