lib/core/engine.mli: Bdd Circuit Fault Ordering Symbolic
