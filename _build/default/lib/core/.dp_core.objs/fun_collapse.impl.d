lib/core/fun_collapse.ml: Array Bdd Engine Fault Format Hashtbl List Sa_fault
