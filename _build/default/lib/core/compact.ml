type outcome = {
  vectors : bool array list;
  covered : int;
  undetectable : int;
}

let vector_of_cube n cube =
  let v = Array.make n false in
  List.iter (fun (pos, value) -> v.(pos) <- value) cube;
  v

let greedy engine faults =
  let m = Engine.manager engine in
  let n = Circuit.num_inputs (Engine.circuit engine) in
  let sets = List.map (fun f -> (f, Engine.test_set engine f)) faults in
  let detectable, undetectable =
    List.partition (fun (_, set) -> not (Bdd.is_zero m set)) sets
  in
  let remaining = ref detectable in
  let vectors = ref [] in
  let covered = ref 0 in
  let detects vector set = Bdd.eval m set (fun pos -> vector.(pos)) in
  while !remaining <> [] do
    (* Hardest remaining fault: smallest test set. *)
    let _, hardest_set =
      List.fold_left
        (fun ((_, best_set) as best) ((_, set) as cand) ->
          if Bdd.sat_fraction m set < Bdd.sat_fraction m best_set then cand
          else best)
        (List.hd !remaining) (List.tl !remaining)
    in
    (* Candidate vectors from its first few cubes; keep the one that
       covers the most remaining faults. *)
    let candidates =
      Bdd.sat_cubes m ~limit:8 hardest_set |> List.map (vector_of_cube n)
    in
    let coverage vector =
      List.fold_left
        (fun acc (_, set) -> if detects vector set then acc + 1 else acc)
        0 !remaining
    in
    let best_vector =
      match candidates with
      | [] -> assert false (* the set is non-zero *)
      | first :: rest ->
        List.fold_left
          (fun best cand ->
            if coverage cand > coverage best then cand else best)
          first rest
    in
    vectors := best_vector :: !vectors;
    let survivors =
      List.filter
        (fun (_, set) ->
          if detects best_vector set then begin
            incr covered;
            false
          end
          else true)
        !remaining
    in
    remaining := survivors
  done;
  {
    vectors = List.rev !vectors;
    covered = !covered;
    undetectable = List.length undetectable;
  }

let verify c faults vectors =
  List.for_all
    (fun fault ->
      let detected =
        List.exists (fun v -> Fault_sim.detects c fault v) vectors
      in
      detected
      ||
      (* Not detected by the compacted set: acceptable only when the
         fault is undetectable outright, which simulation of the small
         vector list cannot decide — fall back to an engine-free check
         on small circuits, otherwise trust the caller's DP data. *)
      Circuit.num_inputs c > 26
      || Fault_sim.exhaustive_count c fault = 0)
    faults
