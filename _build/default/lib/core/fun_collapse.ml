type classes = Fault.t list list

(* Group faults by a key derived from their per-output differences.
   Keys are lists of BDD handles, valid within one engine. *)
let group_by_key engine key faults =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun fault ->
      let k = key engine fault in
      match Hashtbl.find_opt table k with
      | Some members -> Hashtbl.replace table k (fault :: members)
      | None ->
        Hashtbl.replace table k [ fault ];
        order := k :: !order)
    faults;
  List.rev_map (fun k -> List.rev (Hashtbl.find table k)) !order
  |> List.rev

let by_test_set engine faults =
  let key engine fault =
    Array.to_list (Engine.po_differences engine fault)
    |> List.map Bdd.hash
  in
  group_by_key engine key faults

let detection_equivalent engine faults =
  let key engine fault = [ Bdd.hash (Engine.test_set engine fault) ] in
  group_by_key engine key faults

type summary = {
  faults : int;
  structural_classes : int;
  functional_classes : int;
  detection_classes : int;
}

let summarize engine c =
  let checkpoint_faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.checkpoint_faults c)
  in
  {
    faults = List.length checkpoint_faults;
    structural_classes = List.length (Sa_fault.equivalence_classes c);
    functional_classes = List.length (by_test_set engine checkpoint_faults);
    detection_classes =
      List.length (detection_equivalent engine checkpoint_faults);
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "  %d checkpoint faults -> %d structural classes -> %d functional \
     classes (%d if only the union test set must match)@."
    s.faults s.structural_classes s.functional_classes s.detection_classes
