let gate_output m kind operands =
  match (kind : Gate.kind) with
  | Gate.Input -> invalid_arg "Rules: Input has no local function"
  | Gate.Const0 -> Bdd.zero m
  | Gate.Const1 -> Bdd.one m
  | Gate.Buf -> operands.(0)
  | Gate.Not -> Bdd.bnot m operands.(0)
  | Gate.And -> Array.fold_left (Bdd.band m) (Bdd.one m) operands
  | Gate.Nand -> Bdd.bnot m (Array.fold_left (Bdd.band m) (Bdd.one m) operands)
  | Gate.Or -> Array.fold_left (Bdd.bor m) (Bdd.zero m) operands
  | Gate.Nor -> Bdd.bnot m (Array.fold_left (Bdd.bor m) (Bdd.zero m) operands)
  | Gate.Xor -> Array.fold_left (Bdd.bxor m) (Bdd.zero m) operands
  | Gate.Xnor ->
    Bdd.bnot m (Array.fold_left (Bdd.bxor m) (Bdd.zero m) operands)

(* Two-input AND difference: dC = fA.dB xor fB.dA xor dA.dB.  The OR rule
   is its De Morgan dual (complemented good terms); folding it pairwise
   with the running good function handles any fanin count exactly. *)
let fold_and m good delta =
  let n = Array.length good in
  let rec go i f_acc d_acc =
    if i >= n then d_acc
    else
      let f_in = good.(i) and d_in = delta.(i) in
      let d_acc' =
        if Bdd.is_zero m d_acc && Bdd.is_zero m d_in then Bdd.zero m
        else
          Bdd.bxor m
            (Bdd.bxor m (Bdd.band m f_acc d_in) (Bdd.band m f_in d_acc))
            (Bdd.band m d_acc d_in)
      in
      go (i + 1) (Bdd.band m f_acc f_in) d_acc'
  in
  if n = 0 then Bdd.zero m else go 1 good.(0) delta.(0)

let fold_or m good delta =
  let n = Array.length good in
  let rec go i f_acc d_acc =
    if i >= n then d_acc
    else
      let f_in = good.(i) and d_in = delta.(i) in
      let d_acc' =
        if Bdd.is_zero m d_acc && Bdd.is_zero m d_in then Bdd.zero m
        else
          Bdd.bxor m
            (Bdd.bxor m
               (Bdd.band m (Bdd.bnot m f_acc) d_in)
               (Bdd.band m (Bdd.bnot m f_in) d_acc))
            (Bdd.band m d_acc d_in)
      in
      go (i + 1) (Bdd.bor m f_acc f_in) d_acc'
  in
  if n = 0 then Bdd.zero m else go 1 good.(0) delta.(0)

let delta m kind ~good ~delta:d =
  match (kind : Gate.kind) with
  | Gate.Input -> invalid_arg "Rules.delta: Input has no fanins"
  | Gate.Const0 | Gate.Const1 -> Bdd.zero m
  | Gate.Buf | Gate.Not -> d.(0)
  | Gate.And | Gate.Nand -> fold_and m good d
  | Gate.Or | Gate.Nor -> fold_or m good d
  | Gate.Xor | Gate.Xnor -> Array.fold_left (Bdd.bxor m) (Bdd.zero m) d

let delta_direct m kind ~good ~delta:d =
  let faulty = Array.init (Array.length good) (fun i -> Bdd.bxor m good.(i) d.(i)) in
  Bdd.bxor m (gate_output m kind good) (gate_output m kind faulty)

let table_text =
  [
    "AND / NAND :  dC = fA.dB xor fB.dA xor dA.dB";
    "OR  / NOR  :  dC = fA'.dB xor fB'.dA xor dA.dB";
    "XOR / XNOR :  dC = dA xor dB";
    "BUF / NOT  :  dC = dA";
  ]
