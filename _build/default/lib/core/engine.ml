type t = {
  base : Circuit.t;
  heuristic : Ordering.heuristic;
  mutable sym : Symbolic.t;
}

let create ?(heuristic = Ordering.Natural) base =
  { base; heuristic; sym = Symbolic.build ~heuristic base }

let circuit t = t.base
let manager t = Symbolic.manager t.sym
let symbolic t = t.sym

let rebuild t = t.sym <- Symbolic.build ~heuristic:t.heuristic t.base

(* Initial difference functions at the fault sites: (net, delta) pairs. *)
let initial_deltas t fault =
  let m = manager t in
  let f net = Symbolic.node_function t.sym net in
  let against_constant good value =
    if value then Bdd.bnot m good else good
  in
  match fault with
  | Fault.Stuck { Sa_fault.line = Sa_fault.Stem s; value } ->
    [ (s, against_constant (f s) value) ]
  | Fault.Stuck { Sa_fault.line = Sa_fault.Branch br; value } ->
    (* A branch fault changes only one pin: inject the pin difference and
       let the Table-1 rule of the sink gate turn it into the sink's
       output difference. *)
    let sink = br.Circuit.sink in
    let gate = Circuit.gate t.base sink in
    let good = Array.map (fun g -> f g) gate.Circuit.fanins in
    let delta =
      Array.mapi
        (fun pin g ->
          if pin = br.Circuit.pin then against_constant (f g) value
          else Bdd.zero m)
        gate.Circuit.fanins
    in
    [ (sink, Rules.delta m gate.Circuit.kind ~good ~delta) ]
  | Fault.Bridged { Bridge.a; b; kind } ->
    let wired =
      match kind with
      | Bridge.Wired_and -> Bdd.band m (f a) (f b)
      | Bridge.Wired_or -> Bdd.bor m (f a) (f b)
    in
    [ (a, Bdd.bxor m (f a) wired); (b, Bdd.bxor m (f b) wired) ]
  | Fault.Multi_stuck sites ->
    (* Each forced stem has the same difference it would have alone; the
       Table-1 rules are exact under simultaneous input differences, so
       propagation composes the effects correctly. *)
    List.map (fun (s, value) -> (s, against_constant (f s) value)) sites

(* Propagate differences through the fanout cone of the sites. *)
let all_deltas t fault =
  let c = t.base in
  let m = manager t in
  let zero = Bdd.zero m in
  let deltas = Array.make (Circuit.num_gates c) zero in
  let sites = initial_deltas t fault in
  List.iter (fun (net, d) -> deltas.(net) <- d) sites;
  let is_site = Array.make (Circuit.num_gates c) false in
  List.iter (fun (net, _) -> is_site.(net) <- true) sites;
  let cone = Circuit.fanout_cone c (List.map fst sites) in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      if cone.(g) && not is_site.(g) && gate.kind <> Gate.Input then begin
        let fanins = gate.Circuit.fanins in
        if Array.exists (fun f -> not (Bdd.is_zero m deltas.(f))) fanins then
          let good = Array.map (Symbolic.node_function t.sym) fanins in
          let delta = Array.map (fun f -> deltas.(f)) fanins in
          deltas.(g) <- Rules.delta m gate.Circuit.kind ~good ~delta
      end)
    c.Circuit.gates;
  deltas

let po_differences t fault =
  let deltas = all_deltas t fault in
  Array.map (fun o -> deltas.(o)) t.base.Circuit.outputs

let test_set t fault =
  let m = manager t in
  Array.fold_left (Bdd.bor m) (Bdd.zero m) (po_differences t fault)

let test_cubes ?limit t fault = Bdd.sat_cubes (manager t) ?limit (test_set t fault)

let test_vector t fault =
  match Bdd.any_sat (manager t) (test_set t fault) with
  | None -> None
  | Some literals ->
    let v = Array.make (Circuit.num_inputs t.base) false in
    List.iter (fun (pos, value) -> v.(pos) <- value) literals;
    Some v

type result = {
  fault : Fault.t;
  detectability : float;
  test_count : float;
  detectable : bool;
  pos_fed : int;
  pos_observed : int;
  upper_bound : float;
  adherence : float option;
  wired_support : int option;
  test_set_nodes : int;
}

let upper_bound t fault =
  let m = manager t in
  let f net = Symbolic.node_function t.sym net in
  match fault with
  | Fault.Stuck { Sa_fault.line; value } ->
    let stem = Sa_fault.stem_of_line line in
    let syndrome = Bdd.sat_fraction m (f stem) in
    if value then 1.0 -. syndrome else syndrome
  | Fault.Bridged { Bridge.a; b; _ } ->
    Bdd.sat_fraction m (Bdd.bxor m (f a) (f b))
  | Fault.Multi_stuck sites ->
    (* Excitation of at least one component fault. *)
    let excited =
      List.fold_left
        (fun acc (s, value) ->
          let delta = if value then Bdd.bnot m (f s) else f s in
          Bdd.bor m acc delta)
        (Bdd.zero m) sites
    in
    Bdd.sat_fraction m excited

let wired_support t fault =
  let m = manager t in
  let f net = Symbolic.node_function t.sym net in
  match fault with
  | Fault.Stuck _ | Fault.Multi_stuck _ -> None
  | Fault.Bridged { Bridge.a; b; kind } ->
    let wired =
      match kind with
      | Bridge.Wired_and -> Bdd.band m (f a) (f b)
      | Bridge.Wired_or -> Bdd.bor m (f a) (f b)
    in
    Some (List.length (Bdd.support m wired))

let pos_fed t fault =
  let reach = Circuit.fanout_cone t.base (Fault.sites fault) in
  Array.fold_left
    (fun acc o -> if reach.(o) then acc + 1 else acc)
    0 t.base.Circuit.outputs

let analyze t fault =
  let m = manager t in
  let per_po = po_differences t fault in
  let union = Array.fold_left (Bdd.bor m) (Bdd.zero m) per_po in
  let detectability = Bdd.sat_fraction m union in
  let upper_bound = upper_bound t fault in
  {
    fault;
    detectability;
    test_count = Bdd.sat_count m union;
    detectable = not (Bdd.is_zero m union);
    pos_fed = pos_fed t fault;
    pos_observed =
      Array.fold_left
        (fun acc d -> if Bdd.is_zero m d then acc else acc + 1)
        0 per_po;
    upper_bound;
    adherence =
      (if upper_bound > 0.0 then Some (detectability /. upper_bound) else None);
    wired_support = wired_support t fault;
    test_set_nodes = Bdd.size m union;
  }

let analyze_all ?(node_budget = 3_000_000) t faults =
  List.map
    (fun fault ->
      if Bdd.allocated_nodes (manager t) > node_budget then rebuild t;
      analyze t fault)
    faults
