(** The paper's Table 1: output difference functions of the primitive
    gates in terms of input {e good} functions and input {e difference}
    functions only.

    For a two-input gate with inputs A, B and output C, writing [fX] for
    the good function and [dX] for the difference [fX xor FX]:

    {v
    AND / NAND :  dC = fA.dB  xor  fB.dA  xor  dA.dB
    OR  / NOR  :  dC = fA'.dB xor  fB'.dA xor  dA.dB
    XOR / XNOR :  dC = dA xor dB
    BUF / NOT  :  dC = dA
    v}

    An output inversion never changes the difference, and the rules are
    exact for {e any} simultaneous input differences — which is what
    makes two-site bridging-fault initialisation sound.  Gates with more
    fanins are folded two at a time (the paper's n-1 two-input
    modelling, §3). *)

val gate_output : Bdd.manager -> Gate.kind -> Bdd.t array -> Bdd.t
(** Good output function of a gate from its input functions. *)

val delta :
  Bdd.manager ->
  Gate.kind ->
  good:Bdd.t array ->
  delta:Bdd.t array ->
  Bdd.t
(** Output difference by the Table-1 rules.  [good] and [delta] give the
    input good and difference functions pin by pin.  Inputs with zero
    difference cost nothing (selective trace). *)

val delta_direct :
  Bdd.manager ->
  Gate.kind ->
  good:Bdd.t array ->
  delta:Bdd.t array ->
  Bdd.t
(** Reference implementation: rebuild the faulty input functions
    [FX = fX xor dX], evaluate the gate on them, and XOR with the good
    output.  Used to cross-validate {!delta} in the property tests. *)

val table_text : string list
(** The rows of Table 1, for reports. *)
