type edge = Rise | Fall

type t = { net : int; edge : edge }

let pp c fmt f =
  Format.fprintf fmt "slow-to-%s %s"
    (match f.edge with Rise -> "rise" | Fall -> "fall")
    (Circuit.gate c f.net).Circuit.name

let all c =
  List.init (Circuit.num_gates c) (fun net ->
      [ { net; edge = Rise }; { net; edge = Fall } ])
  |> List.concat

(* The equivalent second-pattern stuck value: a slow-to-rise net stays
   at 0, i.e. behaves as s-a-0 under the capture pattern. *)
let stuck_value f = match f.edge with Rise -> false | Fall -> true

let initial_value f = stuck_value f

let stuck_fault f =
  Fault.Stuck { Sa_fault.line = Sa_fault.Stem f.net; value = stuck_value f }

let pair_detectability engine f =
  let m = Engine.manager engine in
  let sym = Engine.symbolic engine in
  let good = Symbolic.node_function sym f.net in
  let launch =
    (* v1 puts the net at the pre-transition value. *)
    if initial_value f then Bdd.sat_fraction m good
    else 1.0 -. Bdd.sat_fraction m good
  in
  let capture =
    (Engine.analyze engine (stuck_fault f)).Engine.detectability
  in
  launch *. capture

let test_pair engine f =
  let c = Engine.circuit engine in
  let m = Engine.manager engine in
  let sym = Engine.symbolic engine in
  let good = Symbolic.node_function sym f.net in
  let launch_set = if initial_value f then good else Bdd.bnot m good in
  match Bdd.any_sat m launch_set with
  | None -> None
  | Some literals ->
    (match Engine.test_vector engine (stuck_fault f) with
    | None -> None
    | Some v2 ->
      let v1 = Array.make (Circuit.num_inputs c) false in
      List.iter (fun (pos, value) -> v1.(pos) <- value) literals;
      Some (v1, v2))

let detect_pair c f v1 v2 =
  let words1 = Logic_sim.pack_patterns c [ v1 ] in
  let values1 = Logic_sim.eval_words c words1 in
  let net_v1 = Int64.logand values1.(f.net) 1L = 1L in
  if net_v1 <> initial_value f then false
  else
    (* Second pattern with the net frozen at its first-pattern value —
       the transition never completes. *)
    let frozen = Logic_sim.detect_word c (stuck_fault f)
        (Logic_sim.pack_patterns c [ v2 ]) in
    Int64.logand frozen 1L <> 0L
