(** Gross-delay (transition) faults — a two-pattern fault model, and a
    demonstration of the paper's claim that Difference Propagation
    addresses "more logical fault models than just the single stuck-at"
    (§1, §5).

    A slow-to-rise fault on a net means a launched 0→1 transition does
    not complete before capture: under the second pattern the net still
    carries its first-pattern value.  A pair (v1, v2) detects it exactly
    when v1 initialises the net to 0 and v2 is a test for the net's
    s-a-0 stuck fault (dually for slow-to-fall and s-a-1).  Complete
    stuck-at test sets therefore give the {e exact pair-space
    detectability} in closed form:

      det(slow-to-rise) = syndrome0(net) * det(s-a-0 at net)

    over independently chosen (v1, v2) — no two-pattern search needed. *)

type edge = Rise | Fall

type t = { net : int; edge : edge }

val pp : Circuit.t -> Format.formatter -> t -> unit

val all : Circuit.t -> t list
(** Both edges on every net. *)

val pair_detectability : Engine.t -> t -> float
(** Exact fraction of (v1, v2) pairs (out of 2^{2n}) that detect the
    fault. *)

val test_pair : Engine.t -> t -> (bool array * bool array) option
(** One detecting two-pattern test, or [None] for an undetectable
    fault. *)

val detect_pair : Circuit.t -> t -> bool array -> bool array -> bool
(** Two-pattern simulation: evaluate [v1], then evaluate [v2] with the
    net frozen at its [v1] value when the required transition was
    launched; the fault is detected when some output differs from the
    good second-pattern response. *)
