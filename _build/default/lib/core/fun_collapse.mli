(** Functional fault collapsing: two faults are equivalent exactly when
    they have the same difference function at every primary output —
    decidable here because Difference Propagation materialises those
    functions as hash-consed BDDs (handle equality = function equality).

    Structural rules (McCluskey–Clegg, as in {!Sa_fault.collapsed_faults})
    are sound but incomplete; this module measures how many further
    merges full functional equivalence finds, and doubles as an exact
    fault-dictionary: faults in different classes are distinguishable by
    some test, faults in one class are not. *)

type classes = Fault.t list list
(** Partition; classes ordered by first member, members in input order. *)

val by_test_set : Engine.t -> Fault.t list -> classes
(** Equivalence as {e indistinguishability}: same difference function at
    every output.  Undetectable faults form one class. *)

val detection_equivalent : Engine.t -> Fault.t list -> classes
(** Weaker relation used for test-set sizing: same {e union} test set
    (detected by exactly the same vectors, possibly at different
    outputs). *)

type summary = {
  faults : int;
  structural_classes : int;  (** for reference, when given checkpoint faults *)
  functional_classes : int;
  detection_classes : int;
}

val summarize : Engine.t -> Circuit.t -> summary
(** Collapse statistics over the circuit's checkpoint faults. *)

val pp_summary : Format.formatter -> summary -> unit
