(** Fault diagnosis from complete functional information.

    Difference Propagation gives, for every fault, the exact set of
    vectors that expose it {e at each output}.  That is a full-response
    fault dictionary in symbolic form: predicted tester responses follow
    by evaluating the per-output differences, candidate faults are the
    ones consistent with every observed response, and a vector that
    tells two candidates apart — if any exists — falls out of one BDD
    operation.  Faults no vector can tell apart are exactly the
    functional equivalence classes of {!Fun_collapse}. *)

type observation = {
  vector : bool array;  (** applied input vector *)
  failing : bool array;  (** per primary output: did it mismatch? *)
}

val predict : Engine.t -> Fault.t -> bool array -> bool array
(** Predicted per-output mismatches of a fault under a vector. *)

val observe : Circuit.t -> Fault.t -> bool array -> observation
(** Simulate the (actual) faulty machine to produce a tester response. *)

val consistent : Engine.t -> Fault.t -> observation -> bool
(** Whether the fault explains the observation exactly (same mismatching
    outputs — a full-response dictionary, not just pass/fail). *)

val candidates : Engine.t -> Fault.t list -> observation list -> Fault.t list
(** Faults consistent with every observation, in input order. *)

val distinguishing_vector :
  Engine.t -> Fault.t -> Fault.t -> bool array option
(** A vector under which the two faults produce different responses at
    some output, or [None] when they are functionally equivalent
    (indistinguishable by any test). *)

type session = {
  applied : observation list;  (** vectors applied so far, latest last *)
  remaining : Fault.t list;  (** candidates still consistent *)
}

val diagnose :
  ?max_vectors:int ->
  Engine.t ->
  Fault.t list ->
  actual:Fault.t ->
  session
(** Adaptive diagnosis against a simulated faulty machine: start from a
    detecting vector of [actual], then repeatedly apply a vector
    distinguishing the first two remaining candidates, until the
    candidates are pairwise indistinguishable or [max_vectors] (default
    32) is reached.  [actual] need not be in the candidate list; if it
    is, it always remains. *)
