(** Functional classification of bridging faults (paper §4.2, Figure 5).

    A bridge {e exhibits stuck-at behaviour} when its wired function —
    the faulty function carried by both shorted wires — has empty
    support: it is then a constant, i.e. a double stuck-at fault.  The
    paper measured these proportions to be generally low, agreeing with
    Inductive Fault Analysis from the purely functional side. *)

type summary = {
  kind : Bridge.kind;
  total : int;
  stuck_like : int;
  proportion : float;  (** [stuck_like / total]; 0 on an empty set *)
}

val is_stuck_like : Engine.t -> Bridge.t -> bool
(** Whether the wired function at the bridge site is constant. *)

val classify : Engine.t -> Bridge.t list -> summary list
(** One summary per bridge kind present in the list, wired-AND first. *)
