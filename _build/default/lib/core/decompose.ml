(* Each primary output owns a manager ordered by a DFS of its fanin cone;
   good functions of arbitrary nets are evaluated lazily in that manager,
   so fault sites outside the cone (a bridge's far wire) cost only their
   own support. *)

type po_ctx = {
  po : int;
  m : Bdd.manager;
  node : Bdd.t option array;
  in_cone : bool array;  (* fanin cone of [po] *)
  cone_nets : int;
}

type t = { c : Circuit.t; shared : Bdd.manager; ctxs : po_ctx array }

let cone_order c po =
  let n = Circuit.num_inputs c in
  let seen = Array.make (Circuit.num_gates c) false in
  let acc = ref [] in
  let rec visit g =
    if not seen.(g) then begin
      seen.(g) <- true;
      match Circuit.input_position c g with
      | Some pos -> acc := pos :: !acc
      | None -> Array.iter visit (Circuit.gate c g).Circuit.fanins
    end
  in
  visit po;
  let reached = List.rev !acc in
  let missing =
    List.init n Fun.id |> List.filter (fun pos -> not (List.mem pos reached))
  in
  Array.of_list (reached @ missing)

let create c =
  let ctxs =
    Array.map
      (fun po ->
        let cone = Circuit.fanin_cone c po in
        let in_cone = Array.make (Circuit.num_gates c) false in
        List.iter (fun g -> in_cone.(g) <- true) cone;
        {
          po;
          m = Bdd.create ~order:(cone_order c po) (Circuit.num_inputs c);
          node = Array.make (Circuit.num_gates c) None;
          in_cone;
          cone_nets = List.length cone;
        })
      c.Circuit.outputs
  in
  { c; shared = Bdd.create (Circuit.num_inputs c); ctxs }

let cones t = Array.length t.ctxs
let max_cone_nets t =
  Array.fold_left (fun acc ctx -> max acc ctx.cone_nets) 0 t.ctxs
let shared_manager t = t.shared

let rec good t ctx g =
  match ctx.node.(g) with
  | Some f -> f
  | None ->
    let gate = Circuit.gate t.c g in
    let f =
      match gate.Circuit.kind with
      | Gate.Input ->
        (match Circuit.input_position t.c g with
        | Some pos -> Bdd.var ctx.m pos
        | None -> assert false)
      | kind ->
        Rules.gate_output ctx.m kind (Array.map (good t ctx) gate.Circuit.fanins)
    in
    ctx.node.(g) <- Some f;
    f

let initial_deltas t ctx fault =
  let m = ctx.m in
  let f net = good t ctx net in
  let against_constant g value = if value then Bdd.bnot m g else g in
  match fault with
  | Fault.Stuck { Sa_fault.line = Sa_fault.Stem s; value } ->
    [ (s, against_constant (f s) value) ]
  | Fault.Stuck { Sa_fault.line = Sa_fault.Branch br; value } ->
    let sink = br.Circuit.sink in
    let gate = Circuit.gate t.c sink in
    let good_ins = Array.map f gate.Circuit.fanins in
    let delta =
      Array.mapi
        (fun pin g ->
          if pin = br.Circuit.pin then against_constant (f g) value
          else Bdd.zero m)
        gate.Circuit.fanins
    in
    [ (sink, Rules.delta m gate.Circuit.kind ~good:good_ins ~delta) ]
  | Fault.Bridged { Bridge.a; b; kind } ->
    let wired =
      match kind with
      | Bridge.Wired_and -> Bdd.band m (f a) (f b)
      | Bridge.Wired_or -> Bdd.bor m (f a) (f b)
    in
    [ (a, Bdd.bxor m (f a) wired); (b, Bdd.bxor m (f b) wired) ]
  | Fault.Multi_stuck sites ->
    List.map (fun (s, value) -> (s, against_constant (f s) value)) sites

(* Difference at one output, computed entirely inside its cone manager. *)
let po_delta t ctx fault =
  let m = ctx.m in
  let zero = Bdd.zero m in
  let sites = Fault.sites fault in
  let site_cone = Circuit.fanout_cone t.c sites in
  if not site_cone.(ctx.po) then zero
  else begin
    let deltas = Array.make (Circuit.num_gates t.c) zero in
    let inits = initial_deltas t ctx fault in
    List.iter (fun (net, d) -> deltas.(net) <- d) inits;
    let is_site = Array.make (Circuit.num_gates t.c) false in
    List.iter (fun (net, _) -> is_site.(net) <- true) inits;
    Array.iteri
      (fun g (gate : Circuit.gate) ->
        if
          site_cone.(g) && ctx.in_cone.(g) && (not is_site.(g))
          && gate.kind <> Gate.Input
          && Array.exists
               (fun f -> not (Bdd.is_zero m deltas.(f)))
               gate.Circuit.fanins
        then
          let good_ins = Array.map (good t ctx) gate.Circuit.fanins in
          let delta = Array.map (fun f -> deltas.(f)) gate.Circuit.fanins in
          deltas.(g) <- Rules.delta m gate.Circuit.kind ~good:good_ins ~delta)
      t.c.Circuit.gates;
    deltas.(ctx.po)
  end

let test_set t fault =
  Array.fold_left
    (fun acc ctx ->
      let d = po_delta t ctx fault in
      if Bdd.is_zero ctx.m d then acc
      else Bdd.bor t.shared acc (Bdd.rebuild ~src:ctx.m ~dst:t.shared d))
    (Bdd.zero t.shared) t.ctxs

let detectability t fault = Bdd.sat_fraction t.shared (test_set t fault)
