(** Cone decomposition of Difference Propagation (the paper's §4.2
    speed-up, ref [21]).

    Instead of one symbolic evaluation of the whole circuit, each
    primary output gets its own engine over its fanin-cone subcircuit
    with a cone-local (DFS) variable order.  Per-output differences are
    computed in the small cone managers and rebuilt into one shared
    manager for the exact union — unlike the paper's decomposition this
    variant masks no functional interactions, so results stay exact; the
    trade-off is rebuild cost, which the ablation benchmark measures. *)

type t

val create : Circuit.t -> t

val cones : t -> int
(** Number of per-output cones (= primary outputs). *)

val max_cone_nets : t -> int
(** Size of the largest cone subcircuit. *)

val test_set : t -> Fault.t -> Bdd.t
(** Complete test set in the shared manager. *)

val shared_manager : t -> Bdd.manager

val detectability : t -> Fault.t -> float
(** Exact detectability; agrees with {!Engine.analyze}. *)
