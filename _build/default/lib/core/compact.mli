(** Test-set compaction driven by complete test sets — one of the
    paper's "implications to test": once every fault's full test set is
    known, small covering test sets follow from set covering rather than
    one-test-per-fault generation.

    The greedy heuristic is hardest-fault-first: repeatedly take the
    undetected fault with the smallest remaining test set, intersect the
    test sets of all undetected faults with it to pick the vector
    covering the most of them, and drop everything that vector detects
    (by exact BDD membership, not simulation sampling). *)

type outcome = {
  vectors : bool array list;  (** the compacted test set, in pick order *)
  covered : int;  (** faults detected by [vectors] *)
  undetectable : int;  (** faults with empty test sets *)
}

val greedy : Engine.t -> Fault.t list -> outcome
(** Cover every detectable fault in the list. *)

val verify : Circuit.t -> Fault.t list -> bool array list -> bool
(** Simulation check: every detectable-by-the-vectors fault claim holds
    — i.e. each fault in the list is either detected by some vector or
    undetectable (per simulation of the vectors only). *)
