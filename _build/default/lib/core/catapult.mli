(** A CATAPULT-style test generator (Gaede–Ross–Mercer–Butler, DAC'88 —
    the paper's ref [13]): observability functions are derived
    {e disjointly} from the control information, through the explicit
    Boolean difference the paper says Difference Propagation eliminates.

    For a stem fault s-a-v on net [s], the complete test set is

      (f_s xor v)  AND  OR_po (po|_{s=0} xor po|_{s=1})

    computed in a private manager with an auxiliary variable standing
    for the faulted line (branch faults substitute the single sink pin
    instead).  The result is exact and must equal the Difference
    Propagation test set — asserted in the test suite — but pays the
    full-cone re-evaluation and composition costs DP's rules avoid; the
    [catapult] bench artifact measures the gap. *)

val observability_fraction : Engine.t -> int -> float
(** Fraction of the input space under which a change on the net is
    visible at some primary output (SAT fraction of the OR of Boolean
    differences). *)

val detectability : Engine.t -> Sa_fault.t -> float
(** Exact detectability of a stuck-at fault by control AND
    observability; agrees with {!Engine.analyze}. *)

val test_cubes :
  ?limit:int -> Engine.t -> Sa_fault.t -> (int * bool) list list
(** Satisfying cubes of the Boolean-difference test set, as (input
    position, value) literals — same format as {!Engine.test_cubes}. *)
