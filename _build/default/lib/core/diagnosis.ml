type observation = { vector : bool array; failing : bool array }

let predict engine fault vector =
  let m = Engine.manager engine in
  Array.map
    (fun d -> Bdd.eval m d (fun pos -> vector.(pos)))
    (Engine.po_differences engine fault)

let observe c fault vector =
  let words = Logic_sim.pack_patterns c [ vector ] in
  let good = Logic_sim.outputs_of c (Logic_sim.eval_words c words) in
  let faulty =
    Logic_sim.outputs_of c (Logic_sim.eval_words_faulty c fault words)
  in
  {
    vector;
    failing =
      Array.init (Array.length good) (fun i ->
          Int64.logand (Int64.logxor good.(i) faulty.(i)) 1L <> 0L);
  }

let consistent engine fault obs =
  predict engine fault obs.vector = obs.failing

let candidates engine faults observations =
  List.filter
    (fun fault -> List.for_all (consistent engine fault) observations)
    faults

let distinguishing_vector engine f1 f2 =
  let m = Engine.manager engine in
  let d1 = Engine.po_differences engine f1 in
  let d2 = Engine.po_differences engine f2 in
  let disagree =
    Array.to_list (Array.mapi (fun i a -> Bdd.bxor m a d2.(i)) d1)
    |> Bdd.bor_list m
  in
  match Bdd.any_sat m disagree with
  | None -> None
  | Some literals ->
    let v = Array.make (Circuit.num_inputs (Engine.circuit engine)) false in
    List.iter (fun (pos, value) -> v.(pos) <- value) literals;
    Some v

type session = { applied : observation list; remaining : Fault.t list }

let diagnose ?(max_vectors = 32) engine faults ~actual =
  let c = Engine.circuit engine in
  let apply session vector =
    let obs = observe c actual vector in
    {
      applied = session.applied @ [ obs ];
      remaining = candidates engine session.remaining [ obs ];
    }
  in
  let initial = { applied = []; remaining = faults } in
  let session =
    match Engine.test_vector engine actual with
    | Some v -> apply initial v
    | None -> initial
  in
  (* Repeatedly split the first still-distinguishable candidate pair. *)
  let rec refine session budget =
    if budget <= 0 then session
    else begin
      let rec find_split = function
        | f1 :: rest ->
          let split =
            List.find_map
              (fun f2 -> distinguishing_vector engine f1 f2)
              rest
          in
          (match split with Some v -> Some v | None -> find_split rest)
        | [] -> None
      in
      match find_split session.remaining with
      | None -> session
      | Some vector -> refine (apply session vector) (budget - 1)
    end
  in
  refine session (max_vectors - List.length session.applied)
