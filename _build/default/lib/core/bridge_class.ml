type summary = {
  kind : Bridge.kind;
  total : int;
  stuck_like : int;
  proportion : float;
}

let is_stuck_like engine bridge =
  let m = Engine.manager engine in
  let sym = Engine.symbolic engine in
  let f net = Symbolic.node_function sym net in
  let wired =
    match bridge.Bridge.kind with
    | Bridge.Wired_and -> Bdd.band m (f bridge.Bridge.a) (f bridge.Bridge.b)
    | Bridge.Wired_or -> Bdd.bor m (f bridge.Bridge.a) (f bridge.Bridge.b)
  in
  Bdd.is_const m wired

let classify engine bridges =
  let summarise kind =
    let of_kind = List.filter (fun b -> b.Bridge.kind = kind) bridges in
    let total = List.length of_kind in
    let stuck_like =
      List.length (List.filter (is_stuck_like engine) of_kind)
    in
    {
      kind;
      total;
      stuck_like;
      proportion =
        (if total = 0 then 0.0
         else float_of_int stuck_like /. float_of_int total);
    }
  in
  [ summarise Bridge.Wired_and; summarise Bridge.Wired_or ]
  |> List.filter (fun s -> s.total > 0 || bridges = [])
