(** Imperative combinator DSL for constructing circuits in OCaml code.

    {[
      let b = Builder.make ~title:"fulladder" in
      let a = Builder.input b "a" and bi = Builder.input b "b" in
      let cin = Builder.input b "cin" in
      let s1 = Builder.gate b Gate.Xor [ a; bi ] in
      let sum = Builder.gate b Gate.Xor [ s1; cin ] in
      Builder.output b ~name:"sum" sum;
      Builder.finish b
    ]} *)

type t

type net
(** Handle to a net under construction. *)

val make : title:string -> t

val input : t -> string -> net
(** Declare a primary input. *)

val gate : ?name:string -> t -> Gate.kind -> net list -> net
(** Add a gate; an unnamed gate gets a fresh [ng<N>] name. *)

val const0 : t -> net
val const1 : t -> net
val not_ : ?name:string -> t -> net -> net
val and_ : ?name:string -> t -> net list -> net
val nand : ?name:string -> t -> net list -> net
val or_ : ?name:string -> t -> net list -> net
val nor : ?name:string -> t -> net list -> net
val xor : ?name:string -> t -> net list -> net
val xnor : ?name:string -> t -> net list -> net
val buf : ?name:string -> t -> net -> net

val output : ?name:string -> t -> net -> unit
(** Mark a net as a primary output.  With [~name], the net is first given
    that name via a BUF when it already has another one. *)

val name_of : t -> net -> string

val finish : t -> Circuit.t
(** Validate and produce the circuit.  @raise Circuit.Malformed. *)
