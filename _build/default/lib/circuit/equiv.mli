(** Formal combinational equivalence checking via the shared OBDD
    substrate: build both circuits' output functions in one manager and
    compare node handles.  Exact (no sampling); used to validate
    function-preserving transforms such as the c499 → c1355 expansion. *)

type verdict =
  | Equivalent
  | Different of {
      output : int;  (** index into the first circuit's output list *)
      witness : bool array;  (** input vector separating the circuits *)
    }
  | Interface_mismatch of string
      (** input/output counts differ (names are not compared). *)

val check : Circuit.t -> Circuit.t -> verdict
(** Inputs are matched positionally (i-th input to i-th input), outputs
    likewise — the convention of the [.bench] benchmarks. *)

val equivalent : Circuit.t -> Circuit.t -> bool
(** [check] collapsed to a boolean. *)

val pp_verdict : Circuit.t -> Format.formatter -> verdict -> unit
