(* All transforms re-derive a name-based definition list, rewrite it, and
   rebuild through Circuit.create so every structural invariant is
   re-checked for free. *)

let defs_of c =
  Array.to_list c.Circuit.gates
  |> List.filter_map (fun (g : Circuit.gate) ->
         if g.kind = Gate.Input then None
         else
           Some
             ( g.name,
               g.kind,
               Array.to_list g.fanins
               |> List.map (fun f -> (Circuit.gate c f).Circuit.name) ))

let input_names c =
  Array.to_list c.Circuit.inputs
  |> List.map (fun g -> (Circuit.gate c g).Circuit.name)

let output_names c =
  Array.to_list c.Circuit.outputs
  |> List.map (fun o -> (Circuit.gate c o).Circuit.name)

(* Fresh-name generator seeded with every name already in the circuit. *)
let namer c =
  let used = Hashtbl.create (Circuit.num_gates c * 2) in
  Array.iter
    (fun (g : Circuit.gate) -> Hashtbl.replace used g.name ())
    c.Circuit.gates;
  fun base ->
    let rec try_at i =
      let candidate = Printf.sprintf "%s_x%d" base i in
      if Hashtbl.mem used candidate then try_at (i + 1)
      else begin
        Hashtbl.replace used candidate ();
        candidate
      end
    in
    try_at 1

let rebuild c defs =
  Circuit.create ~title:c.Circuit.title ~inputs:(input_names c)
    ~outputs:(output_names c) defs

let expand_to_two_input c =
  let fresh = namer c in
  let expand (name, kind, fanins) =
    match (kind, fanins) with
    | (Gate.And | Gate.Or | Gate.Xor), [ a ] -> [ (name, Gate.Buf, [ a ]) ]
    | (Gate.Nand | Gate.Nor | Gate.Xnor), [ a ] -> [ (name, Gate.Not, [ a ]) ]
    | ( (Gate.And | Gate.Or | Gate.Xor | Gate.Nand | Gate.Nor | Gate.Xnor),
        (_ :: _ :: _ :: _ as fanins) ) ->
      let base = Gate.base_of_inverted kind in
      let extra = ref [] in
      (* Balanced reduction: halve the operand list until two remain, the
         final (possibly inverting) gate keeps the original name. *)
      let rec reduce = function
        | [ a; b ] -> (a, b)
        | operands ->
          let rec pair = function
            | a :: b :: rest ->
              let t = fresh name in
              extra := (t, base, [ a; b ]) :: !extra;
              t :: pair rest
            | leftover -> leftover
          in
          reduce (pair operands)
      in
      let a, b = reduce fanins in
      List.rev ((name, kind, [ a; b ]) :: !extra)
    | _ -> [ (name, kind, fanins) ]
  in
  rebuild c (List.concat_map expand (defs_of c))

let xor_to_nand c =
  let fresh = namer c in
  let expand (name, kind, fanins) =
    match (kind, fanins) with
    | (Gate.Xor | Gate.Xnor), [ a; b ] ->
      let t1 = fresh name and t2 = fresh name and t3 = fresh name in
      let common =
        [
          (t1, Gate.Nand, [ a; b ]);
          (t2, Gate.Nand, [ a; t1 ]);
          (t3, Gate.Nand, [ b; t1 ]);
        ]
      in
      if kind = Gate.Xor then common @ [ (name, Gate.Nand, [ t2; t3 ]) ]
      else
        let t4 = fresh name in
        common
        @ [ (t4, Gate.Nand, [ t2; t3 ]); (name, Gate.Nand, [ t4; t4 ]) ]
    | (Gate.Xor | Gate.Xnor), _ :: _ :: _ ->
      invalid_arg "Transform.xor_to_nand: run expand_to_two_input first"
    | _ -> [ (name, kind, fanins) ]
  in
  rebuild c (List.concat_map expand (defs_of c))

let add_observation_points c nets =
  let existing = output_names c in
  let added =
    nets
    |> List.filter (fun net -> not (Circuit.is_output c net))
    |> List.map (fun net -> (Circuit.gate c net).Circuit.name)
    |> List.sort_uniq String.compare
  in
  Circuit.create ~title:c.Circuit.title ~inputs:(input_names c)
    ~outputs:(existing @ added) (defs_of c)

let add_control_point c ~net ~polarity =
  let target = (Circuit.gate c net).Circuit.name in
  let fresh = namer c in
  let original = fresh target in
  let control = fresh (target ^ "_ctl") in
  let kind = match polarity with `Force0 -> Gate.And | `Force1 -> Gate.Or in
  let rename name = if String.equal name target then original else name in
  let defs =
    defs_of c
    |> List.map (fun (name, k, fanins) -> (rename name, k, fanins))
  in
  let defs = defs @ [ (target, kind, [ original; control ]) ] in
  let inputs = List.map rename (input_names c) @ [ control ] in
  (* A renamed primary input stays an input; an internal net keeps its own
     definition under the new name, and the inserted gate takes over the
     original name so all existing sinks observe the controlled value. *)
  Circuit.create ~title:c.Circuit.title ~inputs ~outputs:(output_names c) defs

let definitions = defs_of

let strip_unreachable c =
  let keep = Array.make (Circuit.num_gates c) false in
  Array.iter
    (fun o -> List.iter (fun g -> keep.(g) <- true) (Circuit.fanin_cone c o))
    c.Circuit.outputs;
  let defs =
    defs_of c
    |> List.filter (fun (name, _, _) ->
           match Circuit.index_of_name c name with
           | Some i -> keep.(i)
           | None -> false)
  in
  rebuild c defs
