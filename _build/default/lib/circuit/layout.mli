(** Approximate layout coordinates, after the paper's §2.2.

    With no real layouts available, the paper estimates wire distance from
    the netlist alone: a gate's X coordinate is its level (distance in
    gates from the primary inputs); primary inputs take Y coordinates
    [0 .. n-1] in declaration order (the benchmark ordering is assumed
    meaningful); every other gate's Y coordinate is the average of its
    fanins' Y coordinates, assigned level by level.  This averages over
    "the aggregate of all possible layouts for that PI ordering". *)

type t

val compute : Circuit.t -> t

val position : t -> int -> float * float
(** (x, y) of a net. *)

val distance : t -> int -> int -> float
(** Euclidean distance between two nets' estimated positions. *)

val max_distance : t -> (int * int) list -> float
(** Largest {!distance} over a list of net pairs (0 on the empty list). *)

val normalized_distance : t -> max:float -> int -> int -> float
(** Distance scaled into [0, 1] by a precomputed maximum. *)
