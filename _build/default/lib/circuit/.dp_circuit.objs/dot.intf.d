lib/circuit/dot.mli: Circuit Symbolic
