lib/circuit/ordering.ml: Array Circuit Fun Gate List Printf Prng
