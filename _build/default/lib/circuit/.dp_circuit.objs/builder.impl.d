lib/circuit/builder.ml: Circuit Gate Hashtbl List Printf
