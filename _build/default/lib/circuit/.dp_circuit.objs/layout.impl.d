lib/circuit/layout.ml: Array Circuit Float Gate List
