lib/circuit/equiv.mli: Circuit Format
