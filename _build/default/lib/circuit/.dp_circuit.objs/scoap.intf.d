lib/circuit/scoap.mli: Circuit Format
