lib/circuit/transform.ml: Array Circuit Gate Hashtbl List Printf String
