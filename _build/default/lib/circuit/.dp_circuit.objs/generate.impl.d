lib/circuit/generate.ml: Array Builder Gate List Printf Prng
