lib/circuit/scoap.ml: Array Circuit Format Fun Gate List
