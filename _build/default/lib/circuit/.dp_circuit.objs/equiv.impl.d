lib/circuit/equiv.ml: Array Bdd Circuit Format Gate List Printf String
