lib/circuit/signal_prob.mli: Circuit Symbolic
