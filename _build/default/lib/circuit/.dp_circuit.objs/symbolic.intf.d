lib/circuit/symbolic.mli: Bdd Circuit Ordering
