lib/circuit/dot.ml: Array Bdd Buffer Circuit Gate Hashtbl List Option Printf String Symbolic
