lib/circuit/signal_prob.ml: Array Circuit Float Fun Gate Symbolic
