lib/circuit/gate.ml: Array Format Fun Int64 Printf String
