lib/circuit/stats.ml: Array Circuit Format Gate Hashtbl List Option Stdlib
