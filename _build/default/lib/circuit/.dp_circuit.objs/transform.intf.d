lib/circuit/transform.mli: Circuit Gate
