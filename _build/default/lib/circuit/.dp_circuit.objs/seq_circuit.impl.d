lib/circuit/seq_circuit.ml: Array Bench_format Circuit Gate List Printf String Transform
