lib/circuit/bench_format.mli: Circuit
