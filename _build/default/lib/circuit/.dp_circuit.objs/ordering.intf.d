lib/circuit/ordering.mli: Circuit
