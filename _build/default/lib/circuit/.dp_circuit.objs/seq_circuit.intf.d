lib/circuit/seq_circuit.mli: Circuit
