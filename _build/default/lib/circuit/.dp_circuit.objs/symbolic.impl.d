lib/circuit/symbolic.ml: Array Bdd Circuit Gate List Ordering
