(** Approximate signal probabilities by gate-local propagation under an
    independence assumption (Parker–McCluskey style): linear time but
    wrong wherever fanout reconverges.  The paper's motivation for
    Difference Propagation is exactly that such approximations ([19])
    were the state of the art for detection-probability profiles; the
    [approx-vs-exact] benchmark quantifies the estimator's error against
    the exact OBDD syndromes on every benchmark circuit. *)

val estimate : ?input_probability:float -> Circuit.t -> float array
(** One probability-of-one per net; primary inputs get
    [input_probability] (default 0.5). *)

type error_summary = {
  nets : int;
  mean_abs_error : float;
  max_abs_error : float;
  worst_net : int;
  exact_on_trees : bool;
      (** true when every fanout-free net matched the exact syndrome *)
}

val compare_with_exact : Circuit.t -> Symbolic.t -> error_summary
(** Estimator error against the exact syndromes from a symbolic
    evaluation of the same circuit. *)
