type t = { cc0 : int array; cc1 : int array; co : int array }

let unreachable = max_int

(* Saturating addition keeps unreachable observabilities absorbing. *)
let ( ++ ) a b =
  if a = unreachable || b = unreachable then unreachable else a + b

let sum_over a f = Array.fold_left (fun acc x -> acc ++ f x) 0 a

let min_over a f =
  Array.fold_left (fun acc x -> min acc (f x)) unreachable a

let compute c =
  let n = Circuit.num_gates c in
  let cc0 = Array.make n 1 in
  let cc1 = Array.make n 1 in
  (* Forward sweep: controllabilities from fanin controllabilities. *)
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      let ins = gate.Circuit.fanins in
      let c0 i = cc0.(ins.(i)) and c1 i = cc1.(ins.(i)) in
      let idx = Array.init (Array.length ins) Fun.id in
      match gate.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Const0 ->
        cc0.(g) <- 1;
        cc1.(g) <- unreachable
      | Gate.Const1 ->
        cc0.(g) <- unreachable;
        cc1.(g) <- 1
      | Gate.Buf ->
        cc0.(g) <- c0 0 ++ 1;
        cc1.(g) <- c1 0 ++ 1
      | Gate.Not ->
        cc0.(g) <- c1 0 ++ 1;
        cc1.(g) <- c0 0 ++ 1
      | Gate.And ->
        cc1.(g) <- sum_over idx c1 ++ 1;
        cc0.(g) <- min_over idx c0 ++ 1
      | Gate.Nand ->
        cc0.(g) <- sum_over idx c1 ++ 1;
        cc1.(g) <- min_over idx c0 ++ 1
      | Gate.Or ->
        cc0.(g) <- sum_over idx c0 ++ 1;
        cc1.(g) <- min_over idx c1 ++ 1
      | Gate.Nor ->
        cc1.(g) <- sum_over idx c0 ++ 1;
        cc0.(g) <- min_over idx c1 ++ 1
      | Gate.Xor | Gate.Xnor ->
        (* Fold pairwise: cost of parity 1 over a prefix and the next
           input is the cheaper of (1,0) and (0,1), and so on. *)
        let rec fold i acc0 acc1 =
          if i >= Array.length ins then (acc0, acc1)
          else
            let z0 = min (acc0 ++ c0 i) (acc1 ++ c1 i) in
            let z1 = min (acc0 ++ c1 i) (acc1 ++ c0 i) in
            fold (i + 1) z0 z1
        in
        let parity0, parity1 = fold 1 (c0 0) (c1 0) in
        if gate.Circuit.kind = Gate.Xor then begin
          cc0.(g) <- parity0 ++ 1;
          cc1.(g) <- parity1 ++ 1
        end
        else begin
          cc0.(g) <- parity1 ++ 1;
          cc1.(g) <- parity0 ++ 1
        end)
    c.Circuit.gates;
  (* Backward sweep: observabilities; stems take the cheapest branch. *)
  let co = Array.make n unreachable in
  Array.iter (fun o -> co.(o) <- 0) c.Circuit.outputs;
  for g = n - 1 downto 0 do
    let gate = Circuit.gate c g in
    if co.(g) <> unreachable && gate.Circuit.kind <> Gate.Input then begin
      let ins = gate.Circuit.fanins in
      let side_cost pin =
        let others =
          Array.to_list ins
          |> List.filteri (fun j _ -> j <> pin)
        in
        match gate.Circuit.kind with
        | Gate.And | Gate.Nand ->
          List.fold_left (fun acc f -> acc ++ cc1.(f)) 0 others
        | Gate.Or | Gate.Nor ->
          List.fold_left (fun acc f -> acc ++ cc0.(f)) 0 others
        | Gate.Xor | Gate.Xnor ->
          List.fold_left (fun acc f -> acc ++ min cc0.(f) cc1.(f)) 0 others
        | Gate.Buf | Gate.Not -> 0
        | Gate.Input | Gate.Const0 | Gate.Const1 -> 0
      in
      Array.iteri
        (fun pin f ->
          let through = co.(g) ++ side_cost pin ++ 1 in
          if through < co.(f) then co.(f) <- through)
        ins
    end
  done;
  { cc0; cc1; co }

let controllability t ~net ~value = if value then t.cc1.(net) else t.cc0.(net)

let observability t net = t.co.(net)

let stuck_at_difficulty t ~stem ~value =
  controllability t ~net:stem ~value:(not value) ++ observability t stem

let pp c fmt t =
  Format.fprintf fmt "  %-12s %6s %6s %8s@." "net" "CC0" "CC1" "CO";
  let cell v = if v = unreachable then "inf" else string_of_int v in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      Format.fprintf fmt "  %-12s %6s %6s %8s@." gate.Circuit.name
        (cell t.cc0.(g)) (cell t.cc1.(g)) (cell t.co.(g)))
    c.Circuit.gates
