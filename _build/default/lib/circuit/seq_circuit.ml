type t = {
  title : string;
  core : Circuit.t;
  num_inputs : int;
  num_outputs : int;
  num_flops : int;
  flop_names : string list;
}

exception Malformed of string

type init = Zero | Free

(* Pull "q = DFF(d)" lines out of bench text; the rest goes through the
   ordinary combinational parser with q re-declared as an input and d as
   an extra output. *)
let extract_flops text =
  let flops = ref [] in
  let kept = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         let no_comment =
           match String.index_opt raw '#' with
           | Some i -> String.sub raw 0 i
           | None -> raw
         in
         let upper = String.uppercase_ascii no_comment in
         let is_dff =
           match String.index_opt upper '=' with
           | Some eq ->
             let rhs = String.trim (String.sub upper (eq + 1)
                                      (String.length upper - eq - 1)) in
             String.length rhs >= 4 && String.sub rhs 0 4 = "DFF("
           | None -> false
         in
         if is_dff then begin
           match String.index_opt no_comment '=' with
           | None -> assert false
           | Some eq ->
             let q = String.trim (String.sub no_comment 0 eq) in
             let rhs =
               String.trim
                 (String.sub no_comment (eq + 1)
                    (String.length no_comment - eq - 1))
             in
             (match (String.index_opt rhs '(', String.rindex_opt rhs ')') with
             | Some o, Some cl when cl > o ->
               let d = String.trim (String.sub rhs (o + 1) (cl - o - 1)) in
               if q = "" || d = "" then
                 raise (Malformed "empty DFF operand");
               flops := (q, d) :: !flops
             | _ -> raise (Malformed ("unparsable DFF line: " ^ raw)))
         end
         else kept := raw :: !kept);
  (List.rev !flops, String.concat "\n" (List.rev !kept))

let wrap ~title core ~flops =
  let q_names = List.map fst flops in
  let d_names = List.map snd flops in
  List.iter
    (fun q ->
      match Circuit.index_of_name core q with
      | Some g when Circuit.is_input core g -> ()
      | Some _ -> raise (Malformed ("flop output " ^ q ^ " is not an input"))
      | None -> raise (Malformed ("flop output " ^ q ^ " undefined")))
    q_names;
  List.iter
    (fun d ->
      if Circuit.index_of_name core d = None then
        raise (Malformed ("flop input " ^ d ^ " undefined")))
    d_names;
  (* Normalise the core's interface: real PIs first (declaration order,
     flop Qs excluded), then the Qs; real POs first, then the Ds. *)
  let input_names =
    Array.to_list core.Circuit.inputs
    |> List.map (fun g -> (Circuit.gate core g).Circuit.name)
    |> List.filter (fun n -> not (List.mem n q_names))
  in
  let output_names =
    Array.to_list core.Circuit.outputs
    |> List.map (fun o -> (Circuit.gate core o).Circuit.name)
  in
  let normalised =
    Circuit.create ~title
      ~inputs:(input_names @ q_names)
      ~outputs:(output_names @ d_names)
      (Transform.definitions core)
  in
  {
    title;
    core = normalised;
    num_inputs = List.length input_names;
    num_outputs = List.length output_names;
    num_flops = List.length flops;
    flop_names = q_names;
  }

let parse ~title text =
  let flops, combinational_text = extract_flops text in
  if flops = [] then raise (Malformed "no DFFs: use Bench_format.parse");
  let with_pseudo_inputs =
    String.concat "\n"
      (List.map (fun (q, _) -> Printf.sprintf "INPUT(%s)" q) flops)
    ^ "\n" ^ combinational_text
  in
  let core = Bench_format.parse ~title with_pseudo_inputs in
  wrap ~title core ~flops

let of_circuit core ~flops = wrap ~title:core.Circuit.title core ~flops

let frame_name name i = Printf.sprintf "%s@%d" name i

let unroll t ~frames ~init =
  if frames < 1 then invalid_arg "Seq_circuit.unroll: frames must be >= 1";
  let core = t.core in
  let core_defs = Transform.definitions core in
  let real_inputs =
    Array.to_list core.Circuit.inputs
    |> List.map (fun g -> (Circuit.gate core g).Circuit.name)
    |> List.filteri (fun i _ -> i < t.num_inputs)
  in
  let real_outputs =
    Array.to_list core.Circuit.outputs
    |> List.map (fun o -> (Circuit.gate core o).Circuit.name)
    |> List.filteri (fun i _ -> i < t.num_outputs)
  in
  let d_names =
    Array.to_list core.Circuit.outputs
    |> List.map (fun o -> (Circuit.gate core o).Circuit.name)
    |> List.filteri (fun i _ -> i >= t.num_outputs)
  in
  let defs = ref [] in
  let inputs = ref [] in
  let outputs = ref [] in
  for i = 0 to frames - 1 do
    let r name = frame_name name i in
    (* Frame-local gate definitions. *)
    List.iter
      (fun (name, kind, fanins) ->
        defs := (r name, kind, List.map r fanins) :: !defs)
      core_defs;
    (* Real inputs become per-frame primary inputs. *)
    List.iter (fun name -> inputs := r name :: !inputs) real_inputs;
    (* State inputs: initial state at frame 0, previous frame's
       next-state nets afterwards. *)
    List.iteri
      (fun k q ->
        if i = 0 then
          match init with
          | Zero -> defs := (r q, Gate.Const0, []) :: !defs
          | Free -> inputs := r q :: !inputs
        else
          let d_prev = frame_name (List.nth d_names k) (i - 1) in
          defs := (r q, Gate.Buf, [ d_prev ]) :: !defs)
      t.flop_names;
    List.iter (fun name -> outputs := r name :: !outputs) real_outputs
  done;
  Circuit.create
    ~title:(Printf.sprintf "%s[%d frames]" t.title frames)
    ~inputs:(List.rev !inputs) ~outputs:(List.rev !outputs)
    (List.rev !defs)

let step t ~state ~inputs =
  if Array.length state <> t.num_flops then
    invalid_arg "Seq_circuit.step: state width";
  if Array.length inputs <> t.num_inputs then
    invalid_arg "Seq_circuit.step: input width";
  let all = Circuit.eval_outputs t.core (Array.append inputs state) in
  (Array.sub all 0 t.num_outputs, Array.sub all t.num_outputs t.num_flops)
