type t = { circuit : Circuit.t; manager : Bdd.manager; node : Bdd.t array }

let gate_function m kind operands =
  match (kind : Gate.kind) with
  | Gate.Input -> invalid_arg "Symbolic: Input has no local function"
  | Gate.Const0 -> Bdd.zero m
  | Gate.Const1 -> Bdd.one m
  | Gate.Buf -> List.nth operands 0
  | Gate.Not -> Bdd.bnot m (List.nth operands 0)
  | Gate.And -> Bdd.band_list m operands
  | Gate.Nand -> Bdd.bnot m (Bdd.band_list m operands)
  | Gate.Or -> Bdd.bor_list m operands
  | Gate.Nor -> Bdd.bnot m (Bdd.bor_list m operands)
  | Gate.Xor -> Bdd.bxor_list m operands
  | Gate.Xnor -> Bdd.bnot m (Bdd.bxor_list m operands)

let build ?(heuristic = Ordering.Natural) circuit =
  let n_inputs = Circuit.num_inputs circuit in
  let order = Ordering.order heuristic circuit in
  let manager = Bdd.create ~order n_inputs in
  let node = Array.make (Circuit.num_gates circuit) (Bdd.zero manager) in
  Array.iteri
    (fun g gate ->
      node.(g) <-
        (match gate.Circuit.kind with
        | Gate.Input ->
          (match Circuit.input_position circuit g with
          | Some pos -> Bdd.var manager pos
          | None -> assert false)
        | kind ->
          let operands =
            Array.to_list gate.Circuit.fanins
            |> List.map (fun f -> node.(f))
          in
          gate_function manager kind operands))
    circuit.Circuit.gates;
  { circuit; manager; node }

let circuit t = t.circuit
let manager t = t.manager
let node_function t g = t.node.(g)

let output_functions t =
  Array.map (fun o -> t.node.(o)) t.circuit.Circuit.outputs

let syndrome t g = Bdd.sat_fraction t.manager t.node.(g)
let total_nodes t = Bdd.allocated_nodes t.manager

let eval_consistent t inputs =
  let concrete = Circuit.eval t.circuit inputs in
  let assign pos = inputs.(pos) in
  let n = Circuit.num_gates t.circuit in
  let rec check g =
    g >= n
    || Bdd.eval t.manager t.node.(g) assign = concrete.(g) && check (g + 1)
  in
  check 0
