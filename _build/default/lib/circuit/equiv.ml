type verdict =
  | Equivalent
  | Different of { output : int; witness : bool array }
  | Interface_mismatch of string

(* Evaluate a circuit's outputs in an existing manager whose variables
   are input positions (shared by both sides). *)
let outputs_in manager c =
  let node = Array.make (Circuit.num_gates c) (Bdd.zero manager) in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      node.(g) <-
        (match gate.Circuit.kind with
        | Gate.Input ->
          (match Circuit.input_position c g with
          | Some pos -> Bdd.var manager pos
          | None -> assert false)
        | Gate.Const0 -> Bdd.zero manager
        | Gate.Const1 -> Bdd.one manager
        | Gate.Buf -> node.(gate.Circuit.fanins.(0))
        | Gate.Not -> Bdd.bnot manager node.(gate.Circuit.fanins.(0))
        | (Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor)
          as kind ->
          let operands = Array.map (Array.get node) gate.Circuit.fanins in
          let base =
            match Gate.base_of_inverted kind with
            | Gate.And ->
              Array.fold_left (Bdd.band manager) (Bdd.one manager) operands
            | Gate.Or ->
              Array.fold_left (Bdd.bor manager) (Bdd.zero manager) operands
            | Gate.Xor ->
              Array.fold_left (Bdd.bxor manager) (Bdd.zero manager) operands
            | Gate.Buf | Gate.Not | Gate.Input | Gate.Const0 | Gate.Const1
            | Gate.Nand | Gate.Nor | Gate.Xnor ->
              assert false
          in
          if Gate.inverted kind then Bdd.bnot manager base else base))
    c.Circuit.gates;
  Array.map (Array.get node) c.Circuit.outputs

let check c1 c2 =
  if Circuit.num_inputs c1 <> Circuit.num_inputs c2 then
    Interface_mismatch
      (Printf.sprintf "input counts differ: %d vs %d" (Circuit.num_inputs c1)
         (Circuit.num_inputs c2))
  else if Circuit.num_outputs c1 <> Circuit.num_outputs c2 then
    Interface_mismatch
      (Printf.sprintf "output counts differ: %d vs %d"
         (Circuit.num_outputs c1) (Circuit.num_outputs c2))
  else begin
    let manager = Bdd.create (Circuit.num_inputs c1) in
    let f1 = outputs_in manager c1 in
    let f2 = outputs_in manager c2 in
    let n = Array.length f1 in
    let rec compare_outputs i =
      if i >= n then Equivalent
      else if Bdd.equal f1.(i) f2.(i) then compare_outputs (i + 1)
      else begin
        let miter = Bdd.bxor manager f1.(i) f2.(i) in
        let witness = Array.make (Circuit.num_inputs c1) false in
        (match Bdd.any_sat manager miter with
        | Some literals ->
          List.iter (fun (pos, value) -> witness.(pos) <- value) literals
        | None -> assert false);
        Different { output = i; witness }
      end
    in
    compare_outputs 0
  end

let equivalent c1 c2 = check c1 c2 = Equivalent

let pp_verdict c fmt = function
  | Equivalent -> Format.fprintf fmt "equivalent"
  | Interface_mismatch reason -> Format.fprintf fmt "interfaces differ: %s" reason
  | Different { output; witness } ->
    let name = (Circuit.gate c c.Circuit.outputs.(output)).Circuit.name in
    Format.fprintf fmt "differ at output %s under %s" name
      (String.concat ""
         (Array.to_list (Array.map (fun b -> if b then "1" else "0") witness)))
