let estimate ?(input_probability = 0.5) c =
  let p = Array.make (Circuit.num_gates c) input_probability in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      let ins = gate.Circuit.fanins in
      let prod f =
        Array.fold_left (fun acc i -> acc *. f p.(i)) 1.0 ins
      in
      match gate.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Const0 -> p.(g) <- 0.0
      | Gate.Const1 -> p.(g) <- 1.0
      | Gate.Buf -> p.(g) <- p.(ins.(0))
      | Gate.Not -> p.(g) <- 1.0 -. p.(ins.(0))
      | Gate.And -> p.(g) <- prod Fun.id
      | Gate.Nand -> p.(g) <- 1.0 -. prod Fun.id
      | Gate.Or -> p.(g) <- 1.0 -. prod (fun q -> 1.0 -. q)
      | Gate.Nor -> p.(g) <- prod (fun q -> 1.0 -. q)
      | Gate.Xor | Gate.Xnor ->
        let parity =
          Array.fold_left
            (fun acc i ->
              (* acc xor p.(i) under independence *)
              (acc *. (1.0 -. p.(i))) +. ((1.0 -. acc) *. p.(i)))
            0.0 ins
        in
        p.(g) <-
          (if gate.Circuit.kind = Gate.Xor then parity else 1.0 -. parity))
    c.Circuit.gates;
  p

type error_summary = {
  nets : int;
  mean_abs_error : float;
  max_abs_error : float;
  worst_net : int;
  exact_on_trees : bool;
}

let compare_with_exact c sym =
  let approx = estimate c in
  let fanout = Circuit.fanout_count c in
  (* A net is "tree-fed" when no net in its fanin cone fans out. *)
  let tree_fed = Array.make (Circuit.num_gates c) true in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      tree_fed.(g) <-
        Array.for_all
          (fun f -> tree_fed.(f) && fanout.(f) <= 1)
          gate.Circuit.fanins)
    c.Circuit.gates;
  let n = Circuit.num_gates c in
  let sum = ref 0.0 and worst = ref 0.0 and worst_net = ref 0 in
  let exact_on_trees = ref true in
  for g = 0 to n - 1 do
    let err = Float.abs (approx.(g) -. Symbolic.syndrome sym g) in
    sum := !sum +. err;
    if err > !worst then begin
      worst := err;
      worst_net := g
    end;
    if tree_fed.(g) && err > 1e-9 then exact_on_trees := false
  done;
  {
    nets = n;
    mean_abs_error = !sum /. float_of_int n;
    max_abs_error = !worst;
    worst_net = !worst_net;
    exact_on_trees = !exact_on_trees;
  }
