let circuit ?(highlight = []) c =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "digraph %S {" c.Circuit.title;
  line "  rankdir=LR;";
  let levels = Circuit.levels c in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      let shape =
        match gate.Circuit.kind with
        | Gate.Input -> "triangle"
        | Gate.Const0 | Gate.Const1 -> "box"
        | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
        | Gate.Xor | Gate.Xnor -> "ellipse"
      in
      let style =
        let filled = Gate.inverted gate.Circuit.kind in
        let red = List.mem g highlight in
        match (filled, red) with
        | true, true -> ", style=filled, fillcolor=red"
        | true, false -> ", style=filled, fillcolor=lightgray"
        | false, true -> ", color=red, fontcolor=red"
        | false, false -> ""
      in
      let label =
        match gate.Circuit.kind with
        | Gate.Input -> gate.Circuit.name
        | kind -> Printf.sprintf "%s\\n%s" gate.Circuit.name (Gate.name kind)
      in
      let peripheries = if Circuit.is_output c g then 2 else 1 in
      line "  g%d [label=%S, shape=%s, peripheries=%d%s];" g label shape
        peripheries style;
      Array.iter (fun f -> line "  g%d -> g%d;" f g) gate.Circuit.fanins)
    c.Circuit.gates;
  (* Rank inputs together and each level together for a readable layout. *)
  let by_level = Hashtbl.create 16 in
  Array.iteri
    (fun g _ ->
      Hashtbl.replace by_level levels.(g)
        (g :: Option.value (Hashtbl.find_opt by_level levels.(g)) ~default:[]))
    c.Circuit.gates;
  Hashtbl.iter
    (fun _ nets ->
      line "  { rank=same; %s }"
        (String.concat "; " (List.map (Printf.sprintf "g%d") nets)))
    by_level;
  line "}";
  Buffer.contents buf

let node_function sym net =
  let c = Symbolic.circuit sym in
  let var_name pos = (Circuit.gate c c.Circuit.inputs.(pos)).Circuit.name in
  Bdd.to_dot (Symbolic.manager sym) ~var_name
    ~title:(Circuit.gate c net).Circuit.name
    (Symbolic.node_function sym net)
