(** Symbolic circuit evaluation: one OBDD per net, over variables indexed
    by primary-input position.  This supplies the {e good functions} [f_i]
    that Difference Propagation consumes, and the line {e syndromes}
    (SAT fractions) of the paper's §4.1. *)

type t

val build : ?heuristic:Ordering.heuristic -> Circuit.t -> t
(** Evaluate the whole circuit symbolically (default heuristic:
    {!Ordering.Natural}). *)

val circuit : t -> Circuit.t
val manager : t -> Bdd.manager

val node_function : t -> int -> Bdd.t
(** Good function of a net. *)

val output_functions : t -> Bdd.t array
(** Good functions of the primary outputs, in declaration order. *)

val syndrome : t -> int -> float
(** Fraction of input minterms setting the net to one (Savir's syndrome). *)

val total_nodes : t -> int
(** BDD nodes allocated while building — the ordering-ablation metric. *)

val eval_consistent : t -> bool array -> bool
(** Cross-check: symbolic and concrete evaluation agree on a vector. *)
