(** Deterministic random-circuit generation for property tests and
    scaling sweeps. *)

val random :
  seed:int ->
  inputs:int ->
  gates:int ->
  outputs:int ->
  Circuit.t
(** Layered random combinational circuit: each gate draws a kind from
    {AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF} and fanins uniformly from
    nets created earlier, biased towards recent nets so depth grows.
    Outputs are drawn from the last quarter of nets.  Same seed, same
    circuit. *)

val parity_tree : inputs:int -> Circuit.t
(** Balanced XOR tree over [inputs] variables (single output). *)

val comparator : width:int -> Circuit.t
(** Equality comparator of two [width]-bit vectors (single output). *)
