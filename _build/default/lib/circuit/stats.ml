type t = {
  title : string;
  nets : int;
  inputs : int;
  outputs : int;
  gates : int;
  depth : int;
  fanout_stems : int;
  max_fanout : int;
  max_fanin : int;
  kind_counts : (Gate.kind * int) list;
}

let compute c =
  let counts = Hashtbl.create 16 in
  let max_fanin = ref 0 in
  Array.iter
    (fun (g : Circuit.gate) ->
      let current =
        Option.value (Hashtbl.find_opt counts g.kind) ~default:0
      in
      Hashtbl.replace counts g.kind (current + 1);
      max_fanin := max !max_fanin (Array.length g.fanins))
    c.Circuit.gates;
  let fanout = Circuit.fanout_count c in
  {
    title = c.Circuit.title;
    nets = Circuit.num_gates c;
    inputs = Circuit.num_inputs c;
    outputs = Circuit.num_outputs c;
    gates = Circuit.num_gates c - Circuit.num_inputs c;
    depth = Circuit.depth c;
    fanout_stems =
      Array.fold_left (fun acc k -> if k >= 2 then acc + 1 else acc) 0 fanout;
    max_fanout = Array.fold_left max 0 fanout;
    max_fanin = !max_fanin;
    kind_counts =
      Hashtbl.fold (fun kind count acc -> (kind, count) :: acc) counts []
      |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a);
  }

let pp fmt t =
  Format.fprintf fmt
    "%s: %d nets (%d PIs, %d POs, %d gates), depth %d, %d fanout stems, max \
     fanout %d, max fanin %d"
    t.title t.nets t.inputs t.outputs t.gates t.depth t.fanout_stems
    t.max_fanout t.max_fanin

let pp_table fmt stats =
  Format.fprintf fmt "%-12s %6s %4s %4s %6s %6s %6s@."
    "circuit" "nets" "PI" "PO" "gates" "depth" "stems";
  List.iter
    (fun t ->
      Format.fprintf fmt "%-12s %6d %4d %4d %6d %6d %6d@." t.title t.nets
        t.inputs t.outputs t.gates t.depth t.fanout_stems)
    stats
