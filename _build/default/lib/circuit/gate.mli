(** Combinational gate kinds and their Boolean semantics. *)

type kind =
  | Input  (** primary input; no fanins *)
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor  (** n-ary XNOR is defined as the complement of n-ary XOR *)

val all_kinds : kind list

val name : kind -> string
(** Upper-case mnemonic as used in the [.bench] netlist format. *)

val of_name : string -> kind option
(** Case-insensitive parse; recognises the aliases INV and BUFF. *)

val arity_ok : kind -> int -> bool
(** Whether a gate of this kind may have the given fanin count. *)

val inverted : kind -> bool
(** True for the kinds whose output stage is an inversion (NOT, NAND, NOR,
    XNOR).  The Difference Propagation rules are insensitive to output
    inversion, which this predicate makes explicit. *)

val base_of_inverted : kind -> kind
(** AND for NAND, OR for NOR, XOR for XNOR, BUF for NOT; identity
    otherwise. *)

val eval_bool : kind -> bool array -> bool
(** Semantics on booleans.  @raise Invalid_argument on arity violation. *)

val eval_word : kind -> int64 array -> int64
(** Bit-parallel semantics: 64 independent evaluations at once. *)

val controlling_value : kind -> bool option
(** The input value that determines the output alone (false for AND/NAND,
    true for OR/NOR), if any. *)

val pp : Format.formatter -> kind -> unit
