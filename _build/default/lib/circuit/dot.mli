(** Graphviz rendering of netlists: gates ranked by level, inputs as
    triangles, outputs doubled, inverting gates filled.  Meant for the
    small benchmarks and for inspecting fault sites. *)

val circuit : ?highlight:int list -> Circuit.t -> string
(** DOT text; [highlight] nets are drawn red (e.g. a fault's sites). *)

val node_function : Symbolic.t -> int -> string
(** The OBDD of one net's good function as DOT, with primary-input
    names on the decision nodes. *)
