(** Synchronous sequential netlists and time-frame expansion.

    The paper's method is combinational-only; its ref [16] (Cho–Bryant)
    handles sequential circuits symbolically.  This module provides the
    classical bridge: parse `.bench` netlists {e with} DFFs, expose the
    combinational core (flop outputs become pseudo primary inputs, flop
    inputs pseudo primary outputs), and unroll a bounded number of time
    frames into one combinational circuit that every analysis in this
    repository — Difference Propagation included — can consume
    unchanged. *)

type t = private {
  title : string;
  core : Circuit.t;
      (** combinational core: inputs are the real PIs followed by one
          pseudo-input per flop (the flop's Q net, keeping its name);
          outputs are the real POs followed by one pseudo-output per
          flop (its D net) *)
  num_inputs : int;  (** real primary inputs *)
  num_outputs : int;  (** real primary outputs *)
  num_flops : int;
  flop_names : string list;  (** Q net names, in declaration order *)
}

exception Malformed of string

val parse : title:string -> string -> t
(** Parse a `.bench` netlist where [q = DFF(d)] defines a flip-flop.
    @raise Malformed / @raise Bench_format.Parse_error as appropriate. *)

val of_circuit : Circuit.t -> flops:(string * string) list -> t
(** Wrap a combinational circuit whose [(q_input_name, d_net_name)]
    pairs play the flop roles (for programmatic construction). *)

type init = Zero | Free
(** Initial state: all flops reset to 0, or left symbolic (each initial
    state bit becomes a fresh primary input named [<q>@0]). *)

val unroll : t -> frames:int -> init:init -> Circuit.t
(** [frames] copies of the core in sequence: frame [i] inputs are fresh
    PIs [<name>@i], its state comes from frame [i-1]'s next-state nets
    (or the initial state), and every frame's real POs are outputs
    [<name>@i].  The result is purely combinational.
    @raise Invalid_argument when [frames < 1]. *)

val step : t -> state:bool array -> inputs:bool array -> bool array * bool array
(** Reference simulator: one clock cycle, returning (outputs, next
    state). *)
