(** Netlist statistics used when reporting experiments. *)

type t = {
  title : string;
  nets : int;
  inputs : int;
  outputs : int;
  gates : int;  (** non-input nets *)
  depth : int;
  fanout_stems : int;  (** nets with fanout of at least 2 *)
  max_fanout : int;
  max_fanin : int;
  kind_counts : (Gate.kind * int) list;  (** descending by count *)
}

val compute : Circuit.t -> t
val pp : Format.formatter -> t -> unit
val pp_table : Format.formatter -> t list -> unit
(** Aligned multi-circuit table. *)
