type net = string

type t = {
  title : string;
  mutable inputs : string list; (* reversed *)
  mutable outputs : string list; (* reversed *)
  mutable defs : (string * Gate.kind * string list) list; (* reversed *)
  names : (string, unit) Hashtbl.t;
  mutable fresh : int;
}

let make ~title =
  {
    title;
    inputs = [];
    outputs = [];
    defs = [];
    names = Hashtbl.create 256;
    fresh = 0;
  }

let claim b name =
  if Hashtbl.mem b.names name then
    raise (Circuit.Malformed (Printf.sprintf "duplicate net %S" name));
  Hashtbl.add b.names name ()

let fresh_name b =
  let rec next () =
    let name = Printf.sprintf "ng%d" b.fresh in
    b.fresh <- b.fresh + 1;
    if Hashtbl.mem b.names name then next () else name
  in
  next ()

let input b name =
  claim b name;
  b.inputs <- name :: b.inputs;
  name

let gate ?name b kind fanins =
  let name = match name with Some n -> n | None -> fresh_name b in
  claim b name;
  b.defs <- (name, kind, fanins) :: b.defs;
  name

let const0 b = gate b Gate.Const0 []
let const1 b = gate b Gate.Const1 []
let not_ ?name b a = gate ?name b Gate.Not [ a ]
let and_ ?name b nets = gate ?name b Gate.And nets
let nand ?name b nets = gate ?name b Gate.Nand nets
let or_ ?name b nets = gate ?name b Gate.Or nets
let nor ?name b nets = gate ?name b Gate.Nor nets
let xor ?name b nets = gate ?name b Gate.Xor nets
let xnor ?name b nets = gate ?name b Gate.Xnor nets
let buf ?name b a = gate ?name b Gate.Buf [ a ]

let output ?name b net =
  let net =
    match name with
    | Some n when n <> net -> buf ~name:n b net
    | Some _ | None -> net
  in
  b.outputs <- net :: b.outputs

let name_of _ net = net

let finish b =
  Circuit.create ~title:b.title ~inputs:(List.rev b.inputs)
    ~outputs:(List.rev b.outputs) (List.rev b.defs)
