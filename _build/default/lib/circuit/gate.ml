type kind =
  | Input
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

let all_kinds =
  [ Input; Const0; Const1; Buf; Not; And; Nand; Or; Nor; Xor; Xnor ]

let name = function
  | Input -> "INPUT"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"

let of_name s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "CONST0" | "GND" -> Some Const0
  | "CONST1" | "VDD" -> Some Const1
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | _ -> None

let arity_ok kind n =
  match kind with
  | Input | Const0 | Const1 -> n = 0
  | Buf | Not -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 1

let inverted = function
  | Not | Nand | Nor | Xnor -> true
  | Input | Const0 | Const1 | Buf | And | Or | Xor -> false

let base_of_inverted = function
  | Not -> Buf
  | Nand -> And
  | Nor -> Or
  | Xnor -> Xor
  | (Input | Const0 | Const1 | Buf | And | Or | Xor) as k -> k

let check kind args =
  if not (arity_ok kind (Array.length args)) then
    invalid_arg
      (Printf.sprintf "Gate.eval: %s with %d fanins" (name kind)
         (Array.length args))

let eval_bool kind args =
  check kind args;
  match kind with
  | Input -> invalid_arg "Gate.eval_bool: Input has no local function"
  | Const0 -> false
  | Const1 -> true
  | Buf -> args.(0)
  | Not -> not args.(0)
  | And -> Array.for_all Fun.id args
  | Nand -> not (Array.for_all Fun.id args)
  | Or -> Array.exists Fun.id args
  | Nor -> not (Array.exists Fun.id args)
  | Xor -> Array.fold_left ( <> ) false args
  | Xnor -> not (Array.fold_left ( <> ) false args)

let eval_word kind args =
  check kind args;
  let open Int64 in
  let fold op init = Array.fold_left op init args in
  match kind with
  | Input -> invalid_arg "Gate.eval_word: Input has no local function"
  | Const0 -> 0L
  | Const1 -> minus_one
  | Buf -> args.(0)
  | Not -> lognot args.(0)
  | And -> fold logand minus_one
  | Nand -> lognot (fold logand minus_one)
  | Or -> fold logor 0L
  | Nor -> lognot (fold logor 0L)
  | Xor -> fold logxor 0L
  | Xnor -> lognot (fold logxor 0L)

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Input | Const0 | Const1 | Buf | Not | Xor | Xnor -> None

let pp fmt kind = Format.pp_print_string fmt (name kind)
