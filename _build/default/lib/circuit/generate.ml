let random ~seed ~inputs ~gates ~outputs =
  if inputs < 1 || gates < 1 || outputs < 1 then
    invalid_arg "Generate.random: all sizes must be positive";
  let rng = Prng.create ~seed in
  let b = Builder.make ~title:(Printf.sprintf "rand-s%d" seed) in
  let nets = ref [||] in
  let push net = nets := Array.append !nets [| net |] in
  for i = 0 to inputs - 1 do
    push (Builder.input b (Printf.sprintf "i%d" i))
  done;
  let kinds =
    [| Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor;
       Gate.Not; Gate.Buf |]
  in
  (* Bias fanin choice towards recent nets so the circuit gains depth
     instead of staying a two-level network over the inputs. *)
  let pick_net () =
    let n = Array.length !nets in
    let recent = max 1 (n / 2) in
    let from_recent = Prng.int rng 4 < 3 && n > 2 in
    let idx =
      if from_recent then n - 1 - Prng.int rng recent else Prng.int rng n
    in
    !nets.(idx)
  in
  for _ = 1 to gates do
    let kind = kinds.(Prng.int rng (Array.length kinds)) in
    let arity =
      match kind with
      | Gate.Not | Gate.Buf -> 1
      | _ -> 2 + Prng.int rng 3
    in
    let fanins = List.init arity (fun _ -> pick_net ()) in
    push (Builder.gate b kind fanins)
  done;
  let n = Array.length !nets in
  let tail = max 1 (n / 4) in
  for _ = 1 to outputs do
    Builder.output b !nets.(n - 1 - Prng.int rng tail)
  done;
  Builder.finish b

let parity_tree ~inputs =
  if inputs < 1 then invalid_arg "Generate.parity_tree";
  let b = Builder.make ~title:(Printf.sprintf "parity%d" inputs) in
  let leaves =
    List.init inputs (fun i -> Builder.input b (Printf.sprintf "i%d" i))
  in
  let rec reduce = function
    | [ only ] -> only
    | nets ->
      let rec pair = function
        | a :: c :: rest -> Builder.xor b [ a; c ] :: pair rest
        | leftover -> leftover
      in
      reduce (pair nets)
  in
  Builder.output b ~name:"parity" (reduce leaves);
  Builder.finish b

let comparator ~width =
  if width < 1 then invalid_arg "Generate.comparator";
  let b = Builder.make ~title:(Printf.sprintf "eq%d" width) in
  let xs = List.init width (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let ys = List.init width (fun i -> Builder.input b (Printf.sprintf "b%d" i)) in
  let bits = List.map2 (fun x y -> Builder.xnor b [ x; y ]) xs ys in
  Builder.output b ~name:"eq" (Builder.and_ b bits);
  Builder.finish b
