type heuristic = Natural | Dfs_fanin | Reverse | Shuffled of int

let all = [ Natural; Dfs_fanin; Reverse; Shuffled 1 ]

let name = function
  | Natural -> "natural"
  | Dfs_fanin -> "dfs-fanin"
  | Reverse -> "reverse"
  | Shuffled seed -> Printf.sprintf "shuffled-%d" seed

let order heuristic c =
  let n = Circuit.num_inputs c in
  match heuristic with
  | Natural -> Array.init n (fun i -> i)
  | Reverse -> Array.init n (fun i -> n - 1 - i)
  | Shuffled seed ->
    let a = Array.init n (fun i -> i) in
    Prng.shuffle (Prng.create ~seed) a;
    a
  | Dfs_fanin ->
    let seen = Array.make (Circuit.num_gates c) false in
    let acc = ref [] in
    let rec visit g =
      if not seen.(g) then begin
        seen.(g) <- true;
        let gate = Circuit.gate c g in
        if gate.Circuit.kind = Gate.Input then begin
          match Circuit.input_position c g with
          | Some pos -> acc := pos :: !acc
          | None -> ()
        end
        else Array.iter visit gate.Circuit.fanins
      end
    in
    Array.iter visit c.Circuit.outputs;
    (* Inputs never reached from an output go last, in natural order. *)
    let reached = List.rev !acc in
    let missing =
      List.init n Fun.id
      |> List.filter (fun pos -> not (List.mem pos reached))
    in
    Array.of_list (reached @ missing)
