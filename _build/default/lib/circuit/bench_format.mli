(** Reader and writer for the ISCAS-85/89 style [.bench] netlist format.

    The dialect accepted here is combinational only:
    {v
    # comment
    INPUT(a)
    OUTPUT(f)
    f = NAND(a, b)
    v}
    Gate mnemonics are case-insensitive; [INV] and [BUFF] are aliases for
    [NOT] and [BUF].  [DFF] is rejected with a clear error. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : title:string -> string -> Circuit.t
(** Parse netlist text.  @raise Parse_error on syntax errors and
    @raise Circuit.Malformed on semantic errors. *)

val parse_file : string -> Circuit.t
(** Parse a [.bench] file; the title is the basename without extension. *)

val print : Circuit.t -> string
(** Render a circuit back to [.bench] text; [parse] of the result
    reconstructs an identical circuit. *)
