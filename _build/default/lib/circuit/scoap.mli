(** SCOAP testability measures (Goldstein 1979): topological
    controllability and observability estimates, linear-time and purely
    structural.  The paper's §4.1 relates exact detectability to fault
    topology ("detectability seems more closely correlated with
    observability than with controllability"); these measures are the
    classical way to quantify controllability/observability without
    functional analysis, so the claim can be tested numerically against
    the exact Difference Propagation detectabilities. *)

type t = {
  cc0 : int array;  (** cost of setting each net to 0 (>= 1) *)
  cc1 : int array;  (** cost of setting each net to 1 (>= 1) *)
  co : int array;
      (** cost of observing each net at some primary output; [max_int]
          for nets that reach no output *)
}

val compute : Circuit.t -> t

val controllability : t -> net:int -> value:bool -> int
(** [cc0] or [cc1] of the net. *)

val observability : t -> int -> int

val stuck_at_difficulty : t -> stem:int -> value:bool -> int
(** SCOAP difficulty of a stuck-at fault on a line driven by [stem]:
    controllability of the excitation value plus observability of the
    stem (which approximates branch-pin observability well enough for
    ranking). *)

val pp : Circuit.t -> Format.formatter -> t -> unit
(** Per-net table (for small circuits). *)
