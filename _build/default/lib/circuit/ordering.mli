(** Variable-ordering heuristics for the symbolic (OBDD) evaluation of a
    circuit.  Orders map BDD levels to primary-input {e positions} (the
    index into the circuit's input declaration order). *)

type heuristic =
  | Natural  (** declaration order — the paper's choice (§2.2) *)
  | Dfs_fanin
      (** depth-first traversal from the outputs, recording inputs at first
          visit (Malik-style topological ordering) *)
  | Reverse  (** declaration order reversed — a deliberately poor control *)
  | Shuffled of int  (** deterministic pseudo-random order from a seed *)

val all : heuristic list
(** One representative of each constructor (seed 1 for [Shuffled]). *)

val name : heuristic -> string

val order : heuristic -> Circuit.t -> int array
(** Permutation [p] with [p.(level) = input position]; length equals the
    circuit's input count. *)
