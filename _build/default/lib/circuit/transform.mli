(** Structural, function-preserving circuit transformations. *)

val expand_to_two_input : Circuit.t -> Circuit.t
(** Replace every gate with more than two fanins by a balanced tree of
    two-input gates of the base kind, keeping the output inversion (if
    any) on the final gate.  Net names of original gates are preserved, so
    fault sites remain addressable.  The paper expands n-input gates this
    way to keep the Difference Propagation equations quadratic (§3). *)

val xor_to_nand : Circuit.t -> Circuit.t
(** Expand each two-input XOR into its four-NAND equivalent and each
    two-input XNOR into the five-NAND equivalent — the transformation
    relating ISCAS circuits C499 and C1355.  Gates must be at most
    two-input ({!expand_to_two_input} first if needed). *)

val add_observation_points : Circuit.t -> int list -> Circuit.t
(** Make the given internal nets primary outputs (test-point insertion for
    observability, the DFT move the paper's Figure 3 discussion favours).
    Nets already observable are left alone. *)

val add_control_point :
  Circuit.t -> net:int -> polarity:[ `Force0 | `Force1 ] -> Circuit.t
(** Cut net [net] and insert an AND (`Force0`) or OR (`Force1`) gate
    driven by the original net and a fresh control input, giving direct
    controllability of the net.  The control input must be held at the
    non-controlling value in functional mode. *)

val strip_unreachable : Circuit.t -> Circuit.t
(** Remove gates that reach no primary output. *)

val definitions : Circuit.t -> (string * Gate.kind * string list) list
(** The circuit's non-input gates as named definitions (the
    {!Circuit.create} input format) — the common currency of the
    transforms here and of clients that rewrite netlists themselves. *)
