type t = { xs : float array; ys : float array }

let compute c =
  let n = Circuit.num_gates c in
  let levels = Circuit.levels c in
  let xs = Array.init n (fun g -> float_of_int levels.(g)) in
  let ys = Array.make n 0.0 in
  Array.iteri (fun pos g -> ys.(g) <- float_of_int pos) c.Circuit.inputs;
  (* Topological order guarantees fanin Y values are final when read. *)
  for g = 0 to n - 1 do
    let gate = Circuit.gate c g in
    if gate.Circuit.kind <> Gate.Input then begin
      let fanins = gate.Circuit.fanins in
      let arity = Array.length fanins in
      if arity > 0 then begin
        let sum = Array.fold_left (fun acc f -> acc +. ys.(f)) 0.0 fanins in
        ys.(g) <- sum /. float_of_int arity
      end
    end
  done;
  { xs; ys }

let position t g = (t.xs.(g), t.ys.(g))

let distance t a b =
  let dx = t.xs.(a) -. t.xs.(b) and dy = t.ys.(a) -. t.ys.(b) in
  Float.sqrt ((dx *. dx) +. (dy *. dy))

let max_distance t pairs =
  List.fold_left (fun acc (a, b) -> Float.max acc (distance t a b)) 0.0 pairs

let normalized_distance t ~max a b =
  if max <= 0.0 then 0.0 else distance t a b /. max
