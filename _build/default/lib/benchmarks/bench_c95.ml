let circuit () =
  let b = Builder.make ~title:"c95" in
  let width = 4 in
  let input_vector prefix =
    Array.init width (fun i -> Builder.input b (Printf.sprintf "%s%d" prefix i))
  in
  let xs = input_vector "a" in
  let ys = input_vector "b" in
  let cin = Builder.input b "cin" in
  let propagate =
    Array.init width (fun i ->
        Builder.xor ~name:(Printf.sprintf "p%d" i) b [ xs.(i); ys.(i) ])
  in
  let generate =
    Array.init width (fun i ->
        Builder.and_ ~name:(Printf.sprintf "g%d" i) b [ xs.(i); ys.(i) ])
  in
  (* Carry-lookahead: carry into bit i as a flat sum of generate terms
     shifted through runs of propagate. *)
  let carry_into i =
    let terms = ref [] in
    for k = i - 1 downto 0 do
      let run = List.init (i - 1 - k) (fun d -> propagate.(k + 1 + d)) in
      terms := Builder.and_ b (generate.(k) :: run) :: !terms
    done;
    let through_all = List.init i (fun d -> propagate.(d)) in
    terms := Builder.and_ b (cin :: through_all) :: !terms;
    Builder.or_ ~name:(Printf.sprintf "c%d" i) b !terms
  in
  let carries = Array.init (width + 1) (fun i -> if i = 0 then cin else carry_into i) in
  Array.iteri
    (fun i p ->
      Builder.output b
        (Builder.xor ~name:(Printf.sprintf "s%d" i) b [ p; carries.(i) ]))
    propagate;
  Builder.output b ~name:"cout" carries.(width);
  (* Magnitude comparator on the same operands. *)
  let bit_eq =
    Array.init width (fun i ->
        Builder.xnor ~name:(Printf.sprintf "e%d" i) b [ xs.(i); ys.(i) ])
  in
  Builder.output b
    (Builder.and_ ~name:"eq" b (Array.to_list bit_eq));
  let gt_terms =
    List.init width (fun i ->
        let here =
          Builder.and_ b
            [ xs.(i); Builder.not_ b ys.(i) ]
        in
        let higher_equal = List.init (width - 1 - i) (fun d -> bit_eq.(i + 1 + d)) in
        Builder.and_ b (here :: higher_equal))
  in
  Builder.output b (Builder.or_ ~name:"gt" b gt_terms);
  let c = Transform.expand_to_two_input (Builder.finish b) in
  Circuit.retitle c "c95"
