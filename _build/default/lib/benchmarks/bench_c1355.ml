let circuit () =
  let base = Bench_c499.circuit () in
  let expanded = Transform.xor_to_nand (Transform.expand_to_two_input base) in
  Circuit.retitle expanded "c1355"
