let data_bits = 32
let check_bits = 8

let popcount v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

(* The 32 smallest 8-bit values of weight >= 2, in increasing order; each
   is a distinct non-trivial column of the parity-check matrix. *)
let patterns =
  let rec collect v acc count =
    if count = data_bits then List.rev acc
    else if popcount v >= 2 then collect (v + 1) (v :: acc) (count + 1)
    else collect (v + 1) acc count
  in
  Array.of_list (collect 3 [] 0)

let pattern i = patterns.(i)

let encode_checks data =
  if Array.length data <> data_bits then
    invalid_arg "Bench_c499.encode_checks";
  Array.init check_bits (fun j ->
      let acc = ref false in
      for i = 0 to data_bits - 1 do
        if patterns.(i) land (1 lsl j) <> 0 then acc := !acc <> data.(i)
      done;
      !acc)

let circuit () =
  let b = Builder.make ~title:"c499" in
  let data =
    Array.init data_bits (fun i -> Builder.input b (Printf.sprintf "r%d" i))
  in
  let checks =
    Array.init check_bits (fun j -> Builder.input b (Printf.sprintf "k%d" j))
  in
  let enable = Builder.input b "en" in
  let syndrome =
    Array.init check_bits (fun j ->
        let members =
          List.init data_bits (fun i -> i)
          |> List.filter (fun i -> patterns.(i) land (1 lsl j) <> 0)
          |> List.map (fun i -> data.(i))
        in
        Builder.xor ~name:(Printf.sprintf "s%d" j) b (checks.(j) :: members))
  in
  let not_syndrome =
    Array.init check_bits (fun j ->
        Builder.not_ ~name:(Printf.sprintf "ns%d" j) b syndrome.(j))
  in
  Array.iteri
    (fun i d ->
      let literals =
        List.init check_bits (fun j ->
            if patterns.(i) land (1 lsl j) <> 0 then syndrome.(j)
            else not_syndrome.(j))
      in
      let flip =
        Builder.and_ ~name:(Printf.sprintf "err%d" i) b (enable :: literals)
      in
      Builder.output b
        (Builder.xor ~name:(Printf.sprintf "f%d" i) b [ d; flip ]))
    data;
  (* Canonical form is two-input, like the published netlist. *)
  let c = Transform.expand_to_two_input (Builder.finish b) in
  Circuit.retitle c "c499"
