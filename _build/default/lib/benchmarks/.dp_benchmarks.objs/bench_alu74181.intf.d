lib/benchmarks/bench_alu74181.mli: Circuit
