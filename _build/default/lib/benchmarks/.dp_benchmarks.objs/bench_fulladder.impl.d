lib/benchmarks/bench_fulladder.ml: Builder
