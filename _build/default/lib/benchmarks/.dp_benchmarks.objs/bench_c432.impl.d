lib/benchmarks/bench_c432.ml: Array Builder List Printf
