lib/benchmarks/bench_c1355.mli: Circuit
