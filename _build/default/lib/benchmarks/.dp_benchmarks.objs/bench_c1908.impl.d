lib/benchmarks/bench_c1908.ml: Array Builder Circuit List Printf Transform
