lib/benchmarks/bench_alu74181.ml: Array Builder List Printf
