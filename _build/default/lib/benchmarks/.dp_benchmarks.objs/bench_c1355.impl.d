lib/benchmarks/bench_c1355.ml: Bench_c499 Circuit Transform
