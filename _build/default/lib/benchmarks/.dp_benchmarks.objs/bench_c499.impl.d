lib/benchmarks/bench_c499.ml: Array Builder Circuit List Printf Transform
