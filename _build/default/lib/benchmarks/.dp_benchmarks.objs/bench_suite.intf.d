lib/benchmarks/bench_suite.mli: Circuit
