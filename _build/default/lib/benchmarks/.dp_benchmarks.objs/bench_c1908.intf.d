lib/benchmarks/bench_c1908.mli: Circuit
