lib/benchmarks/bench_fulladder.mli: Circuit
