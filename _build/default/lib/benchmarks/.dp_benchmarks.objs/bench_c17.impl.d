lib/benchmarks/bench_c17.ml: Bench_format
