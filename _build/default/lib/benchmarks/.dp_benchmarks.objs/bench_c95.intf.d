lib/benchmarks/bench_c95.mli: Circuit
