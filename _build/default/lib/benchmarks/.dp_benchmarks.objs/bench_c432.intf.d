lib/benchmarks/bench_c432.mli: Circuit
