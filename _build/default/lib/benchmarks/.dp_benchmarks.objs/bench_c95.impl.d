lib/benchmarks/bench_c95.ml: Array Builder Circuit List Printf Transform
