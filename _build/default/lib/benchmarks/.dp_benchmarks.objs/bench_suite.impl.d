lib/benchmarks/bench_suite.ml: Bench_alu74181 Bench_c1355 Bench_c17 Bench_c1908 Bench_c432 Bench_c499 Bench_c95 Bench_fulladder Circuit Hashtbl List
