lib/benchmarks/bench_c17.mli: Circuit
