lib/benchmarks/bench_c499.mli: Circuit
