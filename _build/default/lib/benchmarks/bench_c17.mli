(** ISCAS-85 C17 — the exact published six-NAND netlist. *)

val circuit : unit -> Circuit.t
