(** 74LS181 4-bit ALU, re-entered at gate level from the public
    description of its internals (X/Y select networks feeding a
    carry-lookahead summation stage).

    Conventions (documented deviations from the TI part, which mixes
    active-low signals): the carry input [cn], carry output [cn4], group
    generate [gg] and group propagate [gp] are all active-high.  With
    [m = 1] the unit computes the 16 logic functions selected by
    [s3 s2 s1 s0]; with [m = 0] it computes the 16 arithmetic functions
    including [A plus B] at [s = 1001]. *)

val circuit : unit -> Circuit.t
