(** The paper's benchmark set, in increasing order of netlist size:
    c17, fulladder, c95, alu74181, c432, c499, c1355, c1908
    (see DESIGN.md §4 for which are exact and which are documented
    substitutes). *)

val names : string list
(** Benchmark names in the paper's size order. *)

val find : string -> Circuit.t
(** Build a benchmark by name (memoised).  @raise Not_found. *)

val all : unit -> Circuit.t list
(** Every benchmark, in {!names} order. *)

val small : unit -> Circuit.t list
(** The benchmarks small enough for exhaustive simulation
    (c17, fulladder, c95, alu74181). *)

val large : unit -> Circuit.t list
(** The remaining, larger benchmarks. *)
