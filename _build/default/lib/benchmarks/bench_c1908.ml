let word_bits = 24
let check_bits = 6

let popcount v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

let patterns_a =
  let rec collect v acc count =
    if count = word_bits then List.rev acc
    else if popcount v >= 2 then collect (v + 1) (v :: acc) (count + 1)
    else collect (v + 1) acc count
  in
  Array.of_list (collect 3 [] 0)

let encode_checks word =
  if Array.length word <> word_bits then
    invalid_arg "Bench_c1908.encode_checks";
  Array.init check_bits (fun j ->
      let acc = ref false in
      for i = 0 to word_bits - 1 do
        if patterns_a.(i) land (1 lsl j) <> 0 then acc := !acc <> word.(i)
      done;
      !acc)

let vector_of ~word ~checks ~ctl =
  if
    Array.length word <> word_bits
    || Array.length checks <> check_bits
    || Array.length ctl <> 3
  then invalid_arg "Bench_c1908.vector_of";
  let v = Array.make 33 false in
  for i = 0 to 11 do
    v.(2 * i) <- word.(i);
    v.((2 * i) + 1) <- word.(12 + i)
  done;
  Array.blit checks 0 v 24 check_bits;
  Array.blit ctl 0 v 30 3;
  v

(* One single-error decoder: syndromes from [checks] against [word],
   AND-decode, correction gated by [enable]. *)
let decoder b ~tag ~patterns ~word ~checks ~enable =
  let syndrome =
    Array.init check_bits (fun j ->
        let members =
          List.init word_bits (fun i -> i)
          |> List.filter (fun i -> patterns.(i) land (1 lsl j) <> 0)
          |> List.map (fun i -> word.(i))
        in
        Builder.xor ~name:(Printf.sprintf "%ss%d" tag j) b
          (checks.(j) :: members))
  in
  let not_syndrome = Array.map (fun s -> Builder.not_ b s) syndrome in
  let hits =
    Array.init word_bits (fun i ->
        let literals =
          List.init check_bits (fun j ->
              if patterns.(i) land (1 lsl j) <> 0 then syndrome.(j)
              else not_syndrome.(j))
        in
        Builder.and_ ~name:(Printf.sprintf "%se%d" tag i) b
          (enable :: literals))
  in
  let corrected =
    Array.init word_bits (fun i ->
        Builder.xor ~name:(Printf.sprintf "%sc%d" tag i) b
          [ word.(i); hits.(i) ])
  in
  (syndrome, hits, corrected)

let circuit () =
  let b = Builder.make ~title:"c1908" in
  (* The 24-bit word is split into halves that meet again in the adder
     and comparator; declare the inputs with the halves interleaved
     (lo0 hi0 lo1 hi1 ...) so the natural variable order keeps those
     BDDs linear — benchmark input order is meaningful (paper §2.2). *)
  let half_names i =
    let lo = Printf.sprintf "d%d" i in
    let hi =
      if i < 4 then Printf.sprintf "d%d" (12 + i)
      else Printf.sprintf "m%d" (i - 4)
    in
    (lo, hi)
  in
  let pairs =
    Array.init 12 (fun i ->
        let lo_name, hi_name = half_names i in
        let lo = Builder.input b lo_name in
        let hi = Builder.input b hi_name in
        (lo, hi))
  in
  let lo = Array.map fst pairs and hi = Array.map snd pairs in
  let vector prefix n =
    Array.init n (fun i -> Builder.input b (Printf.sprintf "%s%d" prefix i))
  in
  let checks = vector "k" check_bits in
  let ctl = vector "ctl" 3 in
  let word = Array.append lo hi in
  (* Correction path: the corrected data bits go straight to outputs (the
     original C1908 is a SEC translator).  Keeping arithmetic off the
     corrected bits keeps every function's BDD narrow: a carry chain over
     bits whose value is only resolved by the full syndrome is
     exponential in any order. *)
  let syn_a, hits_a, corr_a =
    decoder b ~tag:"A" ~patterns:patterns_a ~word ~checks ~enable:ctl.(0)
  in
  for i = 0 to 15 do
    Builder.output b (Builder.buf ~name:(Printf.sprintf "f%d" i) b corr_a.(i))
  done;
  (* Datapath results are qualified by "no error detected": they are
     forced low whenever the syndrome is non-zero, which also gives the
     datapath the heavy observability masking of the original's deep
     NAND structure. *)
  let any_syn = Builder.or_ b (Array.to_list syn_a) in
  let ok = Builder.not_ ~name:"ok" b any_syn in
  let qualified name net = Builder.and_ ~name b [ net; ok ] in
  (* Raw-word datapath, in parallel with correction: conditional
     increment, half-word addition, magnitude comparison. *)
  let inc = Array.make word_bits word.(0) in
  let carry = ref ctl.(1) in
  for i = 0 to word_bits - 1 do
    inc.(i) <- Builder.xor ~name:(Printf.sprintf "q%d" i) b [ word.(i); !carry ];
    carry := Builder.and_ b [ word.(i); !carry ]
  done;
  let half = word_bits / 2 in
  let carry = ref ctl.(2) in
  let sums =
    Array.init half (fun i ->
        let x = inc.(i) and y = inc.(half + i) in
        let p = Builder.xor b [ x; y ] in
        let sum = Builder.xor ~name:(Printf.sprintf "sum%d" i) b [ p; !carry ] in
        carry :=
          Builder.or_ b
            [ Builder.and_ b [ x; y ]; Builder.and_ b [ p; !carry ] ];
        sum)
  in
  Builder.output b (qualified "cout" !carry);
  let bit_eq =
    Array.init half (fun i -> Builder.xnor b [ inc.(i); inc.(half + i) ])
  in
  Builder.output b (qualified "heq" (Builder.and_ b (Array.to_list bit_eq)));
  let gt_terms =
    List.init half (fun i ->
        let here = Builder.and_ b [ inc.(half + i); Builder.not_ b inc.(i) ] in
        let above = List.init (half - 1 - i) (fun d -> bit_eq.(i + 1 + d)) in
        Builder.and_ b (here :: above))
  in
  Builder.output b (qualified "hgt" (Builder.or_ b gt_terms));
  Builder.output b (qualified "spar" (Builder.xor b (Array.to_list sums)));
  (* Priority encoder over the decoder's error hits (low 3 index bits). *)
  let granted =
    Array.init word_bits (fun i ->
        if i = 0 then hits_a.(0)
        else
          Builder.and_ b
            (hits_a.(i) :: List.init i (fun k -> Builder.not_ b hits_a.(k))))
  in
  for bit = 0 to 2 do
    let contributors =
      List.init word_bits (fun i -> i)
      |> List.filter (fun i -> i land (1 lsl bit) <> 0)
      |> List.map (fun i -> granted.(i))
    in
    Builder.output b ~name:(Printf.sprintf "idx%d" bit)
      (Builder.or_ b contributors)
  done;
  let any_a = Builder.or_ b (Array.to_list hits_a) in
  Builder.output b (Builder.buf ~name:"anyerr" b any_syn);
  Builder.output b
    (Builder.and_ ~name:"uncorr" b [ any_syn; Builder.not_ b any_a ]);
  (* Like the published netlist, the canonical form is NAND-expanded:
     the deep four-NAND parity trees dominate its fault population. *)
  Builder.finish b |> Transform.expand_to_two_input |> Transform.xor_to_nand
  |> fun c -> Circuit.retitle c "c1908"
