(* Two cascaded one-bit full adders (a 2-bit ripple adder): the paper
   lists its "fulladder circuit" between c17 and c95 in netlist size. *)

let full_adder b ~tag a bb cin =
  let half = Builder.xor ~name:("h" ^ tag) b [ a; bb ] in
  let sum = Builder.xor ~name:("s" ^ tag) b [ half; cin ] in
  let c1 = Builder.and_ ~name:("c1" ^ tag) b [ a; bb ] in
  let c2 = Builder.and_ ~name:("c2" ^ tag) b [ half; cin ] in
  let cout = Builder.or_ ~name:("co" ^ tag) b [ c1; c2 ] in
  (sum, cout)

let circuit () =
  let b = Builder.make ~title:"fulladder" in
  let a0 = Builder.input b "a0" in
  let b0 = Builder.input b "b0" in
  let a1 = Builder.input b "a1" in
  let b1 = Builder.input b "b1" in
  let cin = Builder.input b "cin" in
  let s0, c0 = full_adder b ~tag:"0" a0 b0 cin in
  let s1, c1 = full_adder b ~tag:"1" a1 b1 c0 in
  Builder.output b s0;
  Builder.output b s1;
  Builder.output b c1;
  Builder.finish b
