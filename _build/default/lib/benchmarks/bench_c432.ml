let channels = 9

let circuit () =
  let b = Builder.make ~title:"c432" in
  let vector prefix =
    Array.init channels (fun i ->
        Builder.input b (Printf.sprintf "%s%d" prefix i))
  in
  let enable = vector "e" in
  let bus_a = vector "a" in
  let bus_b = vector "bb" in
  let bus_c = vector "c" in
  let gated name bus =
    Array.init channels (fun i ->
        Builder.and_ ~name:(Printf.sprintf "%s%d" name i) b
          [ bus.(i); enable.(i) ])
  in
  let ra = gated "ra" bus_a in
  let rb = gated "rb" bus_b in
  let rc = gated "rc" bus_c in
  let any name reqs = Builder.or_ ~name b (Array.to_list reqs) in
  let any_a = any "anya" ra in
  let any_b = any "anyb" rb in
  let any_c = any "anyc" rc in
  (* Bus priority: A over B over C. *)
  let grant_a = Builder.buf ~name:"granta" b any_a in
  let grant_b =
    Builder.and_ ~name:"grantb" b [ any_b; Builder.not_ b any_a ]
  in
  let grant_c =
    Builder.and_ ~name:"grantc" b
      [ any_c; Builder.not_ b any_a; Builder.not_ b any_b ]
  in
  Builder.output b grant_a;
  Builder.output b grant_b;
  Builder.output b grant_c;
  (* Winning request per channel, then channel priority (0 highest). *)
  let winning =
    Array.init channels (fun i ->
        Builder.or_ ~name:(Printf.sprintf "w%d" i) b
          [ Builder.and_ b [ grant_a; ra.(i) ];
            Builder.and_ b [ grant_b; rb.(i) ];
            Builder.and_ b [ grant_c; rc.(i) ] ])
  in
  let granted =
    Array.init channels (fun i ->
        if i = 0 then Builder.buf ~name:"pr0" b winning.(0)
        else
          let blockers =
            List.init i (fun k -> Builder.not_ b winning.(k))
          in
          Builder.and_ ~name:(Printf.sprintf "pr%d" i) b
            (winning.(i) :: blockers))
  in
  (* 4-bit index of the granted channel. *)
  for bit = 0 to 3 do
    let contributors =
      List.init channels (fun i -> i)
      |> List.filter (fun i -> i land (1 lsl bit) <> 0)
      |> List.map (fun i -> granted.(i))
    in
    let index_bit =
      match contributors with
      | [] -> Builder.const0 b
      | nets -> Builder.or_ b nets
    in
    Builder.output b ~name:(Printf.sprintf "idx%d" bit) index_bit
  done;
  Builder.finish b
