(* Per bit i the '181 forms two select-controlled signals
     x_i = NOR(a_i, b_i AND s0, NOT b_i AND s1)
     y_i = NOR(a_i AND NOT b_i AND s2, a_i AND b_i AND s3)
   whose complements act as carry propagate (p_i = NOT x_i) and generate
   (g_i = NOT y_i).  The result bit is (x_i XOR y_i) XOR t_i where the
   carry term t_i is forced to 1 in logic mode: t_i = m OR carry_i. *)

let circuit () =
  let b = Builder.make ~title:"alu74181" in
  let vector prefix n =
    Array.init n (fun i -> Builder.input b (Printf.sprintf "%s%d" prefix i))
  in
  let a = vector "a" 4 in
  let bv = vector "b" 4 in
  let s = vector "s" 4 in
  let m = Builder.input b "m" in
  let cn = Builder.input b "cn" in
  let nb = Array.init 4 (fun i ->
      Builder.not_ ~name:(Printf.sprintf "nb%d" i) b bv.(i))
  in
  let x = Array.init 4 (fun i ->
      Builder.nor ~name:(Printf.sprintf "x%d" i) b
        [ a.(i);
          Builder.and_ b [ bv.(i); s.(0) ];
          Builder.and_ b [ nb.(i); s.(1) ] ])
  in
  let y = Array.init 4 (fun i ->
      Builder.nor ~name:(Printf.sprintf "y%d" i) b
        [ Builder.and_ b [ a.(i); nb.(i); s.(2) ];
          Builder.and_ b [ a.(i); bv.(i); s.(3) ] ])
  in
  let p = Array.init 4 (fun i ->
      Builder.not_ ~name:(Printf.sprintf "p%d" i) b x.(i))
  in
  let g = Array.init 4 (fun i ->
      Builder.not_ ~name:(Printf.sprintf "g%d" i) b y.(i))
  in
  (* Lookahead carries: carry_0 = cn, carry_{i} = OR of generate terms
     propagated through runs of p, plus cn through all lower p. *)
  let carry_into i =
    let terms = ref [] in
    for k = i - 1 downto 0 do
      let run = List.init (i - 1 - k) (fun d -> p.(k + 1 + d)) in
      terms := Builder.and_ b (g.(k) :: run) :: !terms
    done;
    let through = List.init i (fun d -> p.(d)) in
    terms := Builder.and_ b (cn :: through) :: !terms;
    Builder.or_ ~name:(Printf.sprintf "carry%d" i) b !terms
  in
  let carries = Array.init 5 (fun i -> if i = 0 then cn else carry_into i) in
  let f = Array.init 4 (fun i ->
      let sum_term =
        Builder.xor ~name:(Printf.sprintf "xy%d" i) b [ x.(i); y.(i) ]
      in
      let t = Builder.or_ b [ m; carries.(i) ] in
      Builder.xor ~name:(Printf.sprintf "f%d" i) b [ sum_term; t ])
  in
  Array.iter (Builder.output b) f;
  Builder.output b ~name:"cn4" carries.(4);
  Builder.output b
    (Builder.and_ ~name:"gp" b (Array.to_list p));
  let group_generate =
    let terms =
      List.init 4 (fun k ->
          let run = List.init (3 - k) (fun d -> p.(k + 1 + d)) in
          Builder.and_ b (g.(k) :: run))
    in
    Builder.or_ ~name:"gg" b terms
  in
  Builder.output b group_generate;
  Builder.output b
    (Builder.and_ ~name:"aeqb" b (Array.to_list f));
  Builder.finish b
