(** "c1355" — derived from {!Bench_c499} by expanding every gate to two
    inputs and every XOR/XNOR into its NAND equivalent, which is exactly
    the relationship between ISCAS-85 C499 and C1355 that the paper's
    Figure 2 exploits (same function, larger netlist, lower
    detectability). *)

val circuit : unit -> Circuit.t
