let builders =
  [
    ("c17", Bench_c17.circuit);
    ("fulladder", Bench_fulladder.circuit);
    ("c95", Bench_c95.circuit);
    ("alu74181", Bench_alu74181.circuit);
    ("c432", Bench_c432.circuit);
    ("c499", Bench_c499.circuit);
    ("c1355", Bench_c1355.circuit);
    ("c1908", Bench_c1908.circuit);
  ]

let names = List.map fst builders

let cache : (string, Circuit.t) Hashtbl.t = Hashtbl.create 8

let find name =
  match Hashtbl.find_opt cache name with
  | Some c -> c
  | None ->
    let build = List.assoc name builders in
    let c = build () in
    Hashtbl.replace cache name c;
    c

let all () = List.map find names

let small_names = [ "c17"; "fulladder"; "c95"; "alu74181" ]
let small () = List.map find small_names

let large () =
  names
  |> List.filter (fun n -> not (List.mem n small_names))
  |> List.map find
