(** "c95" — substitute for the paper's small ISCAS-era circuit of the same
    name (netlist unavailable): a 4-bit carry-lookahead adder fused with a
    magnitude comparator.  9 inputs, 7 outputs, within a few nets of the
    namesake's size and with comparable reconvergent structure. *)

val circuit : unit -> Circuit.t
