(** Two-bit ripple adder built from full-adder cells (XOR/AND/OR form) —
    the paper's "fulladder", which it sizes between C17 and C95.
    Inputs a0 b0 a1 b1 cin, outputs s0 s1 cout. *)

val circuit : unit -> Circuit.t
