(** "c499" — substitute for ISCAS-85 C499 (a 32-bit single-error-
    correction network; original netlist unavailable here).  Same
    interface footprint: 41 inputs (32 received data bits, 8 received
    check bits, 1 correction enable) and 32 outputs (corrected data).
    XOR syndrome trees feed AND-decode correction exactly as in the
    original's documented function. *)

val circuit : unit -> Circuit.t

val check_bits : int
val data_bits : int

val pattern : int -> int
(** Parity-check signature of data bit [i]: bit [j] set means data bit
    [i] participates in check [j].  Signatures are distinct, have weight
    of at least two (so they never collide with a single check-bit
    error), and are non-zero. *)

val encode_checks : bool array -> bool array
(** Reference encoder: check bits for a 32-bit data word. *)
