(** "c1908" — substitute for ISCAS-85 C1908 (a 16-bit SEC/DED error
    corrector; original netlist unavailable here).  Same interface
    footprint: 33 inputs and 25 outputs.  A single-error decoder
    corrects a 24-bit word, and the corrected word feeds an
    arithmetic/comparison backend (incrementer, half-word adder,
    comparator, priority encoder), giving the error-correction-plus-
    datapath mix of the original at a similar gate count.  The netlist is fully expanded to two-input gates. *)

val circuit : unit -> Circuit.t

val word_bits : int
(** 24: sixteen data bits plus eight mask bits form the protected word. *)

val check_bits : int
(** 6. *)

val encode_checks : bool array -> bool array
(** Check bits consistent with a 24-bit word under decoder A's
    parity-check matrix (all-zero syndrome). *)

val vector_of :
  word:bool array -> checks:bool array -> ctl:bool array -> bool array
(** Assemble a primary-input vector from the logical word (24 bits),
    check bits (6) and control bits (3), respecting the interleaved
    input declaration order. *)
