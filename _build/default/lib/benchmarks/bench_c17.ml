let text =
  "# c17 (ISCAS-85)\n\
   INPUT(G1)\n\
   INPUT(G2)\n\
   INPUT(G3)\n\
   INPUT(G6)\n\
   INPUT(G7)\n\
   OUTPUT(G22)\n\
   OUTPUT(G23)\n\
   G10 = NAND(G1, G3)\n\
   G11 = NAND(G3, G6)\n\
   G16 = NAND(G2, G11)\n\
   G19 = NAND(G11, G7)\n\
   G22 = NAND(G10, G16)\n\
   G23 = NAND(G16, G19)\n"

let circuit () = Bench_format.parse ~title:"c17" text
