(** "c432" — substitute for ISCAS-85 C432 (a 27-channel interrupt
    controller; original netlist unavailable here).  Same interface
    footprint: 36 inputs (three 9-line request buses gated by 9 enables)
    and 7 outputs (three bus grants plus a 4-bit priority-encoded channel
    index).  Reconvergent priority-masking logic dominates, as in the
    original. *)

val circuit : unit -> Circuit.t
