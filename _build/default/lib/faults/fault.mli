(** The union of the two fault models under study (paper §2): classical
    single stuck-at faults and two-line non-feedback bridging faults. *)

type t =
  | Stuck of Sa_fault.t
  | Bridged of Bridge.t
  | Multi_stuck of (int * bool) list
      (** simultaneous stuck-at faults on distinct stems — build with
          {!multi}, which enforces the invariants *)

val multi : (int * bool) list -> t
(** Multiple stuck-at fault from (stem net, stuck value) pairs.  The
    Difference Propagation rules are exact for any set of simultaneous
    differences, so multiple faults need no new machinery (paper §3:
    "any fault whose effects are restricted to the logical domain").
    The list is normalised to ascending stems.
    @raise Invalid_argument on an empty list or duplicate stems. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Circuit.t -> Format.formatter -> t -> unit
val to_string : Circuit.t -> t -> string

val sites : t -> int list
(** Nets whose functions the fault changes first: the faulted stem (or
    branch sink gate) for stuck-at faults, both bridged nets for
    bridges.  Difference Propagation starts its selective trace here. *)
