(** Single stuck-at faults on circuit lines.

    A {e line} is either a net's stem (the gate output) or one fanout
    branch of a multi-fanout net.  The paper's fault universe is the
    classical {e checkpoint} set — primary inputs plus fanout branches —
    collapsed by fault equivalence at gate inputs (§2.1). *)

type line =
  | Stem of int  (** a net, addressed by its gate index *)
  | Branch of Circuit.branch
      (** one pin connection of a net with fanout of at least two *)

type t = { line : line; value : bool }
(** Line stuck at [value]. *)

val stem_of_line : line -> int
(** Net carrying the fault (the branch's stem for branch faults). *)

val site_gate : Circuit.t -> t -> int
(** First gate whose function changes: the stem's gate for stem faults
    (or the stem itself for primary-input stems), the sink gate for
    branch faults. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Circuit.t -> Format.formatter -> t -> unit
val to_string : Circuit.t -> t -> string

(** {1 Fault universes} *)

val checkpoints : Circuit.t -> line list
(** Primary-input stems followed by fanout branches, in deterministic
    order. *)

val checkpoint_faults : Circuit.t -> t list
(** Both polarities on every checkpoint (uncollapsed). *)

val equivalence_classes : Circuit.t -> t list list
(** Partition of the checkpoint faults into structural equivalence
    classes: a stuck-at at a controlling value on a gate input is
    equivalent to the corresponding output fault, and equivalence is
    propagated through BUF/NOT chains. *)

val collapsed_faults : Circuit.t -> t list
(** One representative per equivalence class — the fault set the paper's
    stuck-at statistics are computed over. *)

val all_line_faults : Circuit.t -> t list
(** Both polarities on every stem and every branch (the exhaustive line
    fault universe, used by oracles and the ATPG baseline). *)
