type kind = Wired_and | Wired_or

type t = { a : int; b : int; kind : kind }

let make a b kind =
  if a = b then invalid_arg "Bridge.make: a net cannot bridge to itself";
  if a < b then { a; b; kind } else { a = b; b = a; kind }

let compare x y = Stdlib.compare (x.a, x.b, x.kind) (y.a, y.b, y.kind)
let equal x y = compare x y = 0

let kind_name = function Wired_and -> "AND" | Wired_or -> "OR"

let pp c fmt f =
  Format.fprintf fmt "%s-bridge(%s, %s)" (kind_name f.kind)
    (Circuit.gate c f.a).Circuit.name
    (Circuit.gate c f.b).Circuit.name

let to_string c f = Format.asprintf "%a" (pp c) f

(* Transitive-fanin sets as packed bitsets: n nets, n bits each. *)
type ancestors = { words : int; bits : Bytes.t array }

let ancestors c =
  let n = Circuit.num_gates c in
  let words = (n + 7) / 8 in
  let bits = Array.init n (fun _ -> Bytes.make words '\000') in
  let set row i =
    let byte = i lsr 3 and bit = i land 7 in
    Bytes.set row byte
      (Char.chr (Char.code (Bytes.get row byte) lor (1 lsl bit)))
  in
  let union ~into from =
    for w = 0 to words - 1 do
      Bytes.set into w
        (Char.chr (Char.code (Bytes.get into w) lor Char.code (Bytes.get from w)))
    done
  in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      Array.iter
        (fun f ->
          union ~into:bits.(g) bits.(f);
          set bits.(g) f)
        gate.fanins)
    c.Circuit.gates;
  { words; bits }

let in_fanin anc ~net ~of_ =
  let row = anc.bits.(of_) in
  Char.code (Bytes.get row (net lsr 3)) land (1 lsl (net land 7)) <> 0

let is_feedback anc a b =
  in_fanin anc ~net:a ~of_:b || in_fanin anc ~net:b ~of_:a

(* [fanout] is the precomputed Circuit.fanouts table and [is_po] the
   output membership vector; recomputing either per candidate pair would
   make the quadratic pair scan cubic. *)
let trivial_with c ~fanout ~is_po f =
  let sinks net = Array.to_list fanout.(net) |> List.sort_uniq Stdlib.compare in
  match (sinks f.a, sinks f.b) with
  | [ ga ], [ gb ] when ga = gb && (not is_po.(f.a)) && not is_po.(f.b) ->
    let kind = (Circuit.gate c ga).Circuit.kind in
    (match (f.kind, kind) with
    | Wired_and, (Gate.And | Gate.Nand) -> true
    | Wired_or, (Gate.Or | Gate.Nor) -> true
    | (Wired_and | Wired_or), _ -> false)
  | _ -> false

let po_vector c =
  let is_po = Array.make (Circuit.num_gates c) false in
  Array.iter (fun o -> is_po.(o) <- true) c.Circuit.outputs;
  is_po

let trivially_undetectable c f =
  trivial_with c ~fanout:(Circuit.fanouts c) ~is_po:(po_vector c) f

let bridgeable_net c g =
  match (Circuit.gate c g).Circuit.kind with
  | Gate.Const0 | Gate.Const1 -> false
  | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
  | Gate.Nor | Gate.Xor | Gate.Xnor -> true

(* Shared pair scan: calls [consider] on every potentially detectable
   NFBF pair (a < b). *)
let iter_pairs c consider =
  let anc = ancestors c in
  let fanout = Circuit.fanouts c in
  let is_po = po_vector c in
  let n = Circuit.num_gates c in
  for a = 0 to n - 2 do
    if bridgeable_net c a then
      for b = a + 1 to n - 1 do
        if bridgeable_net c b && not (is_feedback anc a b) then begin
          let of_kind kind =
            let f = { a; b; kind } in
            if not (trivial_with c ~fanout ~is_po f) then consider f
          in
          of_kind Wired_and;
          of_kind Wired_or
        end
      done
  done

let enumerate c =
  let acc = ref [] in
  iter_pairs c (fun f -> acc := f :: !acc);
  List.rev !acc

let count c =
  let n = ref 0 in
  iter_pairs c (fun _ -> incr n);
  !n

type sample_stats = {
  requested : int;
  accepted : int;
  proposals : int;
  max_distance : float;
}

let sample ?(theta = 0.25) ~seed ~size c =
  if theta <= 0.0 then invalid_arg "Bridge.sample: theta must be positive";
  let layout = Layout.compute c in
  let anc = ancestors c in
  (* Normalisation pass: the largest wire distance over valid pairs, and
     the number of valid pairs so the request can be clamped. *)
  let max_distance = ref 0.0 in
  let valid_pairs = ref 0 in
  iter_pairs c (fun f ->
      if f.kind = Wired_and then begin
        incr valid_pairs;
        max_distance := Float.max !max_distance (Layout.distance layout f.a f.b)
      end);
  let requested = size in
  let size = min size !valid_pairs in
  let n = Circuit.num_gates c in
  let rng = Prng.create ~seed in
  let chosen = Hashtbl.create (2 * size) in
  let proposals = ref 0 in
  let budget = (1000 * size) + 100_000 in
  let fanout = Circuit.fanouts c in
  let is_po = po_vector c in
  let valid a b =
    a <> b
    && bridgeable_net c a && bridgeable_net c b
    && (not (is_feedback anc a b))
    && (not (trivial_with c ~fanout ~is_po { a; b; kind = Wired_and })
       || not (trivial_with c ~fanout ~is_po { a; b; kind = Wired_or }))
  in
  while Hashtbl.length chosen < size && !proposals < budget do
    incr proposals;
    let a = Prng.int rng n and b = Prng.int rng n in
    let a, b = if a <= b then (a, b) else (b, a) in
    if valid a b && not (Hashtbl.mem chosen (a, b)) then begin
      let z =
        Layout.normalized_distance layout ~max:!max_distance a b
      in
      if Prng.float rng < Float.exp (-.z /. theta) then
        Hashtbl.replace chosen (a, b) ()
    end
  done;
  let faults =
    Hashtbl.fold (fun (a, b) () acc -> (a, b) :: acc) chosen []
    |> List.sort Stdlib.compare
    |> List.concat_map (fun (a, b) ->
           let keep kind =
             let f = { a; b; kind } in
             if trivial_with c ~fanout ~is_po f then None else Some f
           in
           List.filter_map keep [ Wired_and; Wired_or ])
  in
  ( faults,
    {
      requested;
      accepted = Hashtbl.length chosen;
      proposals = !proposals;
      max_distance = !max_distance;
    } )
