lib/faults/sa_fault.ml: Array Circuit Format Gate Hashtbl List Option Stdlib Union_find
