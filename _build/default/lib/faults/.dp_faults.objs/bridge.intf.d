lib/faults/bridge.mli: Circuit Format
