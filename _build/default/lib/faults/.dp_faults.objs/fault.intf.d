lib/faults/fault.mli: Bridge Circuit Format Sa_fault
