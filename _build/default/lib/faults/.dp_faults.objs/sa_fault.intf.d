lib/faults/sa_fault.mli: Circuit Format
