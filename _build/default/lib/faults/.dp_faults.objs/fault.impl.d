lib/faults/fault.ml: Bool Bridge Circuit Format List Printf Sa_fault Stdlib String
