lib/faults/bridge.ml: Array Bytes Char Circuit Float Format Gate Hashtbl Layout List Prng Stdlib
