type t =
  | Stuck of Sa_fault.t
  | Bridged of Bridge.t
  | Multi_stuck of (int * bool) list

let multi sites =
  if sites = [] then invalid_arg "Fault.multi: empty site list";
  let sorted = List.sort Stdlib.compare sites in
  let rec distinct = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <> b && distinct rest
    | [ _ ] | [] -> true
  in
  if not (distinct sorted) then
    invalid_arg "Fault.multi: duplicate stems";
  Multi_stuck sorted

let rank = function Stuck _ -> 0 | Bridged _ -> 1 | Multi_stuck _ -> 2

let compare x y =
  match (x, y) with
  | Stuck a, Stuck b -> Sa_fault.compare a b
  | Bridged a, Bridged b -> Bridge.compare a b
  | Multi_stuck a, Multi_stuck b -> Stdlib.compare a b
  | (Stuck _ | Bridged _ | Multi_stuck _), _ ->
    Stdlib.compare (rank x) (rank y)

let equal x y = compare x y = 0

let pp c fmt = function
  | Stuck f -> Sa_fault.pp c fmt f
  | Bridged f -> Bridge.pp c fmt f
  | Multi_stuck sites ->
    let site (net, value) =
      Printf.sprintf "%s/%d" (Circuit.gate c net).Circuit.name
        (Bool.to_int value)
    in
    Format.fprintf fmt "multi{%s}" (String.concat " " (List.map site sites))

let to_string c f = Format.asprintf "%a" (pp c) f

let sites = function
  | Stuck { Sa_fault.line = Sa_fault.Stem s; _ } -> [ s ]
  | Stuck { Sa_fault.line = Sa_fault.Branch b; _ } -> [ b.Circuit.sink ]
  | Bridged { Bridge.a; b; _ } -> [ a; b ]
  | Multi_stuck sites -> List.map fst sites
