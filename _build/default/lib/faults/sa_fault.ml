type line = Stem of int | Branch of Circuit.branch

type t = { line : line; value : bool }

let stem_of_line = function Stem s -> s | Branch b -> b.Circuit.stem

let site_gate _c f =
  match f.line with Stem s -> s | Branch b -> b.Circuit.sink

let compare_line a b =
  match (a, b) with
  | Stem x, Stem y -> Stdlib.compare x y
  | Stem _, Branch _ -> -1
  | Branch _, Stem _ -> 1
  | Branch x, Branch y -> Stdlib.compare x y

let compare a b =
  match compare_line a.line b.line with
  | 0 -> Stdlib.compare a.value b.value
  | c -> c

let equal a b = compare a b = 0

let pp c fmt f =
  let value = if f.value then 1 else 0 in
  match f.line with
  | Stem s ->
    Format.fprintf fmt "%s s-a-%d" (Circuit.gate c s).Circuit.name value
  | Branch b ->
    Format.fprintf fmt "%s->%s.%d s-a-%d"
      (Circuit.gate c b.Circuit.stem).Circuit.name
      (Circuit.gate c b.Circuit.sink).Circuit.name
      b.Circuit.pin value

let to_string c f = Format.asprintf "%a" (pp c) f

let checkpoints c =
  let pis = Array.to_list c.Circuit.inputs |> List.map (fun g -> Stem g) in
  let branch_lines = Circuit.branches c |> List.map (fun b -> Branch b) in
  pis @ branch_lines

let faults_on lines =
  List.concat_map
    (fun line -> [ { line; value = false }; { line; value = true } ])
    lines

let checkpoint_faults c = faults_on (checkpoints c)

let all_line_faults c =
  let stems = List.init (Circuit.num_gates c) (fun g -> Stem g) in
  let branch_lines = Circuit.branches c |> List.map (fun b -> Branch b) in
  faults_on (stems @ branch_lines)

(* Line identifiers for union-find: stems first, then branches. *)
let line_index c =
  let n = Circuit.num_gates c in
  let branch_list = Circuit.branches c in
  let table = Hashtbl.create (List.length branch_list * 2) in
  List.iteri
    (fun i (b : Circuit.branch) ->
      Hashtbl.replace table (b.stem, b.sink, b.pin) (n + i))
    branch_list;
  let id = function
    | Stem s -> s
    | Branch b ->
      Hashtbl.find table (b.Circuit.stem, b.Circuit.sink, b.Circuit.pin)
  in
  (id, n + List.length branch_list)

let fault_element line_id f = (2 * line_id f.line) + if f.value then 1 else 0

let build_equivalence c =
  let line_id, num_lines = line_index c in
  let uf = Union_find.create (2 * num_lines) in
  let fanout = Circuit.fanout_count c in
  let elem line value = (2 * line_id line) + if value then 1 else 0 in
  let pin_line stem sink pin =
    if fanout.(stem) >= 2 then Branch { Circuit.stem; sink; pin }
    else Stem stem
  in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      let unite_pins ~input_value ~output_value =
        Array.iteri
          (fun pin stem ->
            Union_find.union uf
              (elem (pin_line stem g pin) input_value)
              (elem (Stem g) output_value))
          gate.fanins
      in
      match gate.kind with
      | Gate.And -> unite_pins ~input_value:false ~output_value:false
      | Gate.Nand -> unite_pins ~input_value:false ~output_value:true
      | Gate.Or -> unite_pins ~input_value:true ~output_value:true
      | Gate.Nor -> unite_pins ~input_value:true ~output_value:false
      | Gate.Buf ->
        unite_pins ~input_value:false ~output_value:false;
        unite_pins ~input_value:true ~output_value:true
      | Gate.Not ->
        unite_pins ~input_value:false ~output_value:true;
        unite_pins ~input_value:true ~output_value:false
      | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Xor | Gate.Xnor -> ())
    c.Circuit.gates;
  (uf, fault_element line_id)

let equivalence_classes c =
  let uf, element = build_equivalence c in
  let groups = Hashtbl.create 256 in
  List.iter
    (fun f ->
      let root = Union_find.find uf (element f) in
      let existing = Option.value (Hashtbl.find_opt groups root) ~default:[] in
      Hashtbl.replace groups root (f :: existing))
    (checkpoint_faults c);
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []
  |> List.sort (fun a b ->
         match (a, b) with
         | f :: _, g :: _ -> compare f g
         | [], _ | _, [] -> 0)

let collapsed_faults c =
  equivalence_classes c
  |> List.filter_map (function f :: _ -> Some f | [] -> None)
