(** Two-line non-feedback bridging faults (NFBFs), per the paper's §2.2.

    A bridge shorts two nets [a] and [b] ([a < b]); under the wired-AND
    model both carry [a AND b], under wired-OR both carry [a OR b].
    Feedback bridges (one net in the other's transitive fanin) are
    excluded, as are trivially undetectable bridges — those whose two
    nets feed {e only} a single common gate whose kind absorbs the bridge
    (AND bridge into an AND/NAND gate, OR bridge into an OR/NOR gate). *)

type kind = Wired_and | Wired_or

type t = { a : int; b : int; kind : kind }

val make : int -> int -> kind -> t
(** Normalises the net pair so that [a < b].
    @raise Invalid_argument when the nets coincide. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Circuit.t -> Format.formatter -> t -> unit
val to_string : Circuit.t -> t -> string

(** {1 Structure predicates} *)

type ancestors
(** Transitive-fanin bitsets for every net (quadratic bits, built once). *)

val ancestors : Circuit.t -> ancestors
val in_fanin : ancestors -> net:int -> of_:int -> bool

val is_feedback : ancestors -> int -> int -> bool
(** Whether bridging the two nets would create a loop. *)

val trivially_undetectable : Circuit.t -> t -> bool

(** {1 Fault universes} *)

val enumerate : Circuit.t -> t list
(** Every potentially detectable NFBF, both kinds — feasible for the
    small benchmarks only (quadratic in net count). *)

val count : Circuit.t -> int
(** [List.length (enumerate c)] without materialising the list. *)

(** {1 Layout-weighted sampling (paper §2.2)} *)

type sample_stats = {
  requested : int;
  accepted : int;
  proposals : int;  (** candidate pairs drawn, including rejections *)
  max_distance : float;  (** normalisation constant over valid NFBFs *)
}

val sample :
  ?theta:float ->
  seed:int ->
  size:int ->
  Circuit.t ->
  t list * sample_stats
(** Draw [size] distinct wire pairs, each accepted with probability
    [exp (-z / theta)] of its normalised estimated wire distance [z]
    (exponential distance law, default [theta = 0.25]), and return both
    the wired-AND and wired-OR fault on every accepted pair
    (so the list has [2 * size] faults).  Deterministic in [seed]. *)
