type outcome = {
  order : int array;
  nodes : int;
  start_nodes : int;
  passes : int;
}

(* Evaluate the circuit under an explicit order; Symbolic only takes a
   heuristic, so the order goes through a manager built here. *)
let cost c order =
  let manager = Bdd.create ~order (Circuit.num_inputs c) in
  let node = Array.make (Circuit.num_gates c) (Bdd.zero manager) in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      node.(g) <-
        (match gate.Circuit.kind with
        | Gate.Input ->
          (match Circuit.input_position c g with
          | Some pos -> Bdd.var manager pos
          | None -> assert false)
        | kind ->
          Rules.gate_output manager kind
            (Array.map (Array.get node) gate.Circuit.fanins)))
    c.Circuit.gates;
  Bdd.allocated_nodes manager

let hill_climb ?(start = Ordering.Natural) ?(max_passes = 4) c =
  let order = Array.copy (Ordering.order start c) in
  let n = Array.length order in
  let start_nodes = cost c order in
  let best = ref start_nodes in
  let passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for i = 0 to n - 2 do
      let tmp = order.(i) in
      order.(i) <- order.(i + 1);
      order.(i + 1) <- tmp;
      let candidate = cost c order in
      if candidate < !best then begin
        best := candidate;
        improved := true
      end
      else begin
        (* Revert the swap. *)
        let tmp = order.(i) in
        order.(i) <- order.(i + 1);
        order.(i + 1) <- tmp
      end
    done
  done;
  { order; nodes = !best; start_nodes; passes = !passes }
