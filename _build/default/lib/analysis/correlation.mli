(** Rank and linear correlation over paired samples — used to quantify
    the paper's topology claims (detectability vs observability /
    controllability, size vs testability) without asserting strict
    monotonicity. *)

val pearson : (float * float) list -> float
(** Linear correlation; 0 on degenerate input. *)

val spearman : (float * float) list -> float
(** Rank correlation (Pearson over fractional ranks, ties averaged). *)
