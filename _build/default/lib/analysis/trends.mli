(** Detectability-vs-size trends (the paper's Figures 2 and 7): for each
    circuit, the overall mean detectability of its {e detectable} faults
    and the same mean normalised to the primary-output count.  The
    paper's finding — reproduced here — is that the normalised mean
    falls as circuits grow, including from c499 to its expanded twin
    c1355, arguing for minimal designs. *)

type row = {
  title : string;
  nets : int;
  outputs : int;
  detectable : int;
  total : int;
  mean_detectability : float;
  normalized : float;  (** mean / outputs *)
}

val row_of_results : Circuit.t -> Engine.result list -> row

val pp : Format.formatter -> row list -> unit

val decreasing_normalized : row list -> bool
(** Whether the PO-normalised means are monotonically non-increasing in
    netlist size — the paper's headline trend, in its strictest form. *)

val spearman_size_normalized : row list -> float
(** Spearman rank correlation between netlist size and the PO-normalised
    mean; strongly negative confirms the paper's trend without requiring
    strict monotonicity of every adjacent pair. *)
