type t = {
  bins : int;
  counts : int array;
  proportions : float array;
  total : int;
}

let make ~bins values =
  if bins < 1 then invalid_arg "Histogram.make: bins must be positive";
  let counts = Array.make bins 0 in
  let place v =
    let clamped = Float.max 0.0 (Float.min 1.0 v) in
    let bin = min (bins - 1) (int_of_float (clamped *. float_of_int bins)) in
    counts.(bin) <- counts.(bin) + 1
  in
  List.iter place values;
  let total = List.length values in
  let proportions =
    Array.map
      (fun c ->
        if total = 0 then 0.0 else float_of_int c /. float_of_int total)
      counts
  in
  { bins; counts; proportions; total }

let bin_lower t i = float_of_int i /. float_of_int t.bins
let bin_center t i = (float_of_int i +. 0.5) /. float_of_int t.bins

let mean = function
  | [] -> 0.0
  | values ->
    List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let bar width proportion =
  let n = int_of_float (Float.round (proportion *. float_of_int width)) in
  String.make (min width n) '#'

let pp fmt t =
  Format.fprintf fmt "  range          prop@.";
  for i = 0 to t.bins - 1 do
    Format.fprintf fmt "  [%.2f,%.2f%s  %.3f %s@." (bin_lower t i)
      (bin_lower t (i + 1))
      (if i = t.bins - 1 then "]" else ")")
      t.proportions.(i)
      (bar 40 t.proportions.(i))
  done;
  Format.fprintf fmt "  n = %d@." t.total

let pp_pair ~labels fmt (a, b) =
  if a.bins <> b.bins then invalid_arg "Histogram.pp_pair: bin mismatch";
  let la, lb = labels in
  Format.fprintf fmt "  range          %-10s %-10s@." la lb;
  for i = 0 to a.bins - 1 do
    Format.fprintf fmt "  [%.2f,%.2f%s  %-10.3f %-10.3f@." (bin_lower a i)
      (bin_lower a (i + 1))
      (if i = a.bins - 1 then "]" else ")")
      a.proportions.(i) b.proportions.(i)
  done;
  Format.fprintf fmt "  n = %d / %d@." a.total b.total
