(** Detectability versus topological distance (the paper's Figures 3 and
    8, plus the PI-distance companion discussed in §4.1).

    Faults are grouped by their site's maximum level distance to any
    primary output (or by level distance from the primary inputs) and
    each group's mean detectability is reported.  The PO curves are the
    paper's "bathtub": high near both ends, low in the middle — and the
    correlation with PO distance is stronger than with PI distance,
    which is the paper's argument for observability-oriented DFT. *)

type point = { distance : int; mean : float; faults : int }

val by_po_distance : Circuit.t -> Engine.result list -> point list
(** Group by maximum levels to a primary output (fault sites that reach
    no output are dropped), ascending distance. *)

val by_pi_level : Circuit.t -> Engine.result list -> point list
(** Group by the site's level from the primary inputs. *)

val pp : Format.formatter -> point list -> unit

val correlation : point list -> float
(** Pearson correlation between distance and mean detectability,
    weighted by group size (0 when undefined). *)
