(** Normalised histograms over [0, 1] — the form of the paper's
    detection-probability profiles (Figures 1 and 6) and adherence
    profiles (Figure 4): fault counts are reported as proportions of the
    fault-set size. *)

type t = {
  bins : int;
  counts : int array;  (** length [bins] *)
  proportions : float array;  (** counts / total *)
  total : int;
}

val make : bins:int -> float list -> t
(** Values outside [0, 1] are clamped into the boundary bins; the value
    1.0 lands in the last bin. *)

val bin_center : t -> int -> float
val bin_lower : t -> int -> float

val mean : float list -> float
(** Arithmetic mean (0 on the empty list). *)

val pp : Format.formatter -> t -> unit
(** Render as an aligned proportion table with a bar sparkline. *)

val pp_pair : labels:string * string -> Format.formatter -> t * t -> unit
(** Two histograms side by side (e.g. AND vs OR bridges, or two
    circuits), bins aligned. *)
