(** Exact design-for-testability planning — the paper's "implications to
    testable design" turned into an algorithm.  Candidate test points
    are scored by the {e exact} change in mean fault detectability
    (Difference Propagation over the whole collapsed fault set), so the
    planner optimises the very quantity the paper's Figures 2/3 argue
    about, rather than a SCOAP-style proxy. *)

type step = {
  net : int;  (** net index in the {e original} circuit *)
  net_name : string;
  kind : [ `Observe | `Control0 ];
  mean_after : float;  (** objective after applying this step *)
}

type plan = {
  mean_before : float;
      (** mean detectability over all collapsed checkpoint faults
          (undetectable faults count as 0, so removing redundancy pays) *)
  steps : step list;  (** chosen points in greedy order *)
  circuit : Circuit.t;  (** the instrumented circuit *)
}

val objective : Circuit.t -> float
(** The planner's objective on any circuit. *)

val candidates : Circuit.t -> limit:int -> int list
(** Candidate nets: internal non-output nets ranked by depth-centrality
    (large min(level, max-levels-to-PO) first). *)

val greedy :
  ?budget:int -> ?candidate_limit:int -> Circuit.t -> plan
(** Insert up to [budget] (default 3) test points, each round picking —
    by exact evaluation over [candidate_limit] (default 8) candidates —
    the observation or control point with the largest objective gain.
    Rounds that cannot improve the objective stop early. *)
