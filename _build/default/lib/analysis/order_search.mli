(** Variable-order optimisation by adjacent-swap hill climbing — a
    sifting-style search implemented by whole-circuit rebuilds, feasible
    because symbolic evaluation of the benchmarks is fast.  Used by the
    ordering ablation to show how far the static heuristics sit from a
    locally-optimal order. *)

type outcome = {
  order : int array;  (** level -> input position *)
  nodes : int;  (** allocated BDD nodes under that order *)
  start_nodes : int;  (** nodes under the starting order *)
  passes : int;  (** improvement passes actually performed *)
}

val cost : Circuit.t -> int array -> int
(** Allocated BDD nodes when the whole circuit is evaluated under the
    given order. *)

val hill_climb :
  ?start:Ordering.heuristic -> ?max_passes:int -> Circuit.t -> outcome
(** Repeatedly sweep adjacent transpositions, keeping every swap that
    shrinks the node count, until a full pass finds no improvement or
    [max_passes] (default 4) is reached.  Deterministic. *)
