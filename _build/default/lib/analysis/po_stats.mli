(** The paper's §4.1 observation backing the "justify to the closest
    primary output" heuristic: the outputs a fault site {e feeds} are
    almost always exactly the outputs at which the fault is
    {e observable}. *)

type summary = {
  faults : int;
  all_fed_observed : int;
      (** faults observable at every output they feed *)
  proportion : float;
  mean_fed : float;
  mean_observed : float;
}

val summarize : Engine.result list -> summary
(** Detectable faults only — an undetectable fault is observable
    nowhere, which says nothing about the heuristic. *)

val pp : Format.formatter -> summary -> unit
