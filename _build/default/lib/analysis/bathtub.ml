type point = { distance : int; mean : float; faults : int }

let group results ~distance_of =
  let table = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match distance_of r with
      | None -> ()
      | Some d ->
        let sum, n = Option.value (Hashtbl.find_opt table d) ~default:(0.0, 0) in
        Hashtbl.replace table d (sum +. r.Engine.detectability, n + 1))
    results;
  Hashtbl.fold
    (fun distance (sum, n) acc ->
      { distance; mean = sum /. float_of_int n; faults = n } :: acc)
    table []
  |> List.sort (fun a b -> Stdlib.compare a.distance b.distance)

(* A fault's observation distance: the largest "max levels to PO" over
   its sites (a bridge has two). *)
let site_distance dist r =
  let ds =
    Fault.sites r.Engine.fault
    |> List.map (fun s -> dist.(s))
    |> List.filter (fun d -> d >= 0)
  in
  match ds with [] -> None | ds -> Some (List.fold_left max 0 ds)

let by_po_distance c results =
  let dist = Circuit.max_levels_to_po c in
  group results ~distance_of:(site_distance dist)

let by_pi_level c results =
  let levels = Circuit.levels c in
  group results ~distance_of:(fun r ->
      match Fault.sites r.Engine.fault with
      | [] -> None
      | sites -> Some (List.fold_left (fun m s -> max m levels.(s)) 0 sites))

let pp fmt points =
  Format.fprintf fmt "  %-9s %-10s %s@." "distance" "mean det" "faults";
  List.iter
    (fun p ->
      Format.fprintf fmt "  %-9d %-10.4f %d@." p.distance p.mean p.faults)
    points

let correlation points =
  let w = List.fold_left (fun a p -> a +. float_of_int p.faults) 0.0 points in
  if w <= 0.0 then 0.0
  else begin
    let mean_of f =
      List.fold_left (fun a p -> a +. (float_of_int p.faults *. f p)) 0.0 points
      /. w
    in
    let mx = mean_of (fun p -> float_of_int p.distance) in
    let my = mean_of (fun p -> p.mean) in
    let cov, vx, vy =
      List.fold_left
        (fun (cov, vx, vy) p ->
          let wi = float_of_int p.faults in
          let dx = float_of_int p.distance -. mx and dy = p.mean -. my in
          (cov +. (wi *. dx *. dy), vx +. (wi *. dx *. dx), vy +. (wi *. dy *. dy)))
        (0.0, 0.0, 0.0) points
    in
    if vx <= 0.0 || vy <= 0.0 then 0.0 else cov /. Float.sqrt (vx *. vy)
  end
