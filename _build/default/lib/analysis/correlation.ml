let pearson pairs =
  let n = List.length pairs in
  if n < 2 then 0.0
  else begin
    let nf = float_of_int n in
    let sum f = List.fold_left (fun acc p -> acc +. f p) 0.0 pairs in
    let mx = sum fst /. nf and my = sum snd /. nf in
    let cov = sum (fun (x, y) -> (x -. mx) *. (y -. my)) in
    let vx = sum (fun (x, _) -> (x -. mx) ** 2.0) in
    let vy = sum (fun (_, y) -> (y -. my) ** 2.0) in
    if vx <= 0.0 || vy <= 0.0 then 0.0 else cov /. Float.sqrt (vx *. vy)
  end

(* Fractional ranks with ties averaged. *)
let ranks values =
  let n = Array.length values in
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare values.(i) values.(j)) order;
  let out = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while
      !j + 1 < n && values.(order.(!j + 1)) = values.(order.(!i))
    do
      incr j
    done;
    let mean_rank = float_of_int (!i + !j) /. 2.0 in
    for k = !i to !j do
      out.(order.(k)) <- mean_rank
    done;
    i := !j + 1
  done;
  out

let spearman pairs =
  let xs = Array.of_list (List.map fst pairs) in
  let ys = Array.of_list (List.map snd pairs) in
  let rx = ranks xs and ry = ranks ys in
  pearson
    (List.init (Array.length xs) (fun i -> (rx.(i), ry.(i))))
