type summary = {
  faults : int;
  all_fed_observed : int;
  proportion : float;
  mean_fed : float;
  mean_observed : float;
}

let summarize results =
  let detectable = List.filter (fun r -> r.Engine.detectable) results in
  let faults = List.length detectable in
  let all_fed_observed =
    List.length
      (List.filter
         (fun r -> r.Engine.pos_observed = r.Engine.pos_fed)
         detectable)
  in
  let mean f =
    if faults = 0 then 0.0
    else
      List.fold_left (fun a r -> a +. float_of_int (f r)) 0.0 detectable
      /. float_of_int faults
  in
  {
    faults;
    all_fed_observed;
    proportion =
      (if faults = 0 then 0.0
       else float_of_int all_fed_observed /. float_of_int faults);
    mean_fed = mean (fun r -> r.Engine.pos_fed);
    mean_observed = mean (fun r -> r.Engine.pos_observed);
  }

let pp fmt s =
  Format.fprintf fmt
    "  %d detectable faults; observable at every fed PO: %d (%.3f); mean POs \
     fed %.2f vs observed %.2f@."
    s.faults s.all_fed_observed s.proportion s.mean_fed s.mean_observed
