type row = {
  title : string;
  nets : int;
  outputs : int;
  detectable : int;
  total : int;
  mean_detectability : float;
  normalized : float;
}

let row_of_results c results =
  let detectable = List.filter (fun r -> r.Engine.detectable) results in
  let mean =
    Histogram.mean (List.map (fun r -> r.Engine.detectability) detectable)
  in
  let outputs = Circuit.num_outputs c in
  {
    title = c.Circuit.title;
    nets = Circuit.num_gates c;
    outputs;
    detectable = List.length detectable;
    total = List.length results;
    mean_detectability = mean;
    normalized = mean /. float_of_int outputs;
  }

let pp fmt rows =
  Format.fprintf fmt
    "  %-12s %6s %4s %9s %10s %12s@." "circuit" "nets" "PO" "det/total"
    "mean det" "det/PO";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-12s %6d %4d %4d/%-4d %10.4f %12.6f@." r.title
        r.nets r.outputs r.detectable r.total r.mean_detectability
        r.normalized)
    rows

let spearman_size_normalized rows =
  Correlation.spearman
    (List.map (fun r -> (float_of_int r.nets, r.normalized)) rows)

let decreasing_normalized rows =
  let sorted = List.sort (fun a b -> Stdlib.compare a.nets b.nets) rows in
  let rec check = function
    | a :: (b :: _ as rest) -> a.normalized >= b.normalized && check rest
    | [ _ ] | [] -> true
  in
  check sorted
