lib/analysis/experiments.ml: Array Bathtub Bdd Bench_suite Bridge Bridge_class Circuit Engine Fault Gate Hashtbl Histogram List Po_stats Prng Rules Sa_fault Trends
