lib/analysis/dft.mli: Circuit
