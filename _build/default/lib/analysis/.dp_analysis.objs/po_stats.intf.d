lib/analysis/po_stats.mli: Engine Format
