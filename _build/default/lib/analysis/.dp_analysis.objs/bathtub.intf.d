lib/analysis/bathtub.mli: Circuit Engine Format
