lib/analysis/dft.ml: Array Circuit Engine Fault Fun Histogram List Sa_fault Stdlib Transform
