lib/analysis/po_stats.ml: Engine Format List
