lib/analysis/trends.mli: Circuit Engine Format
