lib/analysis/trends.ml: Circuit Correlation Engine Format Histogram List Stdlib
