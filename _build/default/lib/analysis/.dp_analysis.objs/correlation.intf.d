lib/analysis/correlation.mli:
