lib/analysis/correlation.ml: Array Float Fun List
