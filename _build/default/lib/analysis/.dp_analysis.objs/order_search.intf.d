lib/analysis/order_search.mli: Circuit Ordering
