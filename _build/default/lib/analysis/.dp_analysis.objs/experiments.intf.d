lib/analysis/experiments.mli: Bathtub Bridge Bridge_class Circuit Engine Histogram Po_stats Trends
