lib/analysis/histogram.mli: Format
