lib/analysis/histogram.ml: Array Float Format List String
