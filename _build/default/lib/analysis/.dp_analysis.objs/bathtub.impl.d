lib/analysis/bathtub.ml: Array Circuit Engine Fault Float Format Hashtbl List Option Stdlib
