lib/analysis/order_search.ml: Array Bdd Circuit Gate Ordering Rules
