(** PODEM — the conventional structural ATPG the paper positions
    Difference Propagation against.  Goel's algorithm with dual-rail
    (good machine / faulty machine) three-valued implication, objective
    selection on the D-frontier, backtrace to a primary-input decision,
    and a conservative X-path check.

    Complete: with an unbounded backtrack budget the answer is exact, so
    [Redundant] is a proof of undetectability (cross-validated against
    the Difference Propagation test sets in the test suite). *)

type outcome =
  | Test of bool array  (** a detecting input vector (don't-cares zeroed) *)
  | Redundant  (** search space exhausted: no test exists *)
  | Aborted  (** backtrack budget exhausted *)

val generate :
  ?backtrack_limit:int -> Circuit.t -> Sa_fault.t -> outcome
(** Find a test for one stuck-at fault (default budget: 100_000
    backtracks). *)

type run = {
  tests : (Sa_fault.t * bool array) list;
  redundant : Sa_fault.t list;
  aborted : Sa_fault.t list;
  coverage : float;  (** detected / total, counting redundant as excluded *)
}

val run_all :
  ?backtrack_limit:int ->
  ?drop:bool ->
  Circuit.t ->
  Sa_fault.t list ->
  run
(** Generate tests for a fault list.  With [~drop:true] (default) each
    new test is fault-simulated against the remaining faults so covered
    faults are dropped without their own PODEM call. *)
