(* Dual-rail PODEM: three-valued (0/1/X) good and faulty machines are
   re-implied from the primary-input assignment after every decision;
   the faulty machine forces the faulted line.  Decisions are made only
   at primary inputs (Goel's key idea), so backtracking is a simple
   stack of input assignments. *)

let x = 2

let tri_of_bool b = if b then 1 else 0

(* Three-valued gate evaluation. *)
let eval3 kind (ins : int array) =
  let with_controlling c out_c out_nc =
    if Array.exists (fun v -> v = c) ins then out_c
    else if Array.exists (fun v -> v = x) ins then x
    else out_nc
  in
  match (kind : Gate.kind) with
  | Gate.Input -> invalid_arg "Podem.eval3: Input"
  | Gate.Const0 -> 0
  | Gate.Const1 -> 1
  | Gate.Buf -> ins.(0)
  | Gate.Not -> if ins.(0) = x then x else 1 - ins.(0)
  | Gate.And -> with_controlling 0 0 1
  | Gate.Nand -> with_controlling 0 1 0
  | Gate.Or -> with_controlling 1 1 0
  | Gate.Nor -> with_controlling 1 0 1
  | Gate.Xor ->
    if Array.exists (fun v -> v = x) ins then x
    else Array.fold_left (fun acc v -> acc lxor v) 0 ins
  | Gate.Xnor ->
    if Array.exists (fun v -> v = x) ins then x
    else 1 - Array.fold_left (fun acc v -> acc lxor v) 0 ins

type outcome = Test of bool array | Redundant | Aborted

type state = {
  c : Circuit.t;
  fault : Sa_fault.t;
  stem : int;  (** net whose good value excites the fault *)
  stuck : int;  (** the stuck value as 0/1 *)
  assignment : int array;  (** per input position: 0/1/X *)
  good : int array;  (** per net *)
  faulty : int array;
}

let simulate st =
  let c = st.c in
  Array.iteri
    (fun pos g ->
      st.good.(g) <- st.assignment.(pos);
      st.faulty.(g) <- st.assignment.(pos))
    c.Circuit.inputs;
  let forced_pin =
    match st.fault.Sa_fault.line with
    | Sa_fault.Stem _ -> fun _ _ -> None
    | Sa_fault.Branch br ->
      fun g pin ->
        if g = br.Circuit.sink && pin = br.Circuit.pin then Some st.stuck
        else None
  in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      if gate.kind <> Gate.Input then begin
        st.good.(g) <-
          eval3 gate.kind (Array.map (fun f -> st.good.(f)) gate.fanins);
        let faulty_ins =
          Array.mapi
            (fun pin f ->
              match forced_pin g pin with
              | Some v -> v
              | None -> st.faulty.(f))
            gate.fanins
        in
        st.faulty.(g) <- eval3 gate.kind faulty_ins
      end;
      match st.fault.Sa_fault.line with
      | Sa_fault.Stem s when s = g -> st.faulty.(g) <- st.stuck
      | Sa_fault.Stem _ | Sa_fault.Branch _ -> ())
    c.Circuit.gates

let difference st g =
  st.good.(g) <> x && st.faulty.(g) <> x && st.good.(g) <> st.faulty.(g)

let detected st =
  Array.exists (fun o -> difference st o) st.c.Circuit.outputs

(* A net through which a fault effect could still travel. *)
let alive st g = difference st g || st.good.(g) = x || st.faulty.(g) = x

let xpath_exists st =
  let c = st.c in
  let n = Circuit.num_gates c in
  let reachable = Array.make n false in
  let site =
    match st.fault.Sa_fault.line with
    | Sa_fault.Stem s -> s
    | Sa_fault.Branch br -> br.Circuit.sink
  in
  let seeds = ref [] in
  for g = 0 to n - 1 do
    if difference st g then seeds := g :: !seeds
  done;
  if !seeds = [] then if alive st site then seeds := [ site ];
  List.iter (fun g -> reachable.(g) <- true) !seeds;
  (* Forward closure over alive nets, topological order suffices. *)
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      if (not reachable.(g)) && alive st g
         && Array.exists (fun f -> reachable.(f)) gate.Circuit.fanins
      then reachable.(g) <- true)
    c.Circuit.gates;
  Array.exists (fun o -> reachable.(o) && alive st o) c.Circuit.outputs

(* For a branch fault the first difference materialises at the sink
   gate, whose inputs carry no difference themselves; once the fault is
   excited the sink needs its side inputs driven to non-controlling
   values just like a D-frontier gate. *)
let sink_objective st =
  match st.fault.Sa_fault.line with
  | Sa_fault.Stem _ -> None
  | Sa_fault.Branch br ->
    let sink = br.Circuit.sink in
    if difference st sink || not (alive st sink) then None
    else
      let gate = Circuit.gate st.c sink in
      (match
         Array.find_opt (fun f -> st.good.(f) = x) gate.Circuit.fanins
       with
      | None -> None
      | Some f ->
        let value =
          match Gate.controlling_value gate.Circuit.kind with
          | Some cv -> tri_of_bool (not cv)
          | None -> 1
        in
        Some (f, value))

(* Objective: excite the fault, then extend the D-frontier. *)
let objective st =
  if st.good.(st.stem) = x then Some (st.stem, 1 - st.stuck)
  else begin
    let c = st.c in
    let frontier_objective g (gate : Circuit.gate) =
      if gate.kind = Gate.Input then None
      else if not (alive st g) then None
      else if not (Array.exists (fun f -> difference st f) gate.fanins) then
        None
      else
        (* Pick an undetermined input and aim at the non-controlling
           value so the difference can pass. *)
        let pick = Array.find_opt (fun f -> st.good.(f) = x) gate.fanins in
        match pick with
        | None -> None
        | Some f ->
          let value =
            match Gate.controlling_value gate.kind with
            | Some cv -> tri_of_bool (not cv)
            | None -> 1
          in
          Some (f, value)
    in
    let n = Circuit.num_gates c in
    let rec scan g =
      if g >= n then None
      else
        match frontier_objective g (Circuit.gate c g) with
        | Some o -> Some o
        | None -> scan (g + 1)
    in
    match sink_objective st with Some o -> Some o | None -> scan 0
  end

(* Walk an objective back to an unassigned primary input. *)
let backtrace st (net, value) =
  let rec go net value =
    let gate = Circuit.gate st.c net in
    match gate.Circuit.kind with
    | Gate.Input ->
      (match Circuit.input_position st.c net with
      | Some pos -> Some (pos, value)
      | None -> None)
    | Gate.Const0 | Gate.Const1 -> None
    | kind ->
      let value = if Gate.inverted kind then 1 - value else value in
      (match
         Array.find_opt (fun f -> st.good.(f) = x) gate.Circuit.fanins
       with
      | Some f -> go f value
      | None -> None)
  in
  go net value

let generate ?(backtrack_limit = 100_000) c (fault : Sa_fault.t) =
  let st =
    {
      c;
      fault;
      stem = Sa_fault.stem_of_line fault.Sa_fault.line;
      stuck = tri_of_bool fault.Sa_fault.value;
      assignment = Array.make (Circuit.num_inputs c) x;
      good = Array.make (Circuit.num_gates c) x;
      faulty = Array.make (Circuit.num_gates c) x;
    }
  in
  let backtracks = ref 0 in
  (* Decision stack: (input position, current value, both tried?). *)
  let stack = ref [] in
  let rec backtrack () =
    match !stack with
    | [] -> Redundant
    | (pos, _, true) :: rest ->
      st.assignment.(pos) <- x;
      stack := rest;
      backtrack ()
    | (pos, v, false) :: rest ->
      incr backtracks;
      if !backtracks > backtrack_limit then Aborted
      else begin
        st.assignment.(pos) <- 1 - v;
        stack := (pos, 1 - v, true) :: rest;
        search ()
      end
  and search () =
    simulate st;
    if detected st then
      Test (Array.map (fun v -> v = 1) st.assignment)
    else if st.good.(st.stem) = st.stuck then backtrack ()
    else if not (xpath_exists st) then backtrack ()
    else
      match objective st with
      | None -> backtrack ()
      | Some obj ->
        (match backtrace st obj with
        | None -> backtrack ()
        | Some (pos, v) ->
          st.assignment.(pos) <- v;
          stack := (pos, v, false) :: !stack;
          search ())
  in
  search ()

type run = {
  tests : (Sa_fault.t * bool array) list;
  redundant : Sa_fault.t list;
  aborted : Sa_fault.t list;
  coverage : float;
}

let run_all ?(backtrack_limit = 100_000) ?(drop = true) c faults =
  let tests = ref [] in
  let redundant = ref [] in
  let aborted = ref [] in
  let detected = ref 0 in
  let remaining = ref faults in
  let total = List.length faults in
  let rec loop () =
    match !remaining with
    | [] -> ()
    | fault :: rest ->
      remaining := rest;
      (match generate ~backtrack_limit c fault with
      | Test vector ->
        incr detected;
        tests := (fault, vector) :: !tests;
        if drop then begin
          let survivors =
            List.filter
              (fun f ->
                if Fault_sim.detects c (Fault.Stuck f) vector then begin
                  incr detected;
                  false
                end
                else true)
              !remaining
          in
          remaining := survivors
        end
      | Redundant -> redundant := fault :: !redundant
      | Aborted -> aborted := fault :: !aborted);
      loop ()
  in
  loop ();
  let testable = total - List.length !redundant in
  {
    tests = List.rev !tests;
    redundant = List.rev !redundant;
    aborted = List.rev !aborted;
    coverage =
      (if testable = 0 then 1.0
       else float_of_int !detected /. float_of_int testable);
  }
