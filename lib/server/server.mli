(** The resident analysis daemon behind [dpa serve].

    One listener thread, one reader thread per connection, a fixed pool
    of worker threads draining a bounded admission queue.  Analyze
    requests sharing a netlist digest and an options fingerprint
    coalesce into one sweep whose in-order outcome stream fans out to
    every subscriber (late joiners get the already-streamed prefix
    replayed first).  With a state directory configured, sweeps journal
    through lib/core's checkpoint machinery under the journal writer
    lock, so a SIGKILLed daemon restarted on the same directory
    re-serves completed prefixes byte-identically and resumes computing
    from the first missing fault.

    Overload is structured: when the queue is full, new work is
    refused with a [busy] response carrying a retry-after hint derived
    from smoothed sweep wall time — never by unbounded buffering.

    Lock order is [server state > sweep state > connection writer];
    see server.ml for the full discipline. *)

type socket_addr =
  | Unix_socket of string  (** socket file path *)
  | Tcp of string * int  (** host, port; port 0 binds ephemeral *)

type config = {
  socket : socket_addr;
  state_dir : string option;
      (** journal directory; [None] disables durability *)
  workers : int;  (** worker threads; [0] admits but never runs (tests) *)
  queue_capacity : int;  (** admission bound; beyond it requests get [busy] *)
  cache_capacity : int;  (** resident circuits kept warm (LRU) *)
  domains : int;  (** worker domains per sweep *)
  scheduler : Engine.scheduler;
  sync_every : int;  (** journal fsync batch size *)
  verbose : bool;
}

val default_config : socket:socket_addr -> config
(** 2 workers, queue 64, cache 8, 1 domain, snapshot scheduler, fsync
    every 8 outcomes, no state dir. *)

type t

val start : config -> t
(** Bind, listen, spawn the accept loop and worker pool, and return
    immediately.  A Unix socket path with no live listener behind it is
    treated as stale and unlinked; a live one raises [Failure]. *)

val port : t -> int option
(** The bound TCP port ([Some] only for {!Tcp} sockets) — lets tests
    bind port 0 and discover the ephemeral port. *)

val request_stop : t -> unit
(** Begin a graceful drain: stop accepting connections and admitting
    work, let queued and in-flight sweeps complete and stream out, then
    shut down.  One atomic store, safe to call from a SIGTERM/SIGINT
    handler. *)

val wait : t -> unit
(** Block until the drain completes: joins the accept loop and workers,
    closes every connection, removes the socket file. *)

val stop : t -> unit
(** {!request_stop} then {!wait}. *)
