(* The resident-circuit cache: elaborated circuits, their collapsed
   fault lists, and warm Engine instances (good-function arenas sealed
   and ready to fork) keyed by netlist digest.  This is what makes a
   resident daemon worth running — the second analyze of a circuit
   skips elaboration, fault collapsing, and good-function construction
   entirely.

   Entries are pinned while a sweep runs on them ([busy]): a BDD
   manager is single-threaded per sweep, so a concurrent request for
   the same digest with a different options tag gets a fresh uncached
   engine instead of sharing the hot one, and eviction never reclaims
   an entry mid-sweep.  All calls take the cache's own mutex; callers
   never hold it across a sweep. *)

type entry = {
  digest : string;
  circuit : Circuit.t;
  faults : Fault.t list;
  faults_arr : Fault.t array;
  engine : Engine.t;
  mutable busy : bool;
  mutable stamp : int;  (* last-use tick, for LRU eviction *)
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mu : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    table = Hashtbl.create 16;
    mu = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let evict_one_idle t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        if e.busy then acc
        else
          match acc with
          | Some best when best.stamp <= e.stamp -> acc
          | _ -> Some e)
      t.table None
  in
  match victim with
  | Some e ->
    Hashtbl.remove t.table e.digest;
    t.evictions <- t.evictions + 1
  | None -> ()
  (* every entry busy: run over capacity rather than kill a live sweep *)

let build ~digest ~circuit ~faults =
  let faults_arr = Array.of_list faults in
  let engine = Engine.create circuit in
  { digest; circuit; faults; faults_arr; engine; busy = false; stamp = 0 }

(* [checkout t ~digest ~build_inputs] returns a pinned entry for
   [digest], building (outside any cached slot) when the cached one is
   absent or already pinned.  [`Cached] entries must be released with
   {!checkin}; [`Fresh] ones are the caller's to drop. *)
let checkout t ~digest ~circuit ~faults =
  let cached =
    locked t (fun () ->
        t.tick <- t.tick + 1;
        match Hashtbl.find_opt t.table digest with
        | Some e when not e.busy ->
          e.busy <- true;
          e.stamp <- t.tick;
          t.hits <- t.hits + 1;
          Some e
        | Some _ ->
          (* hot but pinned: count the hit, serve a throwaway engine *)
          t.hits <- t.hits + 1;
          None
        | None ->
          t.misses <- t.misses + 1;
          None)
  in
  match cached with
  | Some e -> `Cached e
  | None -> `Fresh (build ~digest ~circuit ~faults)

(* An entry is worth preferring at admission time when it is resident
   and idle: dequeuing its request next turns a would-be miss (fresh
   engine under a pinned or evicted slot) into a warm-arena hit. *)
let resident t digest =
  locked t (fun () ->
      match Hashtbl.find_opt t.table digest with
      | Some e -> not e.busy
      | None -> false)

let checkin t entry =
  locked t (fun () ->
      entry.busy <- false;
      match Hashtbl.find_opt t.table entry.digest with
      | Some resident when resident == entry -> ()
      | Some _ -> ()  (* digest re-cached by a fresh twin; keep the newer *)
      | None ->
        if Hashtbl.length t.table >= t.capacity then evict_one_idle t;
        if Hashtbl.length t.table < t.capacity then begin
          entry.stamp <- t.tick;
          Hashtbl.add t.table entry.digest entry
        end)

type stats = {
  resident : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  locked t (fun () ->
      {
        resident = Hashtbl.length t.table;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
      })
