(** Digest-keyed LRU cache of resident circuits: elaborated
    {!Circuit.t}s, collapsed fault lists, and warm {!Engine.t}s with
    sealed good-function arenas.  The cache is what a resident daemon
    buys over per-request [dpa] invocations — repeat requests for a
    digest skip elaboration and good-function construction.

    Entries are {e pinned} while checked out: BDD managers are
    single-threaded per sweep, so a second concurrent sweep on the same
    digest gets a fresh uncached engine, and eviction never touches a
    pinned entry (the cache runs over capacity rather than reclaim a
    live sweep's arena). *)

type entry = {
  digest : string;
  circuit : Circuit.t;
  faults : Fault.t list;
  faults_arr : Fault.t array;
  engine : Engine.t;
  mutable busy : bool;  (** pinned by a running sweep *)
  mutable stamp : int;
}

type t

val create : capacity:int -> t

val checkout :
  t -> digest:string -> circuit:Circuit.t -> faults:Fault.t list ->
  [ `Cached of entry | `Fresh of entry ]
(** Pin and return the resident entry for [digest]; build a fresh
    uncached one (from [circuit]/[faults], which the caller has already
    elaborated) when the slot is absent or pinned.  [`Cached] entries
    must be returned with {!checkin}; [`Fresh] ones are the caller's to
    drop — though {!checkin} will adopt them into the cache. *)

val resident : t -> string -> bool
(** True when [digest] has an idle (unpinned) resident entry — a sweep
    admitted now would check out a warm engine rather than build a
    fresh one.  Used by the server's cache-aware admission. *)

val checkin : t -> entry -> unit
(** Unpin; adopt fresh entries into the cache, evicting the
    least-recently-used idle entry if over capacity. *)

type stats = {
  resident : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats
