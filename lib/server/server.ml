(* The resident analysis daemon behind [dpa serve].

   One listener thread accepts connections (polling an atomic stop flag
   through a select timeout, so a signal can never wedge the accept
   loop); one reader thread per connection parses JSON-lines requests
   and either answers inline (ping/stats), rejects (busy/error), or
   enqueues work; a fixed pool of worker threads drains the bounded
   queue and runs sweeps and lints.  Analyze requests sharing a netlist
   digest and an options fingerprint coalesce into one sweep whose
   outcomes fan out to every subscriber, each prefixed with a replay of
   whatever had already streamed when it joined.

   Lock ordering (always acquired in this order, never the reverse):

     server.mu  >  sweep.smu  >  conn.wmu

   [server.mu] guards admission state (queue, active-sweep table,
   counters); [sweep.smu] guards one sweep's payload buffer, streaming
   frontier and subscriber list; [conn.wmu] serialises writers on one
   socket.  Worker domains call the outcome hook concurrently, so the
   frontier flush takes [smu] without ever needing [mu].

   Durability: with a state directory configured, every sweep journals
   through lib/core's checkpoint machinery under the journal writer
   lock.  A SIGKILLed server restarted on the same state dir finds the
   journal by digest + options tag, loads the completed prefix, streams
   it back byte-identically (outcome payloads are the journal's own
   line bytes), and resumes computing from the first missing fault. *)

type socket_addr = Unix_socket of string | Tcp of string * int

type config = {
  socket : socket_addr;
  state_dir : string option;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  domains : int;
  scheduler : Engine.scheduler;
  sync_every : int;  (* journal fsync batch size *)
  verbose : bool;
}

let default_config ~socket =
  {
    socket;
    state_dir = None;
    workers = 2;
    queue_capacity = 64;
    cache_capacity = 8;
    domains = 1;
    scheduler = Engine.Snapshot;
    sync_every = 8;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wmu : Mutex.t;
  mutable open_ : bool;
}

(* A failed write marks the connection dead rather than raising into a
   worker: subscribers that vanish mid-sweep must not kill the sweep
   the remaining subscribers are waiting on. *)
let send conn line =
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if conn.open_ then
        try
          output_string conn.oc line;
          output_char conn.oc '\n';
          flush conn.oc
        with Sys_error _ | Unix.Unix_error _ -> conn.open_ <- false)

let close_conn conn =
  Mutex.lock conn.wmu;
  conn.open_ <- false;
  Mutex.unlock conn.wmu;
  (* A reader thread blocked mid-[input_line] is not woken by closing
     the fd — only a shutdown interrupts the in-progress read.  Without
     this, drain hangs until every idle client hangs up on its own. *)
  (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try close_out_noerr conn.oc with _ -> ());
  (try close_in_noerr conn.ic with _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Sweeps and jobs                                                     *)

type sweep = {
  key : string;  (* digest + "|" + opts tag: the coalescing identity *)
  digest : string;
  circuit : Circuit.t;
  faults : Fault.t list;
  faults_arr : Fault.t array;
  opts : Protocol.analyze_opts;
  n : int;
  payloads : string option array;
      (* journal-line bytes per fault index, filled as outcomes land *)
  mutable next : int;  (* streaming frontier: all < next already sent *)
  mutable subs : (conn * string) list;  (* connection, request id *)
  mutable resumed : int;  (* outcomes re-served from a recovered journal *)
  mutable finished : (int * int * int * int * int * float) option;
      (* exact, bounded, unbounded, crashed, rescued, elapsed_ms — set
         under [smu] when the sweep completes, so a subscriber racing
         the finish can self-serve its [done] line *)
  mutable failed : string option;
  smu : Mutex.t;
}

type job =
  | Sweep_job of sweep
  | Lint_job of { conn : conn; id : string; circuit : Circuit.t }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  active : (string, sweep) Hashtbl.t;
  cache : Lru.t;
  stop : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable workers : Thread.t list;
  mutable readers : Thread.t list;
  mutable conns : conn list;
  mutable served_sweeps : int;
  mutable served_lints : int;
  mutable rejected : int;
  mutable queue_reorders : int;
      (* sweeps promoted past the FIFO order by cache-aware admission *)
  mutable ewma_ms : float;  (* smoothed sweep wall time, for busy hints *)
  started_at : float;
}

let log t fmt =
  if t.config.verbose then
    Printf.ksprintf (fun s -> Printf.eprintf "[serve] %s\n%!" s) fmt
  else Printf.ksprintf ignore fmt

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> Some p
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Streaming                                                           *)

(* Flush the in-order frontier to every live subscriber.  Caller holds
   [smu].  Outcome lines splice the journal's exact bytes, so what a
   client strips back out of the envelope [cmp]-matches the journal. *)
let flush_frontier sweep =
  let rec go () =
    if sweep.next < sweep.n then
      match sweep.payloads.(sweep.next) with
      | None -> ()
      | Some journal_line ->
        List.iter
          (fun (conn, id) -> send conn (Protocol.outcome ~id journal_line))
          sweep.subs;
        sweep.next <- sweep.next + 1;
        go ()
  in
  go ()

let subscribe sweep conn id ~coalesced =
  Mutex.lock sweep.smu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sweep.smu)
    (fun () ->
      match sweep.failed with
      | Some message ->
        send conn (Protocol.error ~id:(Some id) ~code:"internal" message)
      | None ->
        send conn
          (Protocol.ack ~id ~op:"analyze" ~digest:sweep.digest
             ~faults:sweep.n ~coalesced);
        (* Replay the already-streamed prefix so every subscriber sees
           the identical full sequence regardless of when it joined. *)
        for i = 0 to sweep.next - 1 do
          match sweep.payloads.(i) with
          | Some journal_line -> send conn (Protocol.outcome ~id journal_line)
          | None -> ()
        done;
        (match sweep.finished with
        | Some (exact, bounded, unbounded, crashed, rescued, elapsed_ms) ->
          (* The sweep completed between admission and this subscribe:
             its broadcast already went out, so self-serve the [done]. *)
          send conn
            (Protocol.analyze_done ~id ~exact ~bounded ~unbounded ~crashed
               ~rescued ~resumed:sweep.resumed ~elapsed_ms)
        | None -> sweep.subs <- (conn, id) :: sweep.subs))

(* ------------------------------------------------------------------ *)
(* Sweep execution (worker side)                                       *)

let outcome_counts outcomes =
  let count p = List.length (List.filter p outcomes) in
  let exact = count Engine.is_exact in
  let bounded = count (function Engine.Bounded _ -> true | _ -> false) in
  let unbounded =
    count (function
      | Engine.Budget_exceeded _ | Engine.Deadline_exceeded _ -> true
      | _ -> false)
  in
  let crashed = count (function Engine.Crashed _ -> true | _ -> false) in
  let rescued =
    count (function
      | Engine.Exact r -> r.Engine.rescued_by_reorder
      | _ -> false)
  in
  (exact, bounded, unbounded, crashed, rescued)

(* Open (or recover) the journal for one sweep.  Returns the recovered
   index → outcome table, the sink to append to, and the writer lock to
   release afterwards.  A stale or corrupt journal is recreated rather
   than trusted; a journal whose writer lock is held by another live
   process downgrades the sweep to un-journaled (the daemon must stay
   available even when an external [dpa analyze --checkpoint] owns the
   file). *)
let open_journal t sweep =
  match t.config.state_dir with
  | None -> (Hashtbl.create 1, None, None)
  | Some dir -> (
    Journal.ensure_state_dir dir;
    let path =
      Journal.state_file ~dir ~digest:sweep.digest
        ~tag:(Protocol.opts_tag sweep.opts)
    in
    match Journal.acquire_writer_lock ~path () with
    | Error reason ->
      log t "journal %s unavailable (%s); sweep runs un-journaled" path
        reason;
      (Hashtbl.create 1, None, None)
    | Ok lock ->
      let fresh () =
        ( Hashtbl.create 1,
          Some
            (Journal.create ~sync_every:t.config.sync_every ~path
               ~digest:sweep.digest ~faults:sweep.n ()),
          Some lock )
      in
      if Sys.file_exists path then (
        match
          Journal.load ~path ~digest:sweep.digest ~faults:sweep.faults_arr
        with
        | Ok table ->
          log t "resuming %s: %d of %d outcomes journaled" path
            (Hashtbl.length table) sweep.n;
          ( table,
            Some (Journal.reopen ~sync_every:t.config.sync_every ~path ()),
            Some lock )
        | Error reason ->
          log t "discarding journal %s: %s" path reason;
          fresh ())
      else fresh ())

let run_sweep_job t sweep =
  let t0 = Unix.gettimeofday () in
  let entry =
    Lru.checkout t.cache ~digest:sweep.digest ~circuit:sweep.circuit
      ~faults:sweep.faults
  in
  let entry = match entry with `Cached e | `Fresh e -> e in
  let table, sink, lock = open_journal t sweep in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Journal.close sink;
      Option.iter Journal.release_writer_lock lock;
      Lru.checkin t.cache entry)
    (fun () ->
      (* Re-serve the recovered prefix before computing anything: the
         payload bytes are the journal's own lines, so a client diffing
         this stream against an uninterrupted run sees no difference. *)
      Mutex.lock sweep.smu;
      Hashtbl.iter
        (fun i o -> sweep.payloads.(i) <- Some (Journal.outcome_line i o))
        table;
      sweep.resumed <- Hashtbl.length table;
      flush_frontier sweep;
      Mutex.unlock sweep.smu;
      let journal = Journal.engine_journal ?sink table in
      let on_outcome i o =
        (* Called from worker domains, after the journal append: the
           outcome is durable before it is visible on any socket. *)
        Mutex.lock sweep.smu;
        sweep.payloads.(i) <- Some (Journal.outcome_line i o);
        flush_frontier sweep;
        Mutex.unlock sweep.smu
      in
      let opts = sweep.opts in
      let outcomes =
        Engine.analyze_all ?fault_budget:opts.Protocol.fault_budget
          ?deadline_ms:opts.Protocol.deadline_ms
          ~max_retries:opts.Protocol.max_retries ~bounds:true
          ~bound_samples:opts.Protocol.samples
          ~deterministic:(sink <> None) ~journal ~on_outcome
          ~domains:t.config.domains ~scheduler:t.config.scheduler
          entry.Lru.engine sweep.faults
      in
      let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      (* Unregister before announcing completion: once [done] lines go
         out no new subscriber may latch onto this sweep, or it would
         never receive its own [done]. *)
      Mutex.lock t.mu;
      Hashtbl.remove t.active sweep.key;
      t.served_sweeps <- t.served_sweeps + 1;
      t.ewma_ms <- (0.8 *. t.ewma_ms) +. (0.2 *. elapsed_ms);
      Mutex.unlock t.mu;
      let exact, bounded, unbounded, crashed, rescued =
        outcome_counts outcomes
      in
      Mutex.lock sweep.smu;
      flush_frontier sweep;
      sweep.finished <-
        Some (exact, bounded, unbounded, crashed, rescued, elapsed_ms);
      List.iter
        (fun (conn, id) ->
          send conn
            (Protocol.analyze_done ~id ~exact ~bounded ~unbounded ~crashed
               ~rescued ~resumed:sweep.resumed ~elapsed_ms))
        sweep.subs;
      sweep.subs <- [];
      Mutex.unlock sweep.smu;
      log t "sweep %s: %d faults in %.1f ms (%d resumed)" sweep.digest
        sweep.n elapsed_ms sweep.resumed)

let fail_sweep t sweep exn =
  Mutex.lock t.mu;
  Hashtbl.remove t.active sweep.key;
  Mutex.unlock t.mu;
  let message = Printexc.to_string exn in
  Mutex.lock sweep.smu;
  sweep.failed <- Some message;
  List.iter
    (fun (conn, id) ->
      send conn (Protocol.error ~id:(Some id) ~code:"internal" message))
    sweep.subs;
  sweep.subs <- [];
  Mutex.unlock sweep.smu;
  log t "sweep %s failed: %s" sweep.digest message

let run_lint_job t ~conn ~id circuit =
  let t0 = Unix.gettimeofday () in
  let diags = Lint.run circuit in
  List.iter (fun d -> send conn (Protocol.finding ~id d)) diags;
  let count sev =
    List.length
      (List.filter (fun d -> d.Diagnostic.severity = sev) diags)
  in
  send conn
    (Protocol.lint_done ~id ~errors:(count Diagnostic.Error)
       ~warnings:(count Diagnostic.Warning) ~infos:(count Diagnostic.Info)
       ~elapsed_ms:((Unix.gettimeofday () -. t0) *. 1000.0));
  Mutex.lock t.mu;
  t.served_lints <- t.served_lints + 1;
  Mutex.unlock t.mu

(* Cache-aware admission: prefer the earliest queued sweep whose digest
   is resident and idle in the LRU — serving it next checks out the
   warm arena instead of building a fresh engine (and before the entry
   can be evicted by interleaved other-digest sweeps).  Strict FIFO
   otherwise, so nothing starves: a promoted job only ever jumps ahead
   of jobs that would have missed the cache anyway.  Called with
   [t.mu] held and the queue non-empty. *)
let pop_preferred t =
  let jobs = List.of_seq (Queue.to_seq t.queue) in
  let preferred =
    let rec go i = function
      | [] -> None
      | Sweep_job s :: _ when Lru.resident t.cache s.digest -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 jobs
  in
  match preferred with
  | Some i when i > 0 ->
    Queue.clear t.queue;
    List.iteri (fun j job -> if j <> i then Queue.push job t.queue) jobs;
    t.queue_reorders <- t.queue_reorders + 1;
    List.nth jobs i
  | _ -> Queue.pop t.queue

let rec worker_loop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.queue && not (Atomic.get t.stop) do
    Condition.wait t.nonempty t.mu
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mu
    (* stopping and fully drained: in-flight work all completed *)
  else begin
    let job = pop_preferred t in
    Mutex.unlock t.mu;
    (match job with
    | Sweep_job sweep -> (
      try run_sweep_job t sweep with exn -> fail_sweep t sweep exn)
    | Lint_job { conn; id; circuit } -> (
      try run_lint_job t ~conn ~id circuit
      with exn ->
        send conn
          (Protocol.error ~id:(Some id) ~code:"internal"
             (Printexc.to_string exn))));
    worker_loop t
  end

(* ------------------------------------------------------------------ *)
(* Admission (reader side)                                             *)

let resolve_spec spec =
  match spec with
  | Protocol.Named name -> (
    try Ok (Bench_suite.find name)
    with Not_found ->
      Error (Printf.sprintf "unknown benchmark circuit %S" name))
  | Protocol.Inline { title; source } -> (
    try Ok (Bench_format.parse ~title source) with
    | Bench_format.Parse_error (span, msg) ->
      Error
        (Printf.sprintf "netlist:%d:%d: %s" span.Bench_format.line
           span.Bench_format.start_col msg)
    | Circuit.Malformed msg | Seq_circuit.Malformed msg ->
      Error (Printf.sprintf "netlist: %s" msg))

(* Admission verdicts are decided under [t.mu] but all socket writes
   happen after it is released — the lock order forbids taking a
   connection mutex inside [t.mu] while a sweep also needs [smu]. *)
type verdict =
  | Admitted of { sweep : sweep; coalesced : sweep option }
  | Rejected_busy of { queued : int; retry_after_ms : int }
  | Rejected_draining

let admit_analyze t conn id circuit opts =
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults circuit)
  in
  let digest = Journal.digest circuit faults in
  let key = digest ^ "|" ^ Protocol.opts_tag opts in
  let verdict =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        if Atomic.get t.stop then Rejected_draining
        else
          match Hashtbl.find_opt t.active key with
          | Some sweep ->
            Admitted { sweep; coalesced = Some sweep }
          | None ->
            let queued = Queue.length t.queue in
            if queued >= t.config.queue_capacity then begin
              t.rejected <- t.rejected + 1;
              let retry_after_ms =
                max 100
                  (int_of_float
                     (t.ewma_ms *. float_of_int (queued + 1)
                     /. float_of_int (max 1 t.config.workers)))
              in
              Rejected_busy { queued; retry_after_ms }
            end
            else begin
              let n = List.length faults in
              let sweep =
                {
                  key;
                  digest;
                  circuit;
                  faults;
                  faults_arr = Array.of_list faults;
                  opts;
                  n;
                  payloads = Array.make n None;
                  next = 0;
                  subs = [];
                  resumed = 0;
                  finished = None;
                  failed = None;
                  smu = Mutex.create ();
                }
              in
              Hashtbl.add t.active key sweep;
              Queue.push (Sweep_job sweep) t.queue;
              Condition.signal t.nonempty;
              Admitted { sweep; coalesced = None }
            end)
  in
  match verdict with
  | Admitted { sweep; coalesced } ->
    subscribe sweep conn id ~coalesced:(coalesced <> None)
  | Rejected_busy { queued; retry_after_ms } ->
    send conn
      (Protocol.busy ~id ~queued ~capacity:t.config.queue_capacity
         ~retry_after_ms)
  | Rejected_draining ->
    send conn
      (Protocol.error ~id:(Some id) ~code:"draining"
         "server is draining; no new work accepted")

let admit_lint t conn id circuit =
  let verdict =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        if Atomic.get t.stop then `Draining
        else begin
          let queued = Queue.length t.queue in
          if queued >= t.config.queue_capacity then begin
            t.rejected <- t.rejected + 1;
            `Busy queued
          end
          else begin
            Queue.push (Lint_job { conn; id; circuit }) t.queue;
            Condition.signal t.nonempty;
            `Admitted
          end
        end)
  in
  match verdict with
  | `Admitted ->
    send conn
      (Protocol.ack ~id ~op:"lint"
         ~digest:(Journal.digest circuit [])
         ~faults:0 ~coalesced:false)
  | `Busy queued ->
    send conn
      (Protocol.busy ~id ~queued ~capacity:t.config.queue_capacity
         ~retry_after_ms:(max 100 (int_of_float t.ewma_ms)))
  | `Draining ->
    send conn
      (Protocol.error ~id:(Some id) ~code:"draining"
         "server is draining; no new work accepted")

let stats_line t id =
  let lru = Lru.stats t.cache in
  let active, queued, sweeps, lints, rejected, reorders =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        ( Hashtbl.length t.active,
          Queue.length t.queue,
          t.served_sweeps,
          t.served_lints,
          t.rejected,
          t.queue_reorders ))
  in
  Protocol.stats ~id
    [
      ("uptime_s",
       Printf.sprintf "%.1f" (Unix.gettimeofday () -. t.started_at));
      ("sweeps", string_of_int sweeps);
      ("lints", string_of_int lints);
      ("rejected", string_of_int rejected);
      ("active", string_of_int active);
      ("queued", string_of_int queued);
      ("queue_capacity", string_of_int t.config.queue_capacity);
      ("queue_reorders", string_of_int reorders);
      ("workers", string_of_int t.config.workers);
      ("cache_resident", string_of_int lru.Lru.resident);
      ("cache_hits", string_of_int lru.Lru.hits);
      ("cache_misses", string_of_int lru.Lru.misses);
      ("cache_evictions", string_of_int lru.Lru.evictions);
    ]

let request_stop t =
  (* Async-signal-tolerant: one atomic store, no locks.  The accept
     loop polls the flag every 250 ms and performs the wakeups from an
     ordinary thread context. *)
  Atomic.set t.stop true

let handle_line t conn line =
  match Protocol.parse_request line with
  | Error (id, msg) -> send conn (Protocol.error ~id ~code:"bad_request" msg)
  | Ok (Protocol.Ping { id }) -> send conn (Protocol.pong ~id)
  | Ok (Protocol.Stats { id }) -> send conn (stats_line t id)
  | Ok (Protocol.Shutdown { id }) ->
    (* Acknowledged, then drained: queued and in-flight work completes
       before the process exits. *)
    send conn (Protocol.pong ~id);
    request_stop t
  | Ok (Protocol.Lint { id; spec }) -> (
    match resolve_spec spec with
    | Error msg ->
      send conn (Protocol.error ~id:(Some id) ~code:"bad_circuit" msg)
    | Ok circuit -> admit_lint t conn id circuit)
  | Ok (Protocol.Analyze { id; spec; opts }) -> (
    match resolve_spec spec with
    | Error msg ->
      send conn (Protocol.error ~id:(Some id) ~code:"bad_circuit" msg)
    | Ok circuit -> admit_analyze t conn id circuit opts)

(* Does any in-flight sweep still stream to this connection? *)
let conn_subscribed t conn =
  let sweeps =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.active [])
  in
  List.exists
    (fun s ->
      Mutex.lock s.smu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.smu)
        (fun () -> List.exists (fun (c, _) -> c == conn) s.subs))
    sweeps

let reader t conn =
  (try
     while conn.open_ && not (Atomic.get t.stop) do
       let line = input_line conn.ic in
       if String.trim line <> "" then handle_line t conn line
     done
   with End_of_file | Sys_error _ -> ());
  (* EOF on the request side.  A client that half-closed its write end
     may still be reading an in-flight sweep's stream, so only close
     the connection when nothing subscribes to it any more; otherwise
     [send]'s dead-socket handling and drain-time cleanup cover it. *)
  if not (conn_subscribed t conn) then close_conn conn

let rec accept_loop t =
  if Atomic.get t.stop then begin
    (* Wake idle workers so they can observe the stop flag and drain. *)
    Mutex.lock t.mu;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu
  end
  else begin
    (match Unix.select [ t.listen_fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ ->
        let conn =
          {
            fd;
            ic = Unix.in_channel_of_descr fd;
            oc = Unix.out_channel_of_descr fd;
            wmu = Mutex.create ();
            open_ = true;
          }
        in
        Mutex.lock t.mu;
        t.conns <- conn :: t.conns;
        t.readers <- Thread.create (fun () -> reader t conn) () :: t.readers;
        Mutex.unlock t.mu
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ());
    accept_loop t
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let listen_socket = function
  | Unix_socket path ->
    (* A socket file left behind by a SIGKILLed server would make bind
       fail; probe it and unlink only if nothing is accepting. *)
    (if Sys.file_exists path then
       let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       match Unix.connect probe (Unix.ADDR_UNIX path) with
       | () ->
         Unix.close probe;
         failwith
           (Printf.sprintf "socket %s already has a listening server" path)
       | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
         ->
         Unix.close probe;
         (try Sys.remove path with Sys_error _ -> ())
       | exception Unix.Unix_error _ -> Unix.close probe);
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    (fd, Unix.getsockname fd)

let start config =
  Option.iter Journal.ensure_state_dir config.state_dir;
  let listen_fd, bound = listen_socket config.socket in
  let t =
    {
      config;
      listen_fd;
      bound;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      active = Hashtbl.create 16;
      cache = Lru.create ~capacity:config.cache_capacity;
      stop = Atomic.make false;
      accept_thread = None;
      workers = [];
      readers = [];
      conns = [];
      served_sweeps = 0;
      served_lints = 0;
      rejected = 0;
      queue_reorders = 0;
      ewma_ms = 500.0;
      started_at = Unix.gettimeofday ();
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.workers <-
    List.init (max 0 config.workers) (fun _ ->
        Thread.create (fun () -> worker_loop t) ());
  t

let wait t =
  Option.iter Thread.join t.accept_thread;
  (* Accept loop is down: no new connections, no new admissions (the
     stop flag rejects them).  Workers drain the queue to empty —
     every admitted sweep completes and streams its results — then
     exit. *)
  List.iter Thread.join t.workers;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.config.socket with
  | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ());
  Mutex.lock t.mu;
  let conns = t.conns in
  t.conns <- [];
  let readers = t.readers in
  t.readers <- [];
  Mutex.unlock t.mu;
  List.iter close_conn conns;
  List.iter Thread.join readers

let stop t =
  request_stop t;
  wait t
