(* The dpa serve wire protocol: JSON-lines in both directions, every
   line one flat object in the journal's dialect (string / int / float /
   bool / null values, no nesting) so requests parse with
   [Journal.parse_flat_object] — the same tokenizer that reads
   checkpoint files — and streamed outcome lines are byte-for-byte the
   journal's own records wrapped in an {id, type} envelope.  That last
   property is what makes "a restarted server re-serves the completed
   prefix byte-identically" a [cmp]-checkable guarantee instead of a
   structural one. *)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type circuit_spec =
  | Named of string  (* benchmark name, resolved via Bench_suite *)
  | Inline of { title : string; source : string }
      (* inline .bench source shipped in the request *)

type analyze_opts = {
  fault_budget : int option;
  deadline_ms : float option;
      (* per-fault attempt cap, mapped onto Bdd.with_deadline *)
  max_retries : int;
  samples : int;  (* random vectors per bounded estimate *)
}

type request =
  | Analyze of { id : string; spec : circuit_spec; opts : analyze_opts }
  | Lint of { id : string; spec : circuit_spec }
  | Ping of { id : string }
  | Stats of { id : string }
  | Shutdown of { id : string }

let default_opts =
  {
    fault_budget = None;
    deadline_ms = None;
    max_retries = 2;
    samples = Engine.default_bound_samples;
  }

(* The options fingerprint: sweeps may only share a journal file — and a
   coalesced in-flight sweep — when every knob that can change an
   outcome matches.  Budgets and retry counts change classification;
   the deadline is wall-clock and so nondeterministic, but two requests
   that asked for different caps still must not merge. *)
let opts_tag o =
  Printf.sprintf "b%s-d%s-r%d-s%d"
    (match o.fault_budget with None -> "0" | Some b -> string_of_int b)
    (match o.deadline_ms with None -> "0" | Some d -> Printf.sprintf "%g" d)
    o.max_retries o.samples

let spec_of_fields fields =
  match
    ( Journal.field_string fields "circuit",
      Journal.field_string fields "netlist" )
  with
  | Some name, None -> Ok (Named name)
  | None, Some source ->
    let title =
      Option.value (Journal.field_string fields "title") ~default:"inline"
    in
    Ok (Inline { title; source })
  | Some _, Some _ -> Error "give \"circuit\" or \"netlist\", not both"
  | None, None ->
    Error "missing \"circuit\" (benchmark name) or \"netlist\" (.bench text)"

let opts_of_fields fields =
  let non_negative name v =
    match v with
    | Some x when x < 0 -> Error (Printf.sprintf "%S must be >= 0" name)
    | v -> Ok v
  in
  match non_negative "fault_budget" (Journal.field_int fields "fault_budget")
  with
  | Error _ as e -> e
  | Ok fault_budget -> (
    match
      match Journal.field_float fields "deadline_ms" with
      | Some d when d <= 0.0 -> Error "\"deadline_ms\" must be > 0"
      | d -> Ok d
    with
    | Error _ as e -> e
    | Ok deadline_ms -> (
      match
        non_negative "max_retries" (Journal.field_int fields "max_retries")
      with
      | Error _ as e -> e
      | Ok max_retries -> (
        match non_negative "samples" (Journal.field_int fields "samples") with
        | Error _ as e -> e
        | Ok samples ->
          Ok
            {
              fault_budget;
              deadline_ms;
              max_retries =
                Option.value max_retries ~default:default_opts.max_retries;
              samples = Option.value samples ~default:default_opts.samples;
            })))

(* [Error (id, msg)]: the id is echoed when the request carried a
   usable one, so the client can correlate even its rejections. *)
let parse_request line =
  match Journal.parse_flat_object line with
  | None -> Error (None, "request is not a one-line flat JSON object")
  | Some fields -> (
    let id = Journal.field_string fields "id" in
    match id with
    | None -> Error (None, "missing \"id\"")
    | Some id -> (
      let some = Some id in
      match Journal.field_string fields "op" with
      | None -> Error (some, "missing \"op\"")
      | Some "ping" -> Ok (Ping { id })
      | Some "stats" -> Ok (Stats { id })
      | Some "shutdown" -> Ok (Shutdown { id })
      | Some "lint" -> (
        match spec_of_fields fields with
        | Ok spec -> Ok (Lint { id; spec })
        | Error msg -> Error (some, msg))
      | Some "analyze" -> (
        match spec_of_fields fields with
        | Error msg -> Error (some, msg)
        | Ok spec -> (
          match opts_of_fields fields with
          | Error msg -> Error (some, msg)
          | Ok opts -> Ok (Analyze { id; spec; opts })))
      | Some op ->
        Error
          ( some,
            Printf.sprintf
              "unknown op %S (analyze|lint|ping|stats|shutdown)" op )))

(* ------------------------------------------------------------------ *)
(* Response rendering                                                  *)

let j s = "\"" ^ Journal.json_escape s ^ "\""

let ack ~id ~op ~digest ~faults ~coalesced =
  Printf.sprintf
    "{\"id\":%s,\"type\":\"ack\",\"op\":%s,\"digest\":%s,\"faults\":%d,\"coalesced\":%b}"
    (j id) (j op) (j digest) faults coalesced

let envelope_marker = "\"type\":\"outcome\","

(* Wrap one journal outcome record.  The payload bytes after the
   envelope are exactly [Journal.outcome_line]'s — see
   {!outcome_journal_line} for the inverse. *)
let outcome ~id journal_line =
  Printf.sprintf "{\"id\":%s,%s%s" (j id) envelope_marker
    (String.sub journal_line 1 (String.length journal_line - 1))

let finding ~id (d : Diagnostic.t) =
  let location =
    match d.Diagnostic.location.Diagnostic.net with
    | Some net -> Printf.sprintf ",\"net\":%s" (j net)
    | None -> ""
  in
  Printf.sprintf
    "{\"id\":%s,\"type\":\"finding\",\"rule\":%s,\"severity\":%s,\"message\":%s%s}"
    (j id) (j d.Diagnostic.rule)
    (j (Diagnostic.severity_to_string d.Diagnostic.severity))
    (j d.Diagnostic.message) location

let analyze_done ~id ~exact ~bounded ~unbounded ~crashed ~rescued ~resumed
    ~elapsed_ms =
  Printf.sprintf
    "{\"id\":%s,\"type\":\"done\",\"op\":\"analyze\",\"exact\":%d,\"bounded\":%d,\"unbounded\":%d,\"crashed\":%d,\"rescued\":%d,\"resumed\":%d,\"elapsed_ms\":%.3f}"
    (j id) exact bounded unbounded crashed rescued resumed elapsed_ms

let lint_done ~id ~errors ~warnings ~infos ~elapsed_ms =
  Printf.sprintf
    "{\"id\":%s,\"type\":\"done\",\"op\":\"lint\",\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"elapsed_ms\":%.3f}"
    (j id) errors warnings infos elapsed_ms

let busy ~id ~queued ~capacity ~retry_after_ms =
  Printf.sprintf
    "{\"id\":%s,\"type\":\"busy\",\"queued\":%d,\"capacity\":%d,\"retry_after_ms\":%d}"
    (j id) queued capacity retry_after_ms

let error ~id ~code message =
  Printf.sprintf "{\"id\":%s,\"type\":\"error\",\"code\":%s,\"message\":%s}"
    (match id with None -> "null" | Some id -> j id)
    (j code) (j message)

let pong ~id = Printf.sprintf "{\"id\":%s,\"type\":\"pong\"}" (j id)

let stats ~id fields =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"id\":%s,\"type\":\"stats\"" (j id);
  List.iter (fun (k, v) -> Printf.bprintf buf ",\"%s\":%s" k v) fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Response parsing (the client half: the load generator, the tests,
   and anyone scripting against the daemon). *)

type response =
  | Ack of { id : string; op : string; digest : string; faults : int;
             coalesced : bool }
  | Outcome of { id : string; index : int; journal_line : string }
  | Finding of { id : string; rule : string; severity : string;
                 message : string }
  | Done of { id : string; op : string; exact : int; bounded : int;
              unbounded : int; crashed : int; resumed : int }
  | Busy of { id : string; queued : int; capacity : int;
              retry_after_ms : int }
  | Error_response of { id : string option; code : string; message : string }
  | Pong of { id : string }
  | Stats_response of { id : string; fields : (string * Journal.jv) list }

(* Recover the exact journal-record bytes from an outcome response line:
   everything after the envelope marker, re-braced.  String surgery, not
   re-rendering — re-rendering could normalize a byte and break the
   cmp-level resume guarantee the protocol promises. *)
let outcome_journal_line line =
  let mlen = String.length envelope_marker in
  let n = String.length line in
  let rec find i =
    if i + mlen > n then None
    else if String.sub line i mlen = envelope_marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> Some ("{" ^ String.sub line start (n - start))

let parse_response line =
  match Journal.parse_flat_object line with
  | None -> Error "response is not a flat JSON object"
  | Some fields -> (
    let str name = Journal.field_string fields name in
    let int name = Journal.field_int fields name in
    let req name k =
      match str name with
      | Some v -> k v
      | None -> Error (Printf.sprintf "response missing %S" name)
    in
    let reqi name k =
      match int name with
      | Some v -> k v
      | None -> Error (Printf.sprintf "response missing %S" name)
    in
    match str "type" with
    | None -> Error "response missing \"type\""
    | Some "ack" ->
      req "id" (fun id ->
          req "op" (fun op ->
              req "digest" (fun digest ->
                  reqi "faults" (fun faults ->
                      match Journal.field_bool fields "coalesced" with
                      | Some coalesced ->
                        Ok (Ack { id; op; digest; faults; coalesced })
                      | None -> Error "ack missing \"coalesced\""))))
    | Some "outcome" ->
      req "id" (fun id ->
          reqi "i" (fun index ->
              match outcome_journal_line line with
              | Some journal_line -> Ok (Outcome { id; index; journal_line })
              | None -> Error "outcome response without envelope marker"))
    | Some "finding" ->
      req "id" (fun id ->
          req "rule" (fun rule ->
              req "severity" (fun severity ->
                  req "message" (fun message ->
                      Ok (Finding { id; rule; severity; message })))))
    | Some "done" ->
      req "id" (fun id ->
          req "op" (fun op ->
              if op = "lint" then
                Ok
                  (Done
                     { id; op; exact = 0; bounded = 0; unbounded = 0;
                       crashed = 0; resumed = 0 })
              else
                reqi "exact" (fun exact ->
                    reqi "bounded" (fun bounded ->
                        reqi "unbounded" (fun unbounded ->
                            reqi "crashed" (fun crashed ->
                                reqi "resumed" (fun resumed ->
                                    Ok
                                      (Done
                                         { id; op; exact; bounded; unbounded;
                                           crashed; resumed }))))))))
    | Some "busy" ->
      req "id" (fun id ->
          reqi "queued" (fun queued ->
              reqi "capacity" (fun capacity ->
                  reqi "retry_after_ms" (fun retry_after_ms ->
                      Ok (Busy { id; queued; capacity; retry_after_ms })))))
    | Some "error" ->
      req "code" (fun code ->
          req "message" (fun message ->
              Ok (Error_response { id = str "id"; code; message })))
    | Some "pong" -> req "id" (fun id -> Ok (Pong { id }))
    | Some "stats" ->
      req "id" (fun id -> Ok (Stats_response { id; fields }))
    | Some other -> Error (Printf.sprintf "unknown response type %S" other))

(* ------------------------------------------------------------------ *)
(* Request rendering (client half). *)

let analyze_request ~id ?(opts = default_opts) spec =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"id\":%s,\"op\":\"analyze\"" (j id);
  (match spec with
  | Named name -> Printf.bprintf buf ",\"circuit\":%s" (j name)
  | Inline { title; source } ->
    Printf.bprintf buf ",\"title\":%s,\"netlist\":%s" (j title) (j source));
  Option.iter
    (fun b -> Printf.bprintf buf ",\"fault_budget\":%d" b)
    opts.fault_budget;
  Option.iter
    (fun d -> Printf.bprintf buf ",\"deadline_ms\":%g" d)
    opts.deadline_ms;
  if opts.max_retries <> default_opts.max_retries then
    Printf.bprintf buf ",\"max_retries\":%d" opts.max_retries;
  if opts.samples <> default_opts.samples then
    Printf.bprintf buf ",\"samples\":%d" opts.samples;
  Buffer.add_char buf '}';
  Buffer.contents buf

let lint_request ~id spec =
  let buf = Buffer.create 64 in
  Printf.bprintf buf "{\"id\":%s,\"op\":\"lint\"" (j id);
  (match spec with
  | Named name -> Printf.bprintf buf ",\"circuit\":%s" (j name)
  | Inline { title; source } ->
    Printf.bprintf buf ",\"title\":%s,\"netlist\":%s" (j title) (j source));
  Buffer.add_char buf '}';
  Buffer.contents buf

let simple_request ~id op = Printf.sprintf "{\"id\":%s,\"op\":%s}" (j id) (j op)
