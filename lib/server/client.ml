(* Minimal blocking client for the dpa serve protocol: shared by the
   bench load generator, the test suite, and the CI serve lane, so the
   socket plumbing is written once. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let of_fd fd =
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX path);
    of_fd fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_loopback
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (addr, port));
    of_fd fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* Retry a refused connection for up to [timeout_s]: the standard way
   to wait for a just-forked daemon to come up. *)
let connect_unix_retry ?(timeout_s = 10.0) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match connect_unix path with
    | c -> c
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      if Unix.gettimeofday () > deadline then
        failwith (Printf.sprintf "no server on %s after %gs" path timeout_s)
      else begin
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
  in
  go ()

let send t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv t = try Some (input_line t.ic) with End_of_file -> None

let recv_response t =
  match recv t with
  | None -> Error "connection closed"
  | Some line -> Protocol.parse_response line

let close t =
  close_out_noerr t.oc;
  close_in_noerr t.ic;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Drive one analyze request to completion, returning the ack, the
   outcome journal-lines in stream order, and the final response
   ([Done], [Busy], or [Error_response]). *)
type analyze_result = {
  ack : Protocol.response option;
  outcomes : (int * string) list;  (* fault index, journal-line bytes *)
  final : Protocol.response;
}

let analyze t ~id ?opts spec =
  send t (Protocol.analyze_request ~id ?opts spec);
  let rec collect ack outcomes =
    match recv_response t with
    | Error msg -> Error msg
    | Ok (Protocol.Outcome { id = oid; index; journal_line })
      when oid = id ->
      collect ack ((index, journal_line) :: outcomes)
    | Ok (Protocol.Ack _ as a) -> collect (Some a) outcomes
    | Ok ((Protocol.Done _ | Protocol.Busy _ | Protocol.Error_response _)
         as final) ->
      Ok { ack; outcomes = List.rev outcomes; final }
    | Ok _ -> collect ack outcomes
  in
  collect None []
