(** The [dpa serve] wire protocol.

    JSON-lines in both directions; every line is one flat (unnested)
    JSON object in the journal's dialect, so requests parse with
    {!Journal.parse_flat_object} and streamed outcomes are the
    journal's own records wrapped in an [{id, type}] envelope.  The
    envelope wrap is pure string splicing ({!outcome} /
    {!outcome_journal_line} are exact inverses), which is what lets a
    client reconstruct — and [cmp] — the server's journal bytes from
    its response stream.

    Requests:
    {v
    {"id":"r1","op":"analyze","circuit":"c432","deadline_ms":5000}
    {"id":"r2","op":"analyze","title":"adhoc","netlist":"INPUT(a)\n..."}
    {"id":"r3","op":"lint","circuit":"c17"}
    {"id":"r4","op":"ping"}   {"id":"r5","op":"stats"}
    {"id":"r6","op":"shutdown"}
    v}

    Responses (one [ack], then streamed [outcome]/[finding] lines in
    fault-index order, then one [done]; or a single [busy] / [error]):
    {v
    {"id":"r1","type":"ack","op":"analyze","digest":"…","faults":524,"coalesced":false}
    {"id":"r1","type":"outcome","i":0,"fault":"…","kind":"exact",…}
    {"id":"r1","type":"done","op":"analyze","exact":524,…,"elapsed_ms":41.8}
    {"id":"r9","type":"busy","queued":64,"capacity":64,"retry_after_ms":350}
    v} *)

type circuit_spec =
  | Named of string  (** a built-in benchmark, resolved by name *)
  | Inline of { title : string; source : string }
      (** inline ISCAS-85 [.bench] text shipped in the request *)

type analyze_opts = {
  fault_budget : int option;  (** per-fault node budget *)
  deadline_ms : float option;
      (** per-fault attempt wall-clock cap, mapped onto
          [Bdd.with_deadline] inside the sweep *)
  max_retries : int;
  samples : int;  (** random vectors per bounded estimate *)
}

val default_opts : analyze_opts

val opts_tag : analyze_opts -> string
(** Fingerprint of every outcome-affecting knob.  Two analyze requests
    coalesce into one sweep — and may share a journal file — only when
    their digests {e and} opts tags match. *)

type request =
  | Analyze of { id : string; spec : circuit_spec; opts : analyze_opts }
  | Lint of { id : string; spec : circuit_spec }
  | Ping of { id : string }
  | Stats of { id : string }
  | Shutdown of { id : string }

val parse_request : string -> (request, string option * string) result
(** [Error (id, msg)] echoes the request id when one was readable, so
    clients can correlate rejections. *)

(** {1 Response rendering (server side)} *)

val ack :
  id:string -> op:string -> digest:string -> faults:int -> coalesced:bool ->
  string

val outcome : id:string -> string -> string
(** [outcome ~id journal_line] wraps one {!Journal.outcome_line} record
    in the response envelope without re-rendering any payload byte. *)

val finding : id:string -> Diagnostic.t -> string

val analyze_done :
  id:string -> exact:int -> bounded:int -> unbounded:int -> crashed:int ->
  rescued:int -> resumed:int -> elapsed_ms:float -> string
(** [resumed] counts outcomes re-served from a restart-recovered
    journal prefix rather than recomputed. *)

val lint_done :
  id:string -> errors:int -> warnings:int -> infos:int -> elapsed_ms:float ->
  string

val busy : id:string -> queued:int -> capacity:int -> retry_after_ms:int ->
  string

val error : id:string option -> code:string -> string -> string
val pong : id:string -> string

val stats : id:string -> (string * string) list -> string
(** [stats ~id fields]: [fields] are (name, pre-rendered JSON value)
    pairs appended verbatim. *)

(** {1 Response parsing (client side)} *)

type response =
  | Ack of { id : string; op : string; digest : string; faults : int;
             coalesced : bool }
  | Outcome of { id : string; index : int; journal_line : string }
  | Finding of { id : string; rule : string; severity : string;
                 message : string }
  | Done of { id : string; op : string; exact : int; bounded : int;
              unbounded : int; crashed : int; resumed : int }
  | Busy of { id : string; queued : int; capacity : int;
              retry_after_ms : int }
  | Error_response of { id : string option; code : string; message : string }
  | Pong of { id : string }
  | Stats_response of { id : string; fields : (string * Journal.jv) list }

val parse_response : string -> (response, string) result

val outcome_journal_line : string -> string option
(** Recover the exact journal-record bytes from an outcome response
    line: the inverse of {!outcome}, by string surgery rather than
    re-rendering, preserving byte identity. *)

(** {1 Request rendering (client side)} *)

val analyze_request : id:string -> ?opts:analyze_opts -> circuit_spec -> string
val lint_request : id:string -> circuit_spec -> string

val simple_request : id:string -> string -> string
(** [simple_request ~id op] for ["ping"], ["stats"], ["shutdown"]. *)
