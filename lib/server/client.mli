(** Minimal blocking client for the [dpa serve] protocol — the socket
    plumbing shared by the bench load generator, the tests, and the CI
    serve lane. *)

type t

val connect_unix : string -> t
val connect_tcp : string -> int -> t

val connect_unix_retry : ?timeout_s:float -> string -> t
(** Retry refused connections until [timeout_s] (default 10 s) — waits
    out a just-forked daemon's startup. *)

val send : t -> string -> unit
(** Write one request line and flush. *)

val recv : t -> string option
(** Read one response line; [None] on EOF. *)

val recv_response : t -> (Protocol.response, string) result
val close : t -> unit

type analyze_result = {
  ack : Protocol.response option;
  outcomes : (int * string) list;
      (** fault index, exact journal-line bytes, in stream order *)
  final : Protocol.response;  (** [Done], [Busy], or [Error_response] *)
}

val analyze :
  t -> id:string -> ?opts:Protocol.analyze_opts -> Protocol.circuit_spec ->
  (analyze_result, string) result
(** Send one analyze request and collect its whole response stream. *)
