let detects c fault vector =
  let words = Logic_sim.pack_patterns c [ vector ] in
  Int64.logand (Logic_sim.detect_word c fault words) 1L <> 0L

let check_exhaustible c =
  let n = Circuit.num_inputs c in
  if n > 26 then
    invalid_arg
      (Printf.sprintf "Fault_sim: %d inputs is too many for exhaustion" n);
  n

let exhaustive_fold c fault ~init ~f =
  let n = check_exhaustible c in
  let total = 1 lsl n in
  let rec blocks base acc =
    if base >= total then acc
    else begin
      let words = Logic_sim.base_words c base in
      let hits = Logic_sim.detect_word c fault words in
      (* Mask out patterns beyond 2^n in the final partial block. *)
      let valid = min 64 (total - base) in
      let mask =
        if valid = 64 then Int64.minus_one
        else Int64.sub (Int64.shift_left 1L valid) 1L
      in
      blocks (base + 64) (f acc base (Int64.logand hits mask))
    end
  in
  blocks 0 init

let exhaustive_count c fault =
  exhaustive_fold c fault ~init:0 ~f:(fun acc _ hits ->
      acc + Logic_sim.popcount hits)

let exhaustive_detectability c fault =
  let n = Circuit.num_inputs c in
  float_of_int (exhaustive_count c fault)
  /. Float.pow 2.0 (float_of_int n)

let vector_of_pattern c pattern =
  Array.init (Circuit.num_inputs c) (fun j -> (pattern lsr j) land 1 = 1)

let exhaustive_test_set c fault =
  exhaustive_fold c fault ~init:[] ~f:(fun acc base hits ->
      let rec collect i acc =
        if i >= 64 then acc
        else
          let acc =
            if Int64.logand hits (Int64.shift_left 1L i) <> 0L then
              vector_of_pattern c (base + i) :: acc
            else acc
          in
          collect (i + 1) acc
      in
      collect 0 acc)
  |> List.rev

let sample_detections ~seed ~patterns c fault =
  if patterns <= 0 then invalid_arg "Fault_sim.sample_detections";
  let rng = Prng.create ~seed in
  let n = Circuit.num_inputs c in
  let words = (patterns + 63) / 64 in
  let hits = ref 0 in
  for _ = 1 to words do
    let inputs = Array.init n (fun _ -> Prng.word rng) in
    hits := !hits + Logic_sim.popcount (Logic_sim.detect_word c fault inputs)
  done;
  (!hits, words * 64)

let estimated_detectability ~seed ~patterns c fault =
  let hits, applied = sample_detections ~seed ~patterns c fault in
  float_of_int hits /. float_of_int applied

type coverage_point = {
  patterns_applied : int;
  faults_detected : int;
  coverage : float;
}

let random_coverage ~seed ~patterns c faults =
  let rng = Prng.create ~seed in
  let n = Circuit.num_inputs c in
  let total = List.length faults in
  let live = ref faults in
  let detected = ref 0 in
  let points = ref [] in
  let applied = ref 0 in
  while !applied < patterns && !live <> [] do
    let words = Array.init n (fun _ -> Prng.word rng) in
    let survivors =
      List.filter
        (fun fault ->
          if Logic_sim.detect_word c fault words <> 0L then begin
            incr detected;
            false
          end
          else true)
        !live
    in
    live := survivors;
    applied := !applied + 64;
    points :=
      {
        patterns_applied = !applied;
        faults_detected = !detected;
        coverage =
          (if total = 0 then 1.0
           else float_of_int !detected /. float_of_int total);
      }
      :: !points
  done;
  List.rev !points
