(** Fault simulation built on {!Logic_sim}: exhaustive simulation as the
    exact (but exponential) baseline, plus random-pattern simulation
    with fault dropping. *)

val detects : Circuit.t -> Fault.t -> bool array -> bool
(** Whether a single input vector detects the fault. *)

val exhaustive_count : Circuit.t -> Fault.t -> int
(** Number of the 2^n input vectors detecting the fault — exact
    detectability numerator.  Only sensible for small input counts
    (guarded at 26 inputs). *)

val exhaustive_detectability : Circuit.t -> Fault.t -> float
(** [exhaustive_count] / 2^n. *)

val exhaustive_test_set : Circuit.t -> Fault.t -> bool array list
(** Every detecting vector, in pattern-number order. *)

val sample_detections :
  seed:int -> patterns:int -> Circuit.t -> Fault.t -> int * int
(** [(hits, applied)] from simulating [patterns] uniform random vectors
    (rounded up to whole 64-pattern words — [applied] is the rounded
    count).  Vectors are drawn independently with replacement, so [hits]
    is a binomial sample of the true detectability — the raw material
    for confidence intervals.  Deterministic in [seed]. *)

val estimated_detectability :
  seed:int -> patterns:int -> Circuit.t -> Fault.t -> float
(** Monte-Carlo estimate of detectability from uniform random patterns
    (rounded up to whole 64-pattern words).  The sampling alternative to
    the exact OBDD count: cheap, but its relative error explodes for
    low-detectability faults — which is where test generation actually
    struggles. *)

type coverage_point = {
  patterns_applied : int;
  faults_detected : int;
  coverage : float;
}

val random_coverage :
  seed:int ->
  patterns:int ->
  Circuit.t ->
  Fault.t list ->
  coverage_point list
(** Random-pattern fault simulation with fault dropping: coverage after
    every 64-pattern block.  The first coverage point reflects 64
    patterns. *)
