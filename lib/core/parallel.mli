(** Domain-sharded parallel mapping over work lists.

    Sharding is contiguous and order-preserving: results come back
    exactly as a sequential run would produce them.  Worker functions
    must build any mutable state (BDD managers in particular) inside
    the worker — a manager's hash-consing arena is single-threaded. *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism the
    runtime suggests. *)

val chunk : pieces:int -> 'a list -> 'a list list
(** Split into at most [pieces] contiguous chunks whose sizes differ by
    at most one; concatenating the chunks restores the input.  Fewer
    chunks come back when the list is shorter than [pieces]; the empty
    list yields no chunks.  @raise Invalid_argument when [pieces < 1]. *)

val map_chunked_outcomes :
  ?domains:int ->
  ('a list -> 'b list) ->
  'a list ->
  ('a list * ('b list, exn) result) list
(** Supervised sharding: runs [f] on each chunk in its own domain (the
    calling domain takes the first chunk) and reports every chunk with
    its outcome, in input order.  A crashing chunk is contained as
    [Error exn] — surviving chunks' results are kept, and the failed
    chunk comes back verbatim so its items can be requeued elsewhere.
    Every spawned domain is joined before this returns, whichever chunks
    fail.  [domains] defaults to {!available_domains}. *)

val map_chunked : ?domains:int -> ('a list -> 'b list) -> 'a list -> 'b list
(** [map_chunked ~domains f items] runs [f] on each chunk in its own
    domain (the calling domain takes the first chunk) and concatenates
    the results in input order.  [f] must map each input chunk to a
    result list of the same length for the order guarantee to be
    meaningful.  [domains] defaults to {!available_domains}; [1] runs
    sequentially with no domain spawned.  A worker exception is
    re-raised — but only after {e all} spawned domains have been joined,
    so no domain ever leaks. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Per-item convenience wrapper over {!map_chunked}. *)
