(** Domain-sharded parallel mapping over work lists.

    Sharding is contiguous and order-preserving: results come back
    exactly as a sequential run would produce them.  Worker functions
    must build any mutable state (BDD managers in particular) inside
    the worker — a manager's hash-consing arena is single-threaded. *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism the
    runtime suggests. *)

val chunk : pieces:int -> 'a list -> 'a list list
(** Split into at most [pieces] contiguous chunks whose sizes differ by
    at most one; concatenating the chunks restores the input.  Fewer
    chunks come back when the list is shorter than [pieces]; the empty
    list yields no chunks.  @raise Invalid_argument when [pieces < 1]. *)

val chunk_array : pieces:int -> 'a array -> 'a array array
(** Array form of {!chunk}: contiguous O(n) slicing, no list surgery. *)

val steal_batches :
  ?domains:int ->
  init:(unit -> 'w) ->
  process:('w -> 'a -> 'b) ->
  'a array ->
  ('b, exn) result array
(** Work-stealing fan-out: every domain builds its own worker state with
    [init] (inside that domain), then repeatedly steals the next
    unclaimed batch off a shared atomic counter and runs [process] on
    it.  The result array is index-aligned with the input batches, so a
    caller flattening it in order gets exactly the sequential order —
    whichever domain processed what.  A batch whose [process] raises is
    contained as [Error] in its slot while the worker keeps stealing; a
    spawned worker whose [init] fails exits quietly (the shared queue
    lets survivors absorb its share), and the calling domain's [init]
    failure is re-raised after all spawned domains have joined.
    [domains] defaults to {!available_domains} and is capped by the
    batch count; [1] steals on the calling domain with no spawn. *)

val patrol_spin_rounds : int
(** Idle patrol rounds served as bare [Domain.cpu_relax] spins before
    the watchdog starts sleeping (see {!patrol_backoff_delay}). *)

val patrol_backoff_delay : int -> float option
(** The watchdog's idle backoff schedule: what a patroller that found
    nothing to rescue on idle round [n] (counted from 0, reset whenever
    a rescue happens) does next — [None] = spin ([Domain.cpu_relax]),
    [Some s] = sleep [s] seconds.  The first {!patrol_spin_rounds}
    rounds spin; after that sleeps double from 0.5 ms to a 50 ms cap,
    so an idle patroller's wakeup rate decays exponentially instead of
    busy-polling at a fixed 2 ms as it once did.  Total time to reach
    the cap is ~100 ms, far below any per-batch deadline, so rescue
    latency is unaffected. *)

val steal_batches_supervised :
  ?domains:int ->
  ?batch_deadline:('a -> float) ->
  init:(unit -> 'w) ->
  process:('w -> 'a -> 'b) ->
  'a array ->
  ('b, exn) result array
(** {!steal_batches} with a watchdog.  [batch_deadline batch] is the
    wall-clock seconds the batch may be held by one worker; a worker
    that finds the queue empty patrols the claim table instead of
    exiting, and re-executes any unfinished batch held past its deadline
    — the first published result wins, duplicates are discarded, so the
    result array is filled even while one domain is wedged in a
    pathological batch.  Duplication, not preemption: OCaml domains
    cannot be killed, so the overdue claimant keeps running and the
    final join still waits for it to come home — bound the wedge itself
    with a cooperative deadline inside [process] (see
    [Bdd.with_deadline]).  Without [batch_deadline] this is exactly
    {!steal_batches}. *)

val map_chunked_outcomes :
  ?domains:int ->
  ('a list -> 'b list) ->
  'a list ->
  ('a list * ('b list, exn) result) list
(** Supervised sharding: runs [f] on each chunk in its own domain (the
    calling domain takes the first chunk) and reports every chunk with
    its outcome, in input order.  A crashing chunk is contained as
    [Error exn] — surviving chunks' results are kept, and the failed
    chunk comes back verbatim so its items can be requeued elsewhere.
    Every spawned domain is joined before this returns, whichever chunks
    fail.  [domains] defaults to {!available_domains}. *)

val map_chunked : ?domains:int -> ('a list -> 'b list) -> 'a list -> 'b list
(** [map_chunked ~domains f items] runs [f] on each chunk in its own
    domain (the calling domain takes the first chunk) and concatenates
    the results in input order.  [f] must map each input chunk to a
    result list of the same length for the order guarantee to be
    meaningful.  [domains] defaults to {!available_domains}; [1] runs
    sequentially with no domain spawned.  A worker exception is
    re-raised — but only after {e all} spawned domains have been joined,
    so no domain ever leaks. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Per-item convenience wrapper over {!map_chunked}. *)
