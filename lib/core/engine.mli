(** Difference Propagation (the paper's §3).

    An engine holds the symbolic good functions of one circuit.  For any
    logical fault it initialises difference functions at the fault
    site(s) and propagates them to the primary outputs with the Table-1
    rules, visiting only the fault's fanout cone (selective trace).  The
    union of the output differences is {e the complete test set} of the
    fault, from which exact detectability, syndrome bounds, adherence
    and observability statistics follow. *)

type t

val create : ?heuristic:Ordering.heuristic -> Circuit.t -> t
val circuit : t -> Circuit.t
val manager : t -> Bdd.manager
val symbolic : t -> Symbolic.t

val generation : t -> int
(** Number of symbolic rebuilds so far.  BDD handles obtained from
    {!manager}/{!symbolic} are only valid while the generation is
    unchanged; {!result} values are plain data and survive rebuilds. *)

val on_rebuild : t -> (unit -> unit) -> unit
(** Register a hook run after every symbolic rebuild (budget-triggered
    rebuilds during {!analyze_all} included) — the place to invalidate
    external caches holding BDD handles from this engine. *)

(** {1 Test sets} *)

val po_differences : t -> Fault.t -> Bdd.t array
(** The difference function at every primary output (declaration
    order) — each is the fault's complete test set {e at that output}. *)

val test_set : t -> Fault.t -> Bdd.t
(** Union of the output differences: the complete test set. *)

val test_cubes : ?limit:int -> t -> Fault.t -> (int * bool) list list
(** Satisfying cubes of the test set, as (input position, value) literal
    lists; unmentioned inputs are don't-care. *)

val test_vector : t -> Fault.t -> bool array option
(** One full test vector, or [None] for an undetectable fault. *)

(** {1 Exact fault statistics} *)

type result = {
  fault : Fault.t;
  detectability : float;  (** |test set| / 2^n — exact *)
  test_count : float;  (** |test set| *)
  detectable : bool;
  pos_fed : int;  (** outputs reachable from the fault site(s) *)
  pos_observed : int;  (** outputs with a non-zero difference *)
  upper_bound : float;
      (** excitation bound: the site syndrome (or its complement) for
          stuck-at faults, [satfrac (fa xor fb)] for bridges *)
  adherence : float option;
      (** detectability / upper_bound; [None] when the bound is zero *)
  wired_support : int option;
      (** bridges: support size of the wired function at the site — zero
          means the bridge degenerates to (double) stuck-at behaviour *)
  test_set_nodes : int;  (** BDD size of the test set *)
}

val analyze : t -> Fault.t -> result

val analyze_all :
  ?node_budget:int -> ?domains:int -> t -> Fault.t list -> result list
(** Analyse a fault list.  The engine's BDD arena only grows, so after
    [node_budget] allocated nodes (default 3 million) the symbolic state
    is rebuilt from scratch; results are unaffected.

    [domains] (default 1) shards the list into contiguous chunks
    analysed on that many OCaml domains.  Each worker builds its own
    Symbolic/Bdd manager (the arena is single-threaded) with the same
    ordering heuristic and applies the node budget independently; the
    engine passed in is left untouched.  Results merge back in input
    order and are bit-identical to a sequential run — ROBDDs are
    canonical under a fixed variable order, so every statistic is
    manager-independent. *)
