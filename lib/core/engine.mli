(** Difference Propagation (the paper's §3).

    An engine holds the symbolic good functions of one circuit.  For any
    logical fault it initialises difference functions at the fault
    site(s) and propagates them to the primary outputs with the Table-1
    rules, visiting only the fault's fanout cone (selective trace).  The
    union of the output differences is {e the complete test set} of the
    fault, from which exact detectability, syndrome bounds, adherence
    and observability statistics follow. *)

type t

val create :
  ?heuristic:Ordering.heuristic ->
  ?lazily:bool ->
  ?mem_profile:bool ->
  Circuit.t ->
  t
(** [heuristic] defaults to the topology oracle's verdict: when
    {!Ordering.oracle} is confident a structural order beats the
    paper's declaration order, the engine builds under
    {!Ordering.Oracle}, otherwise under {!Ordering.Natural}.  Pass an
    explicit heuristic to bypass the oracle.

    [lazily] (default false) defers good-function construction: each
    net's BDD is elaborated on first use, so an engine that only ever
    analyses faults in one region of the circuit never builds the rest.
    Sweep workers of the {!Stealing} scheduler are created this way.

    [mem_profile] (default false) turns on {!Bdd.set_lifetime_profiling}
    for the engine's manager — and for every worker manager its sweeps
    spawn — so a sweep can be followed by
    [Bdd.lifetime_profile (Engine.manager t)] to read the allocation
    lifetime histogram on a logical clock of apply steps. *)

val circuit : t -> Circuit.t
val manager : t -> Bdd.manager
val symbolic : t -> Symbolic.t

val generation : t -> int
(** Number of handle-invalidating events (symbolic rebuilds and
    {!collect} cycles) so far.  BDD handles obtained from
    {!manager}/{!symbolic} are only valid while the generation is
    unchanged; {!result} values are plain data and survive both. *)

val on_rebuild : t -> (unit -> unit) -> unit
(** Register a hook run after every handle-invalidating event — budget
    triggered rebuilds and garbage collections during {!analyze_all}
    included — the place to invalidate external caches holding BDD
    handles from this engine. *)

val collect : t -> unit
(** Mark-sweep the engine's BDD arena: the good functions (with their
    memoised statistics) and any in-flight scratch survive, the dead
    intermediates of earlier faults are reclaimed, and the arena is
    compacted in place — the cheap alternative to a full {!rebuild}
    when the arena outgrows the sweep's node budget.  Handles are
    renumbered, so this bumps {!generation} and fires {!on_rebuild}
    hooks exactly like a rebuild.  With a frozen snapshot in place
    ({!seal}), only the private scratch tier is collected. *)

(** {1 Shared snapshots}

    The substrate of the {!Snapshot} scheduler, exposed for direct use:
    build the good functions once, freeze them, and hand each worker
    domain a cheap fork that reads the snapshot without locks. *)

val seal : t -> unit
(** Force {e every} net's good function (even on a lazy engine), then
    {!Bdd.seal} the arena: the complete good-function set becomes an
    immutable snapshot shared by subsequent {!fork}s, and operations
    that would allocate fresh nodes raise {!Bdd.Sealed_manager} until
    {!unseal}.  Runs a collection, so it bumps {!generation} and fires
    {!on_rebuild} hooks.  @raise Invalid_argument if already sealed. *)

val unseal : t -> unit
(** Re-enable allocation after a {!seal} (the snapshot stays in place
    and keeps being shared).  Only safe once every domain holding a
    {!fork} has been joined. *)

val sealed : t -> bool

val fork : t -> t
(** A worker engine over the sealed snapshot: shares the circuit,
    fanouts and the frozen good functions by reference; owns a private
    scratch arena, cone walker and delta scratch.  Safe to use from one
    other domain while the parent stays sealed — forks never write
    shared state.  @raise Invalid_argument unless {!sealed}. *)

(** {1 Test sets} *)

val po_differences : t -> Fault.t -> Bdd.t array
(** The difference function at every primary output (declaration
    order) — each is the fault's complete test set {e at that output}. *)

val test_set : t -> Fault.t -> Bdd.t
(** Union of the output differences: the complete test set. *)

val test_cubes : ?limit:int -> t -> Fault.t -> (int * bool) list list
(** Satisfying cubes of the test set, as (input position, value) literal
    lists; unmentioned inputs are don't-care. *)

val test_vector : t -> Fault.t -> bool array option
(** One full test vector, or [None] for an undetectable fault. *)

val redundant : t -> Fault.t -> bool
(** Whether the complete test set is empty — the fault is untestable
    and the line it sits on is redundant logic.  This is the exact
    cross-check behind every "definitely redundant" verdict of the
    static lint pass: structure proposes, Difference Propagation
    confirms. *)

(** {1 Exact fault statistics} *)

type result = {
  fault : Fault.t;
  detectability : float;  (** |test set| / 2^n — exact *)
  test_count : float;  (** |test set| *)
  detectable : bool;
  pos_fed : int;  (** outputs reachable from the fault site(s) *)
  pos_observed : int;  (** outputs with a non-zero difference *)
  upper_bound : float;
      (** excitation bound: the site syndrome (or its complement) for
          stuck-at faults, [satfrac (fa xor fb)] for bridges *)
  adherence : float option;
      (** detectability / upper_bound; [None] when the bound is zero *)
  wired_support : int option;
      (** bridges: support size of the wired function at the site — zero
          means the bridge degenerates to (double) stuck-at behaviour *)
  test_set_nodes : int;  (** BDD size of the test set *)
  rescued_by_reorder : bool;
      (** the analysis only completed on the reorder-rescue rung of the
          degradation ladder: the heuristic-order attempts (including
          every escalated retry) failed, and the fault was re-analysed
          exactly under a sifted variable order.  The statistics are as
          exact as any other [Exact] outcome — ROBDD statistics are
          order-independent. *)
}

val analyze : t -> Fault.t -> result
(** Exact analysis of one fault.  May raise — {!analyze_protected} is
    the isolated variant. *)

(** {1 Fault-tolerant sweeps}

    A sweep over thousands of faults must survive the one fault whose
    difference BDD explodes (or whose description is malformed): one bad
    fault may not abort the run and discard every finished result.
    Every fault therefore comes back as a structured {!outcome}, and the
    degradation ladder is {e exact -> retry -> reorder -> bounded}: a
    fault that exhausts its budget/deadline and its escalated retries is
    attempted once more under a sifted variable order (the explosion is
    often an artefact of the build heuristic's order, not of the fault),
    and only when that rescue also fails does it degrade to sound
    detectability bounds instead of a bare failure marker. *)

type degrade_reason =
  | Over_budget of { nodes : int; budget : int }
      (** the per-fault BDD allocation budget blew mid-apply, after
          [nodes] fresh nodes against a cap of [budget] (the cap of the
          final, escalated attempt) *)
  | Over_deadline of { deadline_ms : float }
      (** the per-fault wall-clock deadline (of the final, escalated
          attempt) expired mid-apply; no elapsed time is recorded so the
          payload stays reproducible *)

type outcome =
  | Exact of result  (** the analysis completed; statistics are exact *)
  | Bounded of {
      fault : Fault.t;
      lower : float;  (** Wilson lower confidence bound (z = 5) *)
      upper : float;  (** Wilson upper confidence bound (z = 5) *)
      syndrome_bound : float;
          (** the paper's excitation upper bound, computed exactly on
              the cached good functions (1.0 when even that blew a
              probe budget) *)
      samples : int;  (** random vectors simulated for the interval *)
      reason : degrade_reason;
    }
      (** exact analysis degraded, but the fault still has a numeric
          answer: the true detectability lies in
          [lower, min upper syndrome_bound] (up to the ~6e-7 Wilson
          miss probability; [syndrome_bound] is unconditionally sound) *)
  | Budget_exceeded of { fault : Fault.t; nodes : int; budget : int }
      (** budget blown and bounded estimation disabled or impossible *)
  | Deadline_exceeded of {
      fault : Fault.t;
      elapsed_ms : float;
      deadline_ms : float;
    }
      (** deadline expired and bounded estimation disabled or
          impossible *)
  | Crashed of { fault : Fault.t; message : string }
      (** the analysis raised; [message] is the printed exception *)

val outcome_fault : outcome -> Fault.t

val is_exact : outcome -> bool

val exact_results : outcome list -> result list
(** The [Exact] payloads, input order kept; degraded outcomes dropped. *)

val degraded : outcome list -> outcome list
(** The non-[Exact] outcomes, input order kept. *)

val outcome_bounds : outcome -> (float * float) option
(** Detectability interval an outcome certifies: exact point for
    [Exact], [lower, min upper syndrome_bound] for [Bounded], [None]
    when the outcome carries no numeric answer. *)

val outcome_to_string : Circuit.t -> outcome -> string
(** One-line description for logs and summaries.  Never raises, even on
    faults naming nonexistent nets. *)

val degrade_reason_to_string : degrade_reason -> string
(** One-line description of why an exact analysis was abandoned. *)

val wilson_interval : z:float -> int -> int -> float * float
(** [wilson_interval ~z hits samples] is the Wilson score confidence
    interval for a binomial proportion, clamped to [0, 1]; the endpoints
    are pinned to exactly 0 / 1 when the sample is one-sided.
    [(0, 1)] when [samples = 0].
    @raise Invalid_argument unless [0 <= hits <= samples]. *)

val default_bound_samples : int
(** Random vectors drawn per bounded-degradation estimate (4096) when
    [?bound_samples] is left to default. *)

val default_reorder_growth : float
(** Growth cap handed to {!Bdd.sift} when discovering a rescue order
    (1.2: a variable's sift may not grow the live arena past 120% of its
    starting size) when [?reorder_growth] is left to default. *)

val default_epoch_nodes : int
(** Region budget (262144 nodes) when [?epoch_nodes] is left to default:
    an open epoch is closed — its scratch reclaimed wholesale — once it
    accumulates this many nodes, so the op-cache flush a close implies
    is amortised over many small faults. *)

val analyze_protected :
  ?fault_budget:int -> ?deadline_ms:float -> t -> Fault.t -> outcome
(** {!analyze} with per-fault isolation: an exception becomes [Crashed]
    and, when [fault_budget] / [deadline_ms] are given, the analysis
    runs inside {!Bdd.with_budget} / {!Bdd.with_deadline} so a blown
    budget or expired deadline is caught {e mid-apply} as
    [Budget_exceeded] / [Deadline_exceeded] instead of growing the
    arena unboundedly or wedging the caller.  The engine survives either
    way (scratch state is restored, the arena stays consistent).  No
    retries and no bounded fallback — this is one bare attempt. *)

(** {1 Checkpoint journaling}

    {!analyze_all} accepts a journal interface so long sweeps survive
    kills: every completed outcome is reported through [record] the
    moment it exists (from whichever domain computed it — implementations
    must synchronize), and faults whose index [skip] answers are never
    re-analysed, their outcomes merging back verbatim.  See the
    [Journal] module for the JSON-lines file implementation. *)

type journal = {
  skip : int -> outcome option;
      (** [skip i] = the journaled outcome of fault [i], or [None] to
          analyse it *)
  record : int -> outcome -> unit;
      (** called once per computed fault, in completion order; may be
          called from worker domains concurrently, and more than once
          for a fault the watchdog re-executed (last call wins) *)
}

(** {1 Sweep scheduling} *)

type scheduler =
  | Static
      (** contiguous fault shards, one per domain, fixed up front — the
          conservative default; at [domains = 1] this is the plain
          sequential sweep *)
  | Stealing
      (** faults grouped into cone-local batches that idle domains pull
          off a shared queue — balances wildly uneven fault costs and
          lets lazy workers build only the circuit regions their
          batches touch; every worker still owns a full private manager *)
  | Snapshot
      (** good functions built {e once} on the calling engine, sealed
          into an immutable snapshot ({!seal}) and shared read-only by
          {!fork}ed workers with private scratch arenas — no per-worker
          rebuild, no locks on the hot path.  Batches are cone-owned:
          faults with overlapping fanout cones share a batch, sized
          adaptively from measured cone overlap.  The scheduler of
          choice for multicore sweeps. *)

val scheduler_to_string : scheduler -> string

type sweep_stats = {
  scheduler : scheduler;
  domains : int;  (** domains requested for the sweep *)
  hardware_domains : int;
      (** {!Parallel.available_domains} at run time — the hardware
          actually available, without which throughput numbers across
          machines are uninterpretable *)
  batch_count : int;  (** work units handed to the scheduler *)
  build_seconds : float;
      (** per-worker engine/fork construction (summed over domains) *)
  snapshot_seconds : float;
      (** {!Snapshot} only: forcing and sealing the shared good
          functions, single-threaded, before workers start *)
  analysis_wall_seconds : float;
      (** wall clock of the parallel region, as one observer saw it —
          what throughput is computed from *)
  analysis_cpu_seconds : float;
      (** fault analysis proper, GC time excluded, {e summed over
          domains} — compare against [analysis_wall_seconds] to see
          parallel efficiency; a sum far above wall x domains means
          duplicated work.  Each domain's share is its busy wall-clock
          window, so when domains exceed hardware cores the sum also
          counts time spent descheduled. *)
  gc_seconds : float;  (** {!collect} cycles (summed over domains) *)
  gc_collections : int;
  good_functions_built : int;
      (** good functions elaborated across all engines — under
          {!Snapshot} exactly the circuit's gate count whatever the
          domain count; under per-worker managers a measure of
          re-elaboration *)
  scratch_peak_nodes : int;
      (** maximum private-arena occupancy any worker reached (under
          {!Snapshot}, scratch excludes the immortal frozen tier) *)
  apply_steps : int;
      (** node-construction attempts across all managers involved — a
          deterministic, machine-independent work metric
          ({!Bdd.apply_steps}) *)
  nodes_allocated : int;
      (** fresh BDD nodes hash-consed across all managers involved
          ({!Bdd.nodes_allocated}) *)
  rescued_faults : int;
      (** faults answered exactly on the reorder-rescue rung — every
          one of these would have degraded to {!Bounded} (or worse)
          without dynamic reordering *)
  retry_attempts : int;
      (** escalated retry re-runs entered across the sweep (each failed
          fault contributes up to [max_retries]) — the ladder cost the
          topology pre-flag exists to avoid *)
  preflagged_faults : int;
      (** faults the [?hostile] predicate sent to the rescue rung ahead
          of the retry ladder *)
  sift_seconds : float;
      (** wall clock spent discovering rescue orders (side build plus
          sifting, summed over workers) — the price of the rescue rung,
          kept out of [analysis_cpu_seconds] *)
  sift_nodes_before : int;
      (** live BDD nodes of the good-function arena before sifting (0
          when no rescue order was ever needed); per-manager fact, so
          the maximum across workers, not a sum *)
  sift_nodes_after : int;
      (** live BDD nodes after sifting — compare against
          [sift_nodes_before] for the order improvement *)
  epoch_resets : int;
      (** scratch regions reclaimed wholesale ({!Bdd.close_epoch})
          across all managers involved — each one replaced a
          mark-sweep-compact walk of the whole arena *)
  tenured_nodes : int;
      (** nodes copied into the long-lived tier at epoch close because
          a registered root still reached them (lazily-forced good
          functions, in-flight scratch) — persistently high tenure
          means the region budget closes epochs too early *)
  warm_cache_hits : int;
      (** apply/ite recursions answered by the sealed snapshot's warm
          op-cache ({!Bdd.warm_cache_hits}, {!Snapshot} scheduler) —
          work the fork-local cold caches would have redone *)
}

val analyze_all :
  ?node_budget:int ->
  ?fault_budget:int ->
  ?deadline_ms:float ->
  ?max_retries:int ->
  ?reorder:bool ->
  ?reorder_growth:float ->
  ?hostile:(Fault.t -> bool) ->
  ?bounds:bool ->
  ?bound_samples:int ->
  ?deterministic:bool ->
  ?epochs:bool ->
  ?epoch_nodes:int ->
  ?journal:journal ->
  ?on_outcome:(int -> outcome -> unit) ->
  ?domains:int ->
  ?scheduler:scheduler ->
  t ->
  Fault.t list ->
  outcome list
(** Analyse a fault list, returning one outcome per fault in input
    order — the sweep completes whatever individual faults do.

    The engine's BDD arena only grows during a sweep, so once it passes
    [node_budget] allocated nodes (default 3 million) it is garbage
    collected in place ({!collect}): good functions and their memoised
    statistics survive, dead intermediates go.  [fault_budget]
    (default: none) additionally caps the fresh allocations of each
    single fault's analysis, and [deadline_ms] (default: none) caps its
    wall-clock time — the cooperative in-apply deadline that keeps one
    pathological cone from wedging a worker.

    Failed faults are retried with an escalating policy: up to
    [max_retries] (default 2) re-runs, each on a freshly rebuilt
    manager, with the per-fault budget and deadline doubled every round
    (2x, 4x, ...) — a fault that only blew a tight cap recovers to
    [Exact]; a deterministic crash stays [Crashed].

    When the retries are also exhausted and [reorder] is true (the
    default), the fault gets one {e reorder rescue}: the engine's good
    functions are rebuilt under the variable order Rudell sifting
    discovers (computed once per engine on a side manager, under the
    {!Bdd.sift} growth cap [reorder_growth], default
    {!default_reorder_growth}; @raise Invalid_argument when below 1.0)
    and the fault is attempted once more at the ladder's top escalated
    budget.  Success comes back [Exact] with [rescued_by_reorder] set —
    order-independent ROBDD statistics, so exactly as trustworthy as a
    first-attempt result.  Either way the engine is rebuilt back under
    its base order before the next fault, so sweep results stay
    independent of which faults needed rescuing, and the sift order
    itself is deterministic — rescue preserves the bit-identity and
    kill-and-resume guarantees below.  The rung is skipped entirely
    (costing nothing) when neither [fault_budget] nor [deadline_ms] is
    set, since nothing can degrade then.

    [hostile] (default: flag nothing) is the topology oracle's
    pre-flag: a fault it marks skips the intermediate escalations — its
    first failure jumps straight to the ladder's top rung (one retry at
    the [2^max_retries] scale, the reorder rescue's doorstep) instead
    of climbing through every doubling.  Outcomes are bit-identical to
    the full ladder's {e by construction}, even when the prediction is
    wrong: every retry runs on a fresh deterministic rebuild under the
    same order, so a successful attempt yields the same [Exact] payload
    at any budget scale, budget classification is monotone in the
    scale, and a failed top rung records the same payload the full
    ladder's final rung would have.  What the flag buys is the skipped
    rungs: a genuinely hostile fault reaches the rescue after one retry
    instead of [max_retries].  See
    [retry_attempts]/[preflagged_faults] in {!sweep_stats} for the
    measured effect.  (Deadline-classified outcomes stay wall-clock
    nondeterministic, flagged or not.)

    When the whole ladder is exhausted and [bounds] is true (the
    default), the fault degrades to
    {!Bounded} instead: the paper's syndrome upper bound is computed on
    the cached good functions (under a probe budget — 1.0 if even that
    blows) and a Wilson interval is estimated from [bound_samples]
    (default 4096) random simulation vectors with a per-fault
    deterministic seed, so every fault of every sweep gets a numeric
    answer.  [~bounds:false] restores the bare
    [Budget_exceeded]/[Deadline_exceeded] markers.

    [deterministic] (default false) makes degradation {e classification}
    reproducible: before every fault, all good functions are forced and
    the arena is collected down to its canonical form, so whether a
    borderline fault blows its budget no longer depends on arena
    history — outcomes become bit-identical across schedulers, domain
    counts and {!journal} resume points (the property checkpoint/resume
    relies on).  Costs one collection per fault; deadline expiry remains
    wall-clock-dependent.

    [epochs] (default true) brackets faults in scratch {e epochs}
    ({!Bdd.open_epoch}): an epoch opens once the fault's good functions
    are in place and closes — reclaiming every non-surviving scratch
    node of the region wholesale, at O(survivors) cost — when the
    region passes [epoch_nodes] (default {!default_epoch_nodes}),
    before any budget-triggered collection, and at sweep end.  Exact
    statistics are unaffected (they are scalars of canonical ROBDDs);
    in [deterministic] mode a close restores the canonical arena
    bit-for-bit, so outcomes are identical with epochs on or off while
    most per-fault collections are skipped.  In non-deterministic
    sweeps with per-fault budgets, whether a {e borderline} fault
    degrades may shift (reclaimed intermediates get re-charged on
    re-derivation) — the same caveat arena history always carried.
    [~epochs:false] restores the pure collect-based policy.

    [journal] (default: none) is the checkpoint hook: journaled faults
    are skipped and merged verbatim, fresh completions are reported as
    they happen (see {!journal}).

    [on_outcome] (default: none) is the streaming subscription hook:
    called once per {e computed} fault the moment its outcome exists —
    possibly from a worker domain, so implementations must synchronize —
    after the journal's [record] has seen it (durable before visible).
    Journal-skipped faults are never re-announced through it; a resuming
    caller already holds those.  This is how [dpa serve] streams
    per-fault results to subscribers while the sweep runs.

    [domains] (default 1) fans the sweep out over that many OCaml
    domains under the chosen [scheduler] (default {!Static}).  Each
    worker builds its own Symbolic/Bdd manager (the arena is
    single-threaded) with the same ordering heuristic and applies the
    budgets independently; the engine passed in is left untouched
    whenever more than one domain runs.  {!Static} shards the list into
    contiguous chunks fixed up front; {!Stealing} groups faults by
    fault-site cone into batches that idle domains steal from a shared
    queue, with lazily-built workers that only elaborate the good
    functions their batches touch; {!Snapshot} builds the good functions
    once on the calling engine, {!seal}s them and hands every domain a
    {!fork} over the shared snapshot (the engine is sealed for the
    duration of the sweep and unsealed — usable as before — on return).
    Workers are supervised under every scheduler —
    a shard or batch that dies wholesale is requeued through the
    sequential retry path, surviving work keeps its results, and every
    spawned domain is joined — and with [deadline_ms] set the stealing
    queue additionally runs a watchdog: a batch held past its wall-clock
    allowance (the full escalation ladder plus slack) is re-executed on
    an idle survivor, first published result winning, so the sweep
    drains even while one domain is stuck in a pathological cone.
    Outcomes merge back in input order; every [Exact] outcome is
    bit-identical to a sequential run — ROBDDs are canonical under a
    fixed variable order, so every statistic is manager-independent.
    (Whether a {e borderline} fault degrades can depend on arena history
    and hence on scheduling — unless [deterministic] is set; the exact
    statistics never do.) *)

val analyze_all_stats :
  ?node_budget:int ->
  ?fault_budget:int ->
  ?deadline_ms:float ->
  ?max_retries:int ->
  ?reorder:bool ->
  ?reorder_growth:float ->
  ?hostile:(Fault.t -> bool) ->
  ?bounds:bool ->
  ?bound_samples:int ->
  ?deterministic:bool ->
  ?epochs:bool ->
  ?epoch_nodes:int ->
  ?journal:journal ->
  ?on_outcome:(int -> outcome -> unit) ->
  ?domains:int ->
  ?scheduler:scheduler ->
  t ->
  Fault.t list ->
  outcome list * sweep_stats
(** {!analyze_all} plus per-stage accounting: where the time went
    (snapshot build, per-worker build, analysis CPU summed across
    domains, the parallel region's wall clock, GC), how many batches the
    scheduler served, how much of the circuit the workers elaborated,
    and the deterministic work metrics the bench regression gate
    compares across runs. *)

val analyze_exact :
  ?node_budget:int ->
  ?domains:int ->
  ?scheduler:scheduler ->
  t ->
  Fault.t list ->
  result list
(** {!analyze_all} for callers that require every fault exact: unwraps
    the results and raises [Failure] on the first degraded outcome.
    With no [fault_budget] and healthy fault descriptions this is the
    pre-robustness behaviour. *)
