(** Difference Propagation (the paper's §3).

    An engine holds the symbolic good functions of one circuit.  For any
    logical fault it initialises difference functions at the fault
    site(s) and propagates them to the primary outputs with the Table-1
    rules, visiting only the fault's fanout cone (selective trace).  The
    union of the output differences is {e the complete test set} of the
    fault, from which exact detectability, syndrome bounds, adherence
    and observability statistics follow. *)

type t

val create : ?heuristic:Ordering.heuristic -> Circuit.t -> t
val circuit : t -> Circuit.t
val manager : t -> Bdd.manager
val symbolic : t -> Symbolic.t

val generation : t -> int
(** Number of symbolic rebuilds so far.  BDD handles obtained from
    {!manager}/{!symbolic} are only valid while the generation is
    unchanged; {!result} values are plain data and survive rebuilds. *)

val on_rebuild : t -> (unit -> unit) -> unit
(** Register a hook run after every symbolic rebuild (budget-triggered
    rebuilds during {!analyze_all} included) — the place to invalidate
    external caches holding BDD handles from this engine. *)

(** {1 Test sets} *)

val po_differences : t -> Fault.t -> Bdd.t array
(** The difference function at every primary output (declaration
    order) — each is the fault's complete test set {e at that output}. *)

val test_set : t -> Fault.t -> Bdd.t
(** Union of the output differences: the complete test set. *)

val test_cubes : ?limit:int -> t -> Fault.t -> (int * bool) list list
(** Satisfying cubes of the test set, as (input position, value) literal
    lists; unmentioned inputs are don't-care. *)

val test_vector : t -> Fault.t -> bool array option
(** One full test vector, or [None] for an undetectable fault. *)

(** {1 Exact fault statistics} *)

type result = {
  fault : Fault.t;
  detectability : float;  (** |test set| / 2^n — exact *)
  test_count : float;  (** |test set| *)
  detectable : bool;
  pos_fed : int;  (** outputs reachable from the fault site(s) *)
  pos_observed : int;  (** outputs with a non-zero difference *)
  upper_bound : float;
      (** excitation bound: the site syndrome (or its complement) for
          stuck-at faults, [satfrac (fa xor fb)] for bridges *)
  adherence : float option;
      (** detectability / upper_bound; [None] when the bound is zero *)
  wired_support : int option;
      (** bridges: support size of the wired function at the site — zero
          means the bridge degenerates to (double) stuck-at behaviour *)
  test_set_nodes : int;  (** BDD size of the test set *)
}

val analyze : t -> Fault.t -> result
(** Exact analysis of one fault.  May raise — {!analyze_protected} is
    the isolated variant. *)

(** {1 Fault-tolerant sweeps}

    A sweep over thousands of faults must survive the one fault whose
    difference BDD explodes (or whose description is malformed): one bad
    fault may not abort the run and discard every finished result.
    Every fault therefore comes back as a structured {!outcome}. *)

type outcome =
  | Exact of result  (** the analysis completed; statistics are exact *)
  | Budget_exceeded of { fault : Fault.t; nodes : int; budget : int }
      (** the per-fault BDD allocation budget blew mid-apply, after
          [nodes] fresh nodes against a cap of [budget] (the cap of the
          final, escalated attempt) *)
  | Crashed of { fault : Fault.t; message : string }
      (** the analysis raised; [message] is the printed exception *)

val outcome_fault : outcome -> Fault.t

val is_exact : outcome -> bool

val exact_results : outcome list -> result list
(** The [Exact] payloads, input order kept; degraded outcomes dropped. *)

val degraded : outcome list -> outcome list
(** The non-[Exact] outcomes, input order kept. *)

val outcome_to_string : Circuit.t -> outcome -> string
(** One-line description for logs and summaries.  Never raises, even on
    faults naming nonexistent nets. *)

val analyze_protected : ?fault_budget:int -> t -> Fault.t -> outcome
(** {!analyze} with per-fault isolation: an exception becomes [Crashed]
    and, when [fault_budget] is given, the analysis runs inside
    {!Bdd.with_budget} so a blown budget is caught {e mid-apply} as
    [Budget_exceeded] instead of growing the arena unboundedly.  The
    engine survives either way (scratch state is restored, the arena
    stays consistent). *)

val analyze_all :
  ?node_budget:int ->
  ?fault_budget:int ->
  ?max_retries:int ->
  ?domains:int ->
  t ->
  Fault.t list ->
  outcome list
(** Analyse a fault list, returning one outcome per fault in input
    order — the sweep completes whatever individual faults do.

    The engine's BDD arena only grows, so after [node_budget] allocated
    nodes (default 3 million) the symbolic state is rebuilt from
    scratch; results are unaffected.  [fault_budget] (default: none)
    additionally caps the fresh allocations of each single fault's
    analysis.

    Failed faults are retried with an escalating policy: up to
    [max_retries] (default 2) re-runs, each on a freshly rebuilt
    manager, with the per-fault budget doubled every round (2x, 4x, ...)
    — a fault that only blew its budget through bad luck or a tight cap
    recovers to [Exact]; a deterministic crash stays [Crashed].

    [domains] (default 1) shards the list into contiguous chunks
    analysed on that many OCaml domains.  Each worker builds its own
    Symbolic/Bdd manager (the arena is single-threaded) with the same
    ordering heuristic and applies the budgets independently; the
    engine passed in is left untouched.  Workers are supervised: a
    shard that dies wholesale is requeued through the sequential retry
    path, surviving shards keep their results, and every spawned domain
    is joined.  Outcomes merge back in input order; every [Exact]
    outcome is bit-identical to a sequential run — ROBDDs are canonical
    under a fixed variable order, so every statistic is
    manager-independent.  (Whether a {e borderline} fault degrades can
    depend on arena history and hence on sharding; the exact statistics
    never do.) *)

val analyze_exact :
  ?node_budget:int -> ?domains:int -> t -> Fault.t list -> result list
(** {!analyze_all} for callers that require every fault exact: unwraps
    the results and raises [Failure] on the first degraded outcome.
    With no [fault_budget] and healthy fault descriptions this is the
    pre-robustness behaviour. *)
