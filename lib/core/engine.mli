(** Difference Propagation (the paper's §3).

    An engine holds the symbolic good functions of one circuit.  For any
    logical fault it initialises difference functions at the fault
    site(s) and propagates them to the primary outputs with the Table-1
    rules, visiting only the fault's fanout cone (selective trace).  The
    union of the output differences is {e the complete test set} of the
    fault, from which exact detectability, syndrome bounds, adherence
    and observability statistics follow. *)

type t

val create : ?heuristic:Ordering.heuristic -> ?lazily:bool -> Circuit.t -> t
(** [lazily] (default false) defers good-function construction: each
    net's BDD is elaborated on first use, so an engine that only ever
    analyses faults in one region of the circuit never builds the rest.
    Sweep workers of the {!Stealing} scheduler are created this way. *)

val circuit : t -> Circuit.t
val manager : t -> Bdd.manager
val symbolic : t -> Symbolic.t

val generation : t -> int
(** Number of handle-invalidating events (symbolic rebuilds and
    {!collect} cycles) so far.  BDD handles obtained from
    {!manager}/{!symbolic} are only valid while the generation is
    unchanged; {!result} values are plain data and survive both. *)

val on_rebuild : t -> (unit -> unit) -> unit
(** Register a hook run after every handle-invalidating event — budget
    triggered rebuilds and garbage collections during {!analyze_all}
    included — the place to invalidate external caches holding BDD
    handles from this engine. *)

val collect : t -> unit
(** Mark-sweep the engine's BDD arena: the good functions (with their
    memoised statistics) and any in-flight scratch survive, the dead
    intermediates of earlier faults are reclaimed, and the arena is
    compacted in place — the cheap alternative to a full {!rebuild}
    when the arena outgrows the sweep's node budget.  Handles are
    renumbered, so this bumps {!generation} and fires {!on_rebuild}
    hooks exactly like a rebuild. *)

(** {1 Test sets} *)

val po_differences : t -> Fault.t -> Bdd.t array
(** The difference function at every primary output (declaration
    order) — each is the fault's complete test set {e at that output}. *)

val test_set : t -> Fault.t -> Bdd.t
(** Union of the output differences: the complete test set. *)

val test_cubes : ?limit:int -> t -> Fault.t -> (int * bool) list list
(** Satisfying cubes of the test set, as (input position, value) literal
    lists; unmentioned inputs are don't-care. *)

val test_vector : t -> Fault.t -> bool array option
(** One full test vector, or [None] for an undetectable fault. *)

(** {1 Exact fault statistics} *)

type result = {
  fault : Fault.t;
  detectability : float;  (** |test set| / 2^n — exact *)
  test_count : float;  (** |test set| *)
  detectable : bool;
  pos_fed : int;  (** outputs reachable from the fault site(s) *)
  pos_observed : int;  (** outputs with a non-zero difference *)
  upper_bound : float;
      (** excitation bound: the site syndrome (or its complement) for
          stuck-at faults, [satfrac (fa xor fb)] for bridges *)
  adherence : float option;
      (** detectability / upper_bound; [None] when the bound is zero *)
  wired_support : int option;
      (** bridges: support size of the wired function at the site — zero
          means the bridge degenerates to (double) stuck-at behaviour *)
  test_set_nodes : int;  (** BDD size of the test set *)
}

val analyze : t -> Fault.t -> result
(** Exact analysis of one fault.  May raise — {!analyze_protected} is
    the isolated variant. *)

(** {1 Fault-tolerant sweeps}

    A sweep over thousands of faults must survive the one fault whose
    difference BDD explodes (or whose description is malformed): one bad
    fault may not abort the run and discard every finished result.
    Every fault therefore comes back as a structured {!outcome}. *)

type outcome =
  | Exact of result  (** the analysis completed; statistics are exact *)
  | Budget_exceeded of { fault : Fault.t; nodes : int; budget : int }
      (** the per-fault BDD allocation budget blew mid-apply, after
          [nodes] fresh nodes against a cap of [budget] (the cap of the
          final, escalated attempt) *)
  | Crashed of { fault : Fault.t; message : string }
      (** the analysis raised; [message] is the printed exception *)

val outcome_fault : outcome -> Fault.t

val is_exact : outcome -> bool

val exact_results : outcome list -> result list
(** The [Exact] payloads, input order kept; degraded outcomes dropped. *)

val degraded : outcome list -> outcome list
(** The non-[Exact] outcomes, input order kept. *)

val outcome_to_string : Circuit.t -> outcome -> string
(** One-line description for logs and summaries.  Never raises, even on
    faults naming nonexistent nets. *)

val analyze_protected : ?fault_budget:int -> t -> Fault.t -> outcome
(** {!analyze} with per-fault isolation: an exception becomes [Crashed]
    and, when [fault_budget] is given, the analysis runs inside
    {!Bdd.with_budget} so a blown budget is caught {e mid-apply} as
    [Budget_exceeded] instead of growing the arena unboundedly.  The
    engine survives either way (scratch state is restored, the arena
    stays consistent). *)

(** {1 Sweep scheduling} *)

type scheduler =
  | Static
      (** contiguous fault shards, one per domain, fixed up front — the
          conservative default; at [domains = 1] this is the plain
          sequential sweep *)
  | Stealing
      (** faults grouped into cone-local batches that idle domains pull
          off a shared queue — balances wildly uneven fault costs and
          lets lazy workers build only the circuit regions their
          batches touch *)

val scheduler_to_string : scheduler -> string

type sweep_stats = {
  scheduler : scheduler;
  domains : int;
  batch_count : int;  (** work units handed to the scheduler *)
  build_seconds : float;
      (** engine construction across workers (summed over domains) *)
  analysis_seconds : float;
      (** fault analysis proper, GC time excluded (summed over domains) *)
  gc_seconds : float;  (** {!collect} cycles (summed over domains) *)
  gc_collections : int;
  good_functions_built : int;
      (** good functions elaborated across all engines — on lazy
          workers, a measure of how much circuit the sweep touched *)
}

val analyze_all :
  ?node_budget:int ->
  ?fault_budget:int ->
  ?max_retries:int ->
  ?domains:int ->
  ?scheduler:scheduler ->
  t ->
  Fault.t list ->
  outcome list
(** Analyse a fault list, returning one outcome per fault in input
    order — the sweep completes whatever individual faults do.

    The engine's BDD arena only grows during a sweep, so once it passes
    [node_budget] allocated nodes (default 3 million) it is garbage
    collected in place ({!collect}): good functions and their memoised
    statistics survive, dead intermediates go.  [fault_budget]
    (default: none) additionally caps the fresh allocations of each
    single fault's analysis.

    Failed faults are retried with an escalating policy: up to
    [max_retries] (default 2) re-runs, each on a freshly rebuilt
    manager, with the per-fault budget doubled every round (2x, 4x, ...)
    — a fault that only blew its budget through bad luck or a tight cap
    recovers to [Exact]; a deterministic crash stays [Crashed].

    [domains] (default 1) fans the sweep out over that many OCaml
    domains under the chosen [scheduler] (default {!Static}).  Each
    worker builds its own Symbolic/Bdd manager (the arena is
    single-threaded) with the same ordering heuristic and applies the
    budgets independently; the engine passed in is left untouched
    whenever more than one domain runs.  {!Static} shards the list into
    contiguous chunks fixed up front; {!Stealing} groups faults by
    fault-site cone into batches that idle domains steal from a shared
    queue, with lazily-built workers that only elaborate the good
    functions their batches touch.  Workers are supervised either way: a
    shard or batch that dies wholesale is requeued through the
    sequential retry path, surviving work keeps its results, and every
    spawned domain is joined.  Outcomes merge back in input order; every
    [Exact] outcome is bit-identical to a sequential run — ROBDDs are
    canonical under a fixed variable order, so every statistic is
    manager-independent.  (Whether a {e borderline} fault degrades can
    depend on arena history and hence on scheduling; the exact
    statistics never do.) *)

val analyze_all_stats :
  ?node_budget:int ->
  ?fault_budget:int ->
  ?max_retries:int ->
  ?domains:int ->
  ?scheduler:scheduler ->
  t ->
  Fault.t list ->
  outcome list * sweep_stats
(** {!analyze_all} plus per-stage accounting: where the time went
    (engine build vs analysis vs GC, each summed across domains — wall
    clock is the caller's to measure), how many batches the scheduler
    served, and how much of the circuit the workers elaborated. *)

val analyze_exact :
  ?node_budget:int ->
  ?domains:int ->
  ?scheduler:scheduler ->
  t ->
  Fault.t list ->
  result list
(** {!analyze_all} for callers that require every fault exact: unwraps
    the results and raises [Failure] on the first degraded outcome.
    With no [fault_budget] and healthy fault descriptions this is the
    pre-robustness behaviour. *)
