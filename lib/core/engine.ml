type t = {
  base : Circuit.t;
  heuristic : Ordering.heuristic;
  lazily : bool; (* good functions built on demand (worker engines) *)
  fanouts : int array array;
  output_mark : bool array; (* net -> is a primary output *)
  cone : int list -> int array; (* reusable selective-trace walker *)
  mutable sym : Symbolic.t;
  mutable delta_scratch : Bdd.t array; (* zero outside the cone in flight *)
  (* One-entry memo: a fault's cone is walked once and shared by
     [propagate] and [pos_fed] (and both s-a-v polarities of a line,
     since the key is the site list).  Pure circuit topology, so it
     survives rebuilds and collections. *)
  mutable cone_memo : (int list * int array) option;
  mutable generation : int;
  mutable rebuild_hooks : (unit -> unit) list;
  (* GC accounting, read by the sweep statistics. *)
  mutable gc_time : float;
  mutable gc_runs : int;
}

let create ?(heuristic = Ordering.Natural) ?(lazily = false) base =
  let sym =
    (if lazily then Symbolic.build_lazy else Symbolic.build) ~heuristic base
  in
  let n = Circuit.num_gates base in
  let fanouts = Circuit.fanouts base in
  let output_mark = Array.make n false in
  Array.iter (fun o -> output_mark.(o) <- true) base.Circuit.outputs;
  {
    base;
    heuristic;
    lazily;
    fanouts;
    output_mark;
    cone = Circuit.cone_walker base ~fanouts;
    sym;
    delta_scratch = Array.make n (Bdd.zero (Symbolic.manager sym));
    cone_memo = None;
    generation = 0;
    rebuild_hooks = [];
    gc_time = 0.0;
    gc_runs = 0;
  }

let circuit t = t.base
let manager t = Symbolic.manager t.sym
let symbolic t = t.sym
let generation t = t.generation
let on_rebuild t hook = t.rebuild_hooks <- hook :: t.rebuild_hooks

(* Good function of a net; forces it on lazy instances. *)
let node t g = Symbolic.node_function t.sym g

let rebuild t =
  let sym =
    (if t.lazily then Symbolic.build_lazy else Symbolic.build)
      ~heuristic:t.heuristic t.base
  in
  t.sym <- sym;
  (* Old handles are meaningless in the fresh manager. *)
  Array.fill t.delta_scratch 0
    (Array.length t.delta_scratch)
    (Bdd.zero (Symbolic.manager sym));
  t.generation <- t.generation + 1;
  List.iter (fun hook -> hook ()) t.rebuild_hooks

let collect t =
  let t0 = Unix.gettimeofday () in
  (* The good-function array is registered with the manager by
     [Symbolic]; the delta scratch rides along as extra roots (all zero
     between faults, but cheap insurance).  Handles are renumbered, so
     externally this is a generation change exactly like [rebuild]. *)
  Bdd.collect ~roots:[ t.delta_scratch ] (manager t);
  t.gc_time <- t.gc_time +. (Unix.gettimeofday () -. t0);
  t.gc_runs <- t.gc_runs + 1;
  t.generation <- t.generation + 1;
  List.iter (fun hook -> hook ()) t.rebuild_hooks

let cone_of_sites t sites =
  match t.cone_memo with
  | Some (s, cone) when s = sites -> cone
  | _ ->
    let cone = t.cone sites in
    t.cone_memo <- Some (sites, cone);
    cone

(* Build everything a fault's analysis will read — the sites' good
   functions and those of every cone gate's fanins — so that on a lazy
   engine the elaboration happens here, *outside* any per-fault budget
   window, mirroring the eager engine's cost accounting.  Exceptions are
   swallowed: a malformed fault must crash inside the protected analysis
   (where it is contained), not here. *)
let prepare t fault =
  match Fault.sites fault with
  | exception _ -> ()
  | sites -> (
    try
      List.iter (Symbolic.force t.sym) sites;
      Array.iter
        (fun g ->
          Array.iter (Symbolic.force t.sym)
            t.base.Circuit.gates.(g).Circuit.fanins)
        (cone_of_sites t sites)
    with _ -> ())

(* Initial difference functions at the fault sites: (net, delta) pairs. *)
let initial_deltas t fault =
  let m = manager t in
  let f net = node t net in
  let against_constant good value =
    if value then Bdd.bnot m good else good
  in
  match fault with
  | Fault.Stuck { Sa_fault.line = Sa_fault.Stem s; value } ->
    [ (s, against_constant (f s) value) ]
  | Fault.Stuck { Sa_fault.line = Sa_fault.Branch br; value } ->
    (* A branch fault changes only one pin: inject the pin difference and
       let the Table-1 rule of the sink gate turn it into the sink's
       output difference. *)
    let sink = br.Circuit.sink in
    let gate = Circuit.gate t.base sink in
    let good = Array.map (fun g -> f g) gate.Circuit.fanins in
    let delta =
      Array.mapi
        (fun pin g ->
          if pin = br.Circuit.pin then against_constant (f g) value
          else Bdd.zero m)
        gate.Circuit.fanins
    in
    [ (sink, Rules.delta m gate.Circuit.kind ~good ~delta) ]
  | Fault.Bridged { Bridge.a; b; kind } ->
    let wired =
      match kind with
      | Bridge.Wired_and -> Bdd.band m (f a) (f b)
      | Bridge.Wired_or -> Bdd.bor m (f a) (f b)
    in
    [ (a, Bdd.bxor m (f a) wired); (b, Bdd.bxor m (f b) wired) ]
  | Fault.Multi_stuck sites ->
    (* Each forced stem has the same difference it would have alone; the
       Table-1 rules are exact under simultaneous input differences, so
       propagation composes the effects correctly. *)
    List.map (fun (s, value) -> (s, against_constant (f s) value)) sites

(* Propagate differences through the fanout cone of the sites and hand
   the scratch delta array to [k].  Selective trace: the cone walker
   enumerates exactly the gates a difference can reach, already in
   topological order, so gates outside the cone are never looked at.
   The scratch is zeroed again before returning. *)
let propagate t fault k =
  let m = manager t in
  let zero = Bdd.zero m in
  let deltas = t.delta_scratch in
  let sites = initial_deltas t fault in
  let cone = cone_of_sites t (List.map fst sites) in
  (* Every scratch write happens inside the protected region (the cone
     contains the sites), so a crash or a blown BDD budget anywhere in
     the walk cannot leave stale deltas behind for the next fault. *)
  Fun.protect
    ~finally:(fun () -> Array.iter (fun g -> deltas.(g) <- zero) cone)
    (fun () ->
      List.iter (fun (net, d) -> deltas.(net) <- d) sites;
      Array.iter
        (fun g ->
          let gate = t.base.Circuit.gates.(g) in
          if (not (List.mem_assoc g sites)) && gate.Circuit.kind <> Gate.Input
          then begin
            let fanins = gate.Circuit.fanins in
            if
              Array.exists (fun f -> not (Bdd.is_zero m deltas.(f))) fanins
            then
              let good = Array.map (fun f -> node t f) fanins in
              let delta = Array.map (fun f -> deltas.(f)) fanins in
              deltas.(g) <- Rules.delta m gate.Circuit.kind ~good ~delta
          end)
        cone;
      k deltas)

let po_differences t fault =
  propagate t fault (fun deltas ->
      Array.map (fun o -> deltas.(o)) t.base.Circuit.outputs)

let test_set t fault =
  let m = manager t in
  Array.fold_left (Bdd.bor m) (Bdd.zero m) (po_differences t fault)

let test_cubes ?limit t fault = Bdd.sat_cubes (manager t) ?limit (test_set t fault)

let test_vector t fault =
  match Bdd.any_sat (manager t) (test_set t fault) with
  | None -> None
  | Some literals ->
    let v = Array.make (Circuit.num_inputs t.base) false in
    List.iter (fun (pos, value) -> v.(pos) <- value) literals;
    Some v

type result = {
  fault : Fault.t;
  detectability : float;
  test_count : float;
  detectable : bool;
  pos_fed : int;
  pos_observed : int;
  upper_bound : float;
  adherence : float option;
  wired_support : int option;
  test_set_nodes : int;
}

let upper_bound t fault =
  let m = manager t in
  let f net = node t net in
  match fault with
  | Fault.Stuck { Sa_fault.line; value } ->
    let stem = Sa_fault.stem_of_line line in
    let syndrome = Bdd.sat_fraction m (f stem) in
    if value then 1.0 -. syndrome else syndrome
  | Fault.Bridged { Bridge.a; b; _ } ->
    Bdd.sat_fraction m (Bdd.bxor m (f a) (f b))
  | Fault.Multi_stuck sites ->
    (* Excitation of at least one component fault. *)
    let excited =
      List.fold_left
        (fun acc (s, value) ->
          let delta = if value then Bdd.bnot m (f s) else f s in
          Bdd.bor m acc delta)
        (Bdd.zero m) sites
    in
    Bdd.sat_fraction m excited

let wired_support t fault =
  let m = manager t in
  let f net = node t net in
  match fault with
  | Fault.Stuck _ | Fault.Multi_stuck _ -> None
  | Fault.Bridged { Bridge.a; b; kind } ->
    let wired =
      match kind with
      | Bridge.Wired_and -> Bdd.band m (f a) (f b)
      | Bridge.Wired_or -> Bdd.bor m (f a) (f b)
    in
    Some (List.length (Bdd.support m wired))

let pos_fed t fault =
  let cone = cone_of_sites t (Fault.sites fault) in
  Array.fold_left
    (fun acc g -> if t.output_mark.(g) then acc + 1 else acc)
    0 cone

let analyze t fault =
  let m = manager t in
  let per_po = po_differences t fault in
  let union = Array.fold_left (Bdd.bor m) (Bdd.zero m) per_po in
  let detectability = Bdd.sat_fraction m union in
  let upper_bound = upper_bound t fault in
  {
    fault;
    detectability;
    (* |test set| = detectability * 2^n — same float product
       [Bdd.sat_count] computes, without re-walking the BDD. *)
    test_count = detectability *. Float.pow 2.0 (float_of_int (Bdd.num_vars m));
    detectable = not (Bdd.is_zero m union);
    pos_fed = pos_fed t fault;
    pos_observed =
      Array.fold_left
        (fun acc d -> if Bdd.is_zero m d then acc else acc + 1)
        0 per_po;
    upper_bound;
    adherence =
      (if upper_bound > 0.0 then Some (detectability /. upper_bound) else None);
    wired_support = wired_support t fault;
    test_set_nodes = Bdd.size m union;
  }

let default_node_budget = 3_000_000
let default_max_retries = 2

type outcome =
  | Exact of result
  | Budget_exceeded of { fault : Fault.t; nodes : int; budget : int }
  | Crashed of { fault : Fault.t; message : string }

let outcome_fault = function
  | Exact r -> r.fault
  | Budget_exceeded { fault; _ } | Crashed { fault; _ } -> fault

let is_exact = function
  | Exact _ -> true
  | Budget_exceeded _ | Crashed _ -> false

let exact_results outcomes =
  List.filter_map (function Exact r -> Some r | _ -> None) outcomes

let degraded outcomes = List.filter (fun o -> not (is_exact o)) outcomes

let outcome_to_string c outcome =
  let fault_text fault =
    (* The fault itself may be the malformed input that crashed the
       analysis; never let diagnostics crash with it. *)
    try Fault.to_string c fault with _ -> "<unprintable fault>"
  in
  match outcome with
  | Exact r -> Printf.sprintf "%s: exact" (fault_text r.fault)
  | Budget_exceeded { fault; nodes; budget } ->
    Printf.sprintf "%s: BDD budget exceeded (%d nodes allocated, budget %d)"
      (fault_text fault) nodes budget
  | Crashed { fault; message } ->
    Printf.sprintf "%s: crashed (%s)" (fault_text fault) message

let analyze_protected ?fault_budget t fault =
  match fault_budget with
  | None -> (
    try Exact (analyze t fault)
    with exn -> Crashed { fault; message = Printexc.to_string exn })
  | Some budget -> (
    try
      Exact (Bdd.with_budget (manager t) ~budget (fun () -> analyze t fault))
    with
    | Bdd.Budget_exceeded { nodes; budget } ->
      Budget_exceeded { fault; nodes; budget }
    | exn -> Crashed { fault; message = Printexc.to_string exn })

(* Escalating retry: each attempt runs on a freshly rebuilt manager (a
   crash may be a symptom of arena-history effects, and a fresh arena
   makes the allocation count of the retry deterministic) with the
   per-fault budget doubled every round — 2x, 4x, ... the original. *)
let rec retry_outcome t fault ~fault_budget ~attempt ~max_retries outcome =
  match outcome with
  | Exact _ -> outcome
  | Budget_exceeded _ | Crashed _ when attempt < max_retries -> (
    match (try Ok (rebuild t) with exn -> Error exn) with
    | Error _ ->
      (* No fresh state to retry on; keep the more informative original. *)
      outcome
    | Ok () ->
      prepare t fault;
      let budget =
        Option.map (fun b -> b lsl (attempt + 1)) fault_budget
      in
      analyze_protected ?fault_budget:budget t fault
      |> retry_outcome t fault ~fault_budget ~attempt:(attempt + 1)
           ~max_retries)
  | Budget_exceeded _ | Crashed _ -> outcome

let analyze_one ~node_budget ~fault_budget ~max_retries t fault =
  (* Reclaim garbage in place instead of throwing the arena away: the
     good functions (and their memoised statistics) survive, only the
     dead intermediate results of earlier faults go. *)
  if Bdd.allocated_nodes (manager t) > node_budget then collect t;
  prepare t fault;
  analyze_protected ?fault_budget t fault
  |> retry_outcome t fault ~fault_budget ~attempt:0 ~max_retries

let analyze_outcomes_seq ~node_budget ~fault_budget ~max_retries t faults =
  List.map (analyze_one ~node_budget ~fault_budget ~max_retries t) faults

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)

type scheduler = Static | Stealing

let scheduler_to_string = function
  | Static -> "static"
  | Stealing -> "stealing"

type sweep_stats = {
  scheduler : scheduler;
  domains : int;
  batch_count : int;
  build_seconds : float;
  analysis_seconds : float;
  gc_seconds : float;
  gc_collections : int;
  good_functions_built : int;
}

(* Cross-domain accumulator for the per-stage timings; workers report
   under the lock when they finish a unit of work. *)
type stats_acc = {
  lock : Mutex.t;
  mutable acc_build : float;
  mutable acc_analysis : float;
  mutable acc_gc : float;
  mutable acc_collections : int;
  mutable acc_built : int;
}

let fresh_acc () =
  {
    lock = Mutex.create ();
    acc_build = 0.0;
    acc_analysis = 0.0;
    acc_gc = 0.0;
    acc_collections = 0;
    acc_built = 0;
  }

let with_acc acc f =
  match acc with
  | None -> ()
  | Some a ->
    Mutex.lock a.lock;
    (match f a with () -> Mutex.unlock a.lock | exception exn ->
      Mutex.unlock a.lock;
      raise exn)

(* Group faults sharing a site list (both polarities of a line, both
   bridge orientations of a pair), keep groups in first-appearance
   order — fault enumeration follows gate order, so this preserves the
   cone locality (and cache evolution) of the sequential sweep — and
   pack whole groups into batches sized for roughly [domains * 8]
   steals. *)
let site_batches ~domains faults =
  let tbl = Hashtbl.create 97 in
  List.iteri
    (fun i fault ->
      let key = Fault.sites fault in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key ((i, fault) :: prev))
    faults;
  let groups =
    Hashtbl.fold (fun key members acc -> (key, List.rev members) :: acc) tbl []
  in
  let groups =
    (* Deterministic: sort by the index of each group's first member. *)
    List.sort
      (fun (_, a) (_, b) -> compare (fst (List.hd a)) (fst (List.hd b)))
      groups
  in
  let n = List.length faults in
  let target = max 1 (n / (max 1 domains * 8)) in
  let batches = ref [] and cur = ref [] and cur_n = ref 0 in
  let flush () =
    if !cur <> [] then begin
      batches := Array.of_list (List.rev !cur) :: !batches;
      cur := [];
      cur_n := 0
    end
  in
  List.iter
    (fun (_, members) ->
      List.iter (fun p -> cur := p :: !cur) members;
      cur_n := !cur_n + List.length members;
      if !cur_n >= target then flush ())
    groups;
  flush ();
  Array.of_list (List.rev !batches)

let now = Unix.gettimeofday

let analyze_stealing ?acc ~node_budget ~fault_budget ~max_retries ~domains t
    faults =
  let batches = site_batches ~domains faults in
  let domains = min domains (max 1 (Array.length batches)) in
  let workers = ref [] in
  let init () =
    let worker =
      if domains = 1 then
        (* Steal on the calling engine, exactly like the static
           sequential path: no worker build, no spawn — only the batch
           order differs (and the merge restores it). *)
        t
      else begin
        let t0 = now () in
        let w = create ~heuristic:t.heuristic ~lazily:true t.base in
        with_acc acc (fun a -> a.acc_build <- a.acc_build +. (now () -. t0));
        w
      end
    in
    with_acc acc (fun _acc -> workers := worker :: !workers);
    worker
  in
  let process worker batch =
    let t0 = now () in
    let gc0 = worker.gc_time and n0 = worker.gc_runs in
    let out =
      Array.map
        (fun (i, fault) ->
          (i, analyze_one ~node_budget ~fault_budget ~max_retries worker fault))
        batch
    in
    let gc = worker.gc_time -. gc0 in
    with_acc acc (fun a ->
        a.acc_analysis <- a.acc_analysis +. (now () -. t0) -. gc;
        a.acc_gc <- a.acc_gc +. gc;
        a.acc_collections <- a.acc_collections + (worker.gc_runs - n0));
    out
  in
  let results = Parallel.steal_batches ~domains ~init ~process batches in
  with_acc acc (fun a ->
      List.iter
        (fun w -> a.acc_built <- a.acc_built + Symbolic.built_count w.sym)
        !workers);
  (* Order-preserving merge: every outcome carries its input index.  A
     batch contained as [Error] (its worker died outside the per-fault
     isolation) is requeued on a fresh engine, mirroring the static
     path's shard supervision. *)
  let requeue exn batch =
    match create ~heuristic:t.heuristic t.base with
    | worker ->
      Array.map
        (fun (i, fault) ->
          (i, analyze_one ~node_budget ~fault_budget ~max_retries worker fault))
        batch
    | exception _ ->
      let message = Printexc.to_string exn in
      Array.map (fun (i, fault) -> (i, Crashed { fault; message })) batch
  in
  let merged = Array.make (List.length faults) None in
  Array.iteri
    (fun b res ->
      let outcomes =
        match res with Ok out -> out | Error exn -> requeue exn batches.(b)
      in
      Array.iter (fun (i, o) -> merged.(i) <- Some o) outcomes)
    results;
  Array.to_list merged
  |> List.map (function
       | Some o -> o
       | None -> invalid_arg "Engine.analyze_stealing: lost outcome")

let analyze_static ?acc ~node_budget ~fault_budget ~max_retries ~domains t
    faults =
  if domains <= 1 then begin
    let t0 = now () in
    let gc0 = t.gc_time and n0 = t.gc_runs in
    let outcomes =
      analyze_outcomes_seq ~node_budget ~fault_budget ~max_retries t faults
    in
    let gc = t.gc_time -. gc0 in
    with_acc acc (fun a ->
        a.acc_analysis <- a.acc_analysis +. (now () -. t0) -. gc;
        a.acc_gc <- a.acc_gc +. gc;
        a.acc_collections <- a.acc_collections + (t.gc_runs - n0);
        a.acc_built <- a.acc_built + Symbolic.built_count t.sym);
    outcomes
  end
  else
    (* The hash-consing arena is single-threaded mutable state, so every
       worker domain builds its own Symbolic/Bdd manager and analyses
       its contiguous shard with an independent node budget.  Outcomes
       are plain scalars (no BDD handles), and ROBDDs are canonical
       under a fixed variable order, so the merged list is bit-identical
       to a sequential run.  Workers are supervised: a shard that dies
       before producing outcomes (its engine failed to build) is
       requeued through the sequential retry path, and surviving shards
       keep their results. *)
    Parallel.map_chunked_outcomes ~domains
      (fun shard ->
        let t0 = now () in
        let worker = create ~heuristic:t.heuristic t.base in
        let t1 = now () in
        let outcomes =
          analyze_outcomes_seq ~node_budget ~fault_budget ~max_retries worker
            shard
        in
        with_acc acc (fun a ->
            a.acc_build <- a.acc_build +. (t1 -. t0);
            a.acc_analysis <- a.acc_analysis +. (now () -. t1) -. worker.gc_time;
            a.acc_gc <- a.acc_gc +. worker.gc_time;
            a.acc_collections <- a.acc_collections + worker.gc_runs;
            a.acc_built <- a.acc_built + Symbolic.built_count worker.sym);
        outcomes)
      faults
    |> List.concat_map (fun (shard, res) ->
           match res with
           | Ok outcomes -> outcomes
           | Error exn -> (
             match create ~heuristic:t.heuristic t.base with
             | worker ->
               analyze_outcomes_seq ~node_budget ~fault_budget ~max_retries
                 worker shard
             | exception _ ->
               let message = Printexc.to_string exn in
               List.map (fun fault -> Crashed { fault; message }) shard))

let analyze_all_impl ?acc ?(node_budget = default_node_budget) ?fault_budget
    ?(max_retries = default_max_retries) ?(domains = 1)
    ?(scheduler = Static) t faults =
  let domains = max 1 domains in
  match (scheduler, faults) with
  | _, [] -> []
  | Static, _ ->
    analyze_static ?acc ~node_budget ~fault_budget ~max_retries ~domains t
      faults
  | Stealing, _ ->
    analyze_stealing ?acc ~node_budget ~fault_budget ~max_retries ~domains t
      faults

let analyze_all ?node_budget ?fault_budget ?max_retries ?domains ?scheduler t
    faults =
  analyze_all_impl ?node_budget ?fault_budget ?max_retries ?domains ?scheduler
    t faults

let analyze_all_stats ?node_budget ?fault_budget ?max_retries
    ?(domains = 1) ?(scheduler = Static) t faults =
  let acc = fresh_acc () in
  let outcomes =
    analyze_all_impl ~acc ?node_budget ?fault_budget ?max_retries ~domains
      ~scheduler t faults
  in
  let batch_count =
    match scheduler with
    | Static -> min (max 1 domains) (max 1 (List.length faults))
    | Stealing -> Array.length (site_batches ~domains:(max 1 domains) faults)
  in
  ( outcomes,
    {
      scheduler;
      domains = max 1 domains;
      batch_count;
      build_seconds = acc.acc_build;
      analysis_seconds = acc.acc_analysis;
      gc_seconds = acc.acc_gc;
      gc_collections = acc.acc_collections;
      good_functions_built = acc.acc_built;
    } )

let analyze_exact ?node_budget ?domains ?scheduler t faults =
  analyze_all ?node_budget ?domains ?scheduler t faults
  |> List.map (function
       | Exact r -> r
       | (Budget_exceeded _ | Crashed _) as o ->
         failwith
           ("Engine.analyze_exact: degraded fault: "
           ^ outcome_to_string t.base o))
