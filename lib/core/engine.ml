type t = {
  base : Circuit.t;
  heuristic : Ordering.heuristic;
  lazily : bool; (* good functions built on demand (worker engines) *)
  fanouts : int array array;
  output_mark : bool array; (* net -> is a primary output *)
  cone : int list -> int array; (* reusable selective-trace walker *)
  mutable sym : Symbolic.t;
  mutable delta_scratch : Bdd.t array; (* zero outside the cone in flight *)
  (* One-entry memo: a fault's cone is walked once and shared by
     [propagate] and [pos_fed] (and both s-a-v polarities of a line,
     since the key is the site list).  Pure circuit topology, so it
     survives rebuilds and collections. *)
  mutable cone_memo : (int list * int array) option;
  mutable generation : int;
  mutable rebuild_hooks : (unit -> unit) list;
  (* GC accounting, read by the sweep statistics. *)
  mutable gc_time : float;
  mutable gc_runs : int;
  (* Reorder-rescue state.  [rescue_order] is the lazily-discovered
     sifted variable order: [None] = not yet computed, [Some None] =
     computed but no distinct order exists (sifting kept the build
     heuristic's order, or the side build failed), [Some (Some o)] =
     rescue attempts rebuild under [o].  The remaining fields are
     accounting read by the sweep statistics. *)
  mutable rescue_order : int array option option;
  mutable sift_seconds : float;
  mutable sift_before : int;
  mutable sift_after : int;
  mutable rescued : int;
  mutable retries : int; (* escalated retry attempts entered *)
  mutable preflagged : int; (* faults sent to the rescue rung first *)
  (* The currently-open scratch epoch, if any: opened by [analyze_one]
     once a fault's good functions are in place, closed when the region
     budget fills, before any [collect]/[seal], and at sweep end.
     Closing reclaims the whole region at O(survivors) cost — the cheap
     replacement for most budget-triggered collections. *)
  mutable epoch : Bdd.epoch option;
  mem_profile : bool; (* lifetime profiling follows rebuilds/workers *)
}

let create ?heuristic ?(lazily = false) ?(mem_profile = false) base =
  (* No explicit heuristic: consult the topology oracle.  When it is
     confident a structural order beats declaration order, adopt it —
     the static half of the reorder story; dynamic sifting stays the
     fallback.  The resolution is deterministic per circuit, so every
     worker and fork of a sweep lands on the same order. *)
  let heuristic =
    match heuristic with
    | Some h -> h
    | None ->
      let _, _, _, confident = Ordering.oracle base in
      if confident then Ordering.Oracle else Ordering.Natural
  in
  let sym =
    (if lazily then Symbolic.build_lazy else Symbolic.build)
      ~profile:mem_profile ~heuristic base
  in
  let n = Circuit.num_gates base in
  let fanouts = Circuit.fanouts base in
  let output_mark = Array.make n false in
  Array.iter (fun o -> output_mark.(o) <- true) base.Circuit.outputs;
  {
    base;
    heuristic;
    lazily;
    fanouts;
    output_mark;
    cone = Circuit.cone_walker base ~fanouts;
    sym;
    delta_scratch = Array.make n (Bdd.zero (Symbolic.manager sym));
    cone_memo = None;
    generation = 0;
    rebuild_hooks = [];
    gc_time = 0.0;
    gc_runs = 0;
    rescue_order = None;
    sift_seconds = 0.0;
    sift_before = 0;
    sift_after = 0;
    rescued = 0;
    retries = 0;
    preflagged = 0;
    epoch = None;
    mem_profile;
  }

let circuit t = t.base
let manager t = Symbolic.manager t.sym
let symbolic t = t.sym
let generation t = t.generation
let on_rebuild t hook = t.rebuild_hooks <- hook :: t.rebuild_hooks

(* Good function of a net; forces it on lazy instances. *)
let node t g = Symbolic.node_function t.sym g

(* Close the open epoch, if any.  Survivors above the watermark (good
   functions a lazy engine forced mid-epoch, via the registered node
   array) are tenured — renumbered — so this is a handle-invalidating
   event exactly like [collect], and the reclamation cost lands in the
   same GC account. *)
let flush_epoch t =
  match t.epoch with
  | None -> ()
  | Some e ->
    let t0 = Unix.gettimeofday () in
    Bdd.close_epoch (manager t) e;
    t.gc_time <- t.gc_time +. (Unix.gettimeofday () -. t0);
    t.epoch <- None;
    t.generation <- t.generation + 1;
    List.iter (fun hook -> hook ()) t.rebuild_hooks

let rebuild ?order t =
  (* The old manager is dropped wholesale; any open epoch dies with it. *)
  t.epoch <- None;
  let sym =
    (if t.lazily then Symbolic.build_lazy else Symbolic.build)
      ~profile:t.mem_profile ~heuristic:t.heuristic ?order t.base
  in
  t.sym <- sym;
  (* Old handles are meaningless in the fresh manager. *)
  Array.fill t.delta_scratch 0
    (Array.length t.delta_scratch)
    (Bdd.zero (Symbolic.manager sym));
  t.generation <- t.generation + 1;
  List.iter (fun hook -> hook ()) t.rebuild_hooks

let collect t =
  flush_epoch t;
  let t0 = Unix.gettimeofday () in
  (* The good-function array is registered with the manager by
     [Symbolic]; the delta scratch rides along as extra roots (all zero
     between faults, but cheap insurance).  Handles are renumbered, so
     externally this is a generation change exactly like [rebuild]. *)
  Bdd.collect ~roots:[ t.delta_scratch ] (manager t);
  t.gc_time <- t.gc_time +. (Unix.gettimeofday () -. t0);
  t.gc_runs <- t.gc_runs + 1;
  t.generation <- t.generation + 1;
  List.iter (fun hook -> hook ()) t.rebuild_hooks

(* ------------------------------------------------------------------ *)
(* Snapshot lifecycle: build good functions once, share them read-only
   across worker domains.  [seal] forces every net and freezes the
   arena; [fork] clones the engine around a [Bdd.fork] — shared frozen
   snapshot, private scratch arena, private cone walker (the walker
   closes over mutable visit stamps and must never cross domains). *)

let seal t =
  flush_epoch t;
  Symbolic.seal t.sym;
  (* [Bdd.seal] ran a collect, so scratch handles were renumbered before
     freezing — externally this is a generation change exactly like
     [collect].  (The delta scratch is all-zero between faults and the
     zero terminal is pinned, so it needs no remapping.) *)
  t.generation <- t.generation + 1;
  List.iter (fun hook -> hook ()) t.rebuild_hooks

let sealed t = Bdd.is_sealed (Symbolic.manager t.sym)
let unseal t = Bdd.unseal (Symbolic.manager t.sym)

let fork t =
  let sym = Symbolic.fork t.sym in
  {
    base = t.base;
    heuristic = t.heuristic;
    lazily = t.lazily;
    fanouts = t.fanouts;
    output_mark = t.output_mark;
    cone = Circuit.cone_walker t.base ~fanouts:t.fanouts;
    sym;
    delta_scratch =
      Array.make (Circuit.num_gates t.base) (Bdd.zero (Symbolic.manager sym));
    cone_memo = None;
    generation = 0;
    rebuild_hooks = [];
    gc_time = 0.0;
    gc_runs = 0;
    (* The sifted order is a function of the circuit and heuristic
       alone, so the parent's cache is valid here and saves the fork a
       side build. *)
    rescue_order = t.rescue_order;
    sift_seconds = 0.0;
    sift_before = 0;
    sift_after = 0;
    rescued = 0;
    retries = 0;
    preflagged = 0;
    epoch = None;
    mem_profile = t.mem_profile;
  }

let cone_of_sites t sites =
  match t.cone_memo with
  | Some (s, cone) when s = sites -> cone
  | _ ->
    let cone = t.cone sites in
    t.cone_memo <- Some (sites, cone);
    cone

(* Build everything a fault's analysis will read — the sites' good
   functions and those of every cone gate's fanins — so that on a lazy
   engine the elaboration happens here, *outside* any per-fault budget
   window, mirroring the eager engine's cost accounting.  Exceptions are
   swallowed: a malformed fault must crash inside the protected analysis
   (where it is contained), not here. *)
let prepare t fault =
  match Fault.sites fault with
  | exception _ -> ()
  | sites -> (
    try
      List.iter (Symbolic.force t.sym) sites;
      Array.iter
        (fun g ->
          Array.iter (Symbolic.force t.sym)
            t.base.Circuit.gates.(g).Circuit.fanins)
        (cone_of_sites t sites)
    with _ -> ())

(* Initial difference functions at the fault sites: (net, delta) pairs. *)
let initial_deltas t fault =
  let m = manager t in
  let f net = node t net in
  let against_constant good value =
    if value then Bdd.bnot m good else good
  in
  match fault with
  | Fault.Stuck { Sa_fault.line = Sa_fault.Stem s; value } ->
    [ (s, against_constant (f s) value) ]
  | Fault.Stuck { Sa_fault.line = Sa_fault.Branch br; value } ->
    (* A branch fault changes only one pin: inject the pin difference and
       let the Table-1 rule of the sink gate turn it into the sink's
       output difference. *)
    let sink = br.Circuit.sink in
    let gate = Circuit.gate t.base sink in
    let good = Array.map (fun g -> f g) gate.Circuit.fanins in
    let delta =
      Array.mapi
        (fun pin g ->
          if pin = br.Circuit.pin then against_constant (f g) value
          else Bdd.zero m)
        gate.Circuit.fanins
    in
    [ (sink, Rules.delta m gate.Circuit.kind ~good ~delta) ]
  | Fault.Bridged { Bridge.a; b; kind } ->
    let wired =
      match kind with
      | Bridge.Wired_and -> Bdd.band m (f a) (f b)
      | Bridge.Wired_or -> Bdd.bor m (f a) (f b)
    in
    [ (a, Bdd.bxor m (f a) wired); (b, Bdd.bxor m (f b) wired) ]
  | Fault.Multi_stuck sites ->
    (* Each forced stem has the same difference it would have alone; the
       Table-1 rules are exact under simultaneous input differences, so
       propagation composes the effects correctly. *)
    List.map (fun (s, value) -> (s, against_constant (f s) value)) sites

(* Propagate differences through the fanout cone of the sites and hand
   the scratch delta array to [k].  Selective trace: the cone walker
   enumerates exactly the gates a difference can reach, already in
   topological order, so gates outside the cone are never looked at.
   The scratch is zeroed again before returning. *)
let propagate t fault k =
  let m = manager t in
  let zero = Bdd.zero m in
  let deltas = t.delta_scratch in
  let sites = initial_deltas t fault in
  let cone = cone_of_sites t (List.map fst sites) in
  (* Every scratch write happens inside the protected region (the cone
     contains the sites), so a crash or a blown BDD budget anywhere in
     the walk cannot leave stale deltas behind for the next fault. *)
  Fun.protect
    ~finally:(fun () -> Array.iter (fun g -> deltas.(g) <- zero) cone)
    (fun () ->
      List.iter (fun (net, d) -> deltas.(net) <- d) sites;
      Array.iter
        (fun g ->
          let gate = t.base.Circuit.gates.(g) in
          if (not (List.mem_assoc g sites)) && gate.Circuit.kind <> Gate.Input
          then begin
            let fanins = gate.Circuit.fanins in
            if
              Array.exists (fun f -> not (Bdd.is_zero m deltas.(f))) fanins
            then
              let good = Array.map (fun f -> node t f) fanins in
              let delta = Array.map (fun f -> deltas.(f)) fanins in
              deltas.(g) <- Rules.delta m gate.Circuit.kind ~good ~delta
          end)
        cone;
      k deltas)

let po_differences t fault =
  propagate t fault (fun deltas ->
      Array.map (fun o -> deltas.(o)) t.base.Circuit.outputs)

let test_set t fault =
  let m = manager t in
  Array.fold_left (Bdd.bor m) (Bdd.zero m) (po_differences t fault)

let test_cubes ?limit t fault = Bdd.sat_cubes (manager t) ?limit (test_set t fault)

let redundant t fault = Bdd.is_zero (manager t) (test_set t fault)

let test_vector t fault =
  match Bdd.any_sat (manager t) (test_set t fault) with
  | None -> None
  | Some literals ->
    let v = Array.make (Circuit.num_inputs t.base) false in
    List.iter (fun (pos, value) -> v.(pos) <- value) literals;
    Some v

type result = {
  fault : Fault.t;
  detectability : float;
  test_count : float;
  detectable : bool;
  pos_fed : int;
  pos_observed : int;
  upper_bound : float;
  adherence : float option;
  wired_support : int option;
  test_set_nodes : int;
  rescued_by_reorder : bool;
}

let upper_bound t fault =
  let m = manager t in
  let f net = node t net in
  match fault with
  | Fault.Stuck { Sa_fault.line; value } ->
    let stem = Sa_fault.stem_of_line line in
    let syndrome = Bdd.sat_fraction m (f stem) in
    if value then 1.0 -. syndrome else syndrome
  | Fault.Bridged { Bridge.a; b; _ } ->
    Bdd.sat_fraction m (Bdd.bxor m (f a) (f b))
  | Fault.Multi_stuck sites ->
    (* Excitation of at least one component fault. *)
    let excited =
      List.fold_left
        (fun acc (s, value) ->
          let delta = if value then Bdd.bnot m (f s) else f s in
          Bdd.bor m acc delta)
        (Bdd.zero m) sites
    in
    Bdd.sat_fraction m excited

let wired_support t fault =
  let m = manager t in
  let f net = node t net in
  match fault with
  | Fault.Stuck _ | Fault.Multi_stuck _ -> None
  | Fault.Bridged { Bridge.a; b; kind } ->
    let wired =
      match kind with
      | Bridge.Wired_and -> Bdd.band m (f a) (f b)
      | Bridge.Wired_or -> Bdd.bor m (f a) (f b)
    in
    Some (List.length (Bdd.support m wired))

let pos_fed t fault =
  let cone = cone_of_sites t (Fault.sites fault) in
  Array.fold_left
    (fun acc g -> if t.output_mark.(g) then acc + 1 else acc)
    0 cone

let analyze t fault =
  let m = manager t in
  let per_po = po_differences t fault in
  let union = Array.fold_left (Bdd.bor m) (Bdd.zero m) per_po in
  let detectability = Bdd.sat_fraction m union in
  let upper_bound = upper_bound t fault in
  {
    fault;
    detectability;
    (* |test set| = detectability * 2^n — same float product
       [Bdd.sat_count] computes, without re-walking the BDD. *)
    test_count = detectability *. Float.pow 2.0 (float_of_int (Bdd.num_vars m));
    detectable = not (Bdd.is_zero m union);
    pos_fed = pos_fed t fault;
    pos_observed =
      Array.fold_left
        (fun acc d -> if Bdd.is_zero m d then acc else acc + 1)
        0 per_po;
    upper_bound;
    adherence =
      (if upper_bound > 0.0 then Some (detectability /. upper_bound) else None);
    wired_support = wired_support t fault;
    test_set_nodes = Bdd.size m union;
    rescued_by_reorder = false;
  }

let default_node_budget = 3_000_000
let default_max_retries = 2

(* Region budget: an epoch is closed (and its scratch reclaimed
   wholesale) once it accumulates this many nodes.  Closing flushes the
   fork-local op caches, so the budget amortizes that flush across
   however many small faults fit in one region; a fault bigger than the
   budget simply gets its own epoch.  256k balances the two costs on the
   ISCAS suite: small enough to keep the peak scratch arena ~6x below
   the collect-only policy, large enough that the memo reuse lost per
   close stays in the noise. *)
let default_epoch_nodes = 262_144

type degrade_reason =
  | Over_budget of { nodes : int; budget : int }
  | Over_deadline of { deadline_ms : float }

type outcome =
  | Exact of result
  | Bounded of {
      fault : Fault.t;
      lower : float;
      upper : float;
      syndrome_bound : float;
      samples : int;
      reason : degrade_reason;
    }
  | Budget_exceeded of { fault : Fault.t; nodes : int; budget : int }
  | Deadline_exceeded of {
      fault : Fault.t;
      elapsed_ms : float;
      deadline_ms : float;
    }
  | Crashed of { fault : Fault.t; message : string }

let outcome_fault = function
  | Exact r -> r.fault
  | Bounded { fault; _ }
  | Budget_exceeded { fault; _ }
  | Deadline_exceeded { fault; _ }
  | Crashed { fault; _ } ->
    fault

let is_exact = function Exact _ -> true | _ -> false

let exact_results outcomes =
  List.filter_map (function Exact r -> Some r | _ -> None) outcomes

let degraded outcomes = List.filter (fun o -> not (is_exact o)) outcomes

let outcome_bounds = function
  | Exact r -> Some (r.detectability, r.detectability)
  | Bounded { lower; upper; syndrome_bound; _ } ->
    Some (lower, Float.min upper syndrome_bound)
  | Budget_exceeded _ | Deadline_exceeded _ | Crashed _ -> None

let degrade_reason_to_string = function
  | Over_budget { nodes; budget } ->
    Printf.sprintf "budget %d blown at %d nodes" budget nodes
  | Over_deadline { deadline_ms } ->
    Printf.sprintf "deadline %g ms" deadline_ms

let outcome_to_string c outcome =
  let fault_text fault =
    (* The fault itself may be the malformed input that crashed the
       analysis; never let diagnostics crash with it. *)
    try Fault.to_string c fault with _ -> "<unprintable fault>"
  in
  match outcome with
  | Exact r -> Printf.sprintf "%s: exact" (fault_text r.fault)
  | Bounded { fault; lower; upper; syndrome_bound; samples; reason } ->
    Printf.sprintf
      "%s: bounded detectability [%.6f, %.6f] (syndrome bound %.6f, %d \
       samples; %s)"
      (fault_text fault) lower
      (Float.min upper syndrome_bound)
      syndrome_bound samples
      (degrade_reason_to_string reason)
  | Budget_exceeded { fault; nodes; budget } ->
    Printf.sprintf "%s: BDD budget exceeded (%d nodes allocated, budget %d)"
      (fault_text fault) nodes budget
  | Deadline_exceeded { fault; elapsed_ms; deadline_ms } ->
    Printf.sprintf "%s: deadline exceeded (%.1f ms elapsed, deadline %g ms)"
      (fault_text fault) elapsed_ms deadline_ms
  | Crashed { fault; message } ->
    Printf.sprintf "%s: crashed (%s)" (fault_text fault) message

(* ------------------------------------------------------------------ *)
(* Bounded degradation                                                 *)

let wilson_interval ~z hits samples =
  if hits < 0 || samples < hits then
    invalid_arg "Engine.wilson_interval: hits outside [0, samples]";
  if samples <= 0 then (0.0, 1.0)
  else begin
    let n = float_of_int samples and h = float_of_int hits in
    let p = h /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    (* Zero hits certify nothing below zero and centre-half is only zero
       up to rounding, so pin the endpoints where the sample is one-sided
       — the interval must stay sound, not merely approximate. *)
    let lower = if hits = 0 then 0.0 else Float.max 0.0 (centre -. half) in
    let upper =
      if hits = samples then 1.0 else Float.min 1.0 (centre +. half)
    in
    (lower, upper)
  end

(* z = 5 sigma: the interval misses the true detectability with
   probability ~6e-7, so "lower <= exact <= upper" holds for every fault
   of every sweep in practice while the interval stays usefully tight
   (half-width ~5 / (2 sqrt n)). *)
let bound_z = 5.0
let default_bound_samples = 4096

(* Cap on the syndrome-bound probe: the bound itself can be the
   explosion (a bridge's [bxor] of two good functions), so it must not
   re-wedge a fault that already degraded. *)
let bound_probe_budget = 1_000_000

(* Deterministic per-fault seed: [Hashtbl.hash] is stable on these
   structural values, so the sampled interval of a fault is identical
   across runs, domains and resume points. *)
let fault_seed fault = Hashtbl.hash fault land 0x3FFFFFFF

let bounded_fallback ~samples t outcome =
  let build fault reason =
    let syndrome_bound =
      try
        Bdd.with_budget (manager t) ~budget:bound_probe_budget (fun () ->
            upper_bound t fault)
      with _ -> 1.0 (* unbounded, but still sound *)
    in
    match
      Fault_sim.sample_detections ~seed:(fault_seed fault) ~patterns:samples
        t.base fault
    with
    | exception _ -> None (* the simulator rejects this fault too *)
    | hits, applied ->
      let lower, upper = wilson_interval ~z:bound_z hits applied in
      Some
        (Bounded { fault; lower; upper; syndrome_bound; samples = applied; reason })
  in
  match outcome with
  | Exact _ | Bounded _ | Crashed _ -> outcome
  | Budget_exceeded { fault; nodes; budget } -> (
    match build fault (Over_budget { nodes; budget }) with
    | Some b -> b
    | None -> outcome)
  | Deadline_exceeded { fault; deadline_ms; _ } -> (
    (* elapsed_ms is dropped on purpose: the Bounded payload must stay
       wall-clock-free so checkpointed sweeps serialize identically. *)
    match build fault (Over_deadline { deadline_ms }) with
    | Some b -> b
    | None -> outcome)

(* ------------------------------------------------------------------ *)
(* Protected per-fault analysis                                        *)

let analyze_protected ?fault_budget ?deadline_ms t fault =
  let with_deadline k =
    match deadline_ms with
    | None -> k ()
    | Some d -> Bdd.with_deadline (manager t) ~deadline_ms:d k
  in
  let with_budget k =
    match fault_budget with
    | None -> k ()
    | Some budget -> Bdd.with_budget (manager t) ~budget k
  in
  try Exact (with_budget (fun () -> with_deadline (fun () -> analyze t fault)))
  with
  | Bdd.Budget_exceeded { nodes; budget } ->
    Budget_exceeded { fault; nodes; budget }
  | Bdd.Deadline_exceeded { elapsed_ms; deadline_ms } ->
    Deadline_exceeded { fault; elapsed_ms; deadline_ms }
  | exn -> Crashed { fault; message = Printexc.to_string exn }

(* Escalating retry: each attempt runs on a freshly rebuilt manager (a
   crash may be a symptom of arena-history effects, and a fresh arena
   makes the allocation count of the retry deterministic) with the
   per-fault budget and deadline doubled every round — 2x, 4x, ... the
   original. *)
let rec retry_outcome t fault ~fault_budget ~deadline_ms ~attempt ~max_retries
    outcome =
  match outcome with
  | Exact _ | Bounded _ -> outcome
  | (Budget_exceeded _ | Deadline_exceeded _ | Crashed _)
    when attempt < max_retries -> (
    match (try Ok (rebuild t) with exn -> Error exn) with
    | Error _ ->
      (* No fresh state to retry on; keep the more informative original. *)
      outcome
    | Ok () ->
      t.retries <- t.retries + 1;
      prepare t fault;
      let scale = 1 lsl (attempt + 1) in
      let budget = Option.map (fun b -> b * scale) fault_budget in
      let deadline =
        Option.map (fun d -> d *. float_of_int scale) deadline_ms
      in
      analyze_protected ?fault_budget:budget ?deadline_ms:deadline t fault
      |> retry_outcome t fault ~fault_budget ~deadline_ms
           ~attempt:(attempt + 1) ~max_retries)
  | Budget_exceeded _ | Deadline_exceeded _ | Crashed _ -> outcome

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)

type policy = {
  p_node_budget : int;
  p_fault_budget : int option;
  p_deadline_ms : float option;
  p_max_retries : int;
  p_reorder : bool;
  p_reorder_growth : float;
  p_bounds : bool;
  p_bound_samples : int;
  p_deterministic : bool;
  p_epochs : bool;
  p_epoch_nodes : int;
  p_hostile : Fault.t -> bool;
      (* statically predicted hostile: first failure goes straight to
         the reorder-rescue rung instead of the escalated retries *)
}

(* ------------------------------------------------------------------ *)
(* Reorder rescue: the rung between the escalated retries and the
   bounded fallback.  A fault whose difference BDD explodes under the
   build heuristic's variable order may be perfectly tame under a
   sifted one, so before giving up on exactness the engine rebuilds its
   good functions under the order Rudell sifting discovers and attempts
   the fault once more at the ladder's top budget. *)

let default_reorder_growth = 1.2

(* The rescue order is discovered once per engine, on a *side* manager,
   so the engine's own arena is never sifted in place (its handle
   numbering feeds the canonical-collect determinism argument, and a
   forked worker's frozen tier is shared read-only).  The side build and
   sift are deterministic — same circuit, same heuristic, same growth
   cap — so every worker of a sweep lands on the same order and rescued
   outcomes stay bit-identical across schedulers, domain counts and
   resume points. *)
let rescue_order t ~growth =
  match t.rescue_order with
  | Some cached -> cached
  | None ->
    let t0 = Unix.gettimeofday () in
    let cached =
      match
        let side = Symbolic.build ~heuristic:t.heuristic t.base in
        let m = Symbolic.manager side in
        let base_order = Bdd.current_order m in
        let before, after = Bdd.sift ~max_growth:growth m in
        (base_order, Bdd.current_order m, before, after)
      with
      | exception _ -> None (* even the side build blew up: no rescue *)
      | base_order, sifted, before, after ->
        t.sift_before <- before;
        t.sift_after <- after;
        if sifted = base_order then None else Some sifted
    in
    t.sift_seconds <- t.sift_seconds +. (Unix.gettimeofday () -. t0);
    t.rescue_order <- Some cached;
    cached

(* One rescue attempt: rebuild under the sifted order, analyse at the
   same top-of-ladder budget scale the final retry used, and — success
   or failure — rebuild back under the base order, so the faults that
   follow see an arena independent of whether this rescue ran (the
   bit-identity and kill-and-resume guarantees survive the new rung).
   A rescued result is plain scalars, so it survives both rebuilds. *)
let rescue_outcome ~policy t fault outcome =
  match outcome with
  | Exact _ | Bounded _ -> outcome
  | Budget_exceeded _ | Deadline_exceeded _ | Crashed _ -> (
    match rescue_order t ~growth:policy.p_reorder_growth with
    | None -> outcome
    | Some order ->
      let attempt =
        match (try Ok (rebuild ~order t) with exn -> Error exn) with
        | Error _ -> outcome
        | Ok () -> (
          prepare t fault;
          let scale = 1 lsl policy.p_max_retries in
          let budget = Option.map (fun b -> b * scale) policy.p_fault_budget in
          let deadline =
            Option.map (fun d -> d *. float_of_int scale) policy.p_deadline_ms
          in
          match
            analyze_protected ?fault_budget:budget ?deadline_ms:deadline t
              fault
          with
          | Exact r ->
            t.rescued <- t.rescued + 1;
            Exact { r with rescued_by_reorder = true }
          | Bounded _ | Budget_exceeded _ | Deadline_exceeded _ | Crashed _ ->
            (* Keep the original failure: its payload names the budget
               of the heuristic-order ladder, which is what reports and
               journals describe. *)
            outcome)
      in
      (try rebuild t with _ -> ());
      attempt)

type journal = {
  skip : int -> outcome option;
  record : int -> outcome -> unit;
}

let force_all t =
  if t.lazily then
    for g = 0 to Circuit.num_gates t.base - 1 do
      Symbolic.force t.sym g
    done

let analyze_one ~policy t fault =
  (if policy.p_deterministic then begin
     match t.epoch with
     | Some _ ->
       (* The canonical arena was established when this epoch opened
          (see below), nothing below the watermark has moved since, and
          the registered roots reach nothing above it (good functions
          are all built, the delta scratch is zeroed between faults) —
          so closing the epoch restores that canonical arena exactly,
          at O(region) cost instead of an O(live + dead) collection. *)
       flush_epoch t
     | None ->
       (* Canonical arena: with every good function built (in gate order
          — eagerly and via [force_all] the construction sequence is the
          same) and everything else collected away, the ascending-order
          compaction yields one arena — node numbering, unique-table
          layout, empty op caches — whatever faults ran before on
          whichever engine.  Budget classification, and hence the whole
          outcome, is then reproducible across schedulers, domain counts
          and resume points.  (Deadline classification is wall-clock and
          stays nondeterministic by nature.) *)
       force_all t;
       collect t
   end
   else if
     (* Reclaim garbage in place instead of throwing the arena away: the
        good functions (and their memoised statistics) survive, only the
        dead intermediate results of earlier faults go.  Scratch nodes
        are what a collection can reclaim — a frozen snapshot is
        immortal and must not count against the trigger, or every fault
        on a forked worker would collect.  ([collect] closes the open
        epoch first.) *)
     Bdd.scratch_nodes (manager t) > policy.p_node_budget
   then collect t
   else if
     match t.epoch with
     | Some _ -> Bdd.epoch_nodes (manager t) > policy.p_epoch_nodes
     | None -> false
   then flush_epoch t);
  prepare t fault;
  (* Open the region *after* [prepare], so lazily-forced good functions
     sit below the watermark (a cone forced later, mid-epoch, is still
     safe: the registered node array tenures it at close).  Sealed
     managers cannot allocate, so there is nothing to reclaim on them. *)
  if policy.p_epochs && t.epoch = None && not (Bdd.is_sealed (manager t))
  then t.epoch <- Some (Bdd.open_epoch (manager t));
  let first =
    analyze_protected ?fault_budget:policy.p_fault_budget
      ?deadline_ms:policy.p_deadline_ms t fault
  in
  (* Pre-flagged faults skip the intermediate escalations: topology
     predicted even the doubled budgets cannot hold their scratch, so
     their first failure jumps straight to the ladder's top rung — one
     retry at the 2^max_retries scale, the reorder rescue's doorstep —
     instead of burning every rung on the way up.  Outcomes are
     bit-identical to the full ladder's even when the prediction is
     wrong: each retry runs on a fresh deterministic rebuild under the
     same order, so a success yields the same [Exact] payload at any
     scale, budget classification is monotone in the scale, and a
     top-rung failure carries the same payload the full ladder's final
     rung would have recorded. *)
  let outcome =
    match first with
    | Exact _ | Bounded _ -> first
    | Budget_exceeded _ | Deadline_exceeded _ | Crashed _ ->
      let attempt =
        if policy.p_max_retries > 0 && policy.p_hostile fault then begin
          t.preflagged <- t.preflagged + 1;
          policy.p_max_retries - 1
        end
        else 0
      in
      retry_outcome t fault ~fault_budget:policy.p_fault_budget
        ~deadline_ms:policy.p_deadline_ms ~attempt
        ~max_retries:policy.p_max_retries first
  in
  let outcome =
    if policy.p_reorder then rescue_outcome ~policy t fault outcome
    else outcome
  in
  if policy.p_bounds then
    bounded_fallback ~samples:policy.p_bound_samples t outcome
  else outcome

(* Indexed sweep bodies: every fault travels with its input-list index,
   so completions can be journaled ([record]) the moment they exist and
   the final merge restores input order whatever the schedule was. *)
let analyze_indexed_seq ~policy ~record t pairs =
  List.map
    (fun (i, fault) ->
      let o = analyze_one ~policy t fault in
      record i o;
      (i, o))
    pairs

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)

type scheduler = Static | Stealing | Snapshot

let scheduler_to_string = function
  | Static -> "static"
  | Stealing -> "stealing"
  | Snapshot -> "snapshot"

type sweep_stats = {
  scheduler : scheduler;
  domains : int;
  hardware_domains : int;
  batch_count : int;
  build_seconds : float;
  snapshot_seconds : float;
  analysis_wall_seconds : float;
  analysis_cpu_seconds : float;
  gc_seconds : float;
  gc_collections : int;
  good_functions_built : int;
  scratch_peak_nodes : int;
  apply_steps : int;
  nodes_allocated : int;
  rescued_faults : int;
  retry_attempts : int;
  preflagged_faults : int;
  sift_seconds : float;
  sift_nodes_before : int;
  sift_nodes_after : int;
  epoch_resets : int;
  tenured_nodes : int;
  warm_cache_hits : int;
}

(* Cross-domain accumulator for the per-stage timings; workers report
   under the lock when they finish a unit of work. *)
type stats_acc = {
  lock : Mutex.t;
  mutable acc_build : float;
  mutable acc_snapshot : float;
  mutable acc_wall : float;
  mutable acc_analysis : float;
  mutable acc_gc : float;
  mutable acc_collections : int;
  mutable acc_built : int;
  mutable acc_batches : int;
  mutable acc_scratch_peak : int;
  mutable acc_steps : int;
  mutable acc_allocs : int;
  mutable acc_rescued : int;
  mutable acc_retries : int;
  mutable acc_preflagged : int;
  mutable acc_sift : float;
  (* The sifted arena sizes are per-manager facts, identical across
     workers of one sweep, so max (not sum) keeps them interpretable. *)
  mutable acc_sift_before : int;
  mutable acc_sift_after : int;
  mutable acc_epochs : int;
  mutable acc_tenured : int;
  mutable acc_warm : int;
}

let fresh_acc () =
  {
    lock = Mutex.create ();
    acc_build = 0.0;
    acc_snapshot = 0.0;
    acc_wall = 0.0;
    acc_analysis = 0.0;
    acc_gc = 0.0;
    acc_collections = 0;
    acc_built = 0;
    acc_batches = 0;
    acc_scratch_peak = 0;
    acc_steps = 0;
    acc_allocs = 0;
    acc_rescued = 0;
    acc_retries = 0;
    acc_preflagged = 0;
    acc_sift = 0.0;
    acc_sift_before = 0;
    acc_sift_after = 0;
    acc_epochs = 0;
    acc_tenured = 0;
    acc_warm = 0;
  }

let with_acc acc f =
  match acc with
  | None -> ()
  | Some a ->
    Mutex.lock a.lock;
    (match f a with
    | () -> Mutex.unlock a.lock
    | exception exn ->
      Mutex.unlock a.lock;
      raise exn)

(* Group faults sharing a site list (both polarities of a line, both
   bridge orientations of a pair), in first-appearance order — fault
   enumeration follows gate order, so this preserves the cone locality
   (and cache evolution) of the sequential sweep. *)
let site_groups indexed =
  let tbl = Hashtbl.create 97 in
  List.iter
    (fun (i, fault) ->
      let key = Fault.sites fault in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key ((i, fault) :: prev))
    indexed;
  let groups =
    Hashtbl.fold (fun key members acc -> (key, List.rev members) :: acc) tbl []
  in
  (* Deterministic: sort by the index of each group's first member. *)
  List.sort
    (fun (_, a) (_, b) -> compare (fst (List.hd a)) (fst (List.hd b)))
    groups

(* Pack whole site groups into batches sized for roughly [domains * 8]
   steals. *)
let site_batches ~domains indexed =
  let groups = site_groups indexed in
  let n = List.length indexed in
  let target = max 1 (n / (max 1 domains * 8)) in
  let batches = ref [] and cur = ref [] and cur_n = ref 0 in
  let flush () =
    if !cur <> [] then begin
      batches := Array.of_list (List.rev !cur) :: !batches;
      cur := [];
      cur_n := 0
    end
  in
  List.iter
    (fun (_, members) ->
      List.iter (fun p -> cur := p :: !cur) members;
      cur_n := !cur_n + List.length members;
      if !cur_n >= target then flush ())
    groups;
  flush ();
  Array.of_list (List.rev !batches)

(* Cone-ownership batch formation for the snapshot scheduler: site
   groups are packed by *marginal cone cost*.  A group whose fanout cone
   is already (mostly) covered by the current batch adds only its fault
   count, so faults with overlapping cones land in the same batch and
   batch size adapts to the measured overlap instead of a fixed
   faults-per-batch split — a region of heavily shared cones becomes one
   dense batch, scattered cones spread over many.  A member cap keeps at
   least ~[domains] batches so every domain gets work even when one cone
   dominates the whole circuit. *)
let cone_batches ~domains t indexed =
  let groups = site_groups indexed in
  let n = List.length indexed in
  let domains = max 1 domains in
  let stamp = Array.make (max 1 (Circuit.num_gates t.base)) (-1) in
  let cone_of sites =
    (* A malformed fault (out-of-range net) must crash inside the
       protected per-fault analysis, not during batch formation. *)
    try t.cone sites with _ -> [||]
  in
  let with_cones =
    List.map (fun (sites, members) -> (cone_of sites, members)) groups
  in
  (* Cost target per batch, from the no-overlap total: overlap discounts
     only ever pack batches denser than the target predicts. *)
  let total =
    List.fold_left
      (fun acc (cone, members) -> acc + Array.length cone + List.length members)
      0 with_cones
  in
  let target = max 8 (total / (domains * 4)) in
  let member_cap = max 1 ((n + domains - 1) / domains) in
  (* Tiny circuits: the adaptive cost target would shred the fault list
     into dozens of near-empty batches whose scheduling overhead dwarfs
     the analysis (c17: 25 batches for 76 faults at 8 domains).  When
     the whole sweep is cheap, only the member cap may flush — the list
     collapses to ~1 batch per domain. *)
  let tiny_cost = 512 in
  let member_floor = if total < domains * tiny_cost then member_cap else 1 in
  let batches = ref []
  and cur = ref []
  and cur_cost = ref 0
  and cur_members = ref 0
  and batch_id = ref 0 in
  let flush () =
    if !cur <> [] then begin
      batches := Array.of_list (List.rev !cur) :: !batches;
      cur := [];
      cur_cost := 0;
      cur_members := 0;
      incr batch_id
    end
  in
  List.iter
    (fun (cone, members) ->
      let fresh = ref 0 in
      Array.iter
        (fun g ->
          if stamp.(g) <> !batch_id then begin
            stamp.(g) <- !batch_id;
            incr fresh
          end)
        cone;
      List.iter (fun p -> cur := p :: !cur) members;
      let k = List.length members in
      cur_cost := !cur_cost + !fresh + k;
      cur_members := !cur_members + k;
      if
        (!cur_cost >= target && !cur_members >= member_floor)
        || !cur_members >= member_cap
      then flush ())
    with_cones;
  flush ();
  Array.of_list (List.rev !batches)

let now = Unix.gettimeofday

let analyze_stealing ?acc ~policy ~record ~domains t indexed =
  let batches = site_batches ~domains indexed in
  let domains = min domains (max 1 (Array.length batches)) in
  let workers = ref [] in
  let init () =
    let worker, base_counts =
      if domains = 1 then begin
        (* Steal on the calling engine, exactly like the static
           sequential path: no worker build, no spawn — only the batch
           order differs (and the merge restores it).  The engine may
           have a history, so its work counters are read as deltas. *)
        let m = Symbolic.manager t.sym in
        ( t,
          ( Bdd.apply_steps m,
            Bdd.nodes_allocated m,
            Bdd.epoch_resets m,
            Bdd.tenured_nodes m,
            Bdd.warm_cache_hits m ) )
      end
      else begin
        let t0 = now () in
        (* Deterministic sweeps build every good function anyway (the
           canonical collect), so laziness would only add noise. *)
        let w =
          create ~heuristic:t.heuristic ~lazily:(not policy.p_deterministic)
            ~mem_profile:t.mem_profile t.base
        in
        with_acc acc (fun a -> a.acc_build <- a.acc_build +. (now () -. t0));
        (w, (0, 0, 0, 0, 0))
      end
    in
    with_acc acc (fun _acc -> workers := (worker, base_counts) :: !workers);
    worker
  in
  let process worker batch =
    let t0 = now () in
    let gc0 = worker.gc_time and n0 = worker.gc_runs in
    let r0 = worker.rescued and s0 = worker.sift_seconds in
    let y0 = worker.retries and h0 = worker.preflagged in
    let out =
      Array.map
        (fun (i, fault) ->
          let o = analyze_one ~policy worker fault in
          record i o;
          (i, o))
        batch
    in
    let gc = worker.gc_time -. gc0 in
    with_acc acc (fun a ->
        a.acc_analysis <- a.acc_analysis +. (now () -. t0) -. gc;
        a.acc_gc <- a.acc_gc +. gc;
        a.acc_collections <- a.acc_collections + (worker.gc_runs - n0);
        a.acc_rescued <- a.acc_rescued + (worker.rescued - r0);
        a.acc_retries <- a.acc_retries + (worker.retries - y0);
        a.acc_preflagged <- a.acc_preflagged + (worker.preflagged - h0);
        a.acc_sift <- a.acc_sift +. (worker.sift_seconds -. s0);
        a.acc_sift_before <- max a.acc_sift_before worker.sift_before;
        a.acc_sift_after <- max a.acc_sift_after worker.sift_after);
    out
  in
  (* Per-batch watchdog, derived from the per-fault deadline: room for
     the whole escalation ladder (1 + 2 + ... <= 2^(retries+1) times the
     base deadline) on every fault, doubled again for GC/build/bounds
     overhead, plus a constant floor.  The watchdog is for wedges, not
     pacing — a healthy overrun merely gets duplicated, and the CAS
     publish keeps the first result. *)
  let batch_deadline =
    match policy.p_deadline_ms with
    | None -> None
    | Some d ->
      let per_fault =
        d /. 1000.0 *. float_of_int (4 lsl policy.p_max_retries)
      in
      Some
        (fun (batch : (int * Fault.t) array) ->
          1.0 +. (per_fault *. float_of_int (Array.length batch)))
  in
  let wall0 = now () in
  let results =
    Parallel.steal_batches_supervised ~domains ?batch_deadline ~init ~process
      batches
  in
  (* Workers have joined; close any epoch left open at sweep end.  The
     domains = 1 worker is the calling engine itself, which outlives the
     sweep — its epoch must not leak into a later [seal]/[collect]. *)
  with_acc acc (fun a ->
      List.iter
        (fun (w, _) ->
          let gc0 = w.gc_time in
          flush_epoch w;
          a.acc_gc <- a.acc_gc +. (w.gc_time -. gc0))
        !workers);
  flush_epoch t;
  with_acc acc (fun a ->
      a.acc_wall <- a.acc_wall +. (now () -. wall0);
      a.acc_batches <- a.acc_batches + Array.length batches;
      List.iter
        (fun (w, (steps0, allocs0, epochs0, tenured0, warm0)) ->
          let m = Symbolic.manager w.sym in
          a.acc_built <- a.acc_built + Symbolic.built_count w.sym;
          a.acc_scratch_peak <- max a.acc_scratch_peak (Bdd.scratch_peak m);
          a.acc_steps <- a.acc_steps + (Bdd.apply_steps m - steps0);
          a.acc_allocs <- a.acc_allocs + (Bdd.nodes_allocated m - allocs0);
          a.acc_epochs <- a.acc_epochs + (Bdd.epoch_resets m - epochs0);
          a.acc_tenured <- a.acc_tenured + (Bdd.tenured_nodes m - tenured0);
          a.acc_warm <- a.acc_warm + (Bdd.warm_cache_hits m - warm0))
        !workers);
  (* A batch contained as [Error] (its worker died outside the per-fault
     isolation) is requeued on a fresh engine, mirroring the static
     path's shard supervision. *)
  let requeue exn batch =
    match create ~heuristic:t.heuristic t.base with
    | worker ->
      Array.map
        (fun (i, fault) ->
          let o = analyze_one ~policy worker fault in
          record i o;
          (i, o))
        batch
    | exception _ ->
      let message = Printexc.to_string exn in
      Array.map
        (fun (i, fault) ->
          let o = Crashed { fault; message } in
          record i o;
          (i, o))
        batch
  in
  Array.to_list
    (Array.concat
       (Array.to_list
          (Array.mapi
             (fun b res ->
               match res with
               | Ok out -> out
               | Error exn -> requeue exn batches.(b))
             results)))

(* Shared-snapshot sweep: good functions are built *once*, on the
   calling engine, and frozen ([seal]); every worker — the calling
   domain included — is a [fork] over the snapshot with a private
   scratch arena.  No worker ever re-elaborates a cone, so
   [good_functions_built] is the circuit's gate count whatever the
   domain count, and the only per-domain memory is apply intermediates.
   Batches come from [cone_batches]; workers drain them through the
   supervised stealing queue. *)
let analyze_snapshot ?acc ~policy ~record ~domains t indexed =
  let m = Symbolic.manager t.sym in
  let steps0 = Bdd.apply_steps m and allocs0 = Bdd.nodes_allocated m in
  let t0 = now () in
  let was_sealed = sealed t in
  if not was_sealed then seal t;
  with_acc acc (fun a -> a.acc_snapshot <- a.acc_snapshot +. (now () -. t0));
  Fun.protect
    ~finally:(fun () ->
      (* Leave the engine as we found it: callers keep using it for
         sequential work after the sweep. *)
      if not was_sealed then unseal t)
    (fun () ->
      let batches = cone_batches ~domains t indexed in
      let domains = min domains (max 1 (Array.length batches)) in
      let workers = ref [] in
      let init () =
        let t1 = now () in
        let w = fork t in
        with_acc acc (fun a ->
            a.acc_build <- a.acc_build +. (now () -. t1);
            workers := w :: !workers);
        w
      in
      let process worker batch =
        let t2 = now () in
        let gc0 = worker.gc_time and n0 = worker.gc_runs in
        let r0 = worker.rescued and s0 = worker.sift_seconds in
        let y0 = worker.retries and h0 = worker.preflagged in
        let out =
          Array.map
            (fun (i, fault) ->
              let o = analyze_one ~policy worker fault in
              record i o;
              (i, o))
            batch
        in
        let gc = worker.gc_time -. gc0 in
        with_acc acc (fun a ->
            a.acc_analysis <- a.acc_analysis +. (now () -. t2) -. gc;
            a.acc_gc <- a.acc_gc +. gc;
            a.acc_collections <- a.acc_collections + (worker.gc_runs - n0);
            a.acc_rescued <- a.acc_rescued + (worker.rescued - r0);
            a.acc_retries <- a.acc_retries + (worker.retries - y0);
            a.acc_preflagged <- a.acc_preflagged + (worker.preflagged - h0);
            a.acc_sift <- a.acc_sift +. (worker.sift_seconds -. s0);
            a.acc_sift_before <- max a.acc_sift_before worker.sift_before;
            a.acc_sift_after <- max a.acc_sift_after worker.sift_after);
        out
      in
      let batch_deadline =
        match policy.p_deadline_ms with
        | None -> None
        | Some d ->
          let per_fault =
            d /. 1000.0 *. float_of_int (4 lsl policy.p_max_retries)
          in
          Some
            (fun (batch : (int * Fault.t) array) ->
              1.0 +. (per_fault *. float_of_int (Array.length batch)))
      in
      let wall0 = now () in
      let results =
        Parallel.steal_batches_supervised ~domains ?batch_deadline ~init
          ~process batches
      in
      with_acc acc (fun a ->
          a.acc_wall <- a.acc_wall +. (now () -. wall0);
          a.acc_batches <- a.acc_batches + Array.length batches;
          (* Built once, on the shared snapshot — not per worker. *)
          a.acc_built <- a.acc_built + Symbolic.built_count t.sym;
          a.acc_steps <- a.acc_steps + (Bdd.apply_steps m - steps0);
          a.acc_allocs <- a.acc_allocs + (Bdd.nodes_allocated m - allocs0);
          List.iter
            (fun w ->
              (* Forks die with the sweep, but the final region close
                 belongs in the reset/GC accounts.  Per-batch GC was
                 already accumulated in [process]; only the flush's own
                 delta is new. *)
              let gc0 = w.gc_time in
              flush_epoch w;
              let wm = Symbolic.manager w.sym in
              a.acc_scratch_peak <-
                max a.acc_scratch_peak (Bdd.scratch_peak wm);
              a.acc_steps <- a.acc_steps + Bdd.apply_steps wm;
              a.acc_allocs <- a.acc_allocs + Bdd.nodes_allocated wm;
              a.acc_gc <- a.acc_gc +. (w.gc_time -. gc0);
              a.acc_epochs <- a.acc_epochs + Bdd.epoch_resets wm;
              a.acc_tenured <- a.acc_tenured + Bdd.tenured_nodes wm;
              a.acc_warm <- a.acc_warm + Bdd.warm_cache_hits wm)
            !workers);
      (* A batch contained as [Error] is requeued on a fresh fork — the
         snapshot is still sealed here, so forking stays valid. *)
      let requeue exn batch =
        match fork t with
        | worker ->
          Array.map
            (fun (i, fault) ->
              let o = analyze_one ~policy worker fault in
              record i o;
              (i, o))
            batch
        | exception _ ->
          let message = Printexc.to_string exn in
          Array.map
            (fun (i, fault) ->
              let o = Crashed { fault; message } in
              record i o;
              (i, o))
            batch
      in
      Array.to_list
        (Array.concat
           (Array.to_list
              (Array.mapi
                 (fun b res ->
                   match res with
                   | Ok out -> out
                   | Error exn -> requeue exn batches.(b))
                 results))))

let analyze_static ?acc ~policy ~record ~domains t indexed =
  if domains <= 1 then begin
    let m = Symbolic.manager t.sym in
    let t0 = now () in
    let gc0 = t.gc_time and n0 = t.gc_runs in
    let r0 = t.rescued and s0 = t.sift_seconds in
    let y0 = t.retries and h0 = t.preflagged in
    let steps0 = Bdd.apply_steps m and allocs0 = Bdd.nodes_allocated m in
    let epochs0 = Bdd.epoch_resets m
    and tenured0 = Bdd.tenured_nodes m
    and warm0 = Bdd.warm_cache_hits m in
    let outcomes = analyze_indexed_seq ~policy ~record t indexed in
    (* The engine outlives the sweep: close the trailing epoch (counted
       with the sweep's GC) before reading the deltas. *)
    flush_epoch t;
    let gc = t.gc_time -. gc0 in
    with_acc acc (fun a ->
        a.acc_analysis <- a.acc_analysis +. (now () -. t0) -. gc;
        a.acc_wall <- a.acc_wall +. (now () -. t0);
        a.acc_gc <- a.acc_gc +. gc;
        a.acc_collections <- a.acc_collections + (t.gc_runs - n0);
        a.acc_built <- a.acc_built + Symbolic.built_count t.sym;
        a.acc_batches <- a.acc_batches + 1;
        a.acc_scratch_peak <- max a.acc_scratch_peak (Bdd.scratch_peak m);
        a.acc_steps <- a.acc_steps + (Bdd.apply_steps m - steps0);
        a.acc_allocs <- a.acc_allocs + (Bdd.nodes_allocated m - allocs0);
        a.acc_rescued <- a.acc_rescued + (t.rescued - r0);
        a.acc_retries <- a.acc_retries + (t.retries - y0);
        a.acc_preflagged <- a.acc_preflagged + (t.preflagged - h0);
        a.acc_sift <- a.acc_sift +. (t.sift_seconds -. s0);
        a.acc_sift_before <- max a.acc_sift_before t.sift_before;
        a.acc_sift_after <- max a.acc_sift_after t.sift_after;
        a.acc_epochs <- a.acc_epochs + (Bdd.epoch_resets m - epochs0);
        a.acc_tenured <- a.acc_tenured + (Bdd.tenured_nodes m - tenured0);
        a.acc_warm <- a.acc_warm + (Bdd.warm_cache_hits m - warm0));
    outcomes
  end
  else
    (* The hash-consing arena is single-threaded mutable state, so every
       worker domain builds its own Symbolic/Bdd manager and analyses
       its contiguous shard with an independent node budget.  Outcomes
       are plain scalars (no BDD handles), and ROBDDs are canonical
       under a fixed variable order, so the merged list is bit-identical
       to a sequential run.  Workers are supervised: a shard that dies
       before producing outcomes (its engine failed to build) is
       requeued through the sequential retry path, and surviving shards
       keep their results. *)
    let wall0 = now () in
    let shards =
      Parallel.map_chunked_outcomes ~domains
        (fun shard ->
          let t0 = now () in
          let worker =
            create ~heuristic:t.heuristic ~mem_profile:t.mem_profile t.base
          in
          let t1 = now () in
          let outcomes = analyze_indexed_seq ~policy ~record worker shard in
          flush_epoch worker;
          let m = Symbolic.manager worker.sym in
          with_acc acc (fun a ->
              a.acc_build <- a.acc_build +. (t1 -. t0);
              a.acc_analysis <-
                a.acc_analysis +. (now () -. t1) -. worker.gc_time;
              a.acc_gc <- a.acc_gc +. worker.gc_time;
              a.acc_collections <- a.acc_collections + worker.gc_runs;
              a.acc_built <- a.acc_built + Symbolic.built_count worker.sym;
              a.acc_scratch_peak <- max a.acc_scratch_peak (Bdd.scratch_peak m);
              (* Counted from zero: the worker's build is part of the
                 shard's work — that re-elaboration is exactly what the
                 metric should expose. *)
              a.acc_steps <- a.acc_steps + Bdd.apply_steps m;
              a.acc_allocs <- a.acc_allocs + Bdd.nodes_allocated m;
              a.acc_rescued <- a.acc_rescued + worker.rescued;
              a.acc_retries <- a.acc_retries + worker.retries;
              a.acc_preflagged <- a.acc_preflagged + worker.preflagged;
              a.acc_sift <- a.acc_sift +. worker.sift_seconds;
              a.acc_sift_before <- max a.acc_sift_before worker.sift_before;
              a.acc_sift_after <- max a.acc_sift_after worker.sift_after;
              a.acc_epochs <- a.acc_epochs + Bdd.epoch_resets m;
              a.acc_tenured <- a.acc_tenured + Bdd.tenured_nodes m;
              a.acc_warm <- a.acc_warm + Bdd.warm_cache_hits m);
          outcomes)
        indexed
    in
    with_acc acc (fun a ->
        a.acc_wall <- a.acc_wall +. (now () -. wall0);
        a.acc_batches <- a.acc_batches + List.length shards);
    shards
    |> List.concat_map (fun (shard, res) ->
           match res with
           | Ok outcomes -> outcomes
           | Error exn -> (
             match create ~heuristic:t.heuristic t.base with
             | worker -> analyze_indexed_seq ~policy ~record worker shard
             | exception _ ->
               let message = Printexc.to_string exn in
               List.map
                 (fun (i, fault) ->
                   let o = Crashed { fault; message } in
                   record i o;
                   (i, o))
                 shard))

let analyze_all_impl ?acc ?(node_budget = default_node_budget) ?fault_budget
    ?deadline_ms ?(max_retries = default_max_retries) ?(reorder = true)
    ?(reorder_growth = default_reorder_growth) ?hostile ?(bounds = true)
    ?(bound_samples = default_bound_samples) ?(deterministic = false)
    ?(epochs = true) ?(epoch_nodes = default_epoch_nodes) ?journal
    ?on_outcome ?(domains = 1) ?(scheduler = Static) t faults =
  if reorder_growth < 1.0 then
    invalid_arg "Engine.analyze_all: reorder_growth must be >= 1.0";
  let domains = max 1 domains in
  let policy =
    {
      p_node_budget = node_budget;
      p_fault_budget = fault_budget;
      p_deadline_ms = deadline_ms;
      p_max_retries = max_retries;
      (* The rescue rung only matters when exactness can fail: with no
         per-fault budget or deadline nothing ever degrades, and the
         rung must not cost the common sweep a side build. *)
      p_reorder = reorder && (fault_budget <> None || deadline_ms <> None);
      p_reorder_growth = reorder_growth;
      p_bounds = bounds;
      p_bound_samples = bound_samples;
      p_deterministic = deterministic;
      p_epochs = epochs;
      p_epoch_nodes = epoch_nodes;
      p_hostile = (match hostile with Some p -> p | None -> fun _ -> false);
    }
  in
  let n = List.length faults in
  if n = 0 then []
  else begin
    let indexed = List.mapi (fun i f -> (i, f)) faults in
    (* Resume: already-journaled faults are never re-analysed — their
       outcomes merge back verbatim, so a resumed sweep matches the
       uninterrupted one bit for bit (in deterministic mode). *)
    let skipped, todo =
      match journal with
      | None -> ([], indexed)
      | Some j ->
        List.partition_map
          (fun (i, f) ->
            match j.skip i with
            | Some o -> Either.Left (i, o)
            | None -> Either.Right (i, f))
          indexed
    in
    (* Completion subscribers: the journal's [record] (durability) and
       [on_outcome] (live streaming — the [dpa serve] fan-out) both see
       every computed outcome the moment it exists, from whichever
       domain produced it.  Journal first: an outcome must be durable
       before any subscriber can observe it, or a crash between the two
       could re-serve a streamed result the journal never saw. *)
    let record =
      match (journal, on_outcome) with
      | None, None -> fun _ _ -> ()
      | Some j, None -> j.record
      | None, Some f -> f
      | Some j, Some f ->
        fun i o ->
          j.record i o;
          f i o
    in
    let computed =
      match (scheduler, todo) with
      | _, [] -> []
      | Static, _ -> analyze_static ?acc ~policy ~record ~domains t todo
      | Stealing, _ -> analyze_stealing ?acc ~policy ~record ~domains t todo
      | Snapshot, _ -> analyze_snapshot ?acc ~policy ~record ~domains t todo
    in
    let merged = Array.make n None in
    List.iter (fun (i, o) -> merged.(i) <- Some o) skipped;
    List.iter (fun (i, o) -> merged.(i) <- Some o) computed;
    Array.to_list merged
    |> List.map (function
         | Some o -> o
         | None -> invalid_arg "Engine.analyze_all: lost outcome")
  end

let analyze_all ?node_budget ?fault_budget ?deadline_ms ?max_retries ?reorder
    ?reorder_growth ?hostile ?bounds ?bound_samples ?deterministic ?epochs
    ?epoch_nodes ?journal ?on_outcome ?domains ?scheduler t faults =
  analyze_all_impl ?node_budget ?fault_budget ?deadline_ms ?max_retries
    ?reorder ?reorder_growth ?hostile ?bounds ?bound_samples ?deterministic
    ?epochs ?epoch_nodes ?journal ?on_outcome ?domains ?scheduler t faults

let analyze_all_stats ?node_budget ?fault_budget ?deadline_ms ?max_retries
    ?reorder ?reorder_growth ?hostile ?bounds ?bound_samples ?deterministic
    ?epochs ?epoch_nodes ?journal ?on_outcome ?(domains = 1)
    ?(scheduler = Static) t faults =
  let acc = fresh_acc () in
  let outcomes =
    analyze_all_impl ~acc ?node_budget ?fault_budget ?deadline_ms ?max_retries
      ?reorder ?reorder_growth ?hostile ?bounds ?bound_samples ?deterministic
      ?epochs ?epoch_nodes ?journal ?on_outcome ~domains ~scheduler t faults
  in
  ( outcomes,
    {
      scheduler;
      domains = max 1 domains;
      hardware_domains = Parallel.available_domains ();
      batch_count = acc.acc_batches;
      build_seconds = acc.acc_build;
      snapshot_seconds = acc.acc_snapshot;
      analysis_wall_seconds = acc.acc_wall;
      analysis_cpu_seconds = acc.acc_analysis;
      gc_seconds = acc.acc_gc;
      gc_collections = acc.acc_collections;
      good_functions_built = acc.acc_built;
      scratch_peak_nodes = acc.acc_scratch_peak;
      apply_steps = acc.acc_steps;
      nodes_allocated = acc.acc_allocs;
      rescued_faults = acc.acc_rescued;
      retry_attempts = acc.acc_retries;
      preflagged_faults = acc.acc_preflagged;
      sift_seconds = acc.acc_sift;
      sift_nodes_before = acc.acc_sift_before;
      sift_nodes_after = acc.acc_sift_after;
      epoch_resets = acc.acc_epochs;
      tenured_nodes = acc.acc_tenured;
      warm_cache_hits = acc.acc_warm;
    } )

let analyze_exact ?node_budget ?domains ?scheduler t faults =
  analyze_all ?node_budget ~bounds:false ?domains ?scheduler t faults
  |> List.map (function
       | Exact r -> r
       | (Bounded _ | Budget_exceeded _ | Deadline_exceeded _ | Crashed _) as o
         ->
         failwith
           ("Engine.analyze_exact: degraded fault: "
           ^ outcome_to_string t.base o))
