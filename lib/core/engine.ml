type t = {
  base : Circuit.t;
  heuristic : Ordering.heuristic;
  fanouts : int array array;
  output_mark : bool array; (* net -> is a primary output *)
  cone : int list -> int array; (* reusable selective-trace walker *)
  mutable sym : Symbolic.t;
  mutable good : Bdd.t array; (* cached good functions, one per net *)
  mutable delta_scratch : Bdd.t array; (* zero outside the cone in flight *)
  mutable generation : int;
  mutable rebuild_hooks : (unit -> unit) list;
}

let create ?(heuristic = Ordering.Natural) base =
  let sym = Symbolic.build ~heuristic base in
  let n = Circuit.num_gates base in
  let fanouts = Circuit.fanouts base in
  let output_mark = Array.make n false in
  Array.iter (fun o -> output_mark.(o) <- true) base.Circuit.outputs;
  {
    base;
    heuristic;
    fanouts;
    output_mark;
    cone = Circuit.cone_walker base ~fanouts;
    sym;
    good = Array.init n (Symbolic.node_function sym);
    delta_scratch = Array.make n (Bdd.zero (Symbolic.manager sym));
    generation = 0;
    rebuild_hooks = [];
  }

let circuit t = t.base
let manager t = Symbolic.manager t.sym
let symbolic t = t.sym
let generation t = t.generation
let on_rebuild t hook = t.rebuild_hooks <- hook :: t.rebuild_hooks

let rebuild t =
  let sym = Symbolic.build ~heuristic:t.heuristic t.base in
  t.sym <- sym;
  t.good <- Array.init (Circuit.num_gates t.base) (Symbolic.node_function sym);
  (* Old handles are meaningless in the fresh manager. *)
  Array.fill t.delta_scratch 0
    (Array.length t.delta_scratch)
    (Bdd.zero (Symbolic.manager sym));
  t.generation <- t.generation + 1;
  List.iter (fun hook -> hook ()) t.rebuild_hooks

(* Initial difference functions at the fault sites: (net, delta) pairs. *)
let initial_deltas t fault =
  let m = manager t in
  let f net = t.good.(net) in
  let against_constant good value =
    if value then Bdd.bnot m good else good
  in
  match fault with
  | Fault.Stuck { Sa_fault.line = Sa_fault.Stem s; value } ->
    [ (s, against_constant (f s) value) ]
  | Fault.Stuck { Sa_fault.line = Sa_fault.Branch br; value } ->
    (* A branch fault changes only one pin: inject the pin difference and
       let the Table-1 rule of the sink gate turn it into the sink's
       output difference. *)
    let sink = br.Circuit.sink in
    let gate = Circuit.gate t.base sink in
    let good = Array.map (fun g -> f g) gate.Circuit.fanins in
    let delta =
      Array.mapi
        (fun pin g ->
          if pin = br.Circuit.pin then against_constant (f g) value
          else Bdd.zero m)
        gate.Circuit.fanins
    in
    [ (sink, Rules.delta m gate.Circuit.kind ~good ~delta) ]
  | Fault.Bridged { Bridge.a; b; kind } ->
    let wired =
      match kind with
      | Bridge.Wired_and -> Bdd.band m (f a) (f b)
      | Bridge.Wired_or -> Bdd.bor m (f a) (f b)
    in
    [ (a, Bdd.bxor m (f a) wired); (b, Bdd.bxor m (f b) wired) ]
  | Fault.Multi_stuck sites ->
    (* Each forced stem has the same difference it would have alone; the
       Table-1 rules are exact under simultaneous input differences, so
       propagation composes the effects correctly. *)
    List.map (fun (s, value) -> (s, against_constant (f s) value)) sites

(* Propagate differences through the fanout cone of the sites and hand
   the scratch delta array to [k].  Selective trace: the cone walker
   enumerates exactly the gates a difference can reach, already in
   topological order, so gates outside the cone are never looked at.
   The scratch is zeroed again before returning. *)
let propagate t fault k =
  let m = manager t in
  let zero = Bdd.zero m in
  let deltas = t.delta_scratch in
  let sites = initial_deltas t fault in
  let cone = t.cone (List.map fst sites) in
  (* Every scratch write happens inside the protected region (the cone
     contains the sites), so a crash or a blown BDD budget anywhere in
     the walk cannot leave stale deltas behind for the next fault. *)
  Fun.protect
    ~finally:(fun () -> Array.iter (fun g -> deltas.(g) <- zero) cone)
    (fun () ->
      List.iter (fun (net, d) -> deltas.(net) <- d) sites;
      Array.iter
        (fun g ->
          let gate = t.base.Circuit.gates.(g) in
          if (not (List.mem_assoc g sites)) && gate.Circuit.kind <> Gate.Input
          then begin
            let fanins = gate.Circuit.fanins in
            if
              Array.exists (fun f -> not (Bdd.is_zero m deltas.(f))) fanins
            then
              let good = Array.map (fun f -> t.good.(f)) fanins in
              let delta = Array.map (fun f -> deltas.(f)) fanins in
              deltas.(g) <- Rules.delta m gate.Circuit.kind ~good ~delta
          end)
        cone;
      k deltas)

let po_differences t fault =
  propagate t fault (fun deltas ->
      Array.map (fun o -> deltas.(o)) t.base.Circuit.outputs)

let test_set t fault =
  let m = manager t in
  Array.fold_left (Bdd.bor m) (Bdd.zero m) (po_differences t fault)

let test_cubes ?limit t fault = Bdd.sat_cubes (manager t) ?limit (test_set t fault)

let test_vector t fault =
  match Bdd.any_sat (manager t) (test_set t fault) with
  | None -> None
  | Some literals ->
    let v = Array.make (Circuit.num_inputs t.base) false in
    List.iter (fun (pos, value) -> v.(pos) <- value) literals;
    Some v

type result = {
  fault : Fault.t;
  detectability : float;
  test_count : float;
  detectable : bool;
  pos_fed : int;
  pos_observed : int;
  upper_bound : float;
  adherence : float option;
  wired_support : int option;
  test_set_nodes : int;
}

let upper_bound t fault =
  let m = manager t in
  let f net = t.good.(net) in
  match fault with
  | Fault.Stuck { Sa_fault.line; value } ->
    let stem = Sa_fault.stem_of_line line in
    let syndrome = Bdd.sat_fraction m (f stem) in
    if value then 1.0 -. syndrome else syndrome
  | Fault.Bridged { Bridge.a; b; _ } ->
    Bdd.sat_fraction m (Bdd.bxor m (f a) (f b))
  | Fault.Multi_stuck sites ->
    (* Excitation of at least one component fault. *)
    let excited =
      List.fold_left
        (fun acc (s, value) ->
          let delta = if value then Bdd.bnot m (f s) else f s in
          Bdd.bor m acc delta)
        (Bdd.zero m) sites
    in
    Bdd.sat_fraction m excited

let wired_support t fault =
  let m = manager t in
  let f net = t.good.(net) in
  match fault with
  | Fault.Stuck _ | Fault.Multi_stuck _ -> None
  | Fault.Bridged { Bridge.a; b; kind } ->
    let wired =
      match kind with
      | Bridge.Wired_and -> Bdd.band m (f a) (f b)
      | Bridge.Wired_or -> Bdd.bor m (f a) (f b)
    in
    Some (List.length (Bdd.support m wired))

let pos_fed t fault =
  let cone = t.cone (Fault.sites fault) in
  Array.fold_left
    (fun acc g -> if t.output_mark.(g) then acc + 1 else acc)
    0 cone

let analyze t fault =
  let m = manager t in
  let per_po = po_differences t fault in
  let union = Array.fold_left (Bdd.bor m) (Bdd.zero m) per_po in
  let detectability = Bdd.sat_fraction m union in
  let upper_bound = upper_bound t fault in
  {
    fault;
    detectability;
    test_count = Bdd.sat_count m union;
    detectable = not (Bdd.is_zero m union);
    pos_fed = pos_fed t fault;
    pos_observed =
      Array.fold_left
        (fun acc d -> if Bdd.is_zero m d then acc else acc + 1)
        0 per_po;
    upper_bound;
    adherence =
      (if upper_bound > 0.0 then Some (detectability /. upper_bound) else None);
    wired_support = wired_support t fault;
    test_set_nodes = Bdd.size m union;
  }

let default_node_budget = 3_000_000
let default_max_retries = 2

type outcome =
  | Exact of result
  | Budget_exceeded of { fault : Fault.t; nodes : int; budget : int }
  | Crashed of { fault : Fault.t; message : string }

let outcome_fault = function
  | Exact r -> r.fault
  | Budget_exceeded { fault; _ } | Crashed { fault; _ } -> fault

let is_exact = function
  | Exact _ -> true
  | Budget_exceeded _ | Crashed _ -> false

let exact_results outcomes =
  List.filter_map (function Exact r -> Some r | _ -> None) outcomes

let degraded outcomes = List.filter (fun o -> not (is_exact o)) outcomes

let outcome_to_string c outcome =
  let fault_text fault =
    (* The fault itself may be the malformed input that crashed the
       analysis; never let diagnostics crash with it. *)
    try Fault.to_string c fault with _ -> "<unprintable fault>"
  in
  match outcome with
  | Exact r -> Printf.sprintf "%s: exact" (fault_text r.fault)
  | Budget_exceeded { fault; nodes; budget } ->
    Printf.sprintf "%s: BDD budget exceeded (%d nodes allocated, budget %d)"
      (fault_text fault) nodes budget
  | Crashed { fault; message } ->
    Printf.sprintf "%s: crashed (%s)" (fault_text fault) message

let analyze_protected ?fault_budget t fault =
  match fault_budget with
  | None -> (
    try Exact (analyze t fault)
    with exn -> Crashed { fault; message = Printexc.to_string exn })
  | Some budget -> (
    try
      Exact (Bdd.with_budget (manager t) ~budget (fun () -> analyze t fault))
    with
    | Bdd.Budget_exceeded { nodes; budget } ->
      Budget_exceeded { fault; nodes; budget }
    | exn -> Crashed { fault; message = Printexc.to_string exn })

(* Escalating retry: each attempt runs on a freshly rebuilt manager (a
   crash may be a symptom of arena-history effects, and a fresh arena
   makes the allocation count of the retry deterministic) with the
   per-fault budget doubled every round — 2x, 4x, ... the original. *)
let rec retry_outcome t fault ~fault_budget ~attempt ~max_retries outcome =
  match outcome with
  | Exact _ -> outcome
  | Budget_exceeded _ | Crashed _ when attempt < max_retries -> (
    match (try Ok (rebuild t) with exn -> Error exn) with
    | Error _ ->
      (* No fresh state to retry on; keep the more informative original. *)
      outcome
    | Ok () ->
      let budget =
        Option.map (fun b -> b lsl (attempt + 1)) fault_budget
      in
      analyze_protected ?fault_budget:budget t fault
      |> retry_outcome t fault ~fault_budget ~attempt:(attempt + 1)
           ~max_retries)
  | Budget_exceeded _ | Crashed _ -> outcome

let analyze_outcomes_seq ~node_budget ~fault_budget ~max_retries t faults =
  List.map
    (fun fault ->
      if Bdd.allocated_nodes (manager t) > node_budget then rebuild t;
      analyze_protected ?fault_budget t fault
      |> retry_outcome t fault ~fault_budget ~attempt:0 ~max_retries)
    faults

let analyze_all ?(node_budget = default_node_budget) ?fault_budget
    ?(max_retries = default_max_retries) ?(domains = 1) t faults =
  if domains <= 1 then
    analyze_outcomes_seq ~node_budget ~fault_budget ~max_retries t faults
  else
    (* The hash-consing arena is single-threaded mutable state, so every
       worker domain builds its own Symbolic/Bdd manager and analyses
       its contiguous shard with an independent node budget.  Outcomes
       are plain scalars (no BDD handles), and ROBDDs are canonical
       under a fixed variable order, so the merged list is bit-identical
       to a sequential run.  Workers are supervised: a shard that dies
       before producing outcomes (its engine failed to build) is
       requeued through the sequential retry path, and surviving shards
       keep their results. *)
    Parallel.map_chunked_outcomes ~domains
      (fun shard ->
        let worker = create ~heuristic:t.heuristic t.base in
        analyze_outcomes_seq ~node_budget ~fault_budget ~max_retries worker
          shard)
      faults
    |> List.concat_map (fun (shard, res) ->
           match res with
           | Ok outcomes -> outcomes
           | Error exn -> (
             match create ~heuristic:t.heuristic t.base with
             | worker ->
               analyze_outcomes_seq ~node_budget ~fault_budget ~max_retries
                 worker shard
             | exception _ ->
               let message = Printexc.to_string exn in
               List.map (fun fault -> Crashed { fault; message }) shard))

let analyze_exact ?node_budget ?domains t faults =
  analyze_all ?node_budget ?domains t faults
  |> List.map (function
       | Exact r -> r
       | (Budget_exceeded _ | Crashed _) as o ->
         failwith
           ("Engine.analyze_exact: degraded fault: "
           ^ outcome_to_string t.base o))
