(** JSON-lines sweep checkpoints: crash-durable {!Engine.outcome}
    journals keyed by a circuit + fault-list digest.

    A journal file is one header line

    {v {"journal":"dpa-sweep","version":2,"digest":"<md5hex>","faults":N} v}

    followed by one flat JSON object per completed fault, appended in
    completion order and fsync'd in batches.  Files are append-only, so
    a SIGKILL mid-sweep can at worst tear the final line; {!load}
    tolerates exactly that (it stops at the first unparseable line and
    keeps everything before it) while rejecting journals written for a
    different circuit or fault list.  Floats are serialized as ["%h"]
    hex-float strings, which [float_of_string] restores bit-exactly —
    the property that makes a killed-and-resumed sweep's final report
    byte-identical to an uninterrupted one. *)

val digest : Circuit.t -> Fault.t list -> string
(** MD5 hex digest of the circuit's canonical [.bench] rendering plus a
    structural key per fault, in list order.  Two sweeps share a digest
    exactly when they analyze the same fault list on the same circuit —
    index [i] then refers to the same fault in both, which is what makes
    journaled outcomes safe to reuse. *)

(** {1 Writing} *)

type sink
(** An open journal being appended to.  Appends are mutex-protected, so
    worker domains may record outcomes concurrently. *)

val create :
  ?sync_every:int -> path:string -> digest:string -> faults:int -> unit -> sink
(** Truncate [path], write the header line, fsync, and return a sink for
    appending.  [sync_every] (default 32) is the number of appended
    outcomes between [fsync] batches — smaller is more crash-durable,
    larger is cheaper. *)

val reopen : ?sync_every:int -> path:string -> unit -> sink
(** Open an existing journal for appending (resume).  The caller is
    expected to have validated the file with {!load} first; no header is
    written. *)

val append : sink -> int -> Engine.outcome -> unit
(** Append one outcome line for fault index [i].  Thread-safe; flushed
    and fsync'd every [sync_every] appends.  Appending the same index
    twice is legal — {!load} keeps the later entry (watchdog
    re-executions under the stealing scheduler can record twice). *)

val close : sink -> unit
(** Flush, fsync, and close. *)

val sync_now : sink -> unit
(** Flush and fsync the pending append batch {e without} taking the
    sink's mutex — the one journal operation safe to call from a
    SIGINT/SIGTERM handler while worker threads may be mid-append
    (taking the lock there could deadlock against the interrupted
    thread).  The cost of the missing lock is bounded: at worst the
    final line is torn, which {!load} already tolerates; the win is
    that a politely-killed sweep keeps every outcome computed before
    the signal instead of losing the whole unsynced batch.  Never
    raises. *)

(** {1 Writer lock}

    Two processes appending to one journal interleave torn records that
    {!load} cannot distinguish from corruption, so checkpoint writers
    take an exclusive advisory lock first: an [O_EXCL]-created sidecar
    file ([path ^ ".lock"]) naming the holder pid.  A lock whose pid is
    dead (a SIGKILLed writer) is stale and silently broken — a crash
    must never wedge the state directory. *)

type lock

val writer_lock_path : string -> string
(** The sidecar lock-file path guarding a journal path. *)

val acquire_writer_lock : path:string -> unit -> (lock, string) result
(** Take the exclusive writer lock for the journal at [path].
    [Error reason] when another {e live} process holds it (the reason
    names that pid) or the lock file cannot be created; a stale lock
    (dead holder) is broken and re-acquired transparently. *)

val release_writer_lock : lock -> unit
(** Remove the lock file.  Never raises. *)

(** {1 State directories} *)

val ensure_state_dir : string -> unit
(** Create [dir] if missing (existing directories are fine).
    @raise Invalid_argument when [dir] exists but is a regular file. *)

val state_file : dir:string -> digest:string -> tag:string -> string
(** The journal path for one sweep inside a multi-sweep state
    directory: [dir/<digest>-<tag>.jsonl], with [tag] sanitised to
    filename-safe characters.  Same digest and tag always map to the
    same file, so a restarted server finds its predecessor's journal;
    different option fingerprints (the tag) never share one. *)

(** {1 Reading} *)

val load :
  path:string ->
  digest:string ->
  faults:Fault.t array ->
  ((int, Engine.outcome) Hashtbl.t, string) result
(** Parse a journal back into an index → outcome table.
    [Error reason] when the file is unreadable, its header is corrupt,
    its version is unsupported (old-schema journals are rejected, with
    the offending line number, rather than resumed into wrong results),
    or its digest / fault count disagree with [digest] / [faults] — a
    stale journal is never silently reused.  Entry lines after the
    header are absorbed in order with last-entry-wins.  Two corruption
    modes are told apart: a line that is not even JSON is the torn tail
    of a kill — loading stops there and keeps every line before it —
    while a line that parses but does not match the outcome schema
    means the file is wrong rather than torn, and loading fails with a
    [line N:] diagnostic. *)

val engine_journal :
  ?sink:sink -> (int, Engine.outcome) Hashtbl.t -> Engine.journal
(** Bridge to {!Engine.analyze_all}'s [?journal] hook: [skip] consults
    the table, [record] appends to [sink] (or does nothing when [sink]
    is absent — useful for replay without rewriting). *)

(** {1 Line format} *)

val header_line : digest:string -> faults:int -> string
(** The header object (no trailing newline). *)

val outcome_line : int -> Engine.outcome -> string
(** One outcome as its journal line (no trailing newline) — also the
    per-fault record format of [dpa analyze --json]. *)

val outcome_of_line :
  faults:Fault.t array -> string -> (int * Engine.outcome) option
(** Parse one entry line; [None] on a torn or foreign line.  The fault
    payload of the outcome is reconstructed from [faults.(i)]. *)

(** {1 Flat JSON}

    The journal's hand-rolled single-line flat-object JSON dialect —
    string/int/float/bool/null values, no nesting — exported so the
    [dpa serve] wire protocol (which speaks exactly this dialect in
    both directions) parses with the same code that reads journals. *)

type jv = S of string | I of int | F of float | B of bool | Null

val parse_flat_object : string -> (string * jv) list option
(** Parse one [{"k":v,...}] line into its fields, in declaration order;
    [None] on anything outside the dialect (nesting, arrays, trailing
    bytes).  Exactly the parser {!load} reads entry lines with. *)

val field_string : (string * jv) list -> string -> string option
val field_int : (string * jv) list -> string -> int option
val field_bool : (string * jv) list -> string -> bool option

val field_float : (string * jv) list -> string -> float option
(** Accepts plain JSON numbers, integers, and the journal's ["%h"]
    hex-float strings. *)

val json_escape : string -> string
(** Escape a string for embedding between double quotes in the flat
    dialect (quotes, backslashes, control characters). *)
