(* Domain-sharded fan-out over fault lists (OCaml 5 stdlib only).

   The mutable half of a BDD arena is single-threaded, so callers hand
   this module *chunk* functions that build their own per-domain state —
   a full private Symbolic/Bdd manager, or (the cheap option) a
   [Bdd.fork] over a sealed shared snapshot — rather than sharing one
   engine.  Chunks are contiguous and results are concatenated, so
   output order equals input order.

   Two scheduling shapes are offered: static contiguous shards
   ([map_chunked_outcomes]) and a work-stealing batch queue
   ([steal_batches]) where idle domains pull the next batch off a shared
   atomic counter — the remedy for shards of wildly imbalanced fault
   costs. *)

let available_domains () = Domain.recommended_domain_count ()

let chunk_array ~pieces items =
  if pieces < 1 then invalid_arg "Parallel.chunk: pieces < 1";
  let n = Array.length items in
  let pieces = min pieces n in
  if pieces = 0 then [||]
  else
    let base = n / pieces and extra = n mod pieces in
    (* Contiguous slices whose sizes differ by at most one; the first
       [extra] slices carry the remainder. *)
    Array.init pieces (fun i ->
        let start = (i * base) + min i extra in
        let size = base + if i < extra then 1 else 0 in
        Array.sub items start size)

let chunk ~pieces items =
  chunk_array ~pieces (Array.of_list items)
  |> Array.to_list
  |> List.map Array.to_list

let map_chunked_outcomes ?domains f items =
  let pieces =
    match domains with Some d -> max 1 d | None -> available_domains ()
  in
  let guard c = try Ok (f c) with exn -> Error exn in
  match chunk ~pieces items with
  | [] -> []
  | [ only ] -> [ (only, guard only) ]
  | first :: rest ->
    (* Supervision: each worker catches inside its own domain, so join
       never raises and every spawned domain is joined — even when the
       head chunk (run on the spawning domain) fails. *)
    let workers = List.map (fun c -> (c, Domain.spawn (fun () -> guard c))) rest in
    let head = guard first in
    (first, head) :: List.map (fun (c, d) -> (c, Domain.join d)) workers

let map_chunked ?domains f items =
  let shards = map_chunked_outcomes ?domains f items in
  (* Every domain is already home; only now re-raise the first failure. *)
  List.iter
    (fun (_, r) -> match r with Error exn -> raise exn | Ok _ -> ())
    shards;
  List.concat_map
    (fun (_, r) -> match r with Ok results -> results | Error _ -> [])
    shards

let map ?domains f items = map_chunked ?domains (List.map f) items

let steal_batches ?domains ~init ~process batches =
  let n = Array.length batches in
  let domains =
    match domains with Some d -> max 1 d | None -> available_domains ()
  in
  let domains = min domains (max 1 n) in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Each domain builds its own state once, then drains the queue:
       fetch_and_add hands out each batch index exactly once, and
       writing distinct slots from distinct domains is race-free.  A
       batch whose processing raises is contained as [Error] in its
       slot; the worker keeps stealing. *)
    let run () =
      let state = init () in
      let rec drain () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            Some (try Ok (process state batches.(i)) with exn -> Error exn);
          drain ()
        end
      in
      drain ()
    in
    if domains = 1 then run ()
    else begin
      (* A spawned worker whose [init] fails exits quietly — the queue
         is shared, so survivors absorb its share.  The calling domain's
         own [init] failure is re-raised, after every join. *)
      let spawned =
        List.init (domains - 1) (fun _ ->
            Domain.spawn (fun () -> try run () with _ -> ()))
      in
      let caller = (try run (); None with exn -> Some exn) in
      List.iter Domain.join spawned;
      match caller with Some exn -> raise exn | None -> ()
    end;
    Array.map
      (function
        | Some r -> r
        | None -> Error (Failure "Parallel.steal_batches: batch never ran"))
      results
  end

(* Patrol backoff schedule.  An idle patroller that finds nothing to
   rescue must not burn a core re-scanning the claim table (the old
   fixed 2 ms sleep was ~500 wakeups/s/domain on a wedged tail): the
   first rounds are bare [Domain.cpu_relax] spins — a near-finished
   sweep ends within microseconds and a sleeping patroller would only
   add latency — after which sleeps double from 0.5 ms up to a 50 ms
   cap, still far below any per-batch deadline (>= 1 s), so rescue
   latency stays negligible while a long wedge costs ~20 wakeups/s.
   Pure function of the idle-round count, exposed for the unit tests. *)
let patrol_spin_rounds = 3

let patrol_backoff_delay round =
  if round < patrol_spin_rounds then None
  else
    let exp = min 16 (round - patrol_spin_rounds) in
    Some (Float.min 0.05 (0.0005 *. float_of_int (1 lsl exp)))

(* Work stealing with a watchdog.  OCaml domains cannot be killed, so
   supervision is by *duplication*, not preemption: every batch records
   the wall-clock instant it was claimed, and a worker that finds the
   queue empty patrols the claim table instead of exiting — a batch
   whose claimant has held it longer than its per-batch deadline is
   re-executed on the idle worker, first published result wins (CAS), so
   a worker wedged in one pathological batch can no longer stall the
   rest of the sweep.  The wedged domain itself must still come home
   before the join returns — callers bound that with a cooperative
   in-computation deadline (e.g. [Bdd.with_deadline]); the rescue only
   stops its victim's remaining work from waiting on it. *)
let steal_batches_supervised ?domains ?batch_deadline ~init ~process batches =
  match batch_deadline with
  | None -> steal_batches ?domains ~init ~process batches
  | Some deadline_of ->
    let n = Array.length batches in
    let domains =
      match domains with Some d -> max 1 d | None -> available_domains ()
    in
    let domains = min domains (max 1 n) in
    if n = 0 then [||]
    else begin
      let results = Array.init n (fun _ -> Atomic.make None) in
      (* neg_infinity = never claimed (the counter will hand it out). *)
      let claimed_at = Array.init n (fun _ -> Atomic.make neg_infinity) in
      let next = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let attempt state i =
        Atomic.set claimed_at.(i) (Unix.gettimeofday ());
        let r = try Ok (process state batches.(i)) with exn -> Error exn in
        if Atomic.compare_and_set results.(i) None (Some r) then
          ignore (Atomic.fetch_and_add completed 1)
      in
      let run () =
        let state = init () in
        let rec drain () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            attempt state i;
            drain ()
          end
          else patrol 0
        and patrol idle =
          if Atomic.get completed < n then begin
            let now = Unix.gettimeofday () in
            let rescued = ref false in
            for i = 0 to n - 1 do
              if (not !rescued) && Option.is_none (Atomic.get results.(i))
              then begin
                let t0 = Atomic.get claimed_at.(i) in
                if
                  t0 > neg_infinity
                  && now -. t0 > deadline_of batches.(i)
                  (* The CAS both elects one rescuer and restarts the
                     batch's clock, so rescuers don't pile on. *)
                  && Atomic.compare_and_set claimed_at.(i) t0 now
                then begin
                  rescued := true;
                  attempt state i
                end
              end
            done;
            if !rescued then patrol 0
            else begin
              (match patrol_backoff_delay idle with
              | None -> Domain.cpu_relax ()
              | Some s -> Unix.sleepf s);
              (* Saturating: the schedule is capped anyway, and the
                 counter must not wrap on a very long wedge. *)
              patrol (if idle < max_int - 1 then idle + 1 else idle)
            end
          end
        in
        drain ()
      in
      (if domains = 1 then run ()
       else begin
         let spawned =
           List.init (domains - 1) (fun _ ->
               Domain.spawn (fun () -> try run () with _ -> ()))
         in
         let caller = (try run (); None with exn -> Some exn) in
         List.iter Domain.join spawned;
         match caller with Some exn -> raise exn | None -> ()
       end);
      Array.map
        (fun cell ->
          match Atomic.get cell with
          | Some r -> r
          | None -> Error (Failure "Parallel.steal_batches: batch never ran"))
        results
    end
