(* Domain-sharded fan-out over fault lists (OCaml 5 stdlib only).

   The BDD arena is single-threaded mutable state, so callers hand this
   module *chunk* functions that build their own per-domain state (one
   Symbolic/Bdd manager per worker) rather than sharing an engine.
   Chunks are contiguous and results are concatenated, so output order
   equals input order. *)

let available_domains () = Domain.recommended_domain_count ()

let chunk ~pieces items =
  if pieces < 1 then invalid_arg "Parallel.chunk: pieces < 1";
  let n = List.length items in
  let pieces = min pieces n in
  if pieces <= 1 then if items = [] then [] else [ items ]
  else begin
    (* Contiguous chunks whose sizes differ by at most one. *)
    let base = n / pieces and extra = n mod pieces in
    let rec take k xs acc =
      if k = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) rest (x :: acc)
    in
    let rec split i xs =
      if i >= pieces then []
      else
        let size = base + if i < extra then 1 else 0 in
        let piece, rest = take size xs [] in
        piece :: split (i + 1) rest
    in
    split 0 items
  end

let map_chunked ?domains f items =
  let pieces =
    match domains with Some d -> max 1 d | None -> available_domains ()
  in
  match chunk ~pieces items with
  | [] -> []
  | [ only ] -> f only
  | first :: rest ->
    (* The spawning domain works on the first chunk while the others run. *)
    let workers = List.map (fun c -> Domain.spawn (fun () -> f c)) rest in
    let head = f first in
    List.concat (head :: List.map Domain.join workers)

let map ?domains f items = map_chunked ?domains (List.map f) items
