(* Domain-sharded fan-out over fault lists (OCaml 5 stdlib only).

   The BDD arena is single-threaded mutable state, so callers hand this
   module *chunk* functions that build their own per-domain state (one
   Symbolic/Bdd manager per worker) rather than sharing an engine.
   Chunks are contiguous and results are concatenated, so output order
   equals input order. *)

let available_domains () = Domain.recommended_domain_count ()

let chunk ~pieces items =
  if pieces < 1 then invalid_arg "Parallel.chunk: pieces < 1";
  let n = List.length items in
  let pieces = min pieces n in
  if pieces <= 1 then if items = [] then [] else [ items ]
  else begin
    (* Contiguous chunks whose sizes differ by at most one. *)
    let base = n / pieces and extra = n mod pieces in
    let rec take k xs acc =
      if k = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) rest (x :: acc)
    in
    let rec split i xs =
      if i >= pieces then []
      else
        let size = base + if i < extra then 1 else 0 in
        let piece, rest = take size xs [] in
        piece :: split (i + 1) rest
    in
    split 0 items
  end

let map_chunked_outcomes ?domains f items =
  let pieces =
    match domains with Some d -> max 1 d | None -> available_domains ()
  in
  let guard c = try Ok (f c) with exn -> Error exn in
  match chunk ~pieces items with
  | [] -> []
  | [ only ] -> [ (only, guard only) ]
  | first :: rest ->
    (* Supervision: each worker catches inside its own domain, so join
       never raises and every spawned domain is joined — even when the
       head chunk (run on the spawning domain) fails. *)
    let workers = List.map (fun c -> (c, Domain.spawn (fun () -> guard c))) rest in
    let head = guard first in
    (first, head) :: List.map (fun (c, d) -> (c, Domain.join d)) workers

let map_chunked ?domains f items =
  let shards = map_chunked_outcomes ?domains f items in
  (* Every domain is already home; only now re-raise the first failure. *)
  List.iter
    (fun (_, r) -> match r with Error exn -> raise exn | Ok _ -> ())
    shards;
  List.concat_map
    (fun (_, r) -> match r with Ok results -> results | Error _ -> [])
    shards

let map ?domains f items = map_chunked ?domains (List.map f) items
