(* JSON-lines sweep checkpoints.

   One header line naming the (circuit, fault list) digest, then one
   flat JSON object per completed outcome, appended as the sweep runs
   and fsync'd in batches.  A journal is only ever appended to, so a
   SIGKILL can at worst tear the final line — the loader tolerates
   exactly that (it stops at the first unparseable line) and rejects
   everything else: wrong digest, wrong fault count, corrupt header.

   No JSON library is available here, so both the writer and the
   (flat-object) reader are hand-rolled.  Floats are serialized as "%h"
   hex-float strings: exact round-trips, so a resumed sweep's final
   report is byte-identical to an uninterrupted one. *)

let magic = "dpa-sweep"

(* v2 added the reorder-rescue stage: exact records carry "resc".  Old
   journals are rejected up front (see [load]) — silently resuming one
   would merge outcomes whose ladder never had the rescue rung and break
   the resumed-equals-uninterrupted guarantee. *)
let version = 2

(* ------------------------------------------------------------------ *)
(* Digest                                                              *)

(* Structural fault keys — [Fault.to_string] needs a well-formed net and
   may raise on the crash-injection faults tests journal on purpose. *)
let fault_key fault =
  match fault with
  | Fault.Stuck { Sa_fault.line = Sa_fault.Stem s; value } ->
    Printf.sprintf "S%d:%d" s (Bool.to_int value)
  | Fault.Stuck { Sa_fault.line = Sa_fault.Branch br; value } ->
    Printf.sprintf "R%d,%d,%d:%d" br.Circuit.stem br.Circuit.sink
      br.Circuit.pin (Bool.to_int value)
  | Fault.Bridged { Bridge.a; b; kind } ->
    Printf.sprintf "B%d,%d:%c" a b
      (match kind with Bridge.Wired_and -> 'a' | Bridge.Wired_or -> 'o')
  | Fault.Multi_stuck sites ->
    "M"
    ^ String.concat ";"
        (List.map
           (fun (s, v) -> Printf.sprintf "%d:%d" s (Bool.to_int v))
           sites)

let digest c faults =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Bench_format.print c);
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (fault_key f))
    faults;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let json_escape = escape_string

(* "%h" prints the exact binary value (e.g. 0x1.8p-2), so
   [float_of_string] restores the identical bit pattern. *)
let float_field f = Printf.sprintf "\"%h\"" f

let field buf name value =
  if Buffer.length buf > 1 then Buffer.add_char buf ',';
  Buffer.add_char buf '"';
  Buffer.add_string buf name;
  Buffer.add_string buf "\":";
  Buffer.add_string buf value

let object_line fill =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  fill (field buf);
  Buffer.add_char buf '}';
  Buffer.contents buf

let header_line ~digest ~faults =
  object_line (fun field ->
      field "journal" (Printf.sprintf "%S" magic);
      field "version" (string_of_int version);
      field "digest" (Printf.sprintf "%S" digest);
      field "faults" (string_of_int faults))

let outcome_line i outcome =
  object_line (fun field ->
      field "i" (string_of_int i);
      match outcome with
      | Engine.Exact r ->
        field "o" "\"exact\"";
        field "d" (float_field r.Engine.detectability);
        field "tc" (float_field r.Engine.test_count);
        field "det" (string_of_bool r.Engine.detectable);
        field "pf" (string_of_int r.Engine.pos_fed);
        field "po" (string_of_int r.Engine.pos_observed);
        field "ub" (float_field r.Engine.upper_bound);
        field "adh"
          (match r.Engine.adherence with
          | None -> "null"
          | Some a -> float_field a);
        field "ws"
          (match r.Engine.wired_support with
          | None -> "null"
          | Some n -> string_of_int n);
        field "tsn" (string_of_int r.Engine.test_set_nodes);
        field "resc" (string_of_bool r.Engine.rescued_by_reorder)
      | Engine.Bounded { lower; upper; syndrome_bound; samples; reason; _ } -> (
        field "o" "\"bounded\"";
        field "lo" (float_field lower);
        field "up" (float_field upper);
        field "sb" (float_field syndrome_bound);
        field "n" (string_of_int samples);
        match reason with
        | Engine.Over_budget { nodes; budget } ->
          field "why" "\"budget\"";
          field "nodes" (string_of_int nodes);
          field "budget" (string_of_int budget)
        | Engine.Over_deadline { deadline_ms } ->
          field "why" "\"deadline\"";
          field "dl" (float_field deadline_ms))
      | Engine.Budget_exceeded { nodes; budget; _ } ->
        field "o" "\"budget\"";
        field "nodes" (string_of_int nodes);
        field "budget" (string_of_int budget)
      | Engine.Deadline_exceeded { elapsed_ms; deadline_ms; _ } ->
        field "o" "\"deadline\"";
        field "el" (float_field elapsed_ms);
        field "dl" (float_field deadline_ms)
      | Engine.Crashed { message; _ } ->
        field "o" "\"crashed\"";
        field "msg" (Printf.sprintf "\"%s\"" (escape_string message)))

(* ------------------------------------------------------------------ *)
(* Reading: a minimal flat-object JSON tokenizer.  Anything this module
   did not write — nesting, arrays, exponent-format numbers — fails the
   parse, which the loader treats as a torn tail. *)

type jv = S of string | I of int | F of float | B of bool | Null

exception Bad

let parse_object line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (peek () = ' ' || peek () = '\t') do
      advance ()
    done
  in
  let expect ch =
    skip_ws ();
    if peek () <> ch then raise Bad;
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 >= n then raise Bad;
          let code =
            try int_of_string ("0x" ^ String.sub line (!pos + 1) 4)
            with _ -> raise Bad
          in
          pos := !pos + 4;
          if code > 0xff then raise Bad (* we only ever write ASCII *)
          else Buffer.add_char buf (Char.chr code)
        | _ -> raise Bad);
        advance ();
        go ()
      | ch ->
        Buffer.add_char buf ch;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> S (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4;
        B true
      end
      else raise Bad
    | 'f' ->
      if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5;
        B false
      end
      else raise Bad
    | 'n' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
        pos := !pos + 4;
        Null
      end
      else raise Bad
    | '-' | '0' .. '9' ->
      let start = !pos in
      if peek () = '-' then advance ();
      while
        !pos < n
        && (match line.[!pos] with '0' .. '9' | '.' -> true | _ -> false)
      do
        advance ()
      done;
      let text = String.sub line start (!pos - start) in
      (match int_of_string_opt text with
      | Some i -> I i
      | None -> (
        match float_of_string_opt text with
        | Some f -> F f
        | None -> raise Bad))
    | _ -> raise Bad
  in
  try
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      Some []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        let key = (skip_ws (); parse_string ()) in
        expect ':';
        let value = parse_value () in
        fields := (key, value) :: !fields;
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          members ()
        | '}' -> advance ()
        | _ -> raise Bad
      in
      members ();
      skip_ws ();
      if !pos <> n then raise Bad;
      Some (List.rev !fields)
    end
  with Bad -> None

(* The same tokenizer, exported: the [dpa serve] protocol speaks exactly
   this flat-object dialect (requests and responses alike), so the
   server's parser and the journal's are one piece of code. *)
let parse_flat_object = parse_object

let find fields name = List.assoc_opt name fields

let get_int fields name =
  match find fields name with Some (I i) -> i | _ -> raise Bad

let get_bool fields name =
  match find fields name with Some (B b) -> b | _ -> raise Bad

let get_string fields name =
  match find fields name with Some (S s) -> s | _ -> raise Bad

let get_float fields name =
  (* Floats travel as "%h" strings; plain JSON numbers are accepted for
     hand-written journals. *)
  match find fields name with
  | Some (S s) -> (
    match float_of_string_opt s with Some f -> f | None -> raise Bad)
  | Some (F f) -> f
  | Some (I i) -> float_of_int i
  | _ -> raise Bad

(* Option-returning accessors over a parsed flat object, for protocol
   code that wants to distinguish "absent" from "present but wrong". *)
let field_string fields name =
  match find fields name with Some (S s) -> Some s | _ -> None

let field_int fields name =
  match find fields name with Some (I i) -> Some i | _ -> None

let field_bool fields name =
  match find fields name with Some (B b) -> Some b | _ -> None

let field_float fields name =
  match find fields name with
  | Some (F f) -> Some f
  | Some (I i) -> Some (float_of_int i)
  | Some (S s) -> float_of_string_opt s
  | _ -> None

(* Field extraction over an already-parsed object: [None] means the
   object is structurally valid JSON but does not match the v2 outcome
   schema — a different failure from a torn line, and [load] reports it
   as corruption instead of silently stopping. *)
let outcome_of_fields ~faults fields =
  (
    try
      let i = get_int fields "i" in
      if i < 0 || i >= Array.length faults then raise Bad;
      let fault = faults.(i) in
      let outcome =
        match get_string fields "o" with
        | "exact" ->
          Engine.Exact
            {
              Engine.fault;
              detectability = get_float fields "d";
              test_count = get_float fields "tc";
              detectable = get_bool fields "det";
              pos_fed = get_int fields "pf";
              pos_observed = get_int fields "po";
              upper_bound = get_float fields "ub";
              adherence =
                (match find fields "adh" with
                | Some Null -> None
                | _ -> Some (get_float fields "adh"));
              wired_support =
                (match find fields "ws" with
                | Some Null -> None
                | _ -> Some (get_int fields "ws"));
              test_set_nodes = get_int fields "tsn";
              rescued_by_reorder = get_bool fields "resc";
            }
        | "bounded" ->
          let reason =
            match get_string fields "why" with
            | "budget" ->
              Engine.Over_budget
                {
                  nodes = get_int fields "nodes";
                  budget = get_int fields "budget";
                }
            | "deadline" ->
              Engine.Over_deadline { deadline_ms = get_float fields "dl" }
            | _ -> raise Bad
          in
          Engine.Bounded
            {
              fault;
              lower = get_float fields "lo";
              upper = get_float fields "up";
              syndrome_bound = get_float fields "sb";
              samples = get_int fields "n";
              reason;
            }
        | "budget" ->
          Engine.Budget_exceeded
            {
              fault;
              nodes = get_int fields "nodes";
              budget = get_int fields "budget";
            }
        | "deadline" ->
          Engine.Deadline_exceeded
            {
              fault;
              elapsed_ms = get_float fields "el";
              deadline_ms = get_float fields "dl";
            }
        | "crashed" ->
          Engine.Crashed { fault; message = get_string fields "msg" }
        | _ -> raise Bad
      in
      Some (i, outcome)
    with Bad -> None)

let outcome_of_line ~faults line =
  match parse_object line with
  | None -> None
  | Some fields -> outcome_of_fields ~faults fields

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

type sink = {
  oc : out_channel;
  lock : Mutex.t;
  sync_every : int;
  mutable unsynced : int;
}

let default_sync_every = 32

let make_sink ?(sync_every = default_sync_every) oc =
  { oc; lock = Mutex.create (); sync_every; unsynced = 0 }

let sync sink =
  flush sink.oc;
  (* fsync can be unsupported on exotic filesystems; a failed sync only
     weakens crash durability, never the sweep. *)
  (try Unix.fsync (Unix.descr_of_out_channel sink.oc) with _ -> ())

let create ?sync_every ~path ~digest ~faults () =
  let oc = open_out path in
  let sink = make_sink ?sync_every oc in
  output_string oc (header_line ~digest ~faults);
  output_char oc '\n';
  sync sink;
  sink

let reopen ?sync_every ~path () =
  make_sink ?sync_every
    (open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path)

let append sink i outcome =
  Mutex.lock sink.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink.lock)
    (fun () ->
      output_string sink.oc (outcome_line i outcome);
      output_char sink.oc '\n';
      sink.unsynced <- sink.unsynced + 1;
      if sink.unsynced >= sink.sync_every then begin
        sync sink;
        sink.unsynced <- 0
      end)

let close sink =
  Mutex.lock sink.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink.lock)
    (fun () ->
      sync sink;
      close_out sink.oc)

(* Deliberately lock-free: this is what a SIGINT/SIGTERM handler calls
   to make the pending fsync batch durable before exiting, and the
   interrupted thread may be holding [sink.lock] mid-append — taking it
   here would deadlock the handler.  The worst a concurrent append can
   cost is a torn final line, which [load] already tolerates; without
   this call a polite kill loses the whole unsynced batch instead. *)
let sync_now sink = try sync sink with _ -> ()

(* ------------------------------------------------------------------ *)
(* Writer lock.  Two processes appending to one journal interleave torn
   records that [load] cannot tell from corruption, so the file gets an
   exclusive advisory lock: an O_EXCL-created sidecar naming the holder
   pid.  O_EXCL makes creation atomic even over NFS-ish filesystems; the
   pid makes a lock left behind by a SIGKILLed holder breakable (the
   restart-and-resume path depends on that — a crash must never wedge
   the state dir).  A pid that no longer exists, or an unreadable lock
   file, is stale and silently replaced. *)

type lock = { lock_file : string }

let writer_lock_path path = path ^ ".lock"

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  (* EPERM: alive but owned by someone else. *)
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
  | exception _ -> false

let read_lock_pid lock_file =
  match open_in lock_file with
  | exception _ -> None
  | ic ->
    let pid =
      match input_line ic with
      | exception _ -> None
      | line -> int_of_string_opt (String.trim line)
    in
    close_in_noerr ic;
    pid

let rec acquire_writer_lock ?(retried = false) ~path () =
  let lock_file = writer_lock_path path in
  match
    Unix.openfile lock_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
  with
  | fd ->
    let line = Printf.sprintf "%d\n" (Unix.getpid ()) in
    ignore (Unix.write_substring fd line 0 (String.length line));
    (try Unix.close fd with _ -> ());
    Ok { lock_file }
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> (
    match read_lock_pid lock_file with
    | Some pid when pid_alive pid ->
      Error
        (Printf.sprintf
           "journal writer lock held by running process %d (remove %s only \
            if that process is not a dpa writer)"
           pid lock_file)
    | Some _ | None ->
      (* Stale: the holder is gone (SIGKILL) or never finished writing
         its pid.  Break the lock and try once more; a second EEXIST
         loss means another process is racing us for the same journal,
         and it won. *)
      if retried then
        Error "journal writer lock is contended (another writer is racing)"
      else begin
        (try Sys.remove lock_file with _ -> ());
        acquire_writer_lock ~retried:true ~path ()
      end)
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "cannot create writer lock %s: %s" lock_file
         (Unix.error_message err))

let acquire_writer_lock ~path () = acquire_writer_lock ~path ()

let release_writer_lock { lock_file } =
  try Sys.remove lock_file with _ -> ()

(* ------------------------------------------------------------------ *)
(* State directories.  A resident server checkpoints many sweeps at
   once, so journals live in a directory keyed by sweep digest plus a
   caller tag (the options fingerprint): same digest + same tag = same
   resumable sweep, different options never share a file. *)

let ensure_state_dir dir =
  if not (Sys.file_exists dir) then (
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Journal.ensure_state_dir: %s is a file" dir)

let state_file ~dir ~digest ~tag =
  let safe =
    String.map
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> ch
        | _ -> '_')
      tag
  in
  Filename.concat dir (Printf.sprintf "%s-%s.jsonl" digest safe)

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let text = really_input_string ic (in_channel_length ic) in
      String.split_on_char '\n' text)

let load ~path ~digest ~faults =
  match read_lines path with
  | exception Sys_error msg -> Error msg
  | [] -> Error "empty journal"
  | header :: entries -> (
    match parse_object header with
    | None -> Error "corrupt journal header"
    | Some fields -> (
      try
        if get_string fields "journal" <> magic then raise Bad;
        if get_int fields "version" <> version then
          Error
            (Printf.sprintf
               "line 1: journal version %d is not %d (written by an \
                incompatible dpa; re-run the sweep to write a v%d journal)"
               (get_int fields "version") version version)
        else if get_string fields "digest" <> digest then
          Error
            "stale journal: circuit or fault list changed since it was \
             written"
        else if get_int fields "faults" <> Array.length faults then
          Error "stale journal: fault count changed since it was written"
        else begin
          let table = Hashtbl.create 1024 in
          (* Entries accumulate in file order; a later duplicate (a
             watchdog re-execution) overrides.  The first line that is
             not even JSON is the torn tail of a kill — everything after
             it is unreliable, so loading stops there and keeps what
             came before.  A line that parses as JSON but does not match
             the outcome schema is a different animal: the file is not
             torn but *wrong* (hand-edited, foreign, or written by a dpa
             whose schema lied about its version), and resuming from it
             would corrupt the sweep — reject with the line number. *)
          let rec absorb lineno = function
            | [] -> Ok table
            | line :: rest -> (
              if String.trim line = "" then absorb (lineno + 1) rest
              else
                match parse_object line with
                | None -> Ok table (* torn tail *)
                | Some entry_fields -> (
                  match outcome_of_fields ~faults entry_fields with
                  | Some (i, outcome) ->
                    Hashtbl.replace table i outcome;
                    absorb (lineno + 1) rest
                  | None ->
                    Error
                      (Printf.sprintf
                         "line %d: entry does not match the v%d outcome \
                          schema"
                         lineno version)))
          in
          (* The header is line 1; entries start on line 2. *)
          absorb 2 entries
        end
      with Bad -> Error "corrupt journal header"))

let engine_journal ?sink table =
  {
    Engine.skip = (fun i -> Hashtbl.find_opt table i);
    record =
      (match sink with
      | None -> fun _ _ -> ()
      | Some s -> fun i outcome -> append s i outcome);
  }
