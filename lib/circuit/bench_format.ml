type span = { line : int; start_col : int; end_col : int }

exception Parse_error of span * string

let line_span line = { line; start_col = 1; end_col = 1 }

let error span fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (span, s))) fmt

let pp_span fmt { line; start_col; _ } =
  Format.fprintf fmt "%d:%d" line start_col

let is_space ch = ch = ' ' || ch = '\t' || ch = '\r'

(* Shrink the half-open char range [lo, hi) of [s] to its non-blank
   core.  Every token's span derives from one of these ranges, so
   columns always point at the name itself, not at surrounding blanks. *)
let trim_range s lo hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi && is_space s.[!lo] do incr lo done;
  while !hi > !lo && is_space s.[!hi - 1] do decr hi done;
  (!lo, !hi)

let token lineno s lo hi =
  let lo, hi = trim_range s lo hi in
  ( String.sub s lo (hi - lo),
    { line = lineno; start_col = lo + 1; end_col = hi + 1 } )

let index_in s ch lo hi =
  match String.index_from_opt s lo ch with
  | Some i when i < hi -> Some i
  | _ -> None

(* "KIND(a, b)" in s.[lo..hi) -> ((KIND, span), [(a, span); (b, span)]). *)
let split_call lineno s lo hi =
  let whole_span () =
    let lo', hi' = trim_range s lo hi in
    { line = lineno; start_col = lo' + 1; end_col = hi' + 1 }
  in
  match index_in s '(' lo hi with
  | None -> error (whole_span ()) "expected '(' in %S" (String.sub s lo (hi - lo))
  | Some open_paren ->
    if hi = lo || s.[hi - 1] <> ')' then
      error (whole_span ()) "expected ')' in %S" (String.sub s lo (hi - lo));
    let head = token lineno s lo open_paren in
    let args = ref [] in
    let pos = ref (open_paren + 1) in
    let stop = hi - 1 in
    while !pos <= stop do
      let comma =
        match index_in s ',' !pos stop with Some i -> i | None -> stop
      in
      let arg, sp = token lineno s !pos comma in
      if arg <> "" then args := (arg, sp) :: !args;
      pos := comma + 1
    done;
    (head, List.rev !args)

type raw_gate = {
  g_net : string;
  g_span : span;
  g_kind : Gate.kind;
  g_fanins : (string * span) list;
}

type raw = {
  r_title : string;
  r_inputs : (string * span) list;
  r_outputs : (string * span) list;
  r_gates : raw_gate list;
}

(* Syntax-level parse: shapes every statement but tolerates semantic
   trouble (duplicate drivers, undriven nets, combinational cycles),
   which the strict {!parse} and the lint pass diagnose — the linter
   with rule codes instead of a first-error exception. *)
let parse_raw ~title text =
  let inputs = ref [] and outputs = ref [] and gates = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let hi =
        match String.index_opt raw '#' with
        | Some cut -> cut
        | None -> String.length raw
      in
      let lo, hi = trim_range raw 0 hi in
      if lo < hi then
        match index_in raw '=' lo hi with
        | Some eq ->
          let net, net_span = token lineno raw lo eq in
          if net = "" then error (line_span lineno) "missing net name";
          let (kind_name, kind_span), args = split_call lineno raw (eq + 1) hi in
          (match Gate.of_name kind_name with
          | Some Gate.Input -> error kind_span "INPUT used as a gate"
          | Some kind ->
            gates :=
              { g_net = net; g_span = net_span; g_kind = kind; g_fanins = args }
              :: !gates
          | None ->
            if String.uppercase_ascii kind_name = "DFF" then
              error kind_span "sequential element DFF is not supported"
            else error kind_span "unknown gate kind %S" kind_name)
        | None ->
          let (head_name, head_span), args = split_call lineno raw lo hi in
          (match (String.uppercase_ascii head_name, args) with
          | "INPUT", [ name ] -> inputs := name :: !inputs
          | "OUTPUT", [ name ] -> outputs := name :: !outputs
          | ("INPUT" | "OUTPUT"), _ ->
            error head_span "%s takes exactly one net name" head_name
          | _ -> error head_span "unrecognised directive %S" head_name))
    lines;
  {
    r_title = title;
    r_inputs = List.rev !inputs;
    r_outputs = List.rev !outputs;
    r_gates = List.rev !gates;
  }

(* The raw record keeps inputs, outputs and gates apart; diagnostics
   want file order back, which the spans reconstruct exactly. *)
let by_position items =
  List.stable_sort
    (fun (_, a) (_, b) ->
      Stdlib.compare (a.line, a.start_col) (b.line, b.start_col))
    items

let definitions raw =
  by_position (raw.r_inputs @ List.map (fun g -> (g.g_net, g.g_span)) raw.r_gates)

let uses raw =
  by_position (List.concat_map (fun g -> g.g_fanins) raw.r_gates @ raw.r_outputs)

let definition_spans raw =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (name, sp) ->
      if not (Hashtbl.mem table name) then Hashtbl.add table name sp)
    (definitions raw);
  table

(* Combinational cycles at the name level, each reported at the span of
   its first-defined member.  Circuit.create would reject them too, but
   without source positions. *)
let cycles raw =
  let defs = Array.of_list (definitions raw) in
  let index = Hashtbl.create (Array.length defs * 2) in
  Array.iteri
    (fun i (name, _) ->
      if not (Hashtbl.mem index name) then Hashtbl.add index name i)
    defs;
  let succ = Array.make (Array.length defs) [||] in
  List.iter
    (fun g ->
      match Hashtbl.find_opt index g.g_net with
      | None -> ()
      | Some i ->
        succ.(i) <-
          Array.of_list
            (List.filter_map
               (fun (fanin, _) -> Hashtbl.find_opt index fanin)
               g.g_fanins))
    raw.r_gates;
  Scc.cyclic succ
  |> List.map (fun comp -> Array.map (fun i -> defs.(i)) comp)

let elaborate raw =
  (* Semantic checks the raw parse deferred, each with a precise span:
     the second driver of a net is the user's error, not whatever
     Circuit.create makes of the collision downstream. *)
  let defined = Hashtbl.create 64 in
  List.iter
    (fun (net, sp) ->
      match Hashtbl.find_opt defined net with
      | Some (first : span) ->
        error sp "duplicate definition of net %S (first defined at line %d)"
          net first.line
      | None -> Hashtbl.add defined net sp)
    (definitions raw);
  List.iter
    (fun (net, sp) ->
      if not (Hashtbl.mem defined net) then
        error sp "net %S is used but never driven" net)
    (uses raw);
  (match cycles raw with
  | [] -> ()
  | comp :: _ ->
    let name, sp = comp.(0) in
    error sp "combinational cycle through %S (%d nets involved)" name
      (Array.length comp));
  Circuit.create ~title:raw.r_title
    ~inputs:(List.map fst raw.r_inputs)
    ~outputs:(List.map fst raw.r_outputs)
    (List.map (fun g -> (g.g_net, g.g_kind, List.map fst g.g_fanins)) raw.r_gates)

let parse ~title text = elaborate (parse_raw ~title text)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let title_of_path path = Filename.remove_extension (Filename.basename path)

let parse_file path = parse ~title:(title_of_path path) (read_file path)

let parse_raw_file path = parse_raw ~title:(title_of_path path) (read_file path)

let print c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" c.Circuit.title);
  Array.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "INPUT(%s)\n" (Circuit.gate c g).Circuit.name))
    c.Circuit.inputs;
  Array.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Circuit.gate c o).Circuit.name))
    c.Circuit.outputs;
  Array.iter
    (fun (g : Circuit.gate) ->
      if g.kind <> Gate.Input then begin
        let fanin_names =
          Array.to_list g.fanins
          |> List.map (fun f -> (Circuit.gate c f).Circuit.name)
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" g.name (Gate.name g.kind)
             (String.concat ", " fanin_names))
      end)
    c.Circuit.gates;
  Buffer.contents buf
