exception Parse_error of int * string

let error line fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let is_space ch = ch = ' ' || ch = '\t' || ch = '\r'

let strip s =
  let n = String.length s in
  let b = ref 0 and e = ref n in
  while !b < n && is_space s.[!b] do incr b done;
  while !e > !b && is_space s.[!e - 1] do decr e done;
  String.sub s !b (!e - !b)

let strip_comment s =
  match String.index_opt s '#' with
  | None -> s
  | Some i -> String.sub s 0 i

(* "KIND(a, b)" -> (KIND, [a; b]); raises on malformed parentheses. *)
let split_call line s =
  match String.index_opt s '(' with
  | None -> error line "expected '(' in %S" s
  | Some open_paren ->
    if s.[String.length s - 1] <> ')' then error line "expected ')' in %S" s;
    let head = strip (String.sub s 0 open_paren) in
    let inner =
      String.sub s (open_paren + 1) (String.length s - open_paren - 2)
    in
    let args =
      String.split_on_char ',' inner
      |> List.map strip
      |> List.filter (fun a -> a <> "")
    in
    (head, args)

let parse ~title text =
  let inputs = ref [] and outputs = ref [] and defs = ref [] in
  (* Net name -> line of its driving definition (INPUT or gate): the
     second driver of a net is a user error worth a precise diagnostic,
     not whatever Circuit.create makes of the collision downstream. *)
  let defined = Hashtbl.create 64 in
  let define lineno net =
    match Hashtbl.find_opt defined net with
    | Some first ->
      error lineno "duplicate definition of net %S (first defined at line %d)"
        net first
    | None -> Hashtbl.add defined net lineno
  in
  (* Net name -> line of its first use as a fanin or OUTPUT, in
     encounter order.  Forward references are legal in .bench, so
     undriven nets are only diagnosable after the whole file is read. *)
  let used = ref [] in
  let use lineno net =
    used := (lineno, net) :: !used
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = strip (strip_comment raw) in
      if line <> "" then
        match String.index_opt line '=' with
        | Some eq ->
          let net = strip (String.sub line 0 eq) in
          let rhs =
            strip (String.sub line (eq + 1) (String.length line - eq - 1))
          in
          if net = "" then error lineno "missing net name";
          let kind_name, args = split_call lineno rhs in
          (match Gate.of_name kind_name with
          | Some Gate.Input -> error lineno "INPUT used as a gate"
          | Some kind ->
            define lineno net;
            List.iter (use lineno) args;
            defs := (net, kind, args) :: !defs
          | None ->
            if String.uppercase_ascii kind_name = "DFF" then
              error lineno "sequential element DFF is not supported"
            else error lineno "unknown gate kind %S" kind_name)
        | None ->
          let head, args = split_call lineno line in
          (match (String.uppercase_ascii head, args) with
          | "INPUT", [ name ] ->
            define lineno name;
            inputs := name :: !inputs
          | "OUTPUT", [ name ] ->
            use lineno name;
            outputs := name :: !outputs
          | ("INPUT" | "OUTPUT"), _ ->
            error lineno "%s takes exactly one net name" head
          | _ -> error lineno "unrecognised directive %S" head))
    lines;
  List.iter
    (fun (lineno, net) ->
      if not (Hashtbl.mem defined net) then
        error lineno "net %S is used but never driven" net)
    (List.rev !used);
  Circuit.create ~title ~inputs:(List.rev !inputs) ~outputs:(List.rev !outputs)
    (List.rev !defs)

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let title = Filename.remove_extension (Filename.basename path) in
  parse ~title text

let print c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" c.Circuit.title);
  Array.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "INPUT(%s)\n" (Circuit.gate c g).Circuit.name))
    c.Circuit.inputs;
  Array.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Circuit.gate c o).Circuit.name))
    c.Circuit.outputs;
  Array.iter
    (fun (g : Circuit.gate) ->
      if g.kind <> Gate.Input then begin
        let fanin_names =
          Array.to_list g.fanins
          |> List.map (fun f -> (Circuit.gate c f).Circuit.name)
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" g.name (Gate.name g.kind)
             (String.concat ", " fanin_names))
      end)
    c.Circuit.gates;
  Buffer.contents buf
