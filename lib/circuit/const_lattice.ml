(* Constant-propagation lattice via structurally hashed AND-inverter
   literals.  Every net is abstracted to an AIG literal (2*node +
   complement bit, with node 0 reserved for the constant); two nets with
   the same literal are provably equal, literals differing in the low
   bit are provably complementary, and the constant literals prove a net
   stuck at 0 or 1 for every input vector.  All rewrite rules are plain
   Boolean identities, so every verdict is sound; the abstraction is
   incomplete (a functionally constant net may keep a non-constant
   literal), which is exactly the division of labour the linter wants:
   lattice first, BDD only where structure is inconclusive. *)

let false_lit = 0
let true_lit = 1
let lnot l = l lxor 1
let is_const l = l < 2

type t = { lits : int array }

let compute c =
  let n = Circuit.num_gates c in
  (* Hash-consed AND nodes over literals; (a, b) with a <= b. *)
  let table = Hashtbl.create (4 * n) in
  let next = ref 1 in
  let fresh () =
    let id = !next in
    incr next;
    2 * id
  in
  let mk_and a b =
    let a, b = if a <= b then (a, b) else (b, a) in
    if a = false_lit then false_lit
    else if a = true_lit then b
    else if a = b then a
    else if a = lnot b then false_lit
    else
      match Hashtbl.find_opt table (a, b) with
      | Some l -> l
      | None ->
        let l = fresh () in
        Hashtbl.add table (a, b) l;
        l
  in
  let mk_or a b = lnot (mk_and (lnot a) (lnot b)) in
  let mk_xor a b =
    if is_const a then (if a = true_lit then lnot b else b)
    else if is_const b then (if b = true_lit then lnot a else a)
    else if a = b then false_lit
    else if a = lnot b then true_lit
    else mk_or (mk_and a (lnot b)) (mk_and (lnot a) b)
  in
  let fold1 op seed = function
    | [] -> seed
    | l :: ls -> List.fold_left op l ls
  in
  let lits = Array.make n false_lit in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      let fanins = Array.to_list (Array.map (fun f -> lits.(f)) gate.fanins) in
      lits.(g) <-
        (match gate.kind with
        | Gate.Input -> fresh ()
        | Gate.Const0 -> false_lit
        | Gate.Const1 -> true_lit
        | Gate.Buf -> List.hd fanins
        | Gate.Not -> lnot (List.hd fanins)
        | Gate.And -> fold1 mk_and true_lit fanins
        | Gate.Nand -> lnot (fold1 mk_and true_lit fanins)
        | Gate.Or -> fold1 mk_or false_lit fanins
        | Gate.Nor -> lnot (fold1 mk_or false_lit fanins)
        | Gate.Xor -> fold1 mk_xor false_lit fanins
        | Gate.Xnor -> lnot (fold1 mk_xor false_lit fanins)))
    c.Circuit.gates;
  { lits }

let constant t net =
  let l = t.lits.(net) in
  if l = false_lit then Some false
  else if l = true_lit then Some true
  else None

let equivalent t a b = t.lits.(a) = t.lits.(b)

let complementary t a b = t.lits.(a) = lnot t.lits.(b)

let literal t net = t.lits.(net)
