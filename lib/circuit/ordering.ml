type heuristic =
  | Natural
  | Dfs_fanin
  | Reverse
  | Shuffled of int
  | Force
  | Oracle

let all = [ Natural; Dfs_fanin; Reverse; Shuffled 1; Force; Oracle ]

let name = function
  | Natural -> "natural"
  | Dfs_fanin -> "dfs-fanin"
  | Reverse -> "reverse"
  | Shuffled seed -> Printf.sprintf "shuffled-%d" seed
  | Force -> "force"
  | Oracle -> "oracle"

let natural_order n = Array.init n (fun i -> i)

let dfs_fanin_order c =
  let n = Circuit.num_inputs c in
  let seen = Array.make (Circuit.num_gates c) false in
  let acc = ref [] in
  let rec visit g =
    if not seen.(g) then begin
      seen.(g) <- true;
      let gate = Circuit.gate c g in
      if gate.Circuit.kind = Gate.Input then begin
        match Circuit.input_position c g with
        | Some pos -> acc := pos :: !acc
        | None -> ()
      end
      else Array.iter visit gate.Circuit.fanins
    end
  in
  Array.iter visit c.Circuit.outputs;
  (* Inputs never reached from an output go last, in natural order. *)
  let reached = List.rev !acc in
  let missing =
    List.init n Fun.id |> List.filter (fun pos -> not (List.mem pos reached))
  in
  Array.of_list (reached @ missing)

(* FORCE (Aloul et al.): every gate together with its fanins forms a
   hyperedge; vertices repeatedly move to the mean center of gravity of
   their incident hyperedges, then are re-ranked.  Converges to a
   placement that keeps connected nets close, which the cut estimator
   rewards.  Purely arithmetic and deterministic. *)
let force_order c =
  let n = Circuit.num_gates c in
  let inputs = Circuit.num_inputs c in
  let fanouts = Circuit.fanouts c in
  let is_gate g = (Circuit.gate c g).Circuit.kind <> Gate.Input in
  let pos = Array.make n 0.0 in
  (* Seed: inputs at their declared position, gates at the mean of their
     fanins — one topological pass. *)
  for g = 0 to n - 1 do
    let gate = Circuit.gate c g in
    if gate.Circuit.kind = Gate.Input then
      pos.(g) <-
        (match Circuit.input_position c g with
        | Some p -> float_of_int p
        | None -> 0.0)
    else begin
      let sum = Array.fold_left (fun s f -> s +. pos.(f)) 0.0 gate.fanins in
      pos.(g) <- sum /. float_of_int (max 1 (Array.length gate.fanins))
    end
  done;
  let cog = Array.make n 0.0 in
  let order = Array.init n (fun i -> i) in
  let iterations = 10 in
  for _ = 1 to iterations do
    for g = 0 to n - 1 do
      if is_gate g then begin
        let gate = Circuit.gate c g in
        let sum = Array.fold_left (fun s f -> s +. pos.(f)) pos.(g) gate.fanins in
        cog.(g) <- sum /. float_of_int (1 + Array.length gate.fanins)
      end
    done;
    for v = 0 to n - 1 do
      let sum = ref 0.0 and k = ref 0 in
      if is_gate v then begin
        sum := !sum +. cog.(v);
        incr k
      end;
      Array.iter
        (fun sink ->
          sum := !sum +. cog.(sink);
          incr k)
        fanouts.(v);
      if !k > 0 then pos.(v) <- !sum /. float_of_int !k
    done;
    (* Re-rank to integer slots so forces stay comparable across rounds. *)
    Array.sort
      (fun a b ->
        let d = compare pos.(a) pos.(b) in
        if d <> 0 then d else compare a b)
      order;
    Array.iteri (fun slot v -> pos.(v) <- float_of_int slot) order
  done;
  let ranked =
    Array.to_list c.Circuit.inputs
    |> List.filter_map (fun g ->
           match Circuit.input_position c g with
           | Some p -> Some (pos.(g), p)
           | None -> None)
    |> List.sort compare
  in
  let found = List.map snd ranked in
  let missing =
    List.init inputs Fun.id |> List.filter (fun p -> not (List.mem p found))
  in
  Array.of_list (found @ missing)

(* The oracle scores each candidate order by its estimated cutwidth and
   keeps the cheapest, preferring earlier candidates on ties so the
   paper's natural order stays the default when nothing beats it. *)
let oracle_candidates = [ Natural; Dfs_fanin; Force ]

let rec order heuristic c =
  let n = Circuit.num_inputs c in
  match heuristic with
  | Natural -> natural_order n
  | Reverse -> Array.init n (fun i -> n - 1 - i)
  | Shuffled seed ->
    let a = natural_order n in
    Prng.shuffle (Prng.create ~seed) a;
    a
  | Dfs_fanin -> dfs_fanin_order c
  | Force -> force_order c
  | Oracle ->
    let o, _, _, _ = oracle c in
    o

and oracle c =
  let scored =
    List.map
      (fun h ->
        let o = order h c in
        (h, o, Ffr.cutwidth c ~order:o))
      oracle_candidates
  in
  let best_h, best_o, best_cut =
    List.fold_left
      (fun (bh, bo, bc) (h, o, cut) ->
        if cut < bc then (h, o, cut) else (bh, bo, bc))
      (match scored with
      | first :: _ -> first
      | [] -> assert false)
      scored
  in
  let natural_cut =
    match scored with (_, _, cut) :: _ -> cut | [] -> assert false
  in
  let confident =
    best_h <> Natural && float_of_int best_cut <= 0.75 *. float_of_int natural_cut
  in
  (best_o, best_h, best_cut, confident)
