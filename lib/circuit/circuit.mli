(** Gate-level combinational netlists.

    A circuit is an array of named gates in topological order: every gate's
    fanins have strictly smaller indices.  Gate indices double as net
    identifiers — the net driven by gate [g] {e is} [g].  Primary inputs
    are gates of kind {!Gate.Input}; primary outputs are designated nets
    (any net, including an input, may be an output). *)

type gate = private {
  name : string;
  kind : Gate.kind;
  fanins : int array;  (** indices of driving gates, in pin order *)
}

type t = private {
  title : string;
  gates : gate array;  (** topologically sorted *)
  inputs : int array;  (** input gate indices, in declaration order *)
  outputs : int array;  (** output net indices, in declaration order *)
}

exception Malformed of string
(** Raised by {!create} on duplicate names, undefined fanins, arity
    violations, combinational cycles, or missing output nets. *)

val create :
  title:string ->
  inputs:string list ->
  outputs:string list ->
  (string * Gate.kind * string list) list ->
  t
(** [create ~title ~inputs ~outputs defs] builds a circuit from named gate
    definitions [(net, kind, fanin-names)], in any order; the result is
    topologically sorted.  @raise Malformed on inconsistent input. *)

(** {1 Accessors} *)

val num_gates : t -> int
(** Total nets (inputs included).  The paper's "netlist size". *)

val num_inputs : t -> int
val num_outputs : t -> int
val gate : t -> int -> gate
val index_of_name : t -> string -> int option
val is_input : t -> int -> bool
val is_output : t -> int -> bool
val input_position : t -> int -> int option
(** Position of an input gate within the declaration order. *)

(** {1 Connectivity} *)

val fanouts : t -> int array array
(** [fanouts c].(g) lists the gates reading net [g] (with multiplicity when
    a gate reads the same net on several pins). *)

val fanout_count : t -> int array

type branch = { stem : int; sink : int; pin : int }
(** One fanout branch: net [stem] feeding pin [pin] of gate [sink]. *)

val branches : t -> branch list
(** All stem-to-pin connections of nets with fanout of at least two — the
    fanout branches that, together with the primary inputs, form the
    checkpoints of the circuit. *)

val fanin_cone : t -> int -> int list
(** Nets in the transitive fanin of a net (itself included), ascending. *)

val fanout_cone : t -> int list -> bool array
(** Characteristic vector of the union of transitive fanouts of the given
    nets (the nets themselves included). *)

val output_cone : t -> int -> int list
(** Output nets reachable from a net — the POs the net {e feeds}. *)

val cone_walker : t -> fanouts:int array array -> int list -> int array
(** [cone_walker c ~fanouts] is a reusable selective-trace enumerator:
    applied to a net list, it returns the union of their transitive
    fanouts (the nets themselves included) as gate indices in ascending
    — hence topological — order.  [fanouts] must be [fanouts c].  The
    partial application owns generation-stamped scratch, so repeated
    queries touch only the cone (O(k log k) for a cone of k nets) and
    never re-scan or re-allocate the whole netlist.  Each walker's
    scratch is unsynchronised: share a walker within one domain only. *)

(** {1 Levels} *)

val levels : t -> int array
(** Distance from the primary inputs: inputs are level 0, other gates one
    more than their deepest fanin. *)

val depth : t -> int
(** Maximum level over all nets. *)

val max_levels_to_po : t -> int array
(** For each net, the longest path (in gate levels) to any primary output
    it reaches; 0 for nets that are themselves outputs and [-1] for nets
    that reach no output.  X-axis of the paper's Figures 3 and 8. *)

val min_levels_to_po : t -> int array
(** Shortest-path variant of {!max_levels_to_po}. *)

(** {1 Evaluation} *)

val eval : t -> bool array -> bool array
(** Evaluate all nets under an input assignment (indexed in input
    declaration order).  Returns one value per net. *)

val eval_outputs : t -> bool array -> bool array
(** Output values only, in output declaration order. *)

val retitle : t -> string -> t
(** Same circuit under a different title. *)

val pp_summary : Format.formatter -> t -> unit
