(** Structural constant propagation over a netlist.

    Abstracts every net to a structurally hashed AND-inverter literal
    and propagates Boolean identities (controlling constants, [x AND
    NOT x = 0], [x XOR x = 0], duplicate-fanin absorption, double
    negation) in one topological sweep.  A net whose literal collapses
    to a constant [v] provably carries [v] under {e every} input
    vector — its syndrome is exactly 0 or 1 — so the stuck-at-[v] fault
    on it is redundant (it can never be excited).  Verdicts are sound
    but incomplete: functionally constant nets whose constancy needs
    non-structural reasoning keep symbolic literals, and are left to
    the BDD tier of the linter. *)

type t

val compute : Circuit.t -> t
(** Linear in circuit size. *)

val constant : t -> int -> bool option
(** [constant t net] is [Some v] when the net provably carries [v]
    under every input assignment. *)

val equivalent : t -> int -> int -> bool
(** Provably equal nets (same literal).  Sound, incomplete. *)

val complementary : t -> int -> int -> bool
(** Provably complementary nets.  Sound, incomplete. *)

val literal : t -> int -> int
(** The raw AIG literal of a net (2*node + complement bit); equal
    literals mean provably equal functions. *)
