type gate = { name : string; kind : Gate.kind; fanins : int array }

type t = {
  title : string;
  gates : gate array;
  inputs : int array;
  outputs : int array;
}

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* Topologically sort named definitions (inputs first, then by dependency),
   detecting cycles and dangling references along the way. *)
let create ~title ~inputs ~outputs defs =
  let defs =
    List.map (fun name -> (name, Gate.Input, [])) inputs
    @ List.filter (fun (_, kind, _) -> kind <> Gate.Input) defs
  in
  let by_name = Hashtbl.create (List.length defs * 2) in
  List.iter
    (fun ((name, _, _) as def) ->
      if Hashtbl.mem by_name name then malformed "duplicate net %S" name;
      Hashtbl.add by_name name def)
    defs;
  List.iter
    (fun (name, kind, fanins) ->
      if not (Gate.arity_ok kind (List.length fanins)) then
        malformed "net %S: %s with %d fanins" name (Gate.name kind)
          (List.length fanins))
    defs;
  (* DFS post-order gives a topological order; a grey node on the stack
     means a combinational cycle. *)
  let state = Hashtbl.create (List.length defs * 2) in
  let order = ref [] in
  let rec visit name =
    match Hashtbl.find_opt state name with
    | Some `Done -> ()
    | Some `Active -> malformed "combinational cycle through %S" name
    | None ->
      let _, _, fanins =
        match Hashtbl.find_opt by_name name with
        | Some def -> def
        | None -> malformed "undefined net %S" name
      in
      Hashtbl.replace state name `Active;
      List.iter visit fanins;
      Hashtbl.replace state name `Done;
      order := name :: !order
  in
  List.iter (fun (name, _, _) -> visit name) defs;
  List.iter
    (fun name ->
      if not (Hashtbl.mem by_name name) then
        malformed "output %S is not a defined net" name)
    outputs;
  let sorted = List.rev !order in
  let index = Hashtbl.create (List.length sorted * 2) in
  List.iteri (fun i name -> Hashtbl.add index name i) sorted;
  let gates =
    Array.of_list
      (List.map
         (fun name ->
           let _, kind, fanins = Hashtbl.find by_name name in
           {
             name;
             kind;
             fanins = Array.of_list (List.map (Hashtbl.find index) fanins);
           })
         sorted)
  in
  let resolve names =
    Array.of_list (List.map (Hashtbl.find index) names)
  in
  { title; gates; inputs = resolve inputs; outputs = resolve outputs }

let num_gates c = Array.length c.gates
let num_inputs c = Array.length c.inputs
let num_outputs c = Array.length c.outputs
let gate c i = c.gates.(i)

let index_of_name c name =
  let n = num_gates c in
  let rec find i =
    if i >= n then None
    else if String.equal c.gates.(i).name name then Some i
    else find (i + 1)
  in
  find 0

let is_input c i = c.gates.(i).kind = Gate.Input

let is_output c i = Array.exists (fun o -> o = i) c.outputs

let input_position c i =
  let n = Array.length c.inputs in
  let rec find k =
    if k >= n then None else if c.inputs.(k) = i then Some k else find (k + 1)
  in
  find 0

let fanouts c =
  let out = Array.make (num_gates c) [] in
  Array.iteri
    (fun g gate ->
      Array.iter (fun f -> out.(f) <- g :: out.(f)) gate.fanins)
    c.gates;
  Array.map (fun consumers -> Array.of_list (List.rev consumers)) out

let fanout_count c =
  let out = Array.make (num_gates c) 0 in
  Array.iter
    (fun gate -> Array.iter (fun f -> out.(f) <- out.(f) + 1) gate.fanins)
    c.gates;
  out

type branch = { stem : int; sink : int; pin : int }

let branches c =
  let counts = fanout_count c in
  let acc = ref [] in
  Array.iteri
    (fun sink gate ->
      Array.iteri
        (fun pin stem ->
          if counts.(stem) >= 2 then acc := { stem; sink; pin } :: !acc)
        gate.fanins)
    c.gates;
  List.rev !acc

let fanin_cone c net =
  let seen = Array.make (num_gates c) false in
  let rec go n =
    if not seen.(n) then begin
      seen.(n) <- true;
      Array.iter go c.gates.(n).fanins
    end
  in
  go net;
  let acc = ref [] in
  for i = num_gates c - 1 downto 0 do
    if seen.(i) then acc := i :: !acc
  done;
  !acc

let fanout_cone c nets =
  let n = num_gates c in
  let in_cone = Array.make n false in
  List.iter (fun net -> in_cone.(net) <- true) nets;
  (* Topological order makes a single forward sweep sufficient. *)
  for g = 0 to n - 1 do
    if not in_cone.(g) && Array.exists (fun f -> in_cone.(f)) c.gates.(g).fanins
    then in_cone.(g) <- true
  done;
  in_cone

let output_cone c net =
  let reach = fanout_cone c [ net ] in
  Array.to_list c.outputs |> List.filter (fun o -> reach.(o))

let cone_walker c ~fanouts =
  let stamp = Array.make (num_gates c) 0 in
  let gen = ref 0 in
  fun nets ->
    incr gen;
    let g = !gen in
    let acc = ref [] in
    let rec visit n =
      if stamp.(n) <> g then begin
        stamp.(n) <- g;
        acc := n :: !acc;
        Array.iter visit fanouts.(n)
      end
    in
    List.iter visit nets;
    let cone = Array.of_list !acc in
    (* Gate indices are topologically sorted, so ascending index order is
       a valid evaluation order for the cone. *)
    Array.sort Stdlib.compare cone;
    cone

let levels c =
  let lv = Array.make (num_gates c) 0 in
  Array.iteri
    (fun g gate ->
      if gate.kind <> Gate.Input then
        lv.(g) <- 1 + Array.fold_left (fun m f -> max m lv.(f)) (-1) gate.fanins)
    c.gates;
  lv

let depth c = Array.fold_left max 0 (levels c)

let levels_to_po c ~combine =
  let n = num_gates c in
  let dist = Array.make n (-1) in
  Array.iter (fun o -> dist.(o) <- 0) c.outputs;
  (* Reverse topological sweep: a net's distance comes from its sinks. *)
  for g = n - 1 downto 0 do
    if dist.(g) >= 0 then
      Array.iter
        (fun f ->
          let candidate = dist.(g) + 1 in
          if dist.(f) < 0 then dist.(f) <- candidate
          else if f |> is_output c then ()
          else dist.(f) <- combine dist.(f) candidate)
        c.gates.(g).fanins
  done;
  dist

let max_levels_to_po c = levels_to_po c ~combine:max
let min_levels_to_po c = levels_to_po c ~combine:min

let eval c input_values =
  if Array.length input_values <> num_inputs c then
    invalid_arg "Circuit.eval: input vector length mismatch";
  let values = Array.make (num_gates c) false in
  Array.iteri (fun pos g -> values.(g) <- input_values.(pos)) c.inputs;
  Array.iteri
    (fun g gate ->
      if gate.kind <> Gate.Input then
        values.(g) <- Gate.eval_bool gate.kind (Array.map (Array.get values) gate.fanins))
    c.gates;
  values

let eval_outputs c input_values =
  let values = eval c input_values in
  Array.map (Array.get values) c.outputs

let retitle c title = { c with title }

let pp_summary fmt c =
  Format.fprintf fmt "%s: %d nets, %d PIs, %d POs, depth %d" c.title
    (num_gates c) (num_inputs c) (num_outputs c) (depth c)
