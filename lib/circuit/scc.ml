(* Tarjan's strongly connected components, iterative so pathological
   netlists (a single thousand-gate cycle, say) cannot blow the OCaml
   stack inside a diagnostic pass. *)

let compute succ =
  let n = Array.length succ in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let components = ref [] in
  (* Explicit DFS frames: (vertex, next successor position to visit). *)
  let frames = Stack.create () in
  let start v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true;
    Stack.push (v, ref 0) frames
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      start root;
      while not (Stack.is_empty frames) do
        let v, pos = Stack.top frames in
        if !pos < Array.length succ.(v) then begin
          let w = succ.(v).(!pos) in
          incr pos;
          if index.(w) < 0 then start w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          if lowlink.(v) = index.(v) then begin
            let comp = ref [] in
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              comp := w :: !comp;
              if w = v then continue := false
            done;
            let comp = Array.of_list !comp in
            Array.sort Stdlib.compare comp;
            components := comp :: !components
          end;
          match Stack.top_opt frames with
          | Some (parent, _) ->
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | None -> ()
        end
      done
    end
  done;
  List.rev !components

let cyclic succ =
  compute succ
  |> List.filter (fun comp ->
         Array.length comp > 1
         || Array.exists (fun w -> w = comp.(0)) succ.(comp.(0)))
