(** Fanout-free-region decomposition and linear-arrangement cut profiles.

    These are the structural primitives behind the topology oracle: FFR
    heads partition the netlist into tree-shaped cones, reconvergent
    stems witness the sharing that makes cones non-tree, and the
    support-interval cut profile estimates — before any BDD exists — how
    wide a symbolic build will get under a candidate variable order. *)

type t = private {
  head : int array;
      (** [head.(g)] is the FFR head net [g] belongs to.  Heads are nets
          with fanout other than one, plus primary outputs. *)
  size : int array;
      (** At heads, the number of nets in the region (head included);
          [0] elsewhere. *)
  heads : int list;  (** All FFR heads, ascending (hence topological). *)
}

val decompose : Circuit.t -> t
(** Single reverse-topological sweep; O(nets). *)

val reconvergent_stems : Circuit.t -> int list
(** Stems (fanout of at least two) whose branches meet again at some
    downstream gate — the structural signature that defeats tree
    ordering.  Ascending. *)

(** {1 Linear-arrangement cut profile}

    Under an order [p] ([p.(level) = input position], as produced by
    {!Ordering.order}), every net's input support occupies an interval
    of BDD levels.  The number of support intervals crossing the
    boundary between adjacent levels bounds the number of distinct
    subfunctions a symbolic build must keep live there, so the maximum
    crossing count — the cutwidth of the interval family — predicts
    peak BDD width.  All functions below are O(nets + inputs). *)

val support_spans : Circuit.t -> order:int array -> (int * int) array
(** Per net, the [(lo, hi)] BDD-level interval of its input support;
    [(max_int, -1)] for support-free nets. *)

val profile_of_spans : inputs:int -> (int * int) array -> int array
(** Crossing counts of an arbitrary interval family over [inputs]
    levels — the building block behind {!cut_profile} and the
    per-cone profiles of the topology oracle. *)

val cut_profile : Circuit.t -> order:int array -> int array
(** [cut_profile c ~order].(b) counts the support intervals crossing
    the boundary between levels [b] and [b + 1]; length
    [num_inputs - 1] (empty for single-input circuits). *)

val cutwidth : Circuit.t -> order:int array -> int
(** Maximum of {!cut_profile}; [0] for circuits with fewer than two
    inputs. *)

val cone_cutwidth : Circuit.t -> order:int array -> int -> int
(** {!cutwidth} restricted to the transitive fanin cone of one net —
    the per-output hostility measure used by the topology oracle. *)
