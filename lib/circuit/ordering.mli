(** Variable-ordering heuristics for the symbolic (OBDD) evaluation of a
    circuit.  Orders map BDD levels to primary-input {e positions} (the
    index into the circuit's input declaration order). *)

type heuristic =
  | Natural  (** declaration order — the paper's choice (§2.2) *)
  | Dfs_fanin
      (** depth-first traversal from the outputs, recording inputs at first
          visit (Malik-style topological ordering) *)
  | Reverse  (** declaration order reversed — a deliberately poor control *)
  | Shuffled of int  (** deterministic pseudo-random order from a seed *)
  | Force
      (** force-directed linear arrangement (Aloul-style FORCE): inputs
          settle at the center of gravity of their hyperedges *)
  | Oracle
      (** topology oracle: scores {!Natural}, {!Dfs_fanin} and {!Force}
          by estimated cutwidth ({!Ffr.cutwidth}) and keeps the best *)

val all : heuristic list
(** One representative of each constructor (seed 1 for [Shuffled]). *)

val name : heuristic -> string

val order : heuristic -> Circuit.t -> int array
(** Permutation [p] with [p.(level) = input position]; length equals the
    circuit's input count. *)

val oracle : Circuit.t -> int array * heuristic * int * bool
(** [oracle c] is [(order, winner, cutwidth, confident)]: the synthesized
    order, the base heuristic it came from, its estimated cutwidth, and
    whether the oracle is confident enough to override {!Natural} as an
    engine default (the winner beats natural's estimated cutwidth by at
    least 25%).  Ties prefer {!Natural}. *)
