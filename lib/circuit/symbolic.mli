(** Symbolic circuit evaluation: one OBDD per net, over variables indexed
    by primary-input position.  This supplies the {e good functions} [f_i]
    that Difference Propagation consumes, and the line {e syndromes}
    (SAT fractions) of the paper's §4.1. *)

type t

val build :
  ?profile:bool ->
  ?heuristic:Ordering.heuristic ->
  ?order:int array ->
  Circuit.t ->
  t
(** Evaluate the whole circuit symbolically (default heuristic:
    {!Ordering.Natural}).  [?order] is an explicit level-to-input-position
    permutation that overrides the heuristic entirely — the engine's
    reorder-rescue stage rebuilds under the order sifting discovered.
    [?profile] turns on {!Bdd.set_lifetime_profiling} from the first
    allocation, so build-phase nodes are stamped too. *)

val build_lazy :
  ?profile:bool ->
  ?heuristic:Ordering.heuristic ->
  ?order:int array ->
  Circuit.t ->
  t
(** Like {!build}, but constructs no good functions up front: each net's
    BDD is elaborated on first demand ({!force} / {!node_function}),
    building exactly the net's input cone.  A worker that only analyzes
    faults in one region of the circuit never pays for the rest. *)

val force : t -> int -> unit
(** Ensure a net's good function (and its whole input cone) is built.
    Idempotent; a no-op on eager instances. *)

val seal : t -> unit
(** Force every net's good function, then {!Bdd.seal} the manager: the
    complete set of good functions becomes an immutable snapshot that
    {!fork}s share read-only.  See {!Bdd.seal} for the sealing
    contract. *)

val fork : t -> t
(** A sibling instance over a {!Bdd.fork} of the (sealed) manager.  The
    good-function table is shared by reference — every handle in it is
    frozen, so forks read it without synchronisation and never write it.
    Use one fork per domain.  @raise Invalid_argument if the manager is
    not sealed or some net was never built. *)

val circuit : t -> Circuit.t
val manager : t -> Bdd.manager

val node_function : t -> int -> Bdd.t
(** Good function of a net; on lazy instances, builds it on demand. *)

val node_array : t -> Bdd.t array
(** The live good-function array, indexed by gate.  Registered with the
    manager as a {!Bdd.collect} root set, so entries survive collections
    and are remapped in place.  Entries of nets never {!force}d on a
    lazy instance are placeholders — consult {!node_function} instead
    unless the net is known built. *)

val built_count : t -> int
(** Number of nets whose good functions exist (laziness metric). *)

val output_functions : t -> Bdd.t array
(** Good functions of the primary outputs, in declaration order. *)

val syndrome : t -> int -> float
(** Fraction of input minterms setting the net to one (Savir's syndrome). *)

val total_nodes : t -> int
(** BDD nodes allocated while building — the ordering-ablation metric. *)

val eval_consistent : t -> bool array -> bool
(** Cross-check: symbolic and concrete evaluation agree on a vector. *)
