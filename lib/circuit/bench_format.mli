(** Reader and writer for the ISCAS-85/89 style [.bench] netlist format.

    The dialect accepted here is combinational only:
    {v
    # comment
    INPUT(a)
    OUTPUT(f)
    f = NAND(a, b)
    v}
    Gate mnemonics are case-insensitive; [INV] and [BUFF] are aliases for
    [NOT] and [BUF].  [DFF] is rejected with a clear error.

    Parsing is two-layered.  {!parse_raw} is syntax-only and
    span-preserving: it keeps the line/column of every net name so
    diagnostics (parse errors and the lint pass alike) can point at the
    offending token, and it {e tolerates} semantic trouble — duplicate
    drivers, undriven nets, combinational cycles — so a linter can
    report all of them with rule codes instead of dying on the first.
    {!parse} = {!parse_raw} + {!elaborate}, the strict path that turns
    any such defect into a spanned {!Parse_error}. *)

type span = { line : int; start_col : int; end_col : int }
(** Source position of one token: 1-based line, 1-based columns,
    [end_col] exclusive (SARIF region convention). *)

exception Parse_error of span * string

val pp_span : Format.formatter -> span -> unit
(** ["line:start_col"], the conventional diagnostic prefix tail. *)

(** {1 Raw (tolerant, span-preserving) layer} *)

type raw_gate = {
  g_net : string;
  g_span : span;  (** span of the defined net's name *)
  g_kind : Gate.kind;
  g_fanins : (string * span) list;
}

type raw = {
  r_title : string;
  r_inputs : (string * span) list;  (** declaration order *)
  r_outputs : (string * span) list;
  r_gates : raw_gate list;  (** file order *)
}

val parse_raw : title:string -> string -> raw
(** Syntax-level parse.  @raise Parse_error only on malformed syntax
    (bad parentheses, unknown gate kinds, DFF, INPUT used as a gate,
    malformed directives); semantic defects are preserved in the
    result for {!elaborate} or the lint pass to judge. *)

val parse_raw_file : string -> raw

val definitions : raw -> (string * span) list
(** Every driving definition — INPUT declarations then gate left-hand
    sides — in file order, duplicates included. *)

val uses : raw -> (string * span) list
(** Every net use — gate fanins then OUTPUT declarations. *)

val definition_spans : raw -> (string, span) Hashtbl.t
(** Net name -> span of its {e first} driving definition. *)

val cycles : raw -> (string * span) array list
(** Name-level combinational cycles (SCC components of the definition
    graph that contain a cycle), each member with its defining span. *)

(** {1 Strict layer} *)

val elaborate : raw -> Circuit.t
(** @raise Parse_error with a precise span on duplicate definitions,
    undriven nets and combinational cycles;
    @raise Circuit.Malformed on remaining semantic errors (arity
    violations, outputs naming undefined nets). *)

val parse : title:string -> string -> Circuit.t
(** Parse netlist text.  @raise Parse_error on syntax and spanned
    semantic errors and @raise Circuit.Malformed on the rest. *)

val parse_file : string -> Circuit.t
(** Parse a [.bench] file; the title is the basename without extension. *)

val print : Circuit.t -> string
(** Render a circuit back to [.bench] text; [parse] of the result
    reconstructs an identical circuit. *)
