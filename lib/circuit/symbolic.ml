type t = {
  circuit : Circuit.t;
  manager : Bdd.manager;
  node : Bdd.t array;
  (* [built.(g)] guards [node.(g)]: lazy instances fill entries on
     demand, eager ones start all-true.  The node array is registered
     with the manager, so a [Bdd.collect] keeps every built good
     function alive and remaps the handles in place. *)
  built : bool array;
}

let gate_function m kind operands =
  match (kind : Gate.kind) with
  | Gate.Input -> invalid_arg "Symbolic: Input has no local function"
  | Gate.Const0 -> Bdd.zero m
  | Gate.Const1 -> Bdd.one m
  | Gate.Buf -> List.nth operands 0
  | Gate.Not -> Bdd.bnot m (List.nth operands 0)
  | Gate.And -> Bdd.band_list m operands
  | Gate.Nand -> Bdd.bnot m (Bdd.band_list m operands)
  | Gate.Or -> Bdd.bor_list m operands
  | Gate.Nor -> Bdd.bnot m (Bdd.bor_list m operands)
  | Gate.Xor -> Bdd.bxor_list m operands
  | Gate.Xnor -> Bdd.bnot m (Bdd.bxor_list m operands)

let compute t g =
  let gate = t.circuit.Circuit.gates.(g) in
  match gate.Circuit.kind with
  | Gate.Input ->
    (match Circuit.input_position t.circuit g with
    | Some pos -> Bdd.var t.manager pos
    | None -> assert false)
  | kind ->
    let operands =
      Array.to_list gate.Circuit.fanins |> List.map (fun f -> t.node.(f))
    in
    gate_function t.manager kind operands

let rec force t g =
  if not t.built.(g) then begin
    let gate = t.circuit.Circuit.gates.(g) in
    Array.iter (force t) gate.Circuit.fanins;
    t.node.(g) <- compute t g;
    t.built.(g) <- true
  end

let make ~lazily ?(profile = false) ?(heuristic = Ordering.Natural) ?order
    circuit =
  let n_inputs = Circuit.num_inputs circuit in
  let order =
    match order with
    | Some o -> Array.copy o
    | None -> Ordering.order heuristic circuit
  in
  let manager = Bdd.create ~order n_inputs in
  if profile then Bdd.set_lifetime_profiling manager true;
  let n = Circuit.num_gates circuit in
  let node = Array.make n (Bdd.zero manager) in
  let built = Array.make n (not lazily) in
  let t = { circuit; manager; node; built } in
  ignore (Bdd.register manager node : Bdd.registration);
  if not lazily then
    for g = 0 to n - 1 do
      node.(g) <- compute t g
    done;
  t

let build ?profile ?heuristic ?order circuit =
  make ~lazily:false ?profile ?heuristic ?order circuit

let build_lazy ?profile ?heuristic ?order circuit =
  make ~lazily:true ?profile ?heuristic ?order circuit

let seal t =
  for g = 0 to Circuit.num_gates t.circuit - 1 do
    force t g
  done;
  Bdd.seal t.manager

let fork t =
  if not (Bdd.is_sealed t.manager) then
    invalid_arg "Symbolic.fork: manager is not sealed";
  if not (Array.for_all Fun.id t.built) then
    invalid_arg "Symbolic.fork: not every good function is built";
  (* The node and built arrays are shared read-only: every entry is
     built and every handle frozen, so no fork ever writes them (force
     is a no-op) and none registers them — frozen nodes are immortal, so
     a fork-local [Bdd.collect] needs no roots to keep them alive. *)
  { t with manager = Bdd.fork t.manager }
let circuit t = t.circuit
let manager t = t.manager

let node_function t g =
  force t g;
  t.node.(g)

let node_array t = t.node
let built_count t = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.built

let output_functions t =
  Array.map (node_function t) t.circuit.Circuit.outputs

let syndrome t g = Bdd.sat_fraction t.manager (node_function t g)
let total_nodes t = Bdd.allocated_nodes t.manager

let eval_consistent t inputs =
  let concrete = Circuit.eval t.circuit inputs in
  let assign pos = inputs.(pos) in
  let n = Circuit.num_gates t.circuit in
  let rec check g =
    g >= n
    || Bdd.eval t.manager (node_function t g) assign = concrete.(g)
       && check (g + 1)
  in
  check 0
