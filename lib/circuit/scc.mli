(** Strongly connected components (Tarjan, iterative).

    {!Circuit.t} is acyclic by construction, so this operates on plain
    adjacency arrays: the lint pass runs it over the {e name-level}
    definition graph of a raw netlist, where combinational cycles are
    still representable and must be diagnosed rather than crashed on. *)

val compute : int array array -> int array list
(** [compute succ] partitions the vertices [0 .. Array.length succ - 1]
    into strongly connected components, each in ascending vertex order,
    listed in reverse topological order of the condensation. *)

val cyclic : int array array -> int array list
(** The components that contain a cycle: size above one, or a single
    vertex with a self-loop. *)
