type t = { head : int array; size : int array; heads : int list }

let decompose c =
  let n = Circuit.num_gates c in
  let fanouts = Circuit.fanouts c in
  let head = Array.make n (-1) in
  for g = n - 1 downto 0 do
    if Circuit.is_output c g || Array.length fanouts.(g) <> 1 then
      head.(g) <- g
    else head.(g) <- head.(fanouts.(g).(0))
  done;
  let size = Array.make n 0 in
  Array.iter (fun h -> size.(h) <- size.(h) + 1) head;
  let heads = ref [] in
  for g = n - 1 downto 0 do
    if head.(g) = g then heads := g :: !heads
  done;
  { head; size; heads = !heads }

(* A stem reconverges when two of its fanout branches reach a common
   gate.  Labels flow forward: each branch carries its own id, and any
   gate that merges two distinct ids (or reads the stem on two pins)
   witnesses reconvergence. *)
let stem_reconverges c fanouts stem =
  let n = Circuit.num_gates c in
  let label = Array.make (n - stem) (-1) in
  let idx g = g - stem in
  let reconv = ref false in
  let merge a b =
    if a = -1 then b
    else if b = -1 then a
    else if a = b then a
    else begin
      reconv := true;
      -2
    end
  in
  Array.iteri
    (fun branch sink -> label.(idx sink) <- merge label.(idx sink) branch)
    fanouts.(stem);
  let g = ref (stem + 1) in
  while (not !reconv) && !g < n do
    let acc = ref label.(idx !g) in
    Array.iter
      (fun f -> if f > stem then acc := merge !acc label.(idx f))
      (Circuit.gate c !g).Circuit.fanins;
    label.(idx !g) <- !acc;
    incr g
  done;
  !reconv

let reconvergent_stems c =
  let fanouts = Circuit.fanouts c in
  let acc = ref [] in
  for g = Circuit.num_gates c - 1 downto 0 do
    if Array.length fanouts.(g) >= 2 && stem_reconverges c fanouts g then
      acc := g :: !acc
  done;
  !acc

let support_spans c ~order =
  let n = Circuit.num_gates c in
  let inputs = Circuit.num_inputs c in
  if Array.length order <> inputs then
    invalid_arg "Ffr.support_spans: order length mismatch";
  (* rank.(input position) = BDD level *)
  let rank = Array.make inputs (-1) in
  Array.iteri (fun level pos -> rank.(pos) <- level) order;
  let spans = Array.make n (max_int, -1) in
  for g = 0 to n - 1 do
    let gate = Circuit.gate c g in
    if gate.Circuit.kind = Gate.Input then (
      match Circuit.input_position c g with
      | Some pos -> spans.(g) <- (rank.(pos), rank.(pos))
      | None -> ())
    else
      Array.iter
        (fun f ->
          let flo, fhi = spans.(f) in
          let lo, hi = spans.(g) in
          spans.(g) <- (min lo flo, max hi fhi))
        gate.Circuit.fanins
  done;
  spans

let profile_of_spans ~inputs spans =
  if inputs < 2 then [||]
  else begin
    let delta = Array.make (inputs + 1) 0 in
    Array.iter
      (fun (lo, hi) ->
        if hi > lo then begin
          delta.(lo) <- delta.(lo) + 1;
          delta.(hi) <- delta.(hi) - 1
        end)
      spans;
    let profile = Array.make (inputs - 1) 0 in
    let running = ref 0 in
    for b = 0 to inputs - 2 do
      running := !running + delta.(b);
      profile.(b) <- !running
    done;
    profile
  end

let cut_profile c ~order =
  profile_of_spans ~inputs:(Circuit.num_inputs c) (support_spans c ~order)

let cutwidth c ~order =
  Array.fold_left max 0 (cut_profile c ~order)

let cone_cutwidth c ~order root =
  let spans = support_spans c ~order in
  let cone = Circuit.fanin_cone c root in
  let cone_spans = Array.of_list (List.map (fun g -> spans.(g)) cone) in
  Array.fold_left max 0
    (profile_of_spans ~inputs:(Circuit.num_inputs c) cone_spans)
