(* Reduced ordered BDDs with a hash-consing arena per manager.

   Node 0 is the zero terminal, node 1 the one terminal.  Internal nodes
   live in parallel int arrays (level, low, high).  Reduction invariants
   are enforced by [mk]: no node with low = high is created, and the
   unique table guarantees sharing, so handle equality is function
   equality.

   The arena has two tiers.  Handles below [frozen] live in the *frozen*
   tier: immutable parallel arrays plus a read-only unique table and a
   fully precomputed SAT-fraction memo, shared by reference across
   domains ([seal] / [fork]).  Handles at or above [frozen] live in the
   *scratch* tier — the ordinary mutable arena, indexed relative to
   [frozen] — which is private to one domain.  A freshly created manager
   simply has [frozen = 0], so the scratch tier is the whole arena and
   nothing below pays for the split beyond one branch in the accessors.

   Performance notes: the unique table is a custom open-addressing hash
   table over packed (level, low, high) triples — exact, resized at 2/3
   load.  The frozen tier gets its own open-addressing table built once
   at [seal] (load <= 1/2, probed first by [mk] whenever both children
   are frozen — frozen nodes have frozen children, so the probe is
   exact).  The binary-operation and negation caches are direct-mapped
   and lossy (collisions overwrite), which bounds memory and keeps
   lookups branch-cheap; a lost entry only costs recomputation.

   Epochs add a third, short-lived region on top of the scratch tier: a
   watermark recorded by [open_epoch] under which every later allocation
   falls.  [close_epoch] reclaims the whole region wholesale — survivors
   reachable from the registered (and explicitly passed) root arrays are
   tenured by copy down to the watermark, everything else is dropped by
   resetting [next] — so a per-fault caller pays O(region) per close
   instead of a periodic O(live arena) mark-sweep-compact.

   The op/ite caches are invalidated by bumping a generation counter
   rather than refilling the key arrays: a flush is O(1), which is what
   makes per-epoch invalidation affordable on tiny faults. *)

type t = int

(* Read-only remnant of the apply/ite memo tables captured at [seal]
   time: every entry references only frozen handles, so forked managers
   share it by reference and consult it before their private (cold)
   caches. *)
type warm_cache = {
  w_op_key1 : int array;
  w_op_key2 : int array;
  w_op_result : int array;
  w_ite_key1 : int array;
  w_ite_key2 : int array;
  w_ite_key3 : int array;
  w_ite_result : int array;
}

type manager = {
  n_vars : int;
  level_var : int array; (* level -> variable *)
  var_level : int array; (* variable -> level *)
  (* frozen tier: immutable after [seal]; shared by reference across
     [fork]ed managers, so nothing here may ever be written in place —
     [seal] replaces the arrays wholesale instead. *)
  mutable frozen : int; (* handles < frozen are frozen; 0 = no snapshot *)
  mutable fz_level : int array;
  mutable fz_low : int array;
  mutable fz_high : int array;
  mutable fz_sat : float array; (* precomputed for every frozen node *)
  mutable fz_table : int array; (* open addressing, -1 = empty *)
  mutable fz_mask : int;
  mutable sealed : bool; (* sealed managers refuse fresh allocations *)
  (* scratch tier: arrays indexed by [handle - frozen] *)
  mutable level : int array; (* node -> level (terminals: max_int) *)
  mutable low : int array;
  mutable high : int array;
  mutable next : int; (* next free *absolute* node index *)
  (* scratch unique table: open addressing, slot stores an absolute
     handle or -1 *)
  mutable table : int array;
  mutable table_mask : int;
  mutable table_count : int;
  (* direct-mapped operation caches.  An entry is valid only when its
     generation stamp equals [cache_gen]; [clear_caches] bumps the
     counter instead of refilling the arrays, so flushes are O(1). *)
  op_key1 : int array; (* packed (op, a) for unary / (op, a, b) spread *)
  op_key2 : int array;
  op_result : int array;
  op_gen : int array;
  ite_key1 : int array;
  ite_key2 : int array;
  ite_key3 : int array;
  ite_result : int array;
  ite_gen : int array;
  mutable cache_gen : int;
  (* warm cache: shared by reference across forks, never written after
     [seal] builds it.  [warm_hits] is fork-private accounting. *)
  mutable warm : warm_cache option;
  mutable warm_hits : int;
  (* epoch region: absolute watermark of the open epoch, -1 when none.
     [epoch_resets] counts closes, [tenured_total] survivors copied
     down across all closes. *)
  mutable epoch_mark : int;
  mutable epoch_resets : int;
  mutable tenured_total : int;
  (* lifetime profiler: when [profile] is set, every scratch allocation
     is stamped with the logical clock ([steps], i.e. apply entries) in
     [birth]; reclamation ([collect] / [close_epoch]) observes the death
     and banks the lifetime into log2 [lifetime_hist] buckets.  All
     stamps are logical, so the histogram is deterministic for a fixed
     operation sequence. *)
  mutable profile : bool;
  mutable birth : int array; (* scratch-relative, like [sat_memo] *)
  lifetime_hist : int array;
  mutable death_count : int;
  (* manager-resident statistics memos.  A node's function never
     changes, so its SAT fraction is memoised permanently (NaN = unset;
     scratch-relative index, the frozen tier has [fz_sat]); size/support
     walks stamp nodes with a generation counter instead of allocating a
     visited table.  [visit_stamp] is absolute-indexed and spans both
     tiers (length >= frozen + scratch capacity). *)
  mutable sat_memo : float array;
  mutable visit_stamp : int array;
  level_stamp : int array;
  mutable stat_gen : int;
  (* allocation budget for the current computation window: [mk] refuses
     to allocate a fresh node once [budget_used] reaches [budget_limit]
     (max_int = no window open).  Raising *before* the allocation keeps
     the arena consistent, so the manager stays fully usable after a
     blown budget. *)
  mutable budget_limit : int;
  mutable budget_used : int;
  (* wall-clock deadline for the current computation window: [mk] polls
     the clock every [deadline_poll_mask + 1] calls while a window is
     open ([deadline_at] < infinity) and raises once it has passed.
     Like the budget, the raise happens before any allocation, so the
     arena stays consistent. *)
  mutable deadline_at : float; (* absolute target; infinity = no window *)
  mutable deadline_started : float;
  mutable deadline_window_ms : float;
  mutable deadline_poll : int;
  (* handle arrays owned by clients (good-function tables, scratch
     deltas): [collect] treats every entry as a GC root and rewrites it
     in place with the node's post-compaction index. *)
  mutable registered : (int * int array) list;
  mutable next_registration : int;
  (* instrumentation: [steps] counts [mk] entries (cache misses of the
     apply layer — a deterministic, cachegrind-style work metric for a
     fixed operation sequence), [allocated_total] counts fresh node
     allocations over the manager's whole life (collections do not
     subtract), [scratch_peak] the high-water mark of live scratch
     nodes. *)
  mutable steps : int;
  mutable allocated_total : int;
  mutable scratch_peak : int;
}

exception Variable_out_of_range of int

exception Budget_exceeded of { nodes : int; budget : int }

exception Deadline_exceeded of { elapsed_ms : float; deadline_ms : float }

exception Sealed_manager

let lifetime_buckets = 48

let terminal_level = max_int
let op_and = 2
let op_or = 3
let op_xor = 4
let op_not = 5

let op_cache_bits = 18
let op_cache_size = 1 lsl op_cache_bits
let ite_cache_bits = 14
let ite_cache_size = 1 lsl ite_cache_bits

let scratch_cap = 1024

(* Scratch-tier starting capacity over a frozen snapshot.  Apply
   scratch scales with the good functions it operates on, so a fixed
   1024-slot start made every fork replay the same ladder of
   grow-and-rehash doublings on its first hot fault — a per-domain
   cold-start cost that surfaced as [apply_steps]/allocation noise in
   the sweep statistics.  A quarter of the frozen occupancy (floored at
   [scratch_cap]) absorbs a typical fault's intermediates without a
   single doubling while keeping per-domain memory a fraction of the
   shared snapshot's. *)
let scratch_size_for frozen = max scratch_cap (frozen / 4)

(* Matching unique-table start: the smallest power of two giving the
   pre-sized scratch tier a load factor under 1/2, never below the
   4096 a plain manager starts with. *)
let scratch_table_size cap =
  let size = ref 4096 in
  while !size < 2 * cap do
    size := !size * 2
  done;
  !size

let create ?order n_vars =
  if n_vars < 0 then invalid_arg "Bdd.create: negative variable count";
  let level_var =
    match order with
    | None -> Array.init n_vars (fun i -> i)
    | Some o ->
      if Array.length o <> n_vars then
        invalid_arg "Bdd.create: order length mismatch";
      let seen = Array.make n_vars false in
      Array.iter
        (fun v ->
          if v < 0 || v >= n_vars || seen.(v) then
            invalid_arg "Bdd.create: order is not a permutation";
          seen.(v) <- true)
        o;
      Array.copy o
  in
  let var_level = Array.make (max n_vars 1) 0 in
  Array.iteri (fun lvl v -> var_level.(v) <- lvl) level_var;
  let cap = scratch_cap in
  let level = Array.make cap 0 in
  level.(0) <- terminal_level;
  level.(1) <- terminal_level;
  {
    n_vars;
    level_var;
    var_level;
    frozen = 0;
    fz_level = [||];
    fz_low = [||];
    fz_high = [||];
    fz_sat = [||];
    fz_table = [| -1 |];
    fz_mask = 0;
    sealed = false;
    level;
    low = Array.make cap 0;
    high = Array.make cap 0;
    next = 2;
    table = Array.make 4096 (-1);
    table_mask = 4095;
    table_count = 0;
    op_key1 = Array.make op_cache_size (-1);
    op_key2 = Array.make op_cache_size (-1);
    op_result = Array.make op_cache_size (-1);
    op_gen = Array.make op_cache_size 0;
    ite_key1 = Array.make ite_cache_size (-1);
    ite_key2 = Array.make ite_cache_size (-1);
    ite_key3 = Array.make ite_cache_size (-1);
    ite_result = Array.make ite_cache_size (-1);
    ite_gen = Array.make ite_cache_size 0;
    cache_gen = 0;
    warm = None;
    warm_hits = 0;
    epoch_mark = -1;
    epoch_resets = 0;
    tenured_total = 0;
    profile = false;
    birth = [||];
    lifetime_hist = Array.make lifetime_buckets 0;
    death_count = 0;
    sat_memo = Array.make cap Float.nan;
    visit_stamp = Array.make cap 0;
    level_stamp = Array.make (max n_vars 1) 0;
    stat_gen = 0;
    budget_limit = max_int;
    budget_used = 0;
    deadline_at = infinity;
    deadline_started = 0.0;
    deadline_window_ms = 0.0;
    deadline_poll = 0;
    registered = [];
    next_registration = 0;
    steps = 0;
    allocated_total = 0;
    scratch_peak = 0;
  }

let num_vars m = m.n_vars

let level_of_var m v =
  if v < 0 || v >= m.n_vars then raise (Variable_out_of_range v);
  m.var_level.(v)

let var_at_level m lvl =
  if lvl < 0 || lvl >= m.n_vars then raise (Variable_out_of_range lvl);
  m.level_var.(lvl)

let allocated_nodes m = m.next
let frozen_nodes m = m.frozen
let scratch_nodes m = m.next - m.frozen
let scratch_peak m = max m.scratch_peak (m.next - m.frozen)
let apply_steps m = m.steps
let nodes_allocated m = m.allocated_total
let is_sealed m = m.sealed
let warm_cache_hits m = m.warm_hits
let epoch_resets m = m.epoch_resets
let tenured_nodes m = m.tenured_total
let epoch_open m = m.epoch_mark >= 0

(* Tier-dispatching node accessors — the only way node fields are read. *)
let[@inline] node_level m n =
  if n < m.frozen then m.fz_level.(n) else m.level.(n - m.frozen)

let[@inline] node_low m n =
  if n < m.frozen then m.fz_low.(n) else m.low.(n - m.frozen)

let[@inline] node_high m n =
  if n < m.frozen then m.fz_high.(n) else m.high.(n - m.frozen)

(* O(1): entries stamped with an older generation simply stop matching.
   The counter never wraps in practice (63-bit, bumped at most once per
   collection / epoch close). *)
let clear_caches m = m.cache_gen <- m.cache_gen + 1

let with_budget m ~budget f =
  if budget < 0 then invalid_arg "Bdd.with_budget: negative budget";
  let saved_limit = m.budget_limit and saved_used = m.budget_used in
  m.budget_limit <- budget;
  m.budget_used <- 0;
  Fun.protect
    ~finally:(fun () ->
      (* Inner allocations also count against an enclosing window. *)
      let inner = m.budget_used in
      m.budget_limit <- saved_limit;
      m.budget_used <- saved_used + inner)
    f

(* How many [mk] calls between clock reads while a deadline window is
   open.  Small enough that a wedged apply is interrupted within
   microseconds of work, large enough that gettimeofday stays invisible
   in the hot loop. *)
let deadline_poll_mask = 255

let check_deadline m =
  if m.deadline_at < infinity then begin
    m.deadline_poll <- m.deadline_poll + 1;
    if m.deadline_poll land deadline_poll_mask = 0 then begin
      let now = Unix.gettimeofday () in
      if now >= m.deadline_at then
        raise
          (Deadline_exceeded
             {
               elapsed_ms = (now -. m.deadline_started) *. 1000.0;
               deadline_ms = m.deadline_window_ms;
             })
    end
  end

let with_deadline m ~deadline_ms f =
  if not (deadline_ms > 0.0) then
    invalid_arg "Bdd.with_deadline: non-positive deadline";
  let saved_at = m.deadline_at
  and saved_started = m.deadline_started
  and saved_ms = m.deadline_window_ms in
  let now = Unix.gettimeofday () in
  let target = now +. (deadline_ms /. 1000.0) in
  (* An inner window can only tighten the enclosing one; when the outer
     deadline is nearer, the raise keeps reporting the outer window. *)
  if target < m.deadline_at then begin
    m.deadline_at <- target;
    m.deadline_started <- now;
    m.deadline_window_ms <- deadline_ms
  end;
  Fun.protect
    ~finally:(fun () ->
      m.deadline_at <- saved_at;
      m.deadline_started <- saved_started;
      m.deadline_window_ms <- saved_ms)
    f

let zero _ = 0
let one _ = 1
let is_zero _ f = f = 0
let is_one _ f = f = 1
let is_const _ f = f < 2
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (a : t) = a

(* Knuth-style multiplicative mixing of a packed triple. *)
let triple_hash a b c =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE3D) in
  let h = h lxor (h lsr 15) in
  h land max_int

let grow_nodes m =
  let cap = Array.length m.level in
  let copy a = Array.append a (Array.make cap 0) in
  m.level <- copy m.level;
  m.low <- copy m.low;
  m.high <- copy m.high;
  m.sat_memo <- Array.append m.sat_memo (Array.make cap Float.nan);
  if m.profile then m.birth <- copy m.birth;
  (* visit stamps are absolute-indexed; keep length = frozen + capacity *)
  m.visit_stamp <- copy m.visit_stamp

let rec rehash m =
  let old = m.table in
  let size = (m.table_mask + 1) * 2 in
  m.table <- Array.make size (-1);
  m.table_mask <- size - 1;
  m.table_count <- 0;
  Array.iter (fun n -> if n >= 0 then insert_node m n) old

and insert_node m n =
  let mask = m.table_mask in
  let s = n - m.frozen in
  let h = triple_hash m.level.(s) m.low.(s) m.high.(s) land mask in
  let rec probe i =
    if m.table.(i) < 0 then begin
      m.table.(i) <- n;
      m.table_count <- m.table_count + 1
    end
    else probe ((i + 1) land mask)
  in
  probe h;
  if m.table_count * 3 > (mask + 1) * 2 then rehash m

let scratch_mk m lvl lo hi =
  let mask = m.table_mask in
  let rec probe i =
    let n = m.table.(i) in
    if n < 0 then begin
      if m.sealed then raise Sealed_manager;
      if m.budget_used >= m.budget_limit then
        raise
          (Budget_exceeded { nodes = m.budget_used; budget = m.budget_limit });
      m.budget_used <- m.budget_used + 1;
      if m.next - m.frozen >= Array.length m.level then grow_nodes m;
      let fresh = m.next in
      m.next <- fresh + 1;
      m.allocated_total <- m.allocated_total + 1;
      let s = fresh - m.frozen in
      m.level.(s) <- lvl;
      m.low.(s) <- lo;
      m.high.(s) <- hi;
      if m.profile then m.birth.(s) <- m.steps;
      m.table.(i) <- fresh;
      m.table_count <- m.table_count + 1;
      if m.table_count * 3 > (mask + 1) * 2 then rehash m;
      fresh
    end
    else
      let s = n - m.frozen in
      if m.level.(s) = lvl && m.low.(s) = lo && m.high.(s) = hi then n
      else probe ((i + 1) land mask)
  in
  probe (triple_hash lvl lo hi land mask)

(* Hash-consing constructor; the single place nodes come to exist.  A
   frozen node's children are themselves frozen, so the shared frozen
   table is consulted exactly when both children are frozen — a miss
   there proves the node is scratch's to find or make. *)
let mk m lvl lo hi =
  if lo = hi then lo
  else begin
    check_deadline m;
    m.steps <- m.steps + 1;
    if lo < m.frozen && hi < m.frozen then begin
      let mask = m.fz_mask in
      let rec fprobe i =
        let n = m.fz_table.(i) in
        if n < 0 then scratch_mk m lvl lo hi
        else if m.fz_level.(n) = lvl && m.fz_low.(n) = lo && m.fz_high.(n) = hi
        then n
        else fprobe ((i + 1) land mask)
      in
      fprobe (triple_hash lvl lo hi land mask)
    end
    else scratch_mk m lvl lo hi
  end

(* ------------------------------------------------------------------ *)
(* Mark-sweep garbage collection.

   The scratch tier only ever grows during apply chains, and most of
   that growth is intermediate results nobody holds anymore.  [collect]
   reclaims it without invalidating the client's world: every handle
   stored in a registered array (plus any [roots] arrays passed to the
   call) is treated as live, the scratch survivors are compacted to a
   dense prefix (index order is preserved; remapping is two-phase so it
   holds even when reordering has appended children after their
   parents), and the registered arrays are rewritten in
   place with the new indices.  Frozen nodes are immortal and never
   move, so only handles >= [frozen] are remapped.  The scratch unique
   table is rebuilt over the survivors and the lossy op/ite caches are
   flushed (they hold pre-compaction indices).  SAT-fraction memos move
   with their nodes — a collection never forgets a computed statistic of
   a surviving function. *)

type registration = int

(* Lifetime bookkeeping: a reclaimed node's lifetime is the distance on
   the logical clock between its allocation and the reclamation that
   observed its death (collect or epoch close) — the same oracle an
   offline Merlin-style trace analysis would compute, except the trace
   is folded into log2 buckets on the fly.  Bucket b counts lifetimes
   in [2^(b-1), 2^b) apply steps; bucket 0 is sub-step (allocated and
   dead within one construction burst). *)
let lifetime_bucket lt =
  if lt <= 0 then 0
  else begin
    let b = ref 0 and v = ref lt in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    min !b (lifetime_buckets - 1)
  end

let record_death m s =
  let lt = m.steps - m.birth.(s) in
  let b = lifetime_bucket lt in
  m.lifetime_hist.(b) <- m.lifetime_hist.(b) + 1;
  m.death_count <- m.death_count + 1

let register m handles =
  let id = m.next_registration in
  m.next_registration <- id + 1;
  m.registered <- (id, handles) :: m.registered;
  id

let unregister m id =
  m.registered <- List.filter (fun (i, _) -> i <> id) m.registered

(* Internal body of [collect]: returns the remap table so [seal] can
   translate pre-collection cache entries into the warm cache. *)
let collect_impl ?(roots = []) m =
  if m.epoch_mark >= 0 then
    invalid_arg "Bdd.collect: an epoch is open (close it first)";
  let base = m.frozen in
  let root_arrays = roots @ List.map snd m.registered in
  let scratch_n = m.next - base in
  m.scratch_peak <- max m.scratch_peak scratch_n;
  let live = Array.make (max scratch_n 1) false in
  (* Terminals sit in scratch only while no snapshot exists. *)
  if base = 0 then begin
    live.(0) <- true;
    live.(1) <- true
  end;
  (* Mark: explicit stack, no recursion on deep diagrams.  Frozen
     handles are implicitly live; the walk stops at the tier boundary
     because frozen nodes only have frozen children. *)
  let stack = ref [] in
  let floor = max base 2 in
  let visit n =
    if n >= floor && not live.(n - base) then begin
      live.(n - base) <- true;
      stack := n :: !stack
    end
  in
  List.iter (Array.iter visit) root_arrays;
  let rec drain () =
    match !stack with
    | [] -> ()
    | n :: rest ->
      stack := rest;
      let s = n - base in
      visit m.low.(s);
      visit m.high.(s);
      drain ()
  in
  drain ();
  (* Compact: survivors slide down to a dense prefix in ascending index
     order.  Index assignment runs first so that children appended after
     their parents (as variable reordering does) are remapped correctly
     too; the in-place move is then safe because a survivor only ever
     moves downwards onto a slot that has already been copied out. *)
  let remap = Array.make (max scratch_n 1) (-1) in
  let start = if base = 0 then 2 else 0 in
  if base = 0 then begin
    remap.(0) <- 0;
    remap.(1) <- 1
  end;
  let count = ref start in
  for s = start to scratch_n - 1 do
    if live.(s) then begin
      remap.(s) <- !count;
      incr count
    end
  done;
  for s = start to scratch_n - 1 do
    if live.(s) then begin
      let fresh = remap.(s) in
      let child c = if c < base then c else base + remap.(c - base) in
      m.level.(fresh) <- m.level.(s);
      m.low.(fresh) <- child m.low.(s);
      m.high.(fresh) <- child m.high.(s);
      m.sat_memo.(fresh) <- m.sat_memo.(s);
      if m.profile then m.birth.(fresh) <- m.birth.(s)
    end
    else if m.profile then record_death m s
  done;
  m.next <- base + !count;
  (* Slots above the live prefix must read as unset for their next
     occupants; stale visit stamps are harmless (generations only move
     forward, so an old stamp never equals a fresh one). *)
  Array.fill m.sat_memo !count (Array.length m.sat_memo - !count) Float.nan;
  Array.fill m.table 0 (Array.length m.table) (-1);
  m.table_count <- 0;
  for s = start to !count - 1 do
    insert_node m (base + s)
  done;
  clear_caches m;
  List.iter
    (fun a ->
      Array.iteri
        (fun i h -> if h >= floor then a.(i) <- base + remap.(h - base))
        a)
    root_arrays;
  (base, floor, remap)

let collect ?roots m = ignore (collect_impl ?roots m : int * int * int array)

(* ------------------------------------------------------------------ *)
(* Epochs: region-scoped scratch reclamation.

   [open_epoch] records the current allocation watermark; [close_epoch]
   reclaims every node allocated since wholesale, tenuring the survivors
   (nodes reachable from the registered arrays plus any [?survivors]
   arrays) by copying them down to the watermark.  Nodes below the
   watermark — good functions, earlier tenured survivors — are never
   touched, walked or remapped, so the cost of a close is O(nodes the
   epoch allocated), not O(live arena).

   The unique table is maintained incrementally: every region node is
   deleted (backward-shift deletion keeps linear-probe chains intact)
   and the tenured copies are re-inserted under their new handles.  When
   the region rivals the table occupancy a full rebuild is cheaper and
   is used instead.  Op/ite caches may hold region handles, so a close
   that reclaimed anything bumps the cache generation (O(1)).

   Epochs do not compose with whole-arena restructuring: [collect],
   [sift] and [seal] raise while an epoch is open — closing first is the
   caller's explicit, loud decision. *)

type epoch = { mutable e_mark : int (* -1 once closed *) }

let open_epoch m =
  if m.sealed then invalid_arg "Bdd.open_epoch: manager is sealed";
  if m.epoch_mark >= 0 then
    invalid_arg "Bdd.open_epoch: an epoch is already open";
  m.epoch_mark <- m.next;
  { e_mark = m.next }

let epoch_nodes m =
  if m.epoch_mark < 0 then 0 else m.next - m.epoch_mark

(* Remove one node from the scratch unique table: find its slot by
   probing from its triple's home, then backward-shift (Knuth 6.4R) so
   that every remaining entry stays reachable from its own home slot. *)
let table_delete m n =
  let mask = m.table_mask in
  let s = n - m.frozen in
  let home = triple_hash m.level.(s) m.low.(s) m.high.(s) land mask in
  let i = ref home in
  while m.table.(!i) <> n do
    i := (!i + 1) land mask
  done;
  let j = ref !i in
  let moving = ref true in
  while !moving do
    m.table.(!i) <- -1;
    let settled = ref false in
    while not !settled do
      j := (!j + 1) land mask;
      let e = m.table.(!j) in
      if e < 0 then begin
        settled := true;
        moving := false
      end
      else begin
        let es = e - m.frozen in
        let k = triple_hash m.level.(es) m.low.(es) m.high.(es) land mask in
        (* The entry may stay iff its home lies cyclically in (i, j]. *)
        let stays =
          if !i < !j then !i < k && k <= !j else k <= !j || k > !i
        in
        if not stays then settled := true
      end
    done;
    if !moving then begin
      m.table.(!i) <- m.table.(!j);
      i := !j
    end
  done;
  m.table_count <- m.table_count - 1

let close_epoch ?(survivors = []) m e =
  if e.e_mark < 0 then invalid_arg "Bdd.close_epoch: epoch already closed";
  if m.epoch_mark <> e.e_mark then
    invalid_arg "Bdd.close_epoch: not this manager's open epoch";
  let mark = e.e_mark in
  e.e_mark <- -1;
  m.epoch_mark <- -1;
  let region = m.next - mark in
  if region > 0 then begin
    m.scratch_peak <- max m.scratch_peak (m.next - m.frozen);
    let base = m.frozen in
    let mstart = mark - base in
    let root_arrays = survivors @ List.map snd m.registered in
    (* Mark survivors: the walk never descends below the watermark —
       a region node's sub-watermark children are immortal here. *)
    let live = Array.make region false in
    let stack = ref [] in
    let visit n =
      if n >= mark && not live.(n - mark) then begin
        live.(n - mark) <- true;
        stack := n :: !stack
      end
    in
    List.iter (Array.iter visit) root_arrays;
    let rec drain () =
      match !stack with
      | [] -> ()
      | n :: rest ->
        stack := rest;
        let s = n - base in
        visit m.low.(s);
        visit m.high.(s);
        drain ()
    in
    drain ();
    (* Every region node leaves the unique table: dead ones for good,
       survivors to re-enter under their tenured handles.  Deleting
       one-by-one costs O(region); once the region rivals the table's
       occupancy, wiping and re-inserting the sub-watermark residents
       is cheaper. *)
    let rebuild_whole = 2 * region >= m.table_count in
    if not rebuild_whole then
      for n = mark to m.next - 1 do
        table_delete m n
      done;
    (* Tenure by copy, two-phase exactly like [collect]: handles are
       assigned first (ascending, so children appended after parents
       still remap), then moved — a survivor only ever slides down onto
       a slot already copied out. *)
    let remap = Array.make region (-1) in
    let count = ref 0 in
    for r = 0 to region - 1 do
      if live.(r) then begin
        remap.(r) <- !count;
        incr count
      end
    done;
    for r = 0 to region - 1 do
      if live.(r) then begin
        let fresh = mstart + remap.(r) in
        let s = mstart + r in
        let child c = if c < mark then c else mark + remap.(c - mark) in
        m.level.(fresh) <- m.level.(s);
        m.low.(fresh) <- child m.low.(s);
        m.high.(fresh) <- child m.high.(s);
        m.sat_memo.(fresh) <- m.sat_memo.(s);
        if m.profile then m.birth.(fresh) <- m.birth.(s)
      end
      else if m.profile then record_death m (mstart + r)
    done;
    let old_top = m.next - base in
    m.next <- mark + !count;
    Array.fill m.sat_memo (mstart + !count) (old_top - (mstart + !count))
      Float.nan;
    if rebuild_whole then begin
      Array.fill m.table 0 (Array.length m.table) (-1);
      m.table_count <- 0;
      let floor = if base = 0 then 2 else base in
      for n = floor to m.next - 1 do
        insert_node m n
      done
    end
    else
      for n = mark to m.next - 1 do
        insert_node m n
      done;
    clear_caches m;
    (* Root arrays now name tenured handles; sub-watermark entries are
       untouched by construction. *)
    List.iter
      (fun a ->
        Array.iteri
          (fun i h -> if h >= mark then a.(i) <- mark + remap.(h - mark))
          a)
      root_arrays;
    m.tenured_total <- m.tenured_total + !count
  end;
  m.epoch_resets <- m.epoch_resets + 1

(* ------------------------------------------------------------------ *)
(* Snapshots: seal / fork / unseal.

   [seal] migrates every live scratch node into the frozen tier and
   marks the manager sealed; [fork] then clones the manager record with
   a fresh, empty, private scratch tier while sharing the frozen arrays
   by reference.  Forked managers read the snapshot without any
   synchronisation: nothing writes the frozen arrays after the seal
   (SAT fractions are precomputed for every frozen node at seal time
   precisely so no lazy memo write hits shared memory), and
   [Domain.spawn] provides the happens-before edge that makes the
   pre-spawn seal visible to worker domains. *)

let seal m =
  if m.sealed then invalid_arg "Bdd.seal: manager is already sealed";
  if m.epoch_mark >= 0 then
    invalid_arg "Bdd.seal: an epoch is open (close it first)";
  (* The op/ite caches hold the final apply-memo entries of the build
     phase under pre-collection handles.  Cache flushes are generation
     bumps, so the entries themselves survive the collect below — after
     it, every entry whose operands and result all survived is remapped
     and kept as the read-only warm cache that forks share: a fork's
     first fault starts with the build's memo instead of a cold cache. *)
  let gen0 = m.cache_gen in
  (* Compaction first: registered arrays end up holding the final
     absolute handles, which the migration below preserves. *)
  let cbase, cfloor, remap = collect_impl m in
  let alive h =
    if h < cfloor then h
    else
      let r = remap.(h - cbase) in
      if r < 0 then -1 else cbase + r
  in
  let warm =
    {
      w_op_key1 = Array.make op_cache_size (-1);
      w_op_key2 = Array.make op_cache_size 0;
      w_op_result = Array.make op_cache_size 0;
      w_ite_key1 = Array.make ite_cache_size (-1);
      w_ite_key2 = Array.make ite_cache_size 0;
      w_ite_key3 = Array.make ite_cache_size 0;
      w_ite_result = Array.make ite_cache_size 0;
    }
  in
  for slot = 0 to op_cache_size - 1 do
    if m.op_gen.(slot) = gen0 && m.op_key1.(slot) >= 0 then begin
      let op = m.op_key1.(slot) land 7 in
      let a = alive (m.op_key1.(slot) lsr 3) in
      let b = alive m.op_key2.(slot) in
      let r = alive m.op_result.(slot) in
      if a >= 0 && b >= 0 && r >= 0 then begin
        let slot' = triple_hash op a b land (op_cache_size - 1) in
        warm.w_op_key1.(slot') <- (a lsl 3) lor op;
        warm.w_op_key2.(slot') <- b;
        warm.w_op_result.(slot') <- r
      end
    end
  done;
  for slot = 0 to ite_cache_size - 1 do
    if m.ite_gen.(slot) = gen0 && m.ite_key1.(slot) >= 0 then begin
      let f = alive m.ite_key1.(slot) in
      let g = alive m.ite_key2.(slot) in
      let h = alive m.ite_key3.(slot) in
      let r = alive m.ite_result.(slot) in
      if f >= 0 && g >= 0 && h >= 0 && r >= 0 then begin
        let slot' = triple_hash f g h land (ite_cache_size - 1) in
        warm.w_ite_key1.(slot') <- f;
        warm.w_ite_key2.(slot') <- g;
        warm.w_ite_key3.(slot') <- h;
        warm.w_ite_result.(slot') <- r
      end
    end
  done;
  m.warm <- Some warm;
  let base = m.frozen in
  let nf = m.next in
  if nf > base || base = 0 then begin
    let fz_level = Array.make nf 0 in
    let fz_low = Array.make nf 0 in
    let fz_high = Array.make nf 0 in
    let fz_sat = Array.make nf Float.nan in
    Array.blit m.fz_level 0 fz_level 0 base;
    Array.blit m.fz_low 0 fz_low 0 base;
    Array.blit m.fz_high 0 fz_high 0 base;
    Array.blit m.fz_sat 0 fz_sat 0 base;
    for n = base to nf - 1 do
      let s = n - base in
      fz_level.(n) <- m.level.(s);
      fz_low.(n) <- m.low.(s);
      fz_high.(n) <- m.high.(s)
    done;
    fz_sat.(0) <- 0.0;
    if nf > 1 then fz_sat.(1) <- 1.0;
    (* Precompute every frozen SAT fraction.  An explicit stack stands
       in for the recursion of [sat_fraction] (index order is not
       topological once reordering has run), and the per-node
       arithmetic is [sat_fraction]'s own, so the precomputed values
       are bit-identical to what the lazy memo would have produced. *)
    for n = max base 2 to nf - 1 do
      if Float.is_nan fz_sat.(n) then begin
        let stack = ref [ n ] in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | t :: rest ->
            let sl = fz_sat.(fz_low.(t)) and sh = fz_sat.(fz_high.(t)) in
            if Float.is_nan sl then stack := fz_low.(t) :: !stack
            else if Float.is_nan sh then stack := fz_high.(t) :: !stack
            else begin
              fz_sat.(t) <- 0.5 *. (sl +. sh);
              stack := rest
            end
        done
      end
    done;
    let size = ref 16 in
    while !size < 3 * nf do
      size := !size * 2
    done;
    let fz_table = Array.make !size (-1) in
    let fz_mask = !size - 1 in
    for n = 2 to nf - 1 do
      let h = ref (triple_hash fz_level.(n) fz_low.(n) fz_high.(n) land fz_mask) in
      while fz_table.(!h) >= 0 do
        h := (!h + 1) land fz_mask
      done;
      fz_table.(!h) <- n
    done;
    m.fz_level <- fz_level;
    m.fz_low <- fz_low;
    m.fz_high <- fz_high;
    m.fz_sat <- fz_sat;
    m.fz_table <- fz_table;
    m.fz_mask <- fz_mask;
    m.frozen <- nf;
    let cap = scratch_size_for nf in
    m.level <- Array.make cap 0;
    m.low <- Array.make cap 0;
    m.high <- Array.make cap 0;
    m.sat_memo <- Array.make cap Float.nan;
    (* Frozen nodes are immortal: their births leave the profile (they
       show up as the [lp_frozen] live count, not as deaths). *)
    if m.profile then m.birth <- Array.make cap 0;
    m.visit_stamp <- Array.make (nf + cap) 0;
    m.next <- nf;
    let tsize = scratch_table_size cap in
    m.table <- Array.make tsize (-1);
    m.table_mask <- tsize - 1;
    m.table_count <- 0;
    clear_caches m
  end;
  m.sealed <- true

let unseal m = m.sealed <- false

let fork m =
  if not m.sealed then invalid_arg "Bdd.fork: manager is not sealed";
  (* Pre-sized from the snapshot it forks over, like [seal]'s own
     scratch tier — see [scratch_size_for]. *)
  let cap = scratch_size_for m.frozen in
  let tsize = scratch_table_size cap in
  {
    m with
    sealed = false;
    level = Array.make cap 0;
    low = Array.make cap 0;
    high = Array.make cap 0;
    next = m.frozen;
    table = Array.make tsize (-1);
    table_mask = tsize - 1;
    table_count = 0;
    op_key1 = Array.make op_cache_size (-1);
    op_key2 = Array.make op_cache_size (-1);
    op_result = Array.make op_cache_size (-1);
    op_gen = Array.make op_cache_size 0;
    ite_key1 = Array.make ite_cache_size (-1);
    ite_key2 = Array.make ite_cache_size (-1);
    ite_key3 = Array.make ite_cache_size (-1);
    ite_result = Array.make ite_cache_size (-1);
    ite_gen = Array.make ite_cache_size 0;
    cache_gen = 0;
    (* [warm] rides along by reference from the record copy: read-only
       after [seal], so sharing it across domains is free. *)
    warm_hits = 0;
    epoch_mark = -1;
    epoch_resets = 0;
    tenured_total = 0;
    birth = (if m.profile then Array.make cap 0 else [||]);
    lifetime_hist = Array.make lifetime_buckets 0;
    death_count = 0;
    sat_memo = Array.make cap Float.nan;
    visit_stamp = Array.make (m.frozen + cap) 0;
    level_stamp = Array.make (max m.n_vars 1) 0;
    stat_gen = 0;
    budget_limit = max_int;
    budget_used = 0;
    deadline_at = infinity;
    deadline_started = 0.0;
    deadline_window_ms = 0.0;
    deadline_poll = 0;
    registered = [];
    next_registration = 0;
    steps = 0;
    allocated_total = 0;
    scratch_peak = 0;
  }

let var m v =
  let lvl = level_of_var m v in
  mk m lvl 0 1

let nvar m v =
  let lvl = level_of_var m v in
  mk m lvl 1 0

let op_slot op a b =
  triple_hash op a b land (op_cache_size - 1)

let rec bnot m f =
  if f < 2 then 1 - f
  else begin
    let slot = op_slot op_not f 0 in
    let key = (f lsl 3) lor op_not in
    if
      m.op_key1.(slot) = key
      && m.op_key2.(slot) = 0
      && m.op_gen.(slot) = m.cache_gen
    then m.op_result.(slot)
    else begin
      let r =
        match m.warm with
        | Some w when w.w_op_key1.(slot) = key && w.w_op_key2.(slot) = 0 ->
          (* Warm entries reference only frozen handles, so a hit is the
             same canonical node the recursion would have produced. *)
          m.warm_hits <- m.warm_hits + 1;
          w.w_op_result.(slot)
        | _ ->
          mk m (node_level m f) (bnot m (node_low m f)) (bnot m (node_high m f))
      in
      m.op_key1.(slot) <- key;
      m.op_key2.(slot) <- 0;
      m.op_result.(slot) <- r;
      m.op_gen.(slot) <- m.cache_gen;
      r
    end
  end

(* Generic binary apply for AND / OR / XOR with commutative cache keys. *)
let rec apply m op a b =
  let shortcut =
    match op with
    | 2 ->
      if a = 0 || b = 0 then 0
      else if a = 1 then b
      else if b = 1 then a
      else if a = b then a
      else -1
    | 3 ->
      if a = 1 || b = 1 then 1
      else if a = 0 then b
      else if b = 0 then a
      else if a = b then a
      else -1
    | _ ->
      if a = b then 0
      else if a = 0 then b
      else if b = 0 then a
      else if a = 1 then bnot m b
      else if b = 1 then bnot m a
      else -1
  in
  if shortcut >= 0 then shortcut
  else begin
    let a, b = if a <= b then (a, b) else (b, a) in
    let slot = op_slot op a b in
    let key = (a lsl 3) lor op in
    if
      m.op_key1.(slot) = key
      && m.op_key2.(slot) = b
      && m.op_gen.(slot) = m.cache_gen
    then m.op_result.(slot)
    else begin
      let r =
        match m.warm with
        | Some w when w.w_op_key1.(slot) = key && w.w_op_key2.(slot) = b ->
          m.warm_hits <- m.warm_hits + 1;
          w.w_op_result.(slot)
        | _ ->
          let la = node_level m a and lb = node_level m b in
          let lvl = if la < lb then la else lb in
          let a0, a1 =
            if la = lvl then (node_low m a, node_high m a) else (a, a)
          in
          let b0, b1 =
            if lb = lvl then (node_low m b, node_high m b) else (b, b)
          in
          mk m lvl (apply m op a0 b0) (apply m op a1 b1)
      in
      m.op_key1.(slot) <- key;
      m.op_key2.(slot) <- b;
      m.op_result.(slot) <- r;
      m.op_gen.(slot) <- m.cache_gen;
      r
    end
  end

let band m a b = apply m op_and a b
let bor m a b = apply m op_or a b
let bxor m a b = apply m op_xor a b
let bxnor m a b = bnot m (bxor m a b)
let bnand m a b = bnot m (band m a b)
let bnor m a b = bnot m (bor m a b)
let bimp m a b = bor m (bnot m a) b

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else if g = 0 && h = 1 then bnot m f
  else begin
    let slot = triple_hash f g h land (ite_cache_size - 1) in
    if
      m.ite_key1.(slot) = f
      && m.ite_key2.(slot) = g
      && m.ite_key3.(slot) = h
      && m.ite_gen.(slot) = m.cache_gen
    then m.ite_result.(slot)
    else begin
      let r =
        match m.warm with
        | Some w
          when w.w_ite_key1.(slot) = f
               && w.w_ite_key2.(slot) = g
               && w.w_ite_key3.(slot) = h ->
          m.warm_hits <- m.warm_hits + 1;
          w.w_ite_result.(slot)
        | _ ->
          let lf = node_level m f
          and lg = node_level m g
          and lh = node_level m h in
          let lvl = min lf (min lg lh) in
          let split x lx =
            if lx = lvl then (node_low m x, node_high m x) else (x, x)
          in
          let f0, f1 = split f lf in
          let g0, g1 = split g lg in
          let h0, h1 = split h lh in
          mk m lvl (ite m f0 g0 h0) (ite m f1 g1 h1)
      in
      m.ite_key1.(slot) <- f;
      m.ite_key2.(slot) <- g;
      m.ite_key3.(slot) <- h;
      m.ite_result.(slot) <- r;
      m.ite_gen.(slot) <- m.cache_gen;
      r
    end
  end

let band_list m = List.fold_left (band m) 1
let bor_list m = List.fold_left (bor m) 0
let bxor_list m = List.fold_left (bxor m) 0

let top_var m f = if f < 2 then None else Some m.level_var.(node_level m f)

let restrict m f ~var ~value =
  let lvl = level_of_var m var in
  let memo = Hashtbl.create 64 in
  let rec go f =
    if f < 2 || node_level m f > lvl then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let r =
          if node_level m f = lvl then
            if value then node_high m f else node_low m f
          else mk m (node_level m f) (go (node_low m f)) (go (node_high m f))
        in
        Hashtbl.add memo f r;
        r
  in
  go f

let cofactors m f v =
  (restrict m f ~var:v ~value:false, restrict m f ~var:v ~value:true)

let compose m f ~var g =
  let f0, f1 = cofactors m f var in
  ite m g f1 f0

let exists m vars f =
  let quantify acc v =
    let a0, a1 = cofactors m acc v in
    bor m a0 a1
  in
  List.fold_left quantify f vars

let forall m vars f =
  let quantify acc v =
    let a0, a1 = cofactors m acc v in
    band m a0 a1
  in
  List.fold_left quantify f vars

let fresh_stat_gen m =
  m.stat_gen <- m.stat_gen + 1;
  m.stat_gen

let support m f =
  let gen = fresh_stat_gen m in
  let rec go f =
    if f >= 2 && m.visit_stamp.(f) <> gen then begin
      m.visit_stamp.(f) <- gen;
      m.level_stamp.(node_level m f) <- gen;
      go (node_low m f);
      go (node_high m f)
    end
  in
  go f;
  let acc = ref [] in
  for lvl = m.n_vars - 1 downto 0 do
    if m.level_stamp.(lvl) = gen then acc := m.level_var.(lvl) :: !acc
  done;
  List.sort Stdlib.compare !acc

let size m f =
  let gen = fresh_stat_gen m in
  let count = ref 0 in
  let rec go f =
    if f >= 2 && m.visit_stamp.(f) <> gen then begin
      m.visit_stamp.(f) <- gen;
      incr count;
      go (node_low m f);
      go (node_high m f)
    end
  in
  go f;
  !count

(* Permanent memo: fractions are in [0, 1], so NaN is a free "unset".
   Frozen nodes were all precomputed at [seal] — the lookup there is a
   pure read, which is what makes concurrent forked readers safe. *)
let rec sat_fraction m f =
  if f < m.frozen then m.fz_sat.(f)
  else if f = 0 then 0.0
  else if f = 1 then 1.0
  else
    let s = f - m.frozen in
    let cached = m.sat_memo.(s) in
    if Float.is_nan cached then begin
      let p =
        0.5 *. (sat_fraction m (node_low m f) +. sat_fraction m (node_high m f))
      in
      m.sat_memo.(s) <- p;
      p
    end
    else cached

let sat_count m f = sat_fraction m f *. Float.pow 2.0 (float_of_int m.n_vars)

let any_sat m f =
  if f = 0 then None
  else
    let rec go f acc =
      if f = 1 then acc
      else
        let v = m.level_var.(node_level m f) in
        if node_high m f <> 0 then go (node_high m f) ((v, true) :: acc)
        else go (node_low m f) ((v, false) :: acc)
    in
    Some (List.rev (go f []))

let sat_cubes m ?limit f =
  let out = ref [] in
  let count = ref 0 in
  let budget = match limit with None -> max_int | Some n -> n in
  let exception Done in
  let rec go f acc =
    if !count >= budget then raise Done;
    if f = 1 then begin
      out := List.rev acc :: !out;
      incr count
    end
    else if f <> 0 then begin
      let v = m.level_var.(node_level m f) in
      go (node_low m f) ((v, false) :: acc);
      go (node_high m f) ((v, true) :: acc)
    end
  in
  (try go f [] with Done -> ());
  List.rev !out

let eval m f assign =
  let rec go f =
    if f = 0 then false
    else if f = 1 then true
    else if assign m.level_var.(node_level m f) then go (node_high m f)
    else go (node_low m f)
  in
  go f

let of_fun m ~arity fn =
  if arity < 0 || arity > m.n_vars then invalid_arg "Bdd.of_fun: bad arity";
  let args = Array.make arity false in
  (* Expand over variables in level order so intermediate BDDs stay small. *)
  let vars_in_level_order =
    Array.to_list m.level_var |> List.filter (fun v -> v < arity)
  in
  let rec go = function
    | [] -> if fn args then 1 else 0
    | v :: rest ->
      args.(v) <- false;
      let lo = go rest in
      args.(v) <- true;
      let hi = go rest in
      args.(v) <- false;
      mk m m.var_level.(v) lo hi
  in
  go vars_in_level_order

let cube m literals =
  List.fold_left
    (fun acc (v, value) -> band m acc (if value then var m v else nvar m v))
    1 literals

let rebuild ~src ~dst f =
  if num_vars src <> num_vars dst then
    invalid_arg "Bdd.rebuild: variable universes differ";
  let memo = Hashtbl.create 256 in
  let rec go f =
    if f < 2 then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let v = src.level_var.(node_level src f) in
        let lo = go (node_low src f) in
        let hi = go (node_high src f) in
        let r = ite dst (var dst v) hi lo in
        Hashtbl.add memo f r;
        r
  in
  go f

(* ------------------------------------------------------------------ *)
(* Dynamic variable reordering: Rudell-style sifting.

   Reordering only runs on a plain single-tier arena ([frozen = 0], not
   sealed): the frozen tier is shared read-only across domains, so it
   can never be restructured in place.  The engine therefore computes a
   rescue order on a private side manager and rebuilds under it, rather
   than sifting a snapshot.

   The primitive is an adjacent-level swap.  Writing f = x?h:l for a
   node at level i (x) with cofactors split against the variable y at
   level i+1, the swap rewrites f = y?(x?h1:l1):(x?h0:l0) *in place*:
   the handle keeps denoting the same function, so client handles (and
   memoised SAT fractions, which depend only on the function) stay
   valid across a swap.  Level-i nodes with no level-i+1 child are
   merely relabelled to level i+1; old level-i+1 nodes move to level i.
   Fresh x-nodes are deduplicated through a local table seeded with the
   relabelled ones — no two distinct handles can come to share a
   (level, low, high) triple, because every handle keeps its function
   and distinct handles denote distinct functions.  The global unique
   table is left stale during a sift and rebuilt before returning (on
   every exit path, including a deadline raise), so the apply layer
   must be quiescent while sifting.

   Budget windows are deliberately not charged: sifting is maintenance
   that shrinks the arena, not apply work, and raising [Budget_exceeded]
   mid-swap could strand half-relabelled levels.  Deadlines are honoured
   at swap boundaries, where the arena is structurally consistent. *)

let build_buckets m buckets =
  Array.fill buckets 0 (Array.length buckets) [];
  for n = m.next - 1 downto 2 do
    let lvl = m.level.(n) in
    if lvl < m.n_vars then buckets.(lvl) <- n :: buckets.(lvl)
  done

let rebuild_unique_table m =
  Array.fill m.table 0 (Array.length m.table) (-1);
  m.table_count <- 0;
  for n = 2 to m.next - 1 do
    insert_node m n
  done

(* Exact live-node count under the given roots plus every registered
   array — garbage from earlier swaps does not distort the walk, which
   is what makes the per-position size signal trustworthy without a
   full collection per swap. *)
let live_count m root_arrays =
  let gen = fresh_stat_gen m in
  let count = ref 0 in
  let rec go f =
    if f >= 2 && m.visit_stamp.(f) <> gen then begin
      m.visit_stamp.(f) <- gen;
      incr count;
      go m.low.(f);
      go m.high.(f)
    end
  in
  List.iter (Array.iter go) root_arrays;
  !count

let reorder_deadline_check m =
  if m.deadline_at < infinity then begin
    let now = Unix.gettimeofday () in
    if now >= m.deadline_at then
      raise
        (Deadline_exceeded
           {
             elapsed_ms = (now -. m.deadline_started) *. 1000.0;
             deadline_ms = m.deadline_window_ms;
           })
  end

(* Swap levels i and i+1.  Phase 1 only reads existing nodes and
   appends fresh ones (orphans on an abort are plain garbage); phase 2
   performs the in-place rewrites, so the swap is atomic with respect
   to node semantics. *)
let swap_core m buckets i =
  let xs = buckets.(i) and ys = buckets.(i + 1) in
  let xtab : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let solitary = ref [] and restructured = ref [] in
  List.iter
    (fun x ->
      let lo = m.low.(x) and hi = m.high.(x) in
      if m.level.(lo) = i + 1 || m.level.(hi) = i + 1 then
        restructured := x :: !restructured
      else begin
        solitary := x :: !solitary;
        Hashtbl.replace xtab (lo, hi) x
      end)
    xs;
  let solitary = List.rev !solitary
  and restructured = List.rev !restructured in
  let fresh_xs = ref [] in
  let get_x lo hi =
    if lo = hi then lo
    else
      match Hashtbl.find_opt xtab (lo, hi) with
      | Some n -> n
      | None ->
        if m.next >= Array.length m.level then grow_nodes m;
        let fresh = m.next in
        m.next <- fresh + 1;
        m.allocated_total <- m.allocated_total + 1;
        m.level.(fresh) <- i + 1;
        m.low.(fresh) <- lo;
        m.high.(fresh) <- hi;
        m.sat_memo.(fresh) <- Float.nan;
        if m.profile then m.birth.(fresh) <- m.steps;
        Hashtbl.replace xtab (lo, hi) fresh;
        fresh_xs := fresh :: !fresh_xs;
        fresh
  in
  let pending =
    List.map
      (fun x ->
        let lo = m.low.(x) and hi = m.high.(x) in
        let lo0, lo1 =
          if m.level.(lo) = i + 1 then (m.low.(lo), m.high.(lo)) else (lo, lo)
        in
        let hi0, hi1 =
          if m.level.(hi) = i + 1 then (m.low.(hi), m.high.(hi)) else (hi, hi)
        in
        (x, get_x lo0 hi0, get_x lo1 hi1))
      restructured
  in
  List.iter
    (fun (x, nl, nh) ->
      m.low.(x) <- nl;
      m.high.(x) <- nh)
    pending;
  List.iter (fun y -> m.level.(y) <- i) ys;
  List.iter (fun x -> m.level.(x) <- i + 1) solitary;
  buckets.(i) <- ys @ restructured;
  buckets.(i + 1) <- solitary @ List.rev !fresh_xs;
  let a = m.level_var.(i) and b = m.level_var.(i + 1) in
  m.level_var.(i) <- b;
  m.level_var.(i + 1) <- a;
  m.var_level.(a) <- i + 1;
  m.var_level.(b) <- i

let reorder_guard name m =
  if m.sealed then invalid_arg (name ^ ": manager is sealed");
  if m.frozen <> 0 then
    invalid_arg (name ^ ": manager has a frozen tier (reordering needs a plain arena)");
  if m.epoch_mark >= 0 then
    invalid_arg (name ^ ": an epoch is open (close it first)")

let swap_levels m i =
  reorder_guard "Bdd.swap_levels" m;
  if i < 0 || i + 1 >= m.n_vars then
    invalid_arg "Bdd.swap_levels: level out of range";
  let buckets = Array.make m.n_vars [] in
  build_buckets m buckets;
  swap_core m buckets i;
  rebuild_unique_table m;
  clear_caches m

(* Move variable [v] through every feasible position, keep the best
   live size seen, and settle there.  Called right after a collection,
   so [m.next - 2] is the exact starting size. *)
let sift_var m buckets root_arrays v ~max_growth =
  let n = m.n_vars in
  let size0 = m.next - 2 in
  let start = m.var_level.(v) in
  let best = ref size0 and best_pos = ref start in
  let cap =
    max size0 (int_of_float (max_growth *. float_of_int size0))
  in
  let pos = ref start in
  let step_down () =
    swap_core m buckets !pos;
    incr pos
  and step_up () =
    swap_core m buckets (!pos - 1);
    decr pos
  in
  let run step in_range =
    let stop = ref false in
    while (not !stop) && in_range () do
      step ();
      reorder_deadline_check m;
      let s = live_count m root_arrays in
      if s < !best then begin
        best := s;
        best_pos := !pos
      end;
      if s > cap then stop := true
    done
  in
  let down () = run step_down (fun () -> !pos < n - 1)
  and up () = run step_up (fun () -> !pos > 0) in
  if n - 1 - start <= start then begin
    down ();
    up ()
  end
  else begin
    up ();
    down ()
  end;
  while !pos < !best_pos do
    step_down ()
  done;
  while !pos > !best_pos do
    step_up ()
  done

let sift ?(roots = []) ?(max_growth = 1.2) ?(max_vars = max_int) m =
  reorder_guard "Bdd.sift" m;
  if not (max_growth >= 1.0) then
    invalid_arg "Bdd.sift: growth cap below 1.0";
  collect ~roots m;
  let size_before = m.next - 2 in
  if m.n_vars <= 1 then (size_before, size_before)
  else begin
    let buckets = Array.make m.n_vars [] in
    build_buckets m buckets;
    let root_arrays = roots @ List.map snd m.registered in
    (* Widest levels first — the classic schedule, and deterministic
       because the post-collection arena is canonical. *)
    let vars =
      List.init m.n_vars (fun lvl -> (List.length buckets.(lvl), m.level_var.(lvl)))
      |> List.filter (fun (w, _) -> w > 0)
      |> List.sort (fun (wa, va) (wb, vb) ->
             if wa <> wb then compare wb wa else compare va vb)
      |> List.map snd
    in
    let vars =
      if max_vars >= List.length vars then vars
      else List.filteri (fun i _ -> i < max_vars) vars
    in
    Fun.protect ~finally:(fun () ->
        rebuild_unique_table m;
        clear_caches m)
    @@ fun () ->
    List.iter
      (fun v ->
        reorder_deadline_check m;
        sift_var m buckets root_arrays v ~max_growth;
        collect ~roots m;
        build_buckets m buckets)
      vars;
    (size_before, m.next - 2)
  end

let current_order m = Array.copy m.level_var

(* ------------------------------------------------------------------ *)
(* Lifetime profiling                                                  *)

type lifetime_profile = {
  lp_clock : int;
  lp_deaths : int;
  lp_live : int;
  lp_frozen : int;
  lp_buckets : int array;
}

let set_lifetime_profiling m on =
  if on && not m.profile then begin
    m.profile <- true;
    (* Pre-existing scratch nodes are stamped at the current clock, so
       their eventual lifetimes measure from enablement — enable before
       building for full coverage. *)
    m.birth <- Array.make (Array.length m.level) m.steps
  end
  else if not on then begin
    m.profile <- false;
    m.birth <- [||]
  end

let lifetime_profiling m = m.profile

let lifetime_profile m =
  {
    lp_clock = m.steps;
    lp_deaths = m.death_count;
    lp_live = m.next - m.frozen - (if m.frozen = 0 then 2 else 0);
    lp_frozen = m.frozen;
    lp_buckets = Array.copy m.lifetime_hist;
  }

let check_invariants m f =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      let lo = node_low m f and hi = node_high m f in
      if lo = hi then ok := false;
      if lo >= 2 && node_level m lo <= node_level m f then ok := false;
      if hi >= 2 && node_level m hi <= node_level m f then ok := false;
      go lo;
      go hi
    end
  in
  go f;
  !ok

let pp m fmt f =
  let rec go fmt f =
    if f = 0 then Format.fprintf fmt "F"
    else if f = 1 then Format.fprintf fmt "T"
    else
      Format.fprintf fmt "@[<hv 1>(x%d?%a:%a)@]"
        m.level_var.(node_level m f)
        go (node_high m f) go (node_low m f)
  in
  go fmt f

let to_dot m ?var_name ?(title = "bdd") root =
  let name v =
    match var_name with Some f -> f v | None -> Printf.sprintf "x%d" v
  in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "digraph %S {" title;
  line "  rankdir=TB;";
  line "  t0 [label=\"0\", shape=box];";
  line "  t1 [label=\"1\", shape=box];";
  let node_id f = if f < 2 then Printf.sprintf "t%d" f else Printf.sprintf "n%d" f in
  let seen = Hashtbl.create 64 in
  let by_level : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let rec visit f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      let lvl = node_level m f in
      Hashtbl.replace by_level lvl
        (f :: Option.value (Hashtbl.find_opt by_level lvl) ~default:[]);
      line "  n%d [label=%S, shape=circle];" f (name m.level_var.(lvl));
      line "  n%d -> %s [style=dashed];" f (node_id (node_low m f));
      line "  n%d -> %s;" f (node_id (node_high m f));
      visit (node_low m f);
      visit (node_high m f)
    end
  in
  visit root;
  Hashtbl.iter
    (fun _ nodes ->
      line "  { rank=same; %s }"
        (String.concat "; " (List.map node_id nodes)))
    by_level;
  line "}";
  Buffer.contents buf
