(** Reduced ordered binary decision diagrams (Bryant 1986).

    This is the functional substrate for Difference Propagation: every
    circuit node's good function, faulty function, and difference function
    is an OBDD handled by a {!manager}.

    Nodes are hash-consed inside a manager, so structural equality of the
    represented functions coincides with handle equality ({!equal}).  All
    handles are only meaningful with the manager that created them. *)

type manager
(** Mutable node arena: unique table, operation caches, variable order. *)

type t
(** Handle to a BDD node owned by some manager. *)

exception Variable_out_of_range of int
(** Raised when a variable index is not within [0 .. num_vars - 1]. *)

exception Budget_exceeded of { nodes : int; budget : int }
(** Raised by any BDD operation running inside {!with_budget} the moment
    it would allocate the ([budget]+1)-th fresh node.  [nodes] is the
    number of nodes the window had already allocated.  The raise happens
    {e before} the offending allocation, so the arena is left consistent
    and the manager (and every existing handle) remains fully usable. *)

exception Deadline_exceeded of { elapsed_ms : float; deadline_ms : float }
(** Raised by any BDD operation running inside {!with_deadline} once the
    window's wall-clock budget has passed.  Like {!Budget_exceeded}, the
    raise happens in the node-construction hot path before any
    allocation, so the arena stays consistent and fully usable. *)

exception Sealed_manager
(** Raised by any BDD operation on a {!seal}ed manager the moment it
    would have to allocate a fresh node.  Operations whose result
    already exists in the frozen snapshot (including every read-only
    query) succeed normally.  The raise happens before any allocation,
    so the manager stays consistent. *)

(** {1 Managers} *)

val create : ?order:int array -> int -> manager
(** [create n] makes a manager for variables [0 .. n-1].  [?order] is a
    permutation of [0 .. n-1] giving the variable at each level, topmost
    first; it defaults to the identity.  @raise Invalid_argument if [order]
    is not a permutation of the right size. *)

val num_vars : manager -> int
(** Number of variables the manager was created with. *)

val level_of_var : manager -> int -> int
(** Position of a variable in the order (0 = topmost). *)

val var_at_level : manager -> int -> int
(** Inverse of {!level_of_var}. *)

val allocated_nodes : manager -> int
(** Current arena size in nodes, terminals and frozen snapshot included
    (collections shrink it; contrast {!nodes_allocated}). *)

val clear_caches : manager -> unit
(** Drop all operation caches (unique table is kept, handles stay valid). *)

val with_budget : manager -> budget:int -> (unit -> 'a) -> 'a
(** [with_budget m ~budget f] runs [f] with a cap of [budget] fresh node
    allocations; exceeding it raises {!Budget_exceeded} mid-operation
    instead of letting the arena grow unboundedly.  The previous budget
    state is restored on exit (normal or exceptional); windows nest, and
    an inner window's allocations count against the enclosing one.
    Nodes found in the unique table or operation caches are free — the
    budget prices growth, not work.  @raise Invalid_argument on a
    negative budget. *)

val with_deadline : manager -> deadline_ms:float -> (unit -> 'a) -> 'a
(** [with_deadline m ~deadline_ms f] runs [f] under a wall-clock cap:
    once [deadline_ms] milliseconds have elapsed, the next node
    construction raises {!Deadline_exceeded} instead of letting a
    pathological apply chain wedge the caller.  The clock is polled
    every few hundred constructions, so overshoot is bounded by
    microseconds of BDD work (purely cache-hit computations between
    constructions are not interrupted).  Windows nest: an inner window
    can only tighten the enclosing one, and the raise reports whichever
    window actually expired.  The previous deadline state is restored on
    exit (normal or exceptional).  Unlike {!with_budget}, expiry is
    wall-clock-dependent and therefore not reproducible run to run.
    @raise Invalid_argument on a non-positive deadline. *)

(** {1 Garbage collection} *)

type registration
(** Token naming a client handle array registered with {!register}. *)

val register : manager -> t array -> registration
(** [register m handles] declares [handles] as a long-lived root set:
    every {!collect} treats each entry as live and rewrites it in place
    with the node's post-compaction handle.  The array is registered by
    identity — clients may keep mutating its entries between
    collections.  Returns a token for {!unregister}. *)

val unregister : manager -> registration -> unit
(** Forget a previously registered root array.  Its entries are no
    longer kept alive nor remapped by subsequent collections. *)

val collect : ?roots:t array list -> manager -> unit
(** Mark-sweep-compact the arena.  Everything reachable from the
    registered arrays and the extra [?roots] arrays survives; all other
    nodes are reclaimed and the survivors are compacted into a dense
    prefix.  All surviving handles are {e renumbered}: the registered
    and [roots] arrays are rewritten in place with the new handles, and
    any other outstanding handle is invalidated.  Operation caches are
    flushed; memoised statistics ({!sat_fraction}) of surviving nodes
    are preserved.  {!allocated_nodes} never increases across a
    collection.  Allocation-free, so safe inside a {!with_budget}
    window.  With a frozen snapshot in place ({!seal}), only scratch
    nodes are examined and remapped — frozen nodes are immortal and
    their handles never change.
    @raise Invalid_argument while an epoch is open ({!open_epoch}) —
    whole-arena restructuring and region reclamation do not compose;
    close the epoch first. *)

(** {1 Epochs}

    Region-scoped scratch reclamation for workloads with bimodal node
    lifetimes (per-fault apply scratch dies within the fault; good
    functions and memoised statistics live for the whole sweep).
    {!open_epoch} records the current allocation watermark;
    {!close_epoch} reclaims everything allocated since in one stroke,
    {e tenuring} the survivors — nodes still reachable from the
    registered root arrays or the [?survivors] arrays — by copying them
    down to the watermark.  Nodes below the watermark are never walked,
    moved or remapped, so a close costs O(nodes the epoch allocated)
    rather than {!collect}'s O(live arena).  Op caches are invalidated
    (O(1) generation bump); memoised SAT fractions of tenured nodes move
    with them. *)

type epoch
(** Token for one open epoch; single-use. *)

val open_epoch : manager -> epoch
(** Record the allocation watermark and open an epoch.  At most one
    epoch may be open per manager, and {!collect} / {!sift} /
    {!swap_levels} / {!seal} raise [Invalid_argument] while it is —
    loudly, rather than silently invalidating the region accounting.
    @raise Invalid_argument if an epoch is already open or the manager
    is sealed. *)

val close_epoch : ?survivors:t array list -> manager -> epoch -> unit
(** Reclaim every node allocated since the matching {!open_epoch}.
    Nodes reachable from the registered arrays or [?survivors] arrays
    are tenured: copied below the watermark, with those arrays rewritten
    in place to the tenured handles (exactly {!collect}'s root
    contract).  Every other handle issued during the epoch is
    invalidated.  Handles older than the epoch are untouched.
    @raise Invalid_argument if the epoch was already closed or belongs
    to a different manager. *)

val epoch_open : manager -> bool
(** Whether an epoch is currently open. *)

val epoch_nodes : manager -> int
(** Nodes allocated by the open epoch so far (0 when none is open) —
    the quantity to watch when deciding to close and reclaim. *)

val epoch_resets : manager -> int
(** Number of {!close_epoch} calls over the manager's life. *)

val tenured_nodes : manager -> int
(** Total survivors copied down by all {!close_epoch} calls. *)

(** {1 Frozen snapshots}

    The shared-read-only substrate for multicore sweeps.  After a
    single-threaded build phase, {!seal} migrates every live node into
    an immutable {e frozen} tier — node arrays, a dedicated unique
    table, and a fully precomputed SAT-fraction memo — and the manager
    refuses further allocation.  {!fork} then produces sibling managers
    that reference the frozen arrays and own a small private {e scratch}
    arena for apply intermediates.  Handles are absolute and stable
    across the seal, so frozen handles mean the same function in every
    fork.  No fork ever writes shared memory: a forked manager may be
    used freely from its own domain with no locks. *)

val seal : manager -> unit
(** Runs a {!collect} (registered arrays are remapped as usual), then
    freezes every surviving node: the live arena becomes the immutable
    snapshot shared by subsequent {!fork}s, the scratch tier is reset to
    empty, and the manager is marked sealed — any operation that would
    allocate raises {!Sealed_manager} until {!unseal}.  Surviving
    handles keep their values.  Idempotent-unfriendly: sealing an
    already-sealed manager raises [Invalid_argument].  Re-sealing after
    an {!unseal} extends the snapshot with whatever live scratch nodes
    accumulated in between; earlier forks remain valid because the old
    frozen arrays are replaced wholesale, never mutated.  The build
    phase's final apply/ite memo entries whose operands and results all
    survive are retained as a read-only {e warm cache} that every
    {!fork} shares by reference and probes after a private cache miss
    ({!warm_cache_hits} counts the saves).
    @raise Invalid_argument while an epoch is open. *)

val unseal : manager -> unit
(** Re-enable allocation on a sealed manager (the frozen tier stays in
    place and keeps being probed first).  Only safe once every domain
    holding a {!fork} of the snapshot has been joined. *)

val fork : manager -> manager
(** A sibling manager sharing the frozen snapshot by reference, with a
    fresh empty scratch arena, empty operation caches, fresh budget /
    deadline / registration / instrumentation state, and allocation
    enabled.  Frozen handles are valid and identical in both managers;
    scratch handles are private to the manager that made them.  The fork
    is cheap (a few small array allocations) and must only be used from
    one domain at a time.  @raise Invalid_argument if [m] is not
    sealed. *)

val is_sealed : manager -> bool

val warm_cache_hits : manager -> int
(** Apply/ite lookups answered by the read-only warm cache {!seal}
    captured from the build phase's memo tables (forks share it by
    reference and consult it after their private cache misses).  Always
    0 on a manager that never sealed. *)

val frozen_nodes : manager -> int
(** Size of the frozen snapshot (0 before the first {!seal}). *)

val scratch_nodes : manager -> int
(** Nodes currently live in the private scratch tier — the quantity a
    GC trigger should watch once a snapshot exists, since frozen nodes
    are immortal. *)

val scratch_peak : manager -> int
(** High-water mark of {!scratch_nodes} over the manager's life
    (sampled at every {!collect} and at the current instant). *)

(** {1 Work metrics}

    Deterministic, cachegrind-style counters for benchmarking: for a
    fixed operation sequence they are bit-identical run to run,
    independent of clock and machine. *)

val apply_steps : manager -> int
(** Node-construction attempts ([mk] entries after the trivial
    low-equals-high short circuit) — the work the operation caches
    could not absorb. *)

val nodes_allocated : manager -> int
(** Fresh nodes ever hash-consed into existence in this manager
    (monotone: collections do not subtract; forks start at 0). *)

(** {1 Lifetime profiling}

    Allocation/death instrumentation on the {e logical} clock of
    {!apply_steps}: every scratch allocation is stamped with the clock,
    and the reclamation that observes a node's death ({!collect} or
    {!close_epoch}) banks the elapsed clock distance into a log2
    histogram — the same lifetime oracle an offline Merlin-style trace
    analysis would compute, folded on the fly.  No wall time enters the
    data, so the histogram is bit-identical run to run for a fixed
    operation sequence. *)

type lifetime_profile = {
  lp_clock : int;  (** {!apply_steps} when the profile was read *)
  lp_deaths : int;  (** nodes whose death a reclamation has observed *)
  lp_live : int;  (** scratch nodes still alive at read time *)
  lp_frozen : int;  (** immortal frozen nodes (never profiled as deaths) *)
  lp_buckets : int array;
      (** bucket [b] counts lifetimes in [[2^(b-1), 2^b)] apply steps;
          bucket 0 is sub-step *)
}

val set_lifetime_profiling : manager -> bool -> unit
(** Enable (or disable) the profiler.  Enable before building: nodes
    already alive are stamped at the current clock, so their reported
    lifetimes measure from enablement.  Forks inherit the flag with a
    fresh, empty histogram.  Costs one array write per allocation when
    on; nothing when off. *)

val lifetime_profiling : manager -> bool

val lifetime_profile : manager -> lifetime_profile
(** Snapshot of the histogram (buckets are copied). *)

(** {1 Constants, variables and tests} *)

val zero : manager -> t
val one : manager -> t

val var : manager -> int -> t
(** Projection function of a variable. @raise Variable_out_of_range. *)

val nvar : manager -> int -> t
(** Complemented projection. @raise Variable_out_of_range. *)

val is_zero : manager -> t -> bool
val is_one : manager -> t -> bool
val is_const : manager -> t -> bool

val equal : t -> t -> bool
(** Function equality (valid for handles from the same manager). *)

val compare : t -> t -> int
val hash : t -> int

(** {1 Boolean connectives} *)

val bnot : manager -> t -> t
val band : manager -> t -> t -> t
val bor : manager -> t -> t -> t
val bxor : manager -> t -> t -> t
val bxnor : manager -> t -> t -> t
val bnand : manager -> t -> t -> t
val bnor : manager -> t -> t -> t
val bimp : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val band_list : manager -> t list -> t
val bor_list : manager -> t list -> t
val bxor_list : manager -> t list -> t

(** {1 Structure} *)

val top_var : manager -> t -> int option
(** Topmost variable of a non-constant BDD, [None] on constants. *)

val cofactors : manager -> t -> int -> t * t
(** [cofactors m f v] is [(f|v=0, f|v=1)] for any variable [v], whether or
    not it occurs at the top of [f]. *)

val restrict : manager -> t -> var:int -> value:bool -> t
(** Cofactor with respect to one variable. *)

val compose : manager -> t -> var:int -> t -> t
(** [compose m f ~var g] substitutes [g] for [var] inside [f]. *)

val exists : manager -> int list -> t -> t
(** Existential quantification over a set of variables. *)

val forall : manager -> int list -> t -> t
(** Universal quantification over a set of variables. *)

val support : manager -> t -> int list
(** Variables the function actually depends on, sorted increasingly.
    Allocation-free: the walk stamps manager-resident generation
    counters instead of building a visited table. *)

val size : manager -> t -> int
(** Number of internal (non-terminal) nodes reachable from the root.
    Allocation-free, like {!support}. *)

(** {1 Counting and satisfaction} *)

val sat_fraction : manager -> t -> float
(** Fraction of the 2^n input space mapped to true (the paper's
    {e syndrome} when applied to a circuit line's good function).
    Memoised permanently in the manager — repeated queries over shared
    subgraphs cost O(nodes not seen by any earlier query). *)

val sat_count : manager -> t -> float
(** [sat_fraction] scaled by 2^[num_vars]; exact while n <= 61. *)

val any_sat : manager -> t -> (int * bool) list option
(** Some satisfying partial assignment (variables absent are don't-care),
    or [None] for the zero function. *)

val sat_cubes : manager -> ?limit:int -> t -> (int * bool) list list
(** All satisfying cubes (paths to the one-terminal), up to [?limit]
    (default: no limit).  Unmentioned variables in a cube are don't-care. *)

val eval : manager -> t -> (int -> bool) -> bool
(** Evaluate under a total assignment. *)

(** {1 Construction helpers} *)

val of_fun : manager -> arity:int -> (bool array -> bool) -> t
(** Build the BDD of an arbitrary function of variables [0 .. arity-1] by
    Shannon expansion.  Exponential in [arity]; meant for tests and small
    specifications. *)

val cube : manager -> (int * bool) list -> t
(** Conjunction of literals. *)

(** {1 Dynamic variable reordering}

    Rudell-style sifting over the arena.  Reordering rewrites nodes in
    place so that every handle keeps denoting the same function — client
    handle arrays (registered or passed as [roots]) stay meaningful, and
    memoised SAT fractions remain valid because they depend only on the
    function.  Operation caches are flushed and the unique table is
    rebuilt before returning.  Only a plain single-tier arena can be
    reordered: both entry points raise [Invalid_argument] on a sealed
    manager or one holding a frozen snapshot ({!seal}), whose node
    arrays are shared read-only across forks. *)

val current_order : manager -> int array
(** The variable order now in effect: element [l] is the variable at
    level [l] (a fresh copy, suitable for [create ?order]). *)

val swap_levels : manager -> int -> unit
(** [swap_levels m i] exchanges the variables at levels [i] and [i+1].
    All handles keep their functions; dead nodes created by the
    restructuring linger as garbage until the next {!collect}.
    @raise Invalid_argument if the manager is sealed, has a frozen
    tier, or [i+1] is not a valid level. *)

val sift :
  ?roots:t array list -> ?max_growth:float -> ?max_vars:int -> manager ->
  int * int
(** [sift m] runs sifting to a local minimum: each variable in turn
    (widest levels first) is moved through every position and settled
    where the live node count — measured against the registered arrays
    plus [?roots] — is smallest.  A walk direction is abandoned once the
    live size exceeds [max_growth] (default 1.2) times the size at that
    variable's start; [?max_vars] bounds how many variables are sifted
    (default: all with at least one node).  Collections run between
    variables, so handles in registered/[roots] arrays are remapped as
    in {!collect}; other outstanding handles are invalidated.  Returns
    [(live nodes before, live nodes after)].  Deterministic for a given
    arena content.  Fresh nodes are {e not} charged to an enclosing
    {!with_budget} window (sifting is maintenance, not apply work); an
    enclosing {!with_deadline} is honoured at swap boundaries, where
    the arena is consistent — on expiry the partial reorder is kept and
    the manager remains fully usable.
    @raise Invalid_argument if sealed, frozen-tiered, or
    [max_growth < 1.0]. *)

(** {1 Cross-manager transfer} *)

val rebuild : src:manager -> dst:manager -> t -> t
(** Transfer a BDD into another manager (possibly with a different variable
    order), preserving the function.  Both managers must have the same
    variable universe. *)

(** {1 Diagnostics} *)

val check_invariants : manager -> t -> bool
(** True when every path is strictly level-increasing and no node has
    identical children (i.e. the diagram is reduced and ordered). *)

val pp : manager -> Format.formatter -> t -> unit
(** Debug rendering as nested if-then-else on variable indices. *)

val to_dot :
  manager -> ?var_name:(int -> string) -> ?title:string -> t -> string
(** Graphviz rendering: one rank per level, dashed low edges, solid high
    edges, box terminals.  [var_name] labels decision nodes (defaults to
    [x<i>]). *)
