type step = {
  net : int;
  net_name : string;
  kind : [ `Observe | `Control0 ];
  mean_after : float;
}

type plan = { mean_before : float; steps : step list; circuit : Circuit.t }

let objective c =
  let engine = Engine.create c in
  let results =
    Engine.analyze_exact engine
      (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))
  in
  (* Mean over every fault, counting undetectable as zero: DFT gets
     credit both for raising detectabilities and for making redundant
     faults testable. *)
  Histogram.mean (List.map (fun r -> r.Engine.detectability) results)

let candidates c ~limit =
  let levels = Circuit.levels c in
  let to_po = Circuit.max_levels_to_po c in
  let score g = min levels.(g) to_po.(g) in
  List.init (Circuit.num_gates c) Fun.id
  |> List.filter (fun g ->
         (not (Circuit.is_input c g))
         && (not (Circuit.is_output c g))
         && to_po.(g) >= 0)
  |> List.sort (fun a b -> Stdlib.compare (score b) (score a))
  |> List.filteri (fun i _ -> i < limit)

let apply c net = function
  | `Observe -> Transform.add_observation_points c [ net ]
  | `Control0 -> Transform.add_control_point c ~net ~polarity:`Force0

let greedy ?(budget = 3) ?(candidate_limit = 8) c =
  let mean_before = objective c in
  let rec rounds current best_mean steps remaining =
    if remaining = 0 then (current, List.rev steps)
    else begin
      (* Candidate nets are recomputed on the current circuit and mapped
         back by name for reporting. *)
      let options =
        candidates current ~limit:candidate_limit
        |> List.concat_map (fun net ->
               [ (net, `Observe); (net, `Control0) ])
      in
      let scored =
        List.map
          (fun (net, kind) ->
            let modified = apply current net kind in
            (net, kind, modified, objective modified))
          options
      in
      let best =
        List.fold_left
          (fun acc ((_, _, _, mean) as cand) ->
            match acc with
            | Some (_, _, _, best_so_far) when best_so_far >= mean -> acc
            | _ -> Some cand)
          None scored
      in
      match best with
      | Some (net, kind, modified, mean) when mean > best_mean +. 1e-12 ->
        let step =
          {
            net;
            net_name = (Circuit.gate current net).Circuit.name;
            kind;
            mean_after = mean;
          }
        in
        rounds modified mean (step :: steps) (remaining - 1)
      | Some _ | None -> (current, List.rev steps)
    end
  in
  let circuit, steps = rounds c mean_before [] budget in
  { mean_before; steps; circuit }
