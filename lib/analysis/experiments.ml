type config = {
  bridge_sample : int;
  theta : float;
  seed : int;
  bins : int;
  domains : int;
  scheduler : Engine.scheduler;
  fault_budget : int option;
  deadline_ms : float option;
}

let default =
  {
    bridge_sample = 150;
    theta = 0.25;
    seed = 42;
    bins = 10;
    domains = Parallel.available_domains ();
    scheduler = Engine.Snapshot;
    (* No per-fault resource caps: the paper's figures want every fault
       exact.  The hostile-sweep experiment overrides both. *)
    fault_budget = None;
    deadline_ms = None;
  }

type circuit_run = {
  circuit : Circuit.t;
  engine : Engine.t;
  sa_results : Engine.result list;
  bf_results : Engine.result list;
  bf_faults : Bridge.t list;
  bf_sampled : Bridge.sample_stats option;
  degraded : Engine.outcome list;
}

let cache : (string * config, circuit_run) Hashtbl.t = Hashtbl.create 16

let clear_cache () = Hashtbl.reset cache

(* The paper enumerates the full NFBF set for the four smallest circuits
   and samples by layout distance for the rest (§2.2). *)
let bridge_faults config c =
  let small = [ "c17"; "fulladder"; "c95"; "alu74181" ] in
  if List.mem c.Circuit.title small then (Bridge.enumerate c, None)
  else
    let faults, stats =
      Bridge.sample ~theta:config.theta ~seed:config.seed
        ~size:config.bridge_sample c
    in
    (faults, Some stats)

let run ?(config = default) name =
  match Hashtbl.find_opt cache (name, config) with
  | Some r -> r
  | None ->
    let circuit = Bench_suite.find name in
    let engine = Engine.create circuit in
    (* Cached results are plain scalars, but [engine] itself is also
       cached and handed to later consumers; a budget-triggered rebuild
       invalidates any BDD handles they hold, so evict the entry and
       let the next [run] start from a consistent engine. *)
    Engine.on_rebuild engine (fun () -> Hashtbl.remove cache (name, config));
    let sa_faults =
      List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults circuit)
    in
    let sa_outcomes =
      Engine.analyze_all ?fault_budget:config.fault_budget
        ?deadline_ms:config.deadline_ms ~domains:config.domains
        ~scheduler:config.scheduler engine sa_faults
    in
    let bf_faults, bf_sampled = bridge_faults config circuit in
    let bf_outcomes =
      Engine.analyze_all ?fault_budget:config.fault_budget
        ?deadline_ms:config.deadline_ms ~domains:config.domains
        ~scheduler:config.scheduler engine
        (List.map (fun b -> Fault.Bridged b) bf_faults)
    in
    let r =
      {
        circuit;
        engine;
        sa_results = Engine.exact_results sa_outcomes;
        bf_results = Engine.exact_results bf_outcomes;
        bf_faults;
        bf_sampled;
        degraded = Engine.degraded sa_outcomes @ Engine.degraded bf_outcomes;
      }
    in
    Hashtbl.replace cache (name, config) r;
    r

let detectabilities results =
  results
  |> List.filter (fun r -> r.Engine.detectable)
  |> List.map (fun r -> r.Engine.detectability)

let adherence_values results =
  results
  |> List.filter (fun r -> r.Engine.detectable)
  |> List.filter_map (fun r -> r.Engine.adherence)

let split_bridge_results cr =
  List.partition
    (fun r ->
      match r.Engine.fault with
      | Fault.Bridged { Bridge.kind = Bridge.Wired_and; _ } -> true
      | Fault.Bridged { Bridge.kind = Bridge.Wired_or; _ }
      | Fault.Stuck _ | Fault.Multi_stuck _ ->
        false)
    cr.bf_results

(* Table 1 verification: random good/difference function pairs, all gate
   kinds, rules vs direct evaluation. *)
let table1_verification ~trials ~vars =
  let m = Bdd.create vars in
  let rng = Prng.create ~seed:7 in
  let random_bdd () =
    (* Random function as a XOR/AND/OR mix over literals. *)
    let literal () =
      let v = Prng.int rng vars in
      if Prng.bool rng then Bdd.var m v else Bdd.nvar m v
    in
    let rec build depth =
      if depth = 0 then literal ()
      else
        let a = build (depth - 1) and b = build (depth - 1) in
        match Prng.int rng 3 with
        | 0 -> Bdd.band m a b
        | 1 -> Bdd.bor m a b
        | _ -> Bdd.bxor m a b
    in
    build 3
  in
  let kinds =
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]
  in
  let ok = ref true in
  for _ = 1 to trials do
    let arity = 2 + Prng.int rng 3 in
    let good = Array.init arity (fun _ -> random_bdd ()) in
    let delta =
      Array.init arity (fun _ ->
          if Prng.int rng 3 = 0 then Bdd.zero m else random_bdd ())
    in
    List.iter
      (fun kind ->
        let by_rule = Rules.delta m kind ~good ~delta in
        let direct = Rules.delta_direct m kind ~good ~delta in
        if not (Bdd.equal by_rule direct) then ok := false)
      kinds
  done;
  !ok

let histogram_of config results = Histogram.make ~bins:config.bins results

let fig1 ?(config = default) () =
  [ "c95"; "alu74181" ]
  |> List.map (fun name ->
         let cr = run ~config name in
         (name, histogram_of config (detectabilities cr.sa_results)))

let fig2 ?(config = default) () =
  Bench_suite.names
  |> List.map (fun name ->
         let cr = run ~config name in
         Trends.row_of_results cr.circuit cr.sa_results)

let fig3 ?(config = default) () =
  let cr = run ~config "c1355" in
  Bathtub.by_po_distance cr.circuit cr.sa_results

let fig3_pi ?(config = default) () =
  let cr = run ~config "c1355" in
  Bathtub.by_pi_level cr.circuit cr.sa_results

let fig4 ?(config = default) () =
  let cr = run ~config "alu74181" in
  histogram_of config (adherence_values cr.sa_results)

let fig5 ?(config = default) () =
  Bench_suite.names
  |> List.map (fun name ->
         let cr = run ~config name in
         (name, Bridge_class.classify cr.engine cr.bf_faults))

let fig6 ?(config = default) () =
  let cr = run ~config "c95" in
  let and_r, or_r = split_bridge_results cr in
  ( histogram_of config (detectabilities and_r),
    histogram_of config (detectabilities or_r) )

let fig7 ?(config = default) () =
  Bench_suite.names
  |> List.map (fun name ->
         let cr = run ~config name in
         Trends.row_of_results cr.circuit cr.bf_results)

let fig8 ?(config = default) () =
  let cr = run ~config "c1355" in
  let and_r, or_r = split_bridge_results cr in
  ( Bathtub.by_po_distance cr.circuit and_r,
    Bathtub.by_po_distance cr.circuit or_r )

let po_observability ?(config = default) () =
  Bench_suite.names
  |> List.map (fun name ->
         let cr = run ~config name in
         (name, Po_stats.summarize cr.sa_results))
