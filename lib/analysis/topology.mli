(** Static topology oracle: predicts BDD behaviour from the netlist DAG
    alone, before any BDD exists.

    The pass decomposes the circuit into fanout-free regions, detects
    the polynomial circuit classes of the BDD literature (trees, parity
    and adder chains — Drechsler, arXiv:2104.03024), estimates per-cone
    BDD width from the support-interval cut profile ({!Ffr}), and
    synthesizes a variable order ({!Ordering.oracle}).  Its outputs
    feed three consumers: the engine default order, the reorder-rescue
    pre-flag of [Engine.analyze_all ?hostile], and lint rules
    DP011–DP013. *)

type circuit_class =
  | Tree
      (** no reconvergent stem: every output cone is a tree (after
          branch duplication) — linear-size BDDs under a DFS order *)
  | Parity_chain
      (** XOR/XNOR-dominated: parity is linear under {e any} order *)
  | Adder_chain
      (** bounded estimated cutwidth relative to support — ripple-like
          chains whose BDDs stay polynomial *)
  | Fanout_reconvergent
      (** reconvergent fanout with unbounded estimated width *)
  | General

val class_name : circuit_class -> string

type cone = {
  output : int;  (** PO net index *)
  output_name : string;
  support : int;  (** structural support size (primary inputs in cone) *)
  gates : int;  (** nets in the cone *)
  cutwidth : int;  (** support-interval cutwidth under the report order *)
  predicted_log2_width : int;
      (** [max_b min(above_b, below_b, cut_b)] — log2 of the predicted
          peak BDD level width for this cone *)
  predicted_nodes : float;
      (** sum over levels of the predicted width — the per-cone peak
          scratch estimate that calibrates against
          [scratch_peak_nodes] *)
  hostility : float;  (** [predicted_log2_width / (support / 2)], 0..1 *)
}

type t = {
  circuit : Circuit.t;
  klass : circuit_class;
  ffrs : Ffr.t;
  reconvergent_stems : int list;
  cones : cone array;  (** one per PO, in output declaration order *)
  order : int array;  (** synthesized order (level -> input position) *)
  winner : Ordering.heuristic;  (** heuristic behind {!field-order} *)
  est_cutwidth : int;  (** global cutwidth under {!field-order} *)
  natural_cutwidth : int;
  confident : bool;
      (** oracle confidence: strong enough to override [Natural] *)
  xor_fraction : float;  (** XOR/XNOR share of the logic gates *)
}

val analyze : Circuit.t -> t
(** Linear-ish: one FFR sweep, one reconvergence check per stem, one
    cut profile per candidate order, one per-PO cone pass. *)

val predicted_peak : t -> float
(** Max {!cone.predicted_nodes} over all cones — the circuit-level
    blowup prediction used by the [bench topo] calibration lane. *)

val hostile_cones : t -> budget:int -> cone list
(** Cones whose {!cone.predicted_nodes} reach [4 x budget] — faults
    observed through them are expected to climb the whole 2x/4x retry
    ladder, so they are worth jumping straight to its top rung.  The
    pre-flag is bit-identity-safe even when this prediction is wrong
    (see [Engine.analyze_all ?hostile]), so the threshold errs toward
    flagging. *)

val hostile_sites : t -> budget:int -> bool array
(** Characteristic vector over nets: nets observed through at least
    one hostile cone.  A fault on such a net is pre-flagged to skip
    the intermediate ladder rungs. *)

val hostile_fault : t -> budget:int -> Fault.t -> bool
(** Pre-flag predicate for [Engine.analyze_all ?hostile], built on
    {!hostile_sites}: true when any site of the fault is hostile. *)

val to_json : t -> string
val pp : Format.formatter -> t -> unit
