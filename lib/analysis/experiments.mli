(** One entry point per paper artifact.  Each experiment returns the
    structured data series the corresponding figure or table plots, and
    the bench harness renders them; results are cached per circuit so
    that figures sharing an analysis (e.g. Figures 2 and 3) pay for it
    once. *)

type config = {
  bridge_sample : int;
      (** wire pairs sampled per large circuit (each yields an AND and an
          OR fault); the four small circuits use their full NFBF sets,
          as in the paper *)
  theta : float;  (** exponential distance parameter (paper §2.2) *)
  seed : int;
  bins : int;  (** histogram resolution *)
  domains : int;
      (** worker domains for fault analysis ({!Engine.analyze_all});
          results are bit-identical at any count *)
  scheduler : Engine.scheduler;
      (** how the sweep is fanned out; exact results are bit-identical
          under every scheduler *)
  fault_budget : int option;
      (** per-attempt BDD node cap handed to {!Engine.analyze_all};
          [None] (the default) analyses every fault exactly *)
  deadline_ms : float option;
      (** per-attempt wall-clock cap handed to {!Engine.analyze_all};
          [None] (the default) never times a fault out *)
}

val default : config
(** 150 sampled pairs, theta 0.25, seed 42, 10 bins, as many domains as
    {!Parallel.available_domains} suggests, the shared-snapshot
    scheduler, and no per-fault resource caps. *)

(** {1 Cached per-circuit analysis} *)

type circuit_run = {
  circuit : Circuit.t;
  engine : Engine.t;
  sa_results : Engine.result list;
      (** collapsed checkpoint faults (exact outcomes only) *)
  bf_results : Engine.result list;
      (** potentially detectable NFBFs (exact outcomes only) *)
  bf_faults : Bridge.t list;
  bf_sampled : Bridge.sample_stats option;  (** [None] = full enumeration *)
  degraded : Engine.outcome list;
      (** faults the sweeps could not analyse exactly (budget blow-ups or
          crashes, after retries); empty on the healthy benchmark suite *)
}

val run : ?config:config -> string -> circuit_run
(** Analyse one benchmark by name (memoised on name and config). *)

val bridge_faults : config -> Circuit.t -> Bridge.t list * Bridge.sample_stats option
(** The circuit's bridging-fault universe under a config: full NFBF
    enumeration for the four small circuits, layout-weighted sampling
    (with stats) for the rest — exactly what {!run} analyses. *)

val clear_cache : unit -> unit

(** {1 Paper artifacts} *)

val table1_verification : trials:int -> vars:int -> bool
(** Property check behind Table 1: on random functions, every Table-1
    rule agrees with direct faulty-function evaluation. *)

val fig1 : ?config:config -> unit -> (string * Histogram.t) list
(** Stuck-at detectability histograms for c95 and alu74181. *)

val fig2 : ?config:config -> unit -> Trends.row list
(** Stuck-at detectability trends over the whole suite. *)

val fig3 : ?config:config -> unit -> Bathtub.point list
(** Stuck-at detectability vs max levels to PO, c1355. *)

val fig3_pi : ?config:config -> unit -> Bathtub.point list
(** Companion curve by PI level (the paper's text: noisier). *)

val fig4 : ?config:config -> unit -> Histogram.t
(** Stuck-at adherence histogram, alu74181. *)

val fig5 : ?config:config -> unit -> (string * Bridge_class.summary list) list
(** Per circuit: proportions of AND / OR NFBFs with stuck-at behaviour. *)

val fig6 : ?config:config -> unit -> Histogram.t * Histogram.t
(** Bridging detectability histograms for c95 (AND, OR). *)

val fig7 : ?config:config -> unit -> Trends.row list
(** Bridging detectability trends over the whole suite. *)

val fig8 : ?config:config -> unit -> Bathtub.point list * Bathtub.point list
(** Bridging detectability vs max levels to PO, c1355 (AND, OR). *)

val po_observability : ?config:config -> unit -> (string * Po_stats.summary) list
(** §4.1's "justification to the closest PO" statistic, per circuit. *)

val adherence_values : Engine.result list -> float list
(** Adherence of the detectable faults in a result list. *)

val split_bridge_results :
  circuit_run -> Engine.result list * Engine.result list
(** Bridging results split into (wired-AND, wired-OR). *)
