type circuit_class =
  | Tree
  | Parity_chain
  | Adder_chain
  | Fanout_reconvergent
  | General

let class_name = function
  | Tree -> "tree"
  | Parity_chain -> "parity-chain"
  | Adder_chain -> "adder-chain"
  | Fanout_reconvergent -> "fanout-reconvergent"
  | General -> "general"

type cone = {
  output : int;
  output_name : string;
  support : int;
  gates : int;
  cutwidth : int;
  predicted_log2_width : int;
  predicted_nodes : float;
  hostility : float;
}

type t = {
  circuit : Circuit.t;
  klass : circuit_class;
  ffrs : Ffr.t;
  reconvergent_stems : int list;
  cones : cone array;
  order : int array;
  winner : Ordering.heuristic;
  est_cutwidth : int;
  natural_cutwidth : int;
  confident : bool;
  xor_fraction : float;
}

let ilog2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* Width bound at a boundary: paths from the root cap it at 2^above,
   remaining-variable subfunctions at ~2^below, and the crossing-net
   count at 2^cut.  Exponents only — sizes are summed in float space. *)
let cone_of_output c ~spans ~inputs po name =
  let cone_nets = Circuit.fanin_cone c po in
  let gates = List.length cone_nets in
  let support_levels =
    List.filter_map
      (fun g ->
        if Circuit.is_input c g then
          let lo, hi = spans.(g) in
          if hi >= lo then Some lo else None
        else None)
      cone_nets
  in
  let support = List.length support_levels in
  let cone_spans =
    Array.of_list (List.map (fun g -> spans.(g)) cone_nets)
  in
  let profile = Ffr.profile_of_spans ~inputs cone_spans in
  let is_support = Array.make inputs false in
  List.iter (fun l -> is_support.(l) <- true) support_levels;
  let above = ref 0 in
  let plog2 = ref 0 and pnodes = ref (float_of_int (max 1 support)) in
  Array.iteri
    (fun b cut ->
      if is_support.(b) then incr above;
      let w = min cut (min !above (support - !above)) in
      if w > !plog2 then plog2 := w;
      pnodes := !pnodes +. (2.0 ** float_of_int (min 50 w)))
    profile;
  let cutwidth = Array.fold_left max 0 profile in
  let hostility =
    if support <= 1 then 0.0
    else
      min 1.0 (float_of_int !plog2 /. (float_of_int support /. 2.0))
  in
  {
    output = po;
    output_name = name;
    support;
    gates;
    cutwidth;
    predicted_log2_width = !plog2;
    predicted_nodes = !pnodes;
    hostility;
  }

let analyze c =
  let inputs = Circuit.num_inputs c in
  let order, winner, est_cutwidth, confident = Ordering.oracle c in
  let natural_cutwidth =
    Ffr.cutwidth c ~order:(Ordering.order Ordering.Natural c)
  in
  let ffrs = Ffr.decompose c in
  let reconvergent_stems = Ffr.reconvergent_stems c in
  let logic = ref 0 and xors = ref 0 in
  for g = 0 to Circuit.num_gates c - 1 do
    match (Circuit.gate c g).Circuit.kind with
    | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
    | Gate.Xor | Gate.Xnor ->
      incr logic;
      incr xors
    | _ -> incr logic
  done;
  let xor_fraction =
    if !logic = 0 then 0.0 else float_of_int !xors /. float_of_int !logic
  in
  let spans = Ffr.support_spans c ~order in
  let cones =
    Array.map
      (fun po ->
        cone_of_output c ~spans ~inputs po (Circuit.gate c po).Circuit.name)
      c.Circuit.outputs
  in
  let klass =
    if reconvergent_stems = [] then Tree
    else if xor_fraction >= 0.7 then Parity_chain
    else if est_cutwidth <= max 8 (4 * ilog2 (inputs + 1)) then Adder_chain
    else Fanout_reconvergent
  in
  {
    circuit = c;
    klass;
    ffrs;
    reconvergent_stems;
    cones;
    order;
    winner;
    est_cutwidth;
    natural_cutwidth;
    confident;
    xor_fraction;
  }

let predicted_peak t =
  Array.fold_left (fun acc k -> max acc k.predicted_nodes) 0.0 t.cones

(* A cone is hostile for a per-fault budget when its predicted scratch
   is beyond the ladder's first doubling: faults touching it are
   expected to climb the whole ladder, so jumping them straight to the
   top rung costs nothing and saves the intermediate rungs.  The
   pre-flag is bit-identity-safe whatever this predicts (see
   [Engine.analyze_all ?hostile]), so the factor errs toward
   flagging. *)
let hostile_factor = 4.0

let hostile_cones t ~budget =
  Array.to_list t.cones
  |> List.filter (fun k ->
         k.predicted_nodes >= hostile_factor *. float_of_int budget)

let hostile_sites t ~budget =
  let c = t.circuit in
  let n = Circuit.num_gates c in
  let hostile_po = Hashtbl.create 16 in
  List.iter
    (fun k -> Hashtbl.replace hostile_po k.output ())
    (hostile_cones t ~budget);
  let sites = Array.make n false in
  if Hashtbl.length hostile_po > 0 then
    for g = 0 to n - 1 do
      sites.(g) <-
        List.exists (Hashtbl.mem hostile_po) (Circuit.output_cone c g)
    done;
  sites

let hostile_fault t ~budget =
  let sites = hostile_sites t ~budget in
  fun fault ->
    match Fault.sites fault with
    | exception _ -> false
    | fs ->
      List.exists
        (fun g -> g >= 0 && g < Array.length sites && sites.(g))
        fs

let to_json t =
  let b = Buffer.create 1024 in
  let c = t.circuit in
  Buffer.add_string b
    (Printf.sprintf
       "{\"circuit\":%S,\"class\":%S,\"inputs\":%d,\"gates\":%d,\"outputs\":%d,"
       c.Circuit.title (class_name t.klass) (Circuit.num_inputs c)
       (Circuit.num_gates c) (Circuit.num_outputs c));
  Buffer.add_string b
    (Printf.sprintf
       "\"ffr_heads\":%d,\"reconvergent_stems\":%d,\"xor_fraction\":%.3f,"
       (List.length t.ffrs.Ffr.heads)
       (List.length t.reconvergent_stems)
       t.xor_fraction);
  Buffer.add_string b
    (Printf.sprintf
       "\"order_winner\":%S,\"est_cutwidth\":%d,\"natural_cutwidth\":%d,\"confident\":%b,"
       (Ordering.name t.winner) t.est_cutwidth t.natural_cutwidth t.confident);
  Buffer.add_string b "\"order\":[";
  Array.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int p))
    t.order;
  Buffer.add_string b "],\"predicted_peak\":";
  Buffer.add_string b (Printf.sprintf "%.1f" (predicted_peak t));
  Buffer.add_string b ",\"cones\":[";
  Array.iteri
    (fun i k ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"output\":%S,\"support\":%d,\"gates\":%d,\"cutwidth\":%d,\"predicted_log2_width\":%d,\"predicted_nodes\":%.1f,\"hostility\":%.3f}"
           k.output_name k.support k.gates k.cutwidth k.predicted_log2_width
           k.predicted_nodes k.hostility))
    t.cones;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp fmt t =
  let c = t.circuit in
  Format.fprintf fmt "@[<v>%s: class=%s inputs=%d gates=%d outputs=%d@,"
    c.Circuit.title (class_name t.klass) (Circuit.num_inputs c)
    (Circuit.num_gates c) (Circuit.num_outputs c);
  Format.fprintf fmt
    "ffr heads=%d reconvergent stems=%d xor fraction=%.2f@,"
    (List.length t.ffrs.Ffr.heads)
    (List.length t.reconvergent_stems)
    t.xor_fraction;
  Format.fprintf fmt
    "order: winner=%s est cutwidth=%d (natural %d) confident=%b@,"
    (Ordering.name t.winner) t.est_cutwidth t.natural_cutwidth t.confident;
  Format.fprintf fmt "predicted peak=%.0f nodes@," (predicted_peak t);
  Format.fprintf fmt "%-12s %7s %6s %9s %10s %15s %9s@," "output" "support"
    "gates" "cutwidth" "log2width" "pred.nodes" "hostility";
  Array.iter
    (fun k ->
      Format.fprintf fmt "%-12s %7d %6d %9d %10d %15.0f %9.3f@,"
        k.output_name k.support k.gates k.cutwidth k.predicted_log2_width
        k.predicted_nodes k.hostility)
    t.cones;
  Format.fprintf fmt "@]"
