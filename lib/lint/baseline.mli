(** Baseline suppression files.

    A baseline freezes the current findings of a netlist so the linter
    can gate on {e new} findings only.  The format is one
    {!Diagnostic.fingerprint} per line under a versioned header;
    fingerprints name rules and nets, not messages or positions, so
    they survive reformatting.  ['#'] lines and blanks are ignored. *)

type t

exception Malformed of string

val empty : unit -> t
val of_diagnostics : Diagnostic.t list -> t

val load : string -> t
(** @raise Malformed on a missing or wrong header.
    @raise Sys_error when unreadable. *)

val save : string -> Diagnostic.t list -> unit
(** Write the fingerprints of the given diagnostics, sorted and
    deduplicated. *)

val mem : t -> Diagnostic.t -> bool

val filter : t -> Diagnostic.t list -> Diagnostic.t list
(** The diagnostics whose fingerprints the baseline does {e not}
    suppress. *)
