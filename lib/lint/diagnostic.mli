(** Lint diagnostics: rule code, severity, message, net-level source
    location, and — for the testability rules — the machine-readable
    redundancy claims the exact engine can confirm. *)

type severity = Error | Warning | Info

val severity_rank : severity -> int
(** [Info] 0, [Warning] 1, [Error] 2 — for [--fail-on] comparisons. *)

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
(** Accepts ["note"] (the SARIF spelling) as [Info]. *)

type location = {
  file : string option;  (** source file, when linting a file *)
  net : string option;  (** offending net's name *)
  span : Bench_format.span option;  (** its definition site *)
}

val no_location : location

type t = {
  rule : string;  (** rule code, ["DP001"] .. *)
  severity : severity;
  message : string;
  location : location;
  claims : (string * bool) list;
      (** "definitely redundant" stuck-at verdicts this diagnostic
          makes: net name and stuck value, each provably untestable *)
  verified : bool option;
      (** [Some true] once the exact Difference Propagation engine has
          confirmed every claim; [None] when unchecked *)
}

val make :
  ?location:location ->
  ?claims:(string * bool) list ->
  ?verified:bool ->
  rule:string ->
  severity:severity ->
  string ->
  t

val fingerprint : t -> string
(** Stable identity for baseline suppression: rule, nets and claim
    polarities — independent of message wording and source position. *)

val compare : t -> t -> int
(** Errors first, then source position, then rule code. *)

val pp : Format.formatter -> t -> unit
(** One [file:line:col: severity: [rule] message] line. *)

val to_string : t -> string
