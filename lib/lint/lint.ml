(* The static testability linter.  Structure proposes, the exact engine
   confirms: every "definitely redundant" stuck-at verdict a rule emits
   is a claim the Difference Propagation engine can check by building
   the fault's complete test set, and [verify] (on by default) does
   exactly that before the diagnostics leave this module. *)

type tier = Structural | Testability | Bridge_topology

let tier_to_string = function
  | Structural -> "structural"
  | Testability -> "testability"
  | Bridge_topology -> "bridge-topology"

type rule = {
  id : string;
  name : string;
  tier : tier;
  default_severity : Diagnostic.severity;
  summary : string;
}

let rules =
  [
    {
      id = "DP001";
      name = "combinational-cycle";
      tier = Structural;
      default_severity = Diagnostic.Error;
      summary = "the netlist's definition graph contains a cycle";
    };
    {
      id = "DP002";
      name = "undriven-net";
      tier = Structural;
      default_severity = Diagnostic.Error;
      summary = "a net is used as a fanin or OUTPUT but nothing drives it";
    };
    {
      id = "DP003";
      name = "duplicate-driver";
      tier = Structural;
      default_severity = Diagnostic.Error;
      summary = "a net has more than one driving definition";
    };
    {
      id = "DP004";
      name = "arity-violation";
      tier = Structural;
      default_severity = Diagnostic.Error;
      summary = "a gate has an impossible fanin count for its kind";
    };
    {
      id = "DP005";
      name = "floating-net";
      tier = Structural;
      default_severity = Diagnostic.Warning;
      summary = "a driven net feeds nothing and is not a primary output";
    };
    {
      id = "DP006";
      name = "ffr-audit";
      tier = Structural;
      default_severity = Diagnostic.Info;
      summary =
        "a fanout-free region is large: one checkpoint gates many faults";
    };
    {
      id = "DP007";
      name = "scoap-extreme";
      tier = Testability;
      default_severity = Diagnostic.Warning;
      summary =
        "SCOAP extremes: unobservable nets (untestable faults) and \
         hardest-to-test nets";
    };
    {
      id = "DP008";
      name = "redundant-constant";
      tier = Testability;
      default_severity = Diagnostic.Warning;
      summary =
        "a net is provably constant, so one stuck-at polarity is \
         untestable (redundant logic)";
    };
    {
      id = "DP009";
      name = "reconvergent-fanout";
      tier = Testability;
      default_severity = Diagnostic.Info;
      summary = "a fanout stem reconverges deep downstream";
    };
    {
      id = "DP010";
      name = "feedback-bridge";
      tier = Bridge_topology;
      default_severity = Diagnostic.Info;
      summary =
        "bridge-universe topology: feedback pairs excluded by the \
         non-feedback fault model";
    };
    {
      id = "DP011";
      name = "predicted-blowup";
      tier = Testability;
      default_severity = Diagnostic.Warning;
      summary =
        "an output cone's predicted BDD width signals exponential \
         blowup even under the synthesized order";
    };
    {
      id = "DP012";
      name = "inadmissible-function";
      tier = Testability;
      default_severity = Diagnostic.Warning;
      summary =
        "an input is in a cone structurally but absent from its \
         functional support: both stuck-at polarities untestable";
    };
    {
      id = "DP013";
      name = "order-oracle-audit";
      tier = Testability;
      default_severity = Diagnostic.Info;
      summary =
        "the static order oracle's preference is refuted by exact BDD \
         measurement";
    };
  ]

let find_rule id = List.find_opt (fun r -> String.equal r.id id) rules

type config = {
  rules : string list option;
  verify : bool;
  bdd_budget : int;
  ffr_min_size : int;
  reconv_min_depth : int;
  scoap_floor : int;
  scoap_report : int;
  bridge_max_nets : int;
  max_per_rule : int;
  blowup_floor : int;
}

let default_config =
  {
    rules = None;
    verify = true;
    bdd_budget = 1_000_000;
    ffr_min_size = 10;
    reconv_min_depth = 10;
    scoap_floor = 200;
    scoap_report = 3;
    bridge_max_nets = 2500;
    max_per_rule = 25;
    blowup_floor = 100_000;
  }

exception Unknown_rule of string

let enabled cfg id =
  match cfg.rules with
  | None -> true
  | Some ids -> List.exists (fun r -> String.equal (String.uppercase_ascii r) id) ids

let validate_rule_selection cfg =
  match cfg.rules with
  | None -> ()
  | Some ids ->
    List.iter
      (fun id ->
        if find_rule (String.uppercase_ascii id) = None then
          raise (Unknown_rule id))
      ids

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let location ?file ?net ?span () = { Diagnostic.file; net; span }

let net_location ~file ~spans c g =
  let name = (Circuit.gate c g).Circuit.name in
  let span =
    match spans with
    | None -> None
    | Some table -> Hashtbl.find_opt table name
  in
  location ?file ~net:name ?span ()

let cap cfg diags =
  let n = List.length diags in
  if n <= cfg.max_per_rule then diags
  else
    match List.filteri (fun i _ -> i < cfg.max_per_rule) diags with
    | [] -> []
    | kept ->
      let last = List.nth kept (List.length kept - 1) in
      kept
      @ [
          Diagnostic.make ~rule:last.Diagnostic.rule
            ~severity:Diagnostic.Info
            ~location:
              {
                Diagnostic.no_location with
                Diagnostic.file = last.Diagnostic.location.Diagnostic.file;
              }
            (Printf.sprintf "%d further %s findings suppressed (cap %d)"
               (n - cfg.max_per_rule) last.Diagnostic.rule cfg.max_per_rule);
        ]

(* ------------------------------------------------------------------ *)
(* Structural tier over the raw (pre-elaboration) netlist              *)

let rule_cycles ~file raw =
  Bench_format.cycles raw
  |> List.map (fun comp ->
         let name, span = comp.(0) in
         let members =
           Array.to_list comp |> List.map fst |> String.concat ", "
         in
         Diagnostic.make ~rule:"DP001" ~severity:Diagnostic.Error
           ~location:(location ?file ~net:name ~span ())
           (Printf.sprintf
              "combinational cycle through %d net(s): %s — no topological \
               order exists, the netlist is not combinational"
              (Array.length comp) members))

let rule_undriven ~file raw =
  let defined = Hashtbl.create 64 in
  List.iter
    (fun (name, _) -> Hashtbl.replace defined name ())
    (Bench_format.definitions raw);
  let reported = Hashtbl.create 8 in
  Bench_format.uses raw
  |> List.filter_map (fun (name, span) ->
         if Hashtbl.mem defined name || Hashtbl.mem reported name then None
         else begin
           Hashtbl.add reported name ();
           Some
             (Diagnostic.make ~rule:"DP002" ~severity:Diagnostic.Error
                ~location:(location ?file ~net:name ~span ())
                (Printf.sprintf
                   "net %S is used but never driven (first use here)" name))
         end)

let rule_duplicates ~file raw =
  let first = Hashtbl.create 64 in
  Bench_format.definitions raw
  |> List.filter_map (fun (name, span) ->
         match Hashtbl.find_opt first name with
         | None ->
           Hashtbl.add first name span;
           None
         | Some (first_span : Bench_format.span) ->
           Some
             (Diagnostic.make ~rule:"DP003" ~severity:Diagnostic.Error
                ~location:(location ?file ~net:name ~span ())
                (Printf.sprintf
                   "duplicate driver for net %S (first defined at line %d)"
                   name first_span.Bench_format.line)))

let rule_arity ~file raw =
  raw.Bench_format.r_gates
  |> List.filter_map (fun (g : Bench_format.raw_gate) ->
         let n = List.length g.g_fanins in
         if Gate.arity_ok g.g_kind n then None
         else
           Some
             (Diagnostic.make ~rule:"DP004" ~severity:Diagnostic.Error
                ~location:(location ?file ~net:g.g_net ~span:g.g_span ())
                (Printf.sprintf "%s gate %S with %d fanin(s)"
                   (Gate.name g.g_kind) g.g_net n)))

(* ------------------------------------------------------------------ *)
(* Structural tier over an elaborated circuit                          *)

let rule_floating ~file ~spans cfg c =
  let counts = Circuit.fanout_count c in
  let diags = ref [] in
  for g = Circuit.num_gates c - 1 downto 0 do
    if counts.(g) = 0 && not (Circuit.is_output c g) then begin
      let what =
        if Circuit.is_input c g then "primary input" else "gate output"
      in
      diags :=
        Diagnostic.make ~rule:"DP005" ~severity:Diagnostic.Warning
          ~location:(net_location ~file ~spans c g)
          (Printf.sprintf
             "%s %S drives nothing and is not a primary output (dead logic)"
             what (Circuit.gate c g).Circuit.name)
        :: !diags
    end
  done;
  cap cfg !diags

let rule_ffr_audit ~file ~spans cfg c =
  let n = Circuit.num_gates c in
  let counts = Circuit.fanout_count c in
  let fanouts = Circuit.fanouts c in
  (* Reverse topological sweep: a net with a single reader belongs to
     its reader's fanout-free region; everything else heads its own. *)
  let head = Array.init n (fun g -> g) in
  for g = n - 1 downto 0 do
    if counts.(g) = 1 && not (Circuit.is_output c g) then
      head.(g) <- head.(fanouts.(g).(0))
  done;
  let size = Array.make n 0 in
  Array.iter (fun h -> size.(h) <- size.(h) + 1) head;
  let diags = ref [] in
  for g = n - 1 downto 0 do
    if size.(g) >= cfg.ffr_min_size then
      diags :=
        Diagnostic.make ~rule:"DP006" ~severity:Diagnostic.Info
          ~location:(net_location ~file ~spans c g)
          (Printf.sprintf
             "fanout-free region of %d nets converges on %S: one checkpoint \
              region — its observability gates every fault inside"
             size.(g) (Circuit.gate c g).Circuit.name)
        :: !diags
  done;
  cap cfg !diags

(* ------------------------------------------------------------------ *)
(* Testability tier                                                    *)

let rule_scoap ~file ~spans cfg c =
  let m = Scoap.compute c in
  let unobservable = ref [] in
  let hard = ref [] in
  for g = Circuit.num_gates c - 1 downto 0 do
    let co = Scoap.observability m g in
    if co = max_int then begin
      let name = (Circuit.gate c g).Circuit.name in
      unobservable :=
        Diagnostic.make ~rule:"DP007" ~severity:Diagnostic.Warning
          ~location:(net_location ~file ~spans c g)
          ~claims:[ (name, false); (name, true) ]
          (Printf.sprintf
             "net %S reaches no primary output: both stuck-at faults on it \
              are untestable" name)
        :: !unobservable
    end
    else begin
      let difficulty =
        co
        + min
            (Scoap.controllability m ~net:g ~value:false)
            (Scoap.controllability m ~net:g ~value:true)
      in
      if difficulty >= cfg.scoap_floor then hard := (difficulty, g) :: !hard
    end
  done;
  let hardest =
    List.sort (fun (a, _) (b, _) -> Stdlib.compare b a) !hard
    |> List.filteri (fun i _ -> i < cfg.scoap_report)
    |> List.map (fun (difficulty, g) ->
           Diagnostic.make ~rule:"DP007" ~severity:Diagnostic.Info
             ~location:(net_location ~file ~spans c g)
             (Printf.sprintf
                "net %S is the circuit's hardest to test (SCOAP \
                 controllability+observability %d >= %d): a prime DFT \
                 candidate for a test or observation point"
                (Circuit.gate c g).Circuit.name difficulty cfg.scoap_floor))
  in
  cap cfg !unobservable @ hardest

let rule_constants ~file ~spans cfg c =
  let lattice = Const_lattice.compute c in
  let claim ~proof g v =
    let name = (Circuit.gate c g).Circuit.name in
    Diagnostic.make ~rule:"DP008" ~severity:Diagnostic.Warning
      ~location:(net_location ~file ~spans c g)
      ~claims:[ (name, v) ]
      (Printf.sprintf
         "net %S is provably constant %d (%s): stuck-at-%d on it can never \
          be excited — redundant logic"
         name (Bool.to_int v) proof (Bool.to_int v))
  in
  let structural = ref [] and resolved = Array.make (Circuit.num_gates c) false in
  for g = Circuit.num_gates c - 1 downto 0 do
    match Const_lattice.constant lattice g with
    | Some v ->
      resolved.(g) <- true;
      structural := claim ~proof:"constant lattice" g v :: !structural
    | None -> ()
  done;
  (* BDD tier: where the lattice is inconclusive, a budgeted symbolic
     build settles functional constancy exactly — cheap on everything
     the lattice already simplified, abandoned mid-apply if the circuit
     is hostile. *)
  let bdd = ref [] in
  if cfg.bdd_budget > 0 then begin
    let sym = Symbolic.build_lazy c in
    let m = Symbolic.manager sym in
    (try
       Bdd.with_budget m ~budget:cfg.bdd_budget (fun () ->
           for g = 0 to Circuit.num_gates c - 1 do
             if (not resolved.(g)) && not (Circuit.is_input c g) then begin
               Symbolic.force sym g;
               let f = Symbolic.node_function sym g in
               if Bdd.is_zero m f then bdd := claim ~proof:"BDD" g false :: !bdd
               else if Bdd.is_one m f then
                 bdd := claim ~proof:"BDD" g true :: !bdd
             end
           done)
     with Bdd.Budget_exceeded { nodes; budget } ->
       bdd :=
         Diagnostic.make ~rule:"DP008" ~severity:Diagnostic.Info
           ~location:(location ?file ())
           (Printf.sprintf
              "BDD constancy tier stopped at its node budget (%d of %d \
               nodes): remaining nets checked structurally only" nodes budget)
         :: !bdd);
    ()
  end;
  cap cfg (!structural @ List.rev !bdd)

let rule_reconvergence ~file ~spans cfg c =
  let n = Circuit.num_gates c in
  let counts = Circuit.fanout_count c in
  let levels = Circuit.levels c in
  let diags = ref [] in
  for s = 0 to n - 1 do
    if counts.(s) >= 2 then begin
      let cone = Circuit.fanout_cone c [ s ] in
      (* First gate joining two cone paths = the earliest reconvergence. *)
      let first = ref None in
      let points = ref 0 in
      for g = s + 1 to n - 1 do
        if cone.(g) then begin
          let in_cone_fanins = ref 0 in
          let seen_fanins = Hashtbl.create 4 in
          Array.iter
            (fun f ->
              if cone.(f) && not (Hashtbl.mem seen_fanins f) then begin
                Hashtbl.add seen_fanins f ();
                incr in_cone_fanins
              end)
            (Circuit.gate c g).Circuit.fanins;
          if !in_cone_fanins >= 2 then begin
            incr points;
            if !first = None then first := Some g
          end
        end
      done;
      match !first with
      | Some g when levels.(g) - levels.(s) >= cfg.reconv_min_depth ->
        diags :=
          Diagnostic.make ~rule:"DP009" ~severity:Diagnostic.Info
            ~location:(net_location ~file ~spans c s)
            (Printf.sprintf
               "fanout of %S first reconverges %d levels downstream at %S \
                (%d reconvergence points in its cone): long correlated \
                paths, the classic source of hard and untestable faults"
               (Circuit.gate c s).Circuit.name
               (levels.(g) - levels.(s))
               (Circuit.gate c g).Circuit.name !points)
          :: !diags
      | _ -> ()
    end
  done;
  cap cfg (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* Topology-oracle rules (DP011–DP013)                                 *)

let rule_blowup ~file ~spans cfg c (topo : Topology.t) =
  let floor = float_of_int cfg.blowup_floor in
  Array.to_list topo.Topology.cones
  |> List.filter (fun k -> k.Topology.predicted_nodes >= floor)
  |> List.map (fun (k : Topology.cone) ->
         Diagnostic.make ~rule:"DP011" ~severity:Diagnostic.Warning
           ~location:(net_location ~file ~spans c k.Topology.output)
           (Printf.sprintf
              "output cone of %S predicts BDD blowup: ~%.0f peak nodes \
               (log2 width %d, cutwidth %d, hostility %.2f) even under \
               the synthesized %s order — consider a decomposed or \
               simulation-based flow for this cone (dpa topo \
               --emit-order prints the suggested order)"
              k.Topology.output_name k.Topology.predicted_nodes
              k.Topology.predicted_log2_width k.Topology.cutwidth
              k.Topology.hostility
              (Ordering.name topo.Topology.winner)))
  |> cap cfg

let rule_inadmissible ~file ~spans cfg c (topo : Topology.t) =
  if cfg.bdd_budget <= 0 then []
  else begin
    (* Functional support of every PO, under the oracle order and a
       node budget.  Claims are only made from a complete build: a
       budget stop yields a note, never a verdict. *)
    let sym = Symbolic.build_lazy ~order:topo.Topology.order c in
    let m = Symbolic.manager sym in
    let fsupp = Hashtbl.create 16 in
    let complete =
      try
        Bdd.with_budget m ~budget:cfg.bdd_budget (fun () ->
            Array.iter
              (fun po ->
                Symbolic.force sym po;
                let h = Hashtbl.create 8 in
                List.iter
                  (fun v -> Hashtbl.replace h v ())
                  (Bdd.support m (Symbolic.node_function sym po));
                Hashtbl.replace fsupp po h)
              c.Circuit.outputs);
        true
      with Bdd.Budget_exceeded _ -> false
    in
    if not complete then
      [
        Diagnostic.make ~rule:"DP012" ~severity:Diagnostic.Info
          ~location:(location ?file ())
          (Printf.sprintf
             "inadmissible-function audit stopped at its node budget \
              (%d): no functional-support verdicts for this circuit"
             cfg.bdd_budget);
      ]
    else begin
      let diags = ref [] in
      for g = Circuit.num_gates c - 1 downto 0 do
        if Circuit.is_input c g then begin
          match (Circuit.input_position c g, Circuit.output_cone c g) with
          | Some pos, (_ :: _ as reached)
            when List.for_all
                   (fun po -> not (Hashtbl.mem (Hashtbl.find fsupp po) pos))
                   reached ->
            let name = (Circuit.gate c g).Circuit.name in
            diags :=
              Diagnostic.make ~rule:"DP012" ~severity:Diagnostic.Warning
                ~location:(net_location ~file ~spans c g)
                ~claims:[ (name, false); (name, true) ]
                (Printf.sprintf
                   "input %S reaches %d output cone(s) structurally but \
                    none functionally (inadmissible function): stuck-at-0 \
                    and stuck-at-1 on it can never be observed — \
                    redundant logic"
                   name (List.length reached))
              :: !diags
          | _ -> ()
        end
      done;
      cap cfg !diags
    end
  end

let rule_order_audit ~file cfg c (topo : Topology.t) =
  if cfg.bdd_budget <= 0 || topo.Topology.winner = Ordering.Natural then []
  else begin
    (* The oracle preferred a non-natural order on cutwidth evidence;
       measure both orders exactly (budgeted) and report when the
       measurement refutes the static preference. *)
    let measure order =
      let sym = Symbolic.build_lazy ?order c in
      let m = Symbolic.manager sym in
      try
        Bdd.with_budget m ~budget:cfg.bdd_budget (fun () ->
            Array.iter (Symbolic.force sym) c.Circuit.outputs);
        Some (Symbolic.total_nodes sym)
      with Bdd.Budget_exceeded _ -> None
    in
    let natural = measure None in
    let oracle = measure (Some topo.Topology.order) in
    let disagree detail =
      [
        Diagnostic.make ~rule:"DP013" ~severity:Diagnostic.Info
          ~location:(location ?file ())
          (Printf.sprintf
             "order oracle audit: the synthesized %s order (est cutwidth \
              %d vs natural %d%s) %s — static preference refuted by \
              exact measurement"
             (Ordering.name topo.Topology.winner)
             topo.Topology.est_cutwidth topo.Topology.natural_cutwidth
             (if topo.Topology.confident then ", confident" else "")
             detail);
      ]
    in
    match (natural, oracle) with
    | Some n, Some o when n <= o ->
      disagree
        (Printf.sprintf "builds %d nodes vs %d under the natural order" o n)
    | Some _, None ->
      disagree
        (Printf.sprintf
           "exceeds the %d-node budget where the natural order fits"
           cfg.bdd_budget)
    | _ -> []
  end

(* ------------------------------------------------------------------ *)
(* Bridge-topology tier                                                *)

let rule_bridges ~file cfg c =
  let n = Circuit.num_gates c in
  if n > cfg.bridge_max_nets then
    [
      Diagnostic.make ~rule:"DP010" ~severity:Diagnostic.Info
        ~location:(location ?file ())
        (Printf.sprintf
           "bridge-topology audit skipped: %d nets exceeds the quadratic \
            budget (%d)" n cfg.bridge_max_nets);
    ]
  else begin
    let anc = Bridge.ancestors c in
    let pairs = n * (n - 1) / 2 in
    let feedback = ref 0 in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if Bridge.is_feedback anc a b then incr feedback
      done
    done;
    let nfbf = Bridge.count c in
    [
      Diagnostic.make ~rule:"DP010" ~severity:Diagnostic.Info
        ~location:(location ?file ())
        (Printf.sprintf
           "bridge universe: %d net pairs, %d feedback (%.1f%% — outside \
            the engine's non-feedback fault model, excluded statically), \
            %d potentially detectable non-feedback bridge faults"
           pairs !feedback
           (100.0 *. float_of_int !feedback /. float_of_int (max 1 pairs))
           nfbf);
    ]
  end

(* ------------------------------------------------------------------ *)
(* Exact cross-validation                                              *)

let verify_claims c diags =
  let claimed =
    List.exists (fun d -> d.Diagnostic.claims <> []) diags
  in
  if not claimed then diags
  else begin
    let engine = Engine.create c in
    List.map
      (fun d ->
        if d.Diagnostic.claims = [] then d
        else begin
          let confirmed =
            List.for_all
              (fun (name, v) ->
                match Circuit.index_of_name c name with
                | None -> false
                | Some g ->
                  Engine.redundant engine
                    (Fault.Stuck
                       { Sa_fault.line = Sa_fault.Stem g; value = v }))
              d.Diagnostic.claims
          in
          if confirmed then { d with Diagnostic.verified = Some true }
          else
            (* A refuted claim is a soundness bug in this linter, never
               a property of the circuit: surface it as loudly as the
               diagnostic system allows. *)
            {
              d with
              Diagnostic.verified = Some false;
              severity = Diagnostic.Error;
              message =
                d.Diagnostic.message
                ^ " [INTERNAL: exact difference propagation refutes this \
                   verdict — please report]";
            }
        end)
      diags
  end

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)

let circuit_rules ?(config = default_config) ?file ?spans c =
  validate_rule_selection config;
  let run_if id f = if enabled config id then f () else [] in
  (* One topology analysis shared by DP011–DP013, paid only if one of
     them is enabled. *)
  let topo = lazy (Topology.analyze c) in
  let diags =
    run_if "DP005" (fun () -> rule_floating ~file ~spans config c)
    @ run_if "DP006" (fun () -> rule_ffr_audit ~file ~spans config c)
    @ run_if "DP007" (fun () -> rule_scoap ~file ~spans config c)
    @ run_if "DP008" (fun () -> rule_constants ~file ~spans config c)
    @ run_if "DP009" (fun () -> rule_reconvergence ~file ~spans config c)
    @ run_if "DP010" (fun () -> rule_bridges ~file config c)
    @ run_if "DP011" (fun () ->
          rule_blowup ~file ~spans config c (Lazy.force topo))
    @ run_if "DP012" (fun () ->
          rule_inadmissible ~file ~spans config c (Lazy.force topo))
    @ run_if "DP013" (fun () ->
          rule_order_audit ~file config c (Lazy.force topo))
  in
  let diags = if config.verify then verify_claims c diags else diags in
  List.sort Diagnostic.compare diags

let run ?config ?file c = circuit_rules ?config ?file ?spans:None c

let run_raw ?(config = default_config) ?file raw =
  validate_rule_selection config;
  let run_if id f = if enabled config id then f () else [] in
  let structural =
    run_if "DP001" (fun () -> rule_cycles ~file raw)
    @ run_if "DP002" (fun () -> rule_undriven ~file raw)
    @ run_if "DP003" (fun () -> rule_duplicates ~file raw)
    @ run_if "DP004" (fun () -> rule_arity ~file raw)
  in
  (* The circuit-level rules need a well-formed netlist; any structural
     defect at all (enabled or not) makes elaboration unsafe, so probe
     it under a catch-all rather than second-guess which rule fired. *)
  match Bench_format.elaborate raw with
  | c ->
    let spans = Bench_format.definition_spans raw in
    (structural @ circuit_rules ~config ?file ~spans c, Some c)
  | exception (Bench_format.Parse_error _ | Circuit.Malformed _) ->
    (List.sort Diagnostic.compare structural, None)

let run_source ?config ?file ~title text =
  run_raw ?config ?file (Bench_format.parse_raw ~title text)

let run_file ?config path =
  run_raw ?config ~file:path (Bench_format.parse_raw_file path)
