(** Static testability linter over gate-level netlists.

    Operationalises the paper's "Implications to Test and Testable
    Design": topology alone predicts much of fault behaviour, so a
    cheap static pass can diagnose a netlist — flag redundant stuck-at
    candidates, unobservable and hardest-to-test nets, oversized
    fanout-free regions, deep reconvergence, and the feedback share of
    the bridge universe — before any exact analysis runs.  Three proof
    tiers back the verdicts: pure structure (SCC, fanout, SCOAP), a
    constant-propagation lattice ({!Const_lattice}), and budgeted BDD
    checks where structure is inconclusive; with {!config.verify} on
    (the default), every "definitely redundant" claim is additionally
    confirmed by the exact Difference Propagation engine
    ({!Engine.redundant}) before it is reported. *)

type tier = Structural | Testability | Bridge_topology

val tier_to_string : tier -> string

type rule = {
  id : string;  (** ["DP001"] .. ["DP013"] *)
  name : string;  (** kebab-case, e.g. ["combinational-cycle"] *)
  tier : tier;
  default_severity : Diagnostic.severity;
  summary : string;
}

val rules : rule list
(** The full registry, in rule-code order:

    - [DP001] combinational-cycle (error) — name-level SCC
    - [DP002] undriven-net (error)
    - [DP003] duplicate-driver (error)
    - [DP004] arity-violation (error)
    - [DP005] floating-net (warning)
    - [DP006] ffr-audit (info) — oversized fanout-free regions
    - [DP007] scoap-extreme (warning/info) — unobservable nets (with
      redundancy claims) and hardest-to-test nets
    - [DP008] redundant-constant (warning) — lattice- or BDD-provable
      constant nets, one untestable stuck-at polarity each
    - [DP009] reconvergent-fanout (info) — deep first reconvergence
    - [DP010] feedback-bridge (info) — feedback share of the
      two-line bridge universe
    - [DP011] predicted-blowup (warning) — output cones whose
      {!Topology} width prediction exceeds {!config.blowup_floor},
      with the synthesized-order suggestion
    - [DP012] inadmissible-function (warning) — inputs structurally in
      a cone but absent from every reached output's budgeted
      functional support: both stuck-at polarities untestable (claims
      countersigned like DP008)
    - [DP013] order-oracle-audit (info) — the static order oracle's
      non-natural preference measured against exact budgeted builds;
      silent when measurement agrees *)

val find_rule : string -> rule option

type config = {
  rules : string list option;
      (** enable only these rule ids (case-insensitive); [None] = all *)
  verify : bool;
      (** confirm every redundancy claim with the exact engine
          (default true); a refuted claim — a linter soundness bug —
          is escalated to an error-severity diagnostic *)
  bdd_budget : int;
      (** node budget of the DP008 BDD tier; [0] disables it *)
  ffr_min_size : int;  (** DP006 threshold (nets per region) *)
  reconv_min_depth : int;  (** DP009 threshold (levels) *)
  scoap_floor : int;  (** DP007 minimum reported difficulty *)
  scoap_report : int;  (** DP007 hardest-net count *)
  bridge_max_nets : int;  (** DP010 quadratic-audit cutoff *)
  max_per_rule : int;  (** per-rule diagnostic cap (overflow noted) *)
  blowup_floor : int;
      (** DP011 threshold: minimum predicted peak nodes of a cone *)
}

val default_config : config

exception Unknown_rule of string
(** Raised by the drivers when {!config.rules} names an unknown id. *)

val run : ?config:config -> ?file:string -> Circuit.t -> Diagnostic.t list
(** Circuit-level rules (DP005–DP010) on an already-elaborated circuit.
    No source spans are available on this path; diagnostics carry net
    names only.  Sorted with {!Diagnostic.compare}. *)

val run_raw :
  ?config:config ->
  ?file:string ->
  Bench_format.raw ->
  Diagnostic.t list * Circuit.t option
(** The full pipeline on a span-preserving raw netlist: structural
    rules (DP001–DP004) first; if the netlist elaborates, the
    circuit-level rules run too with definition spans attached, and
    the elaborated circuit is returned for reuse. *)

val run_source :
  ?config:config ->
  ?file:string ->
  title:string ->
  string ->
  Diagnostic.t list * Circuit.t option
(** [run_raw] over parsed text.  @raise Bench_format.Parse_error on
    {e syntax} errors only (semantic defects become diagnostics). *)

val run_file :
  ?config:config -> string -> Diagnostic.t list * Circuit.t option
(** [run_source] over a [.bench] file, with [file] set to its path. *)
