(* Baseline suppression: adopt the linter on a legacy netlist by
   freezing today's findings and failing only on what is new.  The file
   stores one fingerprint per line — rule code plus the nets involved,
   never messages or line numbers — so reformatting the netlist or
   rewording a diagnostic does not unsuppress anything. *)

let magic = "# dpa-lint baseline v1"

type t = (string, unit) Hashtbl.t

let empty () : t = Hashtbl.create 8

let of_diagnostics diags : t =
  let t = Hashtbl.create (List.length diags * 2) in
  List.iter (fun d -> Hashtbl.replace t (Diagnostic.fingerprint d) ()) diags;
  t

exception Malformed of string

let load path : t =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let t = Hashtbl.create 32 in
      let first = ref true in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if !first then begin
             first := false;
             if line <> magic then
               raise
                 (Malformed
                    (Printf.sprintf "expected %S header, got %S" magic line))
           end
           else if line <> "" && line.[0] <> '#' then Hashtbl.replace t line ()
         done
       with End_of_file -> ());
      if !first then raise (Malformed "empty baseline file");
      t)

let save path diags =
  let fingerprints =
    List.map Diagnostic.fingerprint diags
    |> List.sort_uniq String.compare
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_char oc '\n';
      List.iter
        (fun fp ->
          output_string oc fp;
          output_char oc '\n')
        fingerprints)

let mem (t : t) d = Hashtbl.mem t (Diagnostic.fingerprint d)

let filter (t : t) diags = List.filter (fun d -> not (mem t d)) diags
