(** SARIF 2.1.0 and plain-JSON renderers for lint diagnostics.

    Both renderers are deterministic (stable key order, caller-sorted
    diagnostics), so their output is golden-file- and diff-stable. *)

val render : ?tool_version:string -> uri:string -> Diagnostic.t list -> string
(** A complete single-run SARIF 2.1.0 log: tool driver with the full
    rule registry ({!Lint.rules}), one [result] per diagnostic with a
    physical location ([uri] when the diagnostic names no file),
    stable [partialFingerprints], and the redundancy claims under
    [properties.redundantFaults]. *)

val render_json : uri:string -> Diagnostic.t list -> string
(** Flat JSON array, one object per diagnostic: [rule], [severity],
    [message], [file], and where known [net], [line], [column],
    [claims], [verified]. *)
