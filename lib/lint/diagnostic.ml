type severity = Error | Warning | Info

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" | "note" -> Some Info
  | _ -> None

type location = {
  file : string option;
  net : string option;
  span : Bench_format.span option;
}

let no_location = { file = None; net = None; span = None }

type t = {
  rule : string;
  severity : severity;
  message : string;
  location : location;
  claims : (string * bool) list;
  verified : bool option;
}

let make ?(location = no_location) ?(claims = []) ?verified ~rule ~severity
    message =
  { rule; severity; message; location; claims; verified }

(* Stable identity for baseline suppression: rule plus the nets and
   fault polarities involved — never the message text or the source
   position, both of which shift under harmless reformatting. *)
let fingerprint d =
  let net = match d.location.net with Some n -> "net=" ^ n | None -> "-" in
  let claims =
    match d.claims with
    | [] -> ""
    | cs ->
      " "
      ^ String.concat ","
          (List.map
             (fun (n, v) -> Printf.sprintf "%s/sa%d" n (Bool.to_int v))
             cs)
  in
  Printf.sprintf "%s %s%s" d.rule net claims

let compare_position a b =
  match (a.location.span, b.location.span) with
  | Some sa, Some sb ->
    Stdlib.compare
      (sa.Bench_format.line, sa.Bench_format.start_col)
      (sb.Bench_format.line, sb.Bench_format.start_col)
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> 0

(* Report order: errors first, then by source position, then rule. *)
let compare a b =
  let c = Stdlib.compare (severity_rank b.severity) (severity_rank a.severity) in
  if c <> 0 then c
  else
    let c = compare_position a b in
    if c <> 0 then c else Stdlib.compare (a.rule, a.message) (b.rule, b.message)

let pp fmt d =
  let file = Option.value d.location.file ~default:"<netlist>" in
  (match d.location.span with
  | Some sp ->
    Format.fprintf fmt "%s:%d:%d: " file sp.Bench_format.line
      sp.Bench_format.start_col
  | None -> Format.fprintf fmt "%s: " file);
  Format.fprintf fmt "%s: [%s] %s" (severity_to_string d.severity) d.rule
    d.message;
  match d.verified with
  | Some true -> Format.fprintf fmt " (confirmed by exact analysis)"
  | Some false -> Format.fprintf fmt " (REFUTED by exact analysis)"
  | None -> ()

let to_string d = Format.asprintf "%a" pp d
