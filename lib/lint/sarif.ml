(* SARIF 2.1.0 and plain-JSON renderers.  No JSON library is available
   here (same constraint as lib/core/journal.ml), so the writer is
   hand-rolled over Buffer; output is deterministic — stable key order,
   diagnostics pre-sorted by the caller — so golden-file tests and CI
   artifact diffs stay byte-stable. *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\000' .. '\031' ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let quoted s = "\"" ^ escape_string s ^ "\""

(* Minimal combinator layer: values are pre-rendered strings. *)
let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> quoted k ^ ":" ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let sarif_level = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let tool_name = "dpa-lint"
let information_uri =
  "https://github.com/diffprop/diffprop#static-testability-linter"

let region (span : Bench_format.span) =
  obj
    [
      ("startLine", string_of_int span.Bench_format.line);
      ("startColumn", string_of_int span.Bench_format.start_col);
      ("endColumn", string_of_int span.Bench_format.end_col);
    ]

let result_location ~default_uri (d : Diagnostic.t) =
  let uri = Option.value d.Diagnostic.location.Diagnostic.file ~default:default_uri in
  let physical =
    ("artifactLocation", obj [ ("uri", quoted uri) ])
    ::
    (match d.Diagnostic.location.Diagnostic.span with
    | Some span -> [ ("region", region span) ]
    | None -> [])
  in
  obj [ ("physicalLocation", obj physical) ]

let result ~default_uri (d : Diagnostic.t) =
  let properties =
    (match d.Diagnostic.location.Diagnostic.net with
    | Some net -> [ ("net", quoted net) ]
    | None -> [])
    @ (match d.Diagnostic.claims with
      | [] -> []
      | claims ->
        [
          ( "redundantFaults",
            arr
              (List.map
                 (fun (net, v) ->
                   obj
                     [
                       ("net", quoted net);
                       ("stuckAt", string_of_int (Bool.to_int v));
                     ])
                 claims) );
        ])
    @
    match d.Diagnostic.verified with
    | Some v -> [ ("verifiedByExactEngine", if v then "true" else "false") ]
    | None -> []
  in
  obj
    ([
       ("ruleId", quoted d.Diagnostic.rule);
       ("level", quoted (sarif_level d.Diagnostic.severity));
       ("message", obj [ ("text", quoted d.Diagnostic.message) ]);
       ("locations", arr [ result_location ~default_uri d ]);
       ( "partialFingerprints",
         obj [ ("dpaLint/v1", quoted (Diagnostic.fingerprint d)) ] );
     ]
    @ if properties = [] then [] else [ ("properties", obj properties) ])

let rule_descriptor (r : Lint.rule) =
  obj
    [
      ("id", quoted r.Lint.id);
      ("name", quoted r.Lint.name);
      ("shortDescription", obj [ ("text", quoted r.Lint.summary) ]);
      ( "defaultConfiguration",
        obj [ ("level", quoted (sarif_level r.Lint.default_severity)) ] );
      ( "properties",
        obj [ ("tier", quoted (Lint.tier_to_string r.Lint.tier)) ] );
    ]

let render ?(tool_version = "1.0.0") ~uri diags =
  let driver =
    obj
      [
        ("name", quoted tool_name);
        ("version", quoted tool_version);
        ("informationUri", quoted information_uri);
        ("rules", arr (List.map rule_descriptor Lint.rules));
      ]
  in
  let run =
    obj
      [
        ("tool", obj [ ("driver", driver) ]);
        ("results", arr (List.map (result ~default_uri:uri) diags));
      ]
  in
  obj
    [
      ("version", quoted "2.1.0");
      ("$schema", quoted "https://json.schemastore.org/sarif-2.1.0.json");
      ("runs", arr [ run ]);
    ]

(* Plain-JSON sibling: one flat object per diagnostic, the shape the
   CI gate and scripting consumers read without a SARIF parser. *)
let render_json ~uri diags =
  let diag (d : Diagnostic.t) =
    obj
      ([
         ("rule", quoted d.Diagnostic.rule);
         ("severity", quoted (Diagnostic.severity_to_string d.Diagnostic.severity));
         ("message", quoted d.Diagnostic.message);
         ("file", quoted (Option.value d.Diagnostic.location.Diagnostic.file ~default:uri));
       ]
      @ (match d.Diagnostic.location.Diagnostic.net with
        | Some net -> [ ("net", quoted net) ]
        | None -> [])
      @ (match d.Diagnostic.location.Diagnostic.span with
        | Some sp ->
          [
            ("line", string_of_int sp.Bench_format.line);
            ("column", string_of_int sp.Bench_format.start_col);
          ]
        | None -> [])
      @ (match d.Diagnostic.claims with
        | [] -> []
        | claims ->
          [
            ( "claims",
              arr
                (List.map
                   (fun (net, v) ->
                     obj
                       [
                         ("net", quoted net);
                         ("stuckAt", string_of_int (Bool.to_int v));
                       ])
                   claims) );
          ])
      @
      match d.Diagnostic.verified with
      | Some v -> [ ("verified", if v then "true" else "false") ]
      | None -> [])
  in
  arr (List.map diag diags)
