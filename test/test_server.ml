(* The dpa serve daemon: protocol round trips, the resident-engine LRU,
   admission control (busy rejections, coalescing), end-to-end request
   streams over a real Unix socket, deadline mapping, and graceful
   drain with in-flight work completing.  The SIGKILL-and-restart
   byte-identity property lives in test_journal.ml beside the other
   crash-resume properties. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dpa-serve-test-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      try rm dir with _ -> ())
    (fun () -> f dir)

let with_server ?(workers = 1) ?(queue_capacity = 64) ?state_dir f =
  with_temp_dir (fun dir ->
      let sock = Filename.concat dir "dpa.sock" in
      let server =
        Server.start
          {
            (Server.default_config ~socket:(Server.Unix_socket sock)) with
            Server.workers;
            queue_capacity;
            state_dir;
          }
      in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () -> f server sock))

let stuck_faults c =
  List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let test_request_roundtrip () =
  let opts =
    {
      Protocol.fault_budget = Some 500;
      deadline_ms = Some 12.5;
      max_retries = 3;
      samples = 64;
    }
  in
  (match
     Protocol.parse_request
       (Protocol.analyze_request ~id:"r1" ~opts (Protocol.Named "c17"))
   with
  | Ok (Protocol.Analyze { id; spec = Protocol.Named name; opts = o }) ->
    check Alcotest.string "id" "r1" id;
    check Alcotest.string "circuit" "c17" name;
    check bool_t "opts survive" true (o = opts)
  | _ -> Alcotest.fail "analyze request did not round trip");
  let source = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n" in
  (match
     Protocol.parse_request
       (Protocol.analyze_request ~id:"r2"
          (Protocol.Inline { title = "t\"x\""; source }))
   with
  | Ok
      (Protocol.Analyze
        { spec = Protocol.Inline { title; source = s }; opts = o; _ }) ->
    check Alcotest.string "escaped title survives" "t\"x\"" title;
    check Alcotest.string "netlist text survives" source s;
    check bool_t "defaults filled" true (o = Protocol.default_opts)
  | _ -> Alcotest.fail "inline analyze request did not round trip");
  (match Protocol.parse_request (Protocol.simple_request ~id:"p" "ping") with
  | Ok (Protocol.Ping { id }) -> check Alcotest.string "ping id" "p" id
  | _ -> Alcotest.fail "ping did not round trip");
  (* Rejections carry the id when one was readable. *)
  (match Protocol.parse_request "{\"id\":\"x\",\"op\":\"frobnicate\"}" with
  | Error (Some "x", _) -> ()
  | _ -> Alcotest.fail "unknown op should fail with the id");
  match Protocol.parse_request "{\"op\":\"ping\"}" with
  | Error (None, _) -> ()
  | _ -> Alcotest.fail "missing id should fail without one"

(* The envelope wrap/strip pair must preserve the journal line's exact
   bytes — the property the restart byte-identity guarantee rides on. *)
let test_outcome_envelope_inverse () =
  let c = Bench_suite.find "c17" in
  let faults = Array.of_list (stuck_faults c) in
  let awkward = 0.1 +. (1.0 /. 3.0) in
  let lines =
    [
      Journal.outcome_line 0
        (Engine.Exact
           {
             Engine.fault = faults.(0);
             detectability = awkward;
             test_count = 96.0;
             detectable = true;
             pos_fed = 1;
             pos_observed = 1;
             upper_bound = 0.5;
             adherence = Some (awkward /. 7.0);
             wired_support = None;
             test_set_nodes = 5;
             rescued_by_reorder = false;
           });
      Journal.outcome_line 3
        (Engine.Crashed
           { fault = faults.(3); message = "quotes \" and\nnewlines" });
    ]
  in
  List.iter
    (fun line ->
      let wrapped = Protocol.outcome ~id:"weird \"id\"" line in
      match Protocol.outcome_journal_line wrapped with
      | Some line' ->
        check Alcotest.string "journal bytes survive the envelope" line line'
      | None -> Alcotest.fail ("envelope did not strip: " ^ wrapped))
    lines

let test_opts_tag_discriminates () =
  let base = Protocol.default_opts in
  let tags =
    List.map Protocol.opts_tag
      [
        base;
        { base with Protocol.fault_budget = Some 100 };
        { base with Protocol.deadline_ms = Some 5.0 };
        { base with Protocol.max_retries = 0 };
        { base with Protocol.samples = 64 };
      ]
  in
  check int_t "every outcome-affecting knob changes the tag"
    (List.length tags)
    (List.length (List.sort_uniq compare tags))

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)

let test_lru_pinning_and_eviction () =
  let cache = Lru.create ~capacity:2 in
  let c17 = Bench_suite.find "c17" in
  let f17 = stuck_faults c17 in
  let d17 = Journal.digest c17 f17 in
  (* First checkout misses and builds fresh. *)
  let e1 =
    match Lru.checkout cache ~digest:d17 ~circuit:c17 ~faults:f17 with
    | `Fresh e -> e
    | `Cached _ -> Alcotest.fail "empty cache cannot hit"
  in
  (* While e1 is out (pinned after checkin? no — fresh, not yet in the
     cache), a second checkout of the same digest builds its own. *)
  (match Lru.checkout cache ~digest:d17 ~circuit:c17 ~faults:f17 with
  | `Fresh e2 -> Lru.checkin cache e2
  | `Cached _ -> Alcotest.fail "uncached digest cannot hit");
  Lru.checkin cache e1;
  (* Now resident: next checkout hits and pins. *)
  let e3 =
    match Lru.checkout cache ~digest:d17 ~circuit:c17 ~faults:f17 with
    | `Cached e -> e
    | `Fresh _ -> Alcotest.fail "resident digest should hit"
  in
  (* Pinned: a concurrent checkout of the same digest must not share. *)
  (match Lru.checkout cache ~digest:d17 ~circuit:c17 ~faults:f17 with
  | `Fresh e -> check bool_t "twin is a distinct entry" true (e != e3)
  | `Cached _ -> Alcotest.fail "pinned entry must not be shared");
  Lru.checkin cache e3;
  (* Fill past capacity with distinct digests: LRU idle entry evicted. *)
  let c95 = Bench_suite.find "c95" and c432 = Bench_suite.find "c432" in
  List.iter
    (fun c ->
      let f = stuck_faults c in
      let d = Journal.digest c f in
      match Lru.checkout cache ~digest:d ~circuit:c ~faults:f with
      | `Fresh e | `Cached e -> Lru.checkin cache e)
    [ c95; c432 ];
  let s = Lru.stats cache in
  check int_t "capacity respected" 2 s.Lru.resident;
  check bool_t "eviction happened" true (s.Lru.evictions >= 1)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

(* workers = 0 freezes the queue, making admission decisions
   deterministic: jobs are admitted but never drained. *)
let test_busy_and_coalescing () =
  with_server ~workers:0 ~queue_capacity:2 (fun _server sock ->
      let cl = Client.connect_unix_retry sock in
      let opts budget =
        { Protocol.default_opts with Protocol.fault_budget = Some budget }
      in
      let expect_ack i coalesced =
        Client.send cl
          (Protocol.analyze_request ~id:(Printf.sprintf "a%d" i)
             ~opts:(opts i) (Protocol.Named "c17"));
        match Client.recv_response cl with
        | Ok (Protocol.Ack { coalesced = c; _ }) ->
          check bool_t
            (Printf.sprintf "request %d coalesced flag" i)
            coalesced c
        | other ->
          Alcotest.fail
            (Printf.sprintf "request %d: expected ack, got %s" i
               (match other with
               | Ok _ -> "another response"
               | Error e -> e))
      in
      (* Distinct budgets → distinct coalescing keys → distinct jobs. *)
      expect_ack 1 false;
      expect_ack 2 false;
      (* Queue full: a third distinct sweep is refused with busy. *)
      Client.send cl
        (Protocol.analyze_request ~id:"a3" ~opts:(opts 3)
           (Protocol.Named "c17"));
      (match Client.recv_response cl with
      | Ok (Protocol.Busy { queued; capacity; retry_after_ms; _ }) ->
        check int_t "queued" 2 queued;
        check int_t "capacity" 2 capacity;
        check bool_t "retry hint is positive" true (retry_after_ms >= 100)
      | _ -> Alcotest.fail "expected busy");
      (* Same circuit and options as a queued sweep: coalesces instead
         of counting against the full queue. *)
      Client.send cl
        (Protocol.analyze_request ~id:"a4" ~opts:(opts 1)
           (Protocol.Named "c17"));
      (match Client.recv_response cl with
      | Ok (Protocol.Ack { coalesced; _ }) ->
        check bool_t "coalesced onto the queued sweep" true coalesced
      | _ -> Alcotest.fail "expected coalesced ack");
      Client.close cl)

(* ------------------------------------------------------------------ *)
(* End-to-end streams                                                  *)

let test_ping_stats_lint () =
  with_server (fun _server sock ->
      let cl = Client.connect_unix_retry sock in
      Client.send cl (Protocol.simple_request ~id:"p1" "ping");
      (match Client.recv_response cl with
      | Ok (Protocol.Pong { id }) -> check Alcotest.string "pong id" "p1" id
      | _ -> Alcotest.fail "expected pong");
      Client.send cl (Protocol.simple_request ~id:"s1" "stats");
      (match Client.recv_response cl with
      | Ok (Protocol.Stats_response { id; fields }) ->
        check Alcotest.string "stats id" "s1" id;
        check bool_t "stats carry worker count" true
          (Journal.field_int fields "workers" = Some 1)
      | _ -> Alcotest.fail "expected stats");
      Client.send cl (Protocol.lint_request ~id:"l1" (Protocol.Named "c17"));
      (match Client.recv_response cl with
      | Ok (Protocol.Ack { op; _ }) -> check Alcotest.string "op" "lint" op
      | _ -> Alcotest.fail "expected lint ack");
      let rec drain findings =
        match Client.recv_response cl with
        | Ok (Protocol.Finding _) -> drain (findings + 1)
        | Ok (Protocol.Done { op; _ }) ->
          check Alcotest.string "done op" "lint" op
        | Ok _ -> drain findings
        | Error e -> Alcotest.fail e
      in
      drain 0;
      (* Malformed requests are correlated rejections, not hangups. *)
      Client.send cl "{\"id\":\"m1\",\"op\":\"analyze\"}";
      (match Client.recv_response cl with
      | Ok (Protocol.Error_response { id = Some "m1"; code; _ }) ->
        check Alcotest.string "error code" "bad_request" code
      | _ -> Alcotest.fail "expected a correlated bad_request error");
      Client.send cl "{\"id\":\"m2\",\"op\":\"analyze\",\"circuit\":\"nope\"}";
      (match Client.recv_response cl with
      | Ok (Protocol.Error_response { id = Some "m2"; code; _ }) ->
        check Alcotest.string "error code" "bad_circuit" code
      | _ -> Alcotest.fail "expected a bad_circuit error");
      Client.close cl)

(* A full analyze stream: ack, every fault index exactly once and in
   order, outcome payloads parseable by the journal's own reader, then
   done with consistent counts. *)
let test_analyze_stream () =
  with_server (fun _server sock ->
      let c = Bench_suite.find "c17" in
      let faults = Array.of_list (stuck_faults c) in
      let n = Array.length faults in
      let cl = Client.connect_unix_retry sock in
      (match Client.analyze cl ~id:"e2e" (Protocol.Named "c17") with
      | Ok { Client.ack = Some (Protocol.Ack { faults = fa; _ });
             outcomes;
             final = Protocol.Done { exact; op; _ } } ->
        check int_t "ack announces the fault count" n fa;
        check Alcotest.string "done op" "analyze" op;
        check int_t "one outcome per fault" n (List.length outcomes);
        check bool_t "streamed in index order" true
          (List.mapi (fun i _ -> i) outcomes
          = List.map fst outcomes);
        check int_t "all exact on an uncapped sweep" n exact;
        List.iter
          (fun (i, line) ->
            match Journal.outcome_of_line ~faults line with
            | Some (i', _) -> check int_t "payload parses as journal" i i'
            | None ->
              Alcotest.fail ("outcome payload is not a journal line: " ^ line))
          outcomes
      | Ok _ -> Alcotest.fail "unexpected stream shape"
      | Error e -> Alcotest.fail e);
      Client.close cl)

(* Per-request deadlines reach Bdd.with_deadline: a sub-millisecond cap
   degrades faults, but every fault still gets an outcome line and the
   done counts stay consistent — the sweep never wedges or drops. *)
let test_deadline_degrades_not_drops () =
  with_server (fun _server sock ->
      let c = Bench_suite.find "c432" in
      let n = List.length (stuck_faults c) in
      let cl = Client.connect_unix_retry sock in
      let opts =
        {
          Protocol.default_opts with
          Protocol.deadline_ms = Some 0.01;
          max_retries = 0;
          samples = 64;
        }
      in
      (match Client.analyze cl ~id:"dl" ~opts (Protocol.Named "c432") with
      | Ok { Client.outcomes;
             final = Protocol.Done { exact; bounded; unbounded; crashed; _ };
             _ } ->
        check int_t "every fault answered under the deadline" n
          (List.length outcomes);
        check int_t "counts partition the fault set" n
          (exact + bounded + unbounded + crashed);
        check int_t "nothing crashed" 0 crashed
      | Ok _ -> Alcotest.fail "unexpected stream shape"
      | Error e -> Alcotest.fail e);
      Client.close cl)

(* ------------------------------------------------------------------ *)
(* Drain and lifecycle                                                 *)

(* request_stop mid-sweep: the in-flight sweep completes and streams
   its done line before the server exits — drain is graceful, not a
   guillotine. *)
let test_drain_completes_in_flight () =
  with_temp_dir (fun dir ->
      let sock = Filename.concat dir "dpa.sock" in
      let server =
        Server.start
          {
            (Server.default_config ~socket:(Server.Unix_socket sock)) with
            Server.workers = 1;
          }
      in
      let cl = Client.connect_unix_retry sock in
      Client.send cl (Protocol.analyze_request ~id:"d1" (Protocol.Named "c95"));
      (* Ack first, so the sweep is admitted before the stop lands. *)
      (match Client.recv_response cl with
      | Ok (Protocol.Ack _) -> ()
      | _ -> Alcotest.fail "expected ack");
      Server.request_stop server;
      let rec drain outcomes =
        match Client.recv_response cl with
        | Ok (Protocol.Outcome _) -> drain (outcomes + 1)
        | Ok (Protocol.Done _) -> outcomes
        | Ok _ -> drain outcomes
        | Error e -> Alcotest.fail ("stream cut during drain: " ^ e)
      in
      let n = List.length (stuck_faults (Bench_suite.find "c95")) in
      check int_t "in-flight sweep streamed to completion during drain" n
        (drain 0);
      Client.close cl;
      Server.wait server;
      check bool_t "socket file removed after drain" false
        (Sys.file_exists sock))

let test_stale_socket_reclaimed () =
  with_temp_dir (fun dir ->
      let sock = Filename.concat dir "dpa.sock" in
      (* Manufacture a SIGKILL leftover: a bound socket file with no
         process behind it. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX sock);
      Unix.close fd;
      check bool_t "stale socket file exists" true (Sys.file_exists sock);
      let server =
        Server.start
          (Server.default_config ~socket:(Server.Unix_socket sock))
      in
      let cl = Client.connect_unix_retry sock in
      Client.send cl (Protocol.simple_request ~id:"p" "ping");
      (match Client.recv_response cl with
      | Ok (Protocol.Pong _) -> ()
      | _ -> Alcotest.fail "server did not come up over the stale socket");
      Client.close cl;
      Server.stop server)

(* ------------------------------------------------------------------ *)

let () =
  Random.self_init ();
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "requests round trip" `Quick
            test_request_roundtrip;
          Alcotest.test_case "outcome envelope strips byte-exactly" `Quick
            test_outcome_envelope_inverse;
          Alcotest.test_case "options tag discriminates every knob" `Quick
            test_opts_tag_discriminates;
        ] );
      ( "lru",
        [
          Alcotest.test_case "pinning, twins and eviction" `Quick
            test_lru_pinning_and_eviction;
        ] );
      ( "admission",
        [
          Alcotest.test_case "busy when full, coalesce when shared" `Quick
            test_busy_and_coalescing;
        ] );
      ( "streams",
        [
          Alcotest.test_case "ping, stats, lint, rejections" `Quick
            test_ping_stats_lint;
          Alcotest.test_case "analyze: in-order, complete, journal-grade"
            `Quick test_analyze_stream;
          Alcotest.test_case "deadlines degrade faults, never drop them"
            `Quick test_deadline_degrades_not_drops;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "drain completes in-flight sweeps" `Quick
            test_drain_completes_in_flight;
          Alcotest.test_case "stale socket file reclaimed on start" `Quick
            test_stale_socket_reclaimed;
        ] );
    ]
