(* Tests for the parallel sweep schedulers and the BDD mark-sweep
   collector: steal_batches/chunk_array algebra, bit-identical
   equivalence of the stealing and shared-snapshot sweeps with the
   sequential one (property-tested over random circuits, fault mixes,
   domain counts and schedulers), frozen-snapshot semantics (sealed
   managers reject mutation, forks share the frozen tier read-only,
   concurrent readers agree), and Bdd.collect preserving the semantics
   of registered roots while reclaiming garbage. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* chunk_array and steal_batches                                       *)

let test_chunk_array_partitions () =
  let items = Array.init 23 Fun.id in
  List.iter
    (fun pieces ->
      let chunks = Parallel.chunk_array ~pieces items in
      check bool_t "concatenation restores input" true
        (Array.concat (Array.to_list chunks) = items);
      check bool_t "chunk count bounded" true (Array.length chunks <= pieces);
      let sizes = Array.map Array.length chunks in
      let mn = Array.fold_left min max_int sizes in
      let mx = Array.fold_left max 0 sizes in
      check bool_t "balanced within one" true (mx - mn <= 1))
    [ 1; 2; 3; 7; 23; 100 ];
  check bool_t "empty input, no chunks" true
    (Parallel.chunk_array ~pieces:4 [||] = [||]);
  check bool_t "agrees with list chunking" true
    (Parallel.chunk ~pieces:5 (Array.to_list items)
    = (Parallel.chunk_array ~pieces:5 items
      |> Array.to_list |> List.map Array.to_list))

let test_steal_batches_aligned () =
  List.iter
    (fun domains ->
      let batches = [| [| 1; 2 |]; [| 3 |]; [| 4; 5; 6 |]; [||]; [| 7 |] |] in
      let results =
        Parallel.steal_batches ~domains
          ~init:(fun () -> ref 0)
          ~process:(fun acc batch ->
            Array.iter (fun x -> acc := !acc + x) batch;
            Array.fold_left ( + ) 0 batch)
          batches
      in
      check bool_t
        (Printf.sprintf "results index-aligned at %d domains" domains)
        true
        (results = [| Ok 3; Ok 3; Ok 15; Ok 0; Ok 7 |]))
    [ 1; 2; 4 ]

let test_steal_batches_contains_errors () =
  let batches = [| [| 1 |]; [| 0 |]; [| 2 |] |] in
  let results =
    Parallel.steal_batches ~domains:2
      ~init:(fun () -> ())
      ~process:(fun () batch ->
        if batch.(0) = 0 then failwith "poison" else batch.(0) * 10)
      batches
  in
  check bool_t "good batches survive a poisoned one" true
    (results.(0) = Ok 10 && results.(2) = Ok 20);
  check bool_t "poisoned batch contained as Error" true
    (match results.(1) with
    | Error (Failure msg) -> msg = "poison"
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Every parallel scheduler is bit-identical to the sequential sweep   *)

let mixed_faults rng c =
  let n = Circuit.num_gates c in
  let stucks =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let bridges =
    Bridge.enumerate c
    |> List.filteri (fun i _ -> i mod 5 = Prng.int rng 5)
    |> List.map (fun b -> Fault.Bridged b)
  in
  let multis =
    List.init 3 (fun _ ->
        let a = Prng.int rng n in
        let b = (a + 1 + Prng.int rng (n - 1)) mod n in
        Fault.multi [ (a, Prng.bool rng); (b, Prng.bool rng) ])
  in
  stucks @ bridges @ multis

let prop_parallel_equals_sequential =
  let test seed =
    let rng = Prng.create ~seed:(seed + 4000) in
    let c =
      Generate.random ~seed:(seed + 1) ~inputs:(5 + Prng.int rng 3)
        ~gates:(10 + Prng.int rng 20)
        ~outputs:(1 + Prng.int rng 3)
    in
    let faults = mixed_faults rng c in
    let domains = 1 + Prng.int rng 5 in
    let sequential = Engine.analyze_all ~domains:1 (Engine.create c) faults in
    (* Polymorphic equality compares every float bit for bit, fault
       order included. *)
    List.for_all
      (fun scheduler ->
        Engine.analyze_all ~scheduler ~domains (Engine.create c) faults
        = sequential)
      [ Engine.Stealing; Engine.Snapshot ]
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:
         "stealing and snapshot = sequential on random circuits, faults \
          and domains"
       QCheck.small_nat test)

let parallel_benchmarks scheduler () =
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      let faults =
        List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
        @ List.map (fun b -> Fault.Bridged b) (Bridge.enumerate c)
      in
      let sequential =
        Engine.analyze_all ~domains:1 (Engine.create c) faults
      in
      List.iter
        (fun domains ->
          let parallel =
            Engine.analyze_all ~scheduler ~domains (Engine.create c) faults
          in
          check bool_t
            (Printf.sprintf "%s bit-identical at %d domains" name domains)
            true (sequential = parallel))
        [ 1; 3 ])
    [ "c17"; "fulladder"; "c95" ]

let parallel_under_gc_pressure scheduler () =
  (* A tiny node budget forces a collection before almost every fault;
     results must still match the unconstrained sequential run. *)
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let sequential = Engine.analyze_all (Engine.create c) faults in
  List.iter
    (fun domains ->
      let parallel =
        Engine.analyze_all ~node_budget:1 ~scheduler ~domains
          (Engine.create c) faults
      in
      check bool_t
        (Printf.sprintf "identical under GC pressure at %d domains" domains)
        true (sequential = parallel))
    [ 1; 3 ]

let test_lazy_engine_matches_eager () =
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    |> List.filteri (fun i _ -> i mod 3 = 0)
  in
  let eager = Engine.analyze_all (Engine.create c) faults in
  let lazy_engine = Engine.create ~lazily:true c in
  let lazy_run = Engine.analyze_all lazy_engine faults in
  check bool_t "lazy engine reproduces the eager sweep" true
    (eager = lazy_run)

(* ------------------------------------------------------------------ *)
(* Frozen snapshots: seal/fork semantics and the snapshot scheduler    *)

let test_sealed_rejects_mutation () =
  let m = Bdd.create 2 in
  (* The standalone x0 node is registered too: it is not a subgraph of
     x0∧x1, so the seal's collect would otherwise reclaim it. *)
  let roots = [| Bdd.band m (Bdd.var m 0) (Bdd.var m 1); Bdd.var m 0 |] in
  ignore (Bdd.register m roots : Bdd.registration);
  Bdd.seal m;
  (* The seal collects, so registered roots were remapped in place. *)
  let f = roots.(0) in
  check bool_t "manager reports sealed" true (Bdd.is_sealed m);
  check (Alcotest.float 0.0) "reads still served" 0.25
    (Bdd.sat_fraction m f);
  check bool_t "allocation-free operations still work" true
    (Bdd.band m f f = f && Bdd.var m 0 = roots.(1));
  check bool_t "fresh allocation raises Sealed_manager" true
    (match Bdd.bxor m f roots.(1) with
    | exception Bdd.Sealed_manager -> true
    | (_ : Bdd.t) -> false);
  Bdd.unseal m;
  let g = Bdd.bxor m f roots.(1) in
  check bool_t "unsealing restores allocation" true
    (Bdd.check_invariants m g)

(* A random function as a XOR/AND/OR mix over literals (as in the
   Table 1 property test). *)
let random_bdd rng m vars =
  let literal () =
    let v = Prng.int rng vars in
    if Prng.bool rng then Bdd.var m v else Bdd.nvar m v
  in
  let rec build depth =
    if depth = 0 then literal ()
    else
      let a = build (depth - 1) and b = build (depth - 1) in
      match Prng.int rng 3 with
      | 0 -> Bdd.band m a b
      | 1 -> Bdd.bor m a b
      | _ -> Bdd.bxor m a b
  in
  build 4

let test_fork_reads_match () =
  let m = Bdd.create 4 in
  let rng = Prng.create ~seed:77 in
  let roots = Array.init 3 (fun _ -> random_bdd rng m 4) in
  ignore (Bdd.register m roots : Bdd.registration);
  Bdd.seal m;
  let w = Bdd.fork m in
  Array.iter
    (fun f ->
      check (Alcotest.float 0.0) "sat fraction agrees across the fork"
        (Bdd.sat_fraction m f) (Bdd.sat_fraction w f);
      check int_t "size agrees across the fork" (Bdd.size m f)
        (Bdd.size w f))
    roots;
  (* Scratch growth in the fork never touches the shared frozen tier. *)
  let frozen = Bdd.frozen_nodes m in
  let g = Bdd.bxor w roots.(0) roots.(1) in
  check bool_t "the fork can allocate" true (Bdd.check_invariants w g);
  check int_t "parent frozen tier unmoved" frozen (Bdd.frozen_nodes m);
  check bool_t "parent still sealed" true (Bdd.is_sealed m);
  Bdd.unseal m

let test_snapshot_concurrent_readers () =
  (* Several domains read one sealed snapshot at once, each through its
     own fork, doing real per-fault analyses.  The TSan CI lane runs
     this test: any write to the shared frozen tier would trip it. *)
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    |> List.filteri (fun i _ -> i < 12)
  in
  let t = Engine.create c in
  Engine.seal t;
  let work () =
    let w = Engine.fork t in
    List.map (Engine.analyze w) faults
  in
  let spawned = List.init 4 (fun _ -> Domain.spawn work) in
  let local = work () in
  let others = List.map Domain.join spawned in
  Engine.unseal t;
  let reference =
    Engine.exact_results (Engine.analyze_all (Engine.create c) faults)
  in
  check bool_t "caller's fork matches sequential" true (local = reference);
  List.iteri
    (fun i r ->
      check bool_t
        (Printf.sprintf "spawned reader %d matches sequential" i)
        true (r = reference))
    others

let test_snapshot_builds_good_functions_once () =
  (* The whole point of the snapshot scheduler: the good functions are
     elaborated exactly once per sweep, not once per worker, so the
     count cannot depend on the domain count. *)
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let runs =
    List.map
      (fun domains ->
        Engine.analyze_all_stats ~scheduler:Engine.Snapshot ~domains
          (Engine.create c) faults)
      [ 1; 2; 4 ]
  in
  match runs with
  | (o0, s0) :: rest ->
    check int_t "good functions = gate count"
      (Circuit.num_gates c)
      s0.Engine.good_functions_built;
    List.iter
      (fun (o, s) ->
        check int_t "good_functions_built independent of domain count"
          s0.Engine.good_functions_built s.Engine.good_functions_built;
        check bool_t "outcomes independent of domain count" true (o = o0))
      rest
  | [] -> assert false

let test_snapshot_then_sequential_reuse () =
  (* A snapshot sweep seals and then unseals the engine: the same
     engine must remain fully usable for an ordinary sequential sweep
     afterwards, and both must match a fresh engine bit for bit. *)
  let c = Bench_suite.find "fulladder" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let t = Engine.create c in
  let snap =
    Engine.analyze_all ~scheduler:Engine.Snapshot ~domains:3 t faults
  in
  check bool_t "engine is unsealed after the sweep" false (Engine.sealed t);
  let sequential = Engine.analyze_all t faults in
  let fresh = Engine.analyze_all (Engine.create c) faults in
  check bool_t "snapshot sweep matches fresh sequential" true (snap = fresh);
  check bool_t "post-snapshot sequential reuse matches" true
    (sequential = fresh)

(* ------------------------------------------------------------------ *)
(* Bdd.collect: semantics preserved, garbage reclaimed                 *)

let prop_collect_preserves_roots =
  let test seed =
    let rng = Prng.create ~seed:(seed + 9000) in
    let vars = 5 + Prng.int rng 4 in
    let m = Bdd.create vars in
    let roots = Array.init (2 + Prng.int rng 4) (fun _ -> random_bdd rng m vars) in
    let reg = Bdd.register m roots in
    (* Garbage: unreferenced intermediates bloat the arena. *)
    for _ = 1 to 5 do
      ignore (random_bdd rng m vars : Bdd.t)
    done;
    let assignments =
      List.init 4 (fun _ -> Array.init vars (fun _ -> Prng.bool rng))
    in
    let snapshot () =
      Array.map
        (fun f ->
          ( Bdd.sat_fraction m f,
            Bdd.size m f,
            Bdd.support m f,
            List.map (fun a -> Bdd.eval m f (fun v -> a.(v))) assignments ))
        roots
    in
    let before = snapshot () in
    let nodes_before = Bdd.allocated_nodes m in
    Bdd.collect m;
    let ok =
      snapshot () = before
      && Bdd.allocated_nodes m <= nodes_before
      && Array.for_all (fun f -> Bdd.check_invariants m f) roots
    in
    (* Collecting again with nothing registered reclaims everything but
       the terminals. *)
    Bdd.unregister m reg;
    Bdd.collect m;
    ok && Bdd.allocated_nodes m = 2
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"collect preserves registered roots, reclaims garbage"
       QCheck.small_nat test)

let test_collect_extra_roots () =
  let m = Bdd.create 6 in
  let rng = Prng.create ~seed:11 in
  let keep = [| random_bdd rng m 6 |] in
  let frac = Bdd.sat_fraction m keep.(0) in
  for _ = 1 to 4 do
    ignore (random_bdd rng m 6 : Bdd.t)
  done;
  (* Not registered: passed as a one-off root instead. *)
  Bdd.collect ~roots:[ keep ] m;
  check (Alcotest.float 0.0) "one-off root survives with its semantics" frac
    (Bdd.sat_fraction m keep.(0));
  check bool_t "invariants hold on the compacted arena" true
    (Bdd.check_invariants m keep.(0))

let test_engine_collect_statistics_stable () =
  (* A sweep, a collection, and the same sweep again must agree with a
     fresh engine bit for bit — GC only renumbers, never re-derives. *)
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let fresh = Engine.analyze_all (Engine.create c) faults in
  let engine = Engine.create c in
  let first = Engine.analyze_all engine faults in
  let nodes_before = Bdd.allocated_nodes (Engine.manager engine) in
  let gen_before = Engine.generation engine in
  let fired = ref 0 in
  Engine.on_rebuild engine (fun () -> incr fired);
  Engine.collect engine;
  check bool_t "collect never grows the arena" true
    (Bdd.allocated_nodes (Engine.manager engine) <= nodes_before);
  check int_t "collect bumps the generation" (gen_before + 1)
    (Engine.generation engine);
  check int_t "collect fires the rebuild hooks" 1 !fired;
  let again = Engine.analyze_all engine faults in
  check bool_t "pre-collect sweep matches a fresh engine" true (fresh = first);
  check bool_t "post-collect sweep matches a fresh engine" true (fresh = again)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "scheduler"
    [
      ( "stealing primitives",
        [
          Alcotest.test_case "chunk_array partitions" `Quick
            test_chunk_array_partitions;
          Alcotest.test_case "steal_batches results index-aligned" `Quick
            test_steal_batches_aligned;
          Alcotest.test_case "steal_batches contains batch errors" `Quick
            test_steal_batches_contains_errors;
        ] );
      ( "parallel = sequential",
        [
          prop_parallel_equals_sequential;
          Alcotest.test_case "stealing: benchmark circuits, mixed faults"
            `Slow
            (parallel_benchmarks Engine.Stealing);
          Alcotest.test_case "snapshot: benchmark circuits, mixed faults"
            `Slow
            (parallel_benchmarks Engine.Snapshot);
          Alcotest.test_case "stealing identical under GC pressure" `Quick
            (parallel_under_gc_pressure Engine.Stealing);
          Alcotest.test_case "snapshot identical under GC pressure" `Quick
            (parallel_under_gc_pressure Engine.Snapshot);
          Alcotest.test_case "lazy engine matches eager" `Quick
            test_lazy_engine_matches_eager;
        ] );
      ( "frozen snapshots",
        [
          Alcotest.test_case "sealed manager rejects mutation" `Quick
            test_sealed_rejects_mutation;
          Alcotest.test_case "fork reads match the parent" `Quick
            test_fork_reads_match;
          Alcotest.test_case "concurrent readers over one snapshot" `Quick
            test_snapshot_concurrent_readers;
          Alcotest.test_case "good functions built once per sweep" `Quick
            test_snapshot_builds_good_functions_once;
          Alcotest.test_case "engine reusable after snapshot sweep" `Quick
            test_snapshot_then_sequential_reuse;
        ] );
      ( "mark-sweep collection",
        [
          prop_collect_preserves_roots;
          Alcotest.test_case "one-off roots survive" `Quick
            test_collect_extra_roots;
          Alcotest.test_case "engine statistics stable across collect" `Quick
            test_engine_collect_statistics_stable;
        ] );
    ]
