(* Fault-tolerance layer: budgeted BDD growth (Bdd.with_budget /
   Budget_exceeded), per-fault isolation with structured outcomes and
   escalating retries (Engine.analyze_all), and supervised domain
   workers (Parallel.map_chunked_outcomes).  The central property: a
   sweep containing hostile faults completes, returns an outcome for
   every fault in input order, and every Exact outcome is bit-identical
   to a clean sequential run. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Bdd.with_budget                                                     *)

(* A function needing plenty of fresh nodes on an empty manager. *)
let build_xor_chain m n = Bdd.bxor_list m (List.init n (Bdd.var m))

let test_budget_raises_mid_apply () =
  let m = Bdd.create 24 in
  let blown =
    try
      ignore (Bdd.with_budget m ~budget:5 (fun () -> build_xor_chain m 24));
      None
    with Bdd.Budget_exceeded { nodes; budget } -> Some (nodes, budget)
  in
  (match blown with
  | None -> Alcotest.fail "tiny budget did not raise"
  | Some (nodes, budget) ->
    check int_t "budget field" 5 budget;
    (* The raise happens before the (budget+1)-th allocation. *)
    check int_t "nodes field" 5 nodes);
  (* The arena is still consistent and the manager fully usable. *)
  let f = build_xor_chain m 24 in
  check bool_t "manager usable after blown budget" true
    (Bdd.check_invariants m f);
  (* Parity of n variables needs 2n-1 nodes: plenty more than the blown
     budget, so unlimited allocation is demonstrably restored. *)
  check int_t "budget window restored (unlimited again)" ((2 * 24) - 1)
    (Bdd.size m f)

let test_budget_success_and_restore () =
  let m = Bdd.create 16 in
  let f = Bdd.with_budget m ~budget:1_000 (fun () -> build_xor_chain m 16) in
  check bool_t "computation under ample budget is unchanged" true
    (Bdd.equal f (build_xor_chain m 16))

let test_budget_windows_nest () =
  let m = Bdd.create 24 in
  let outer_blew =
    try
      Bdd.with_budget m ~budget:30 (fun () ->
          (* The inner window blows; its allocations still count against
             the outer window, which the follow-up work then exhausts. *)
          (try
             ignore
               (Bdd.with_budget m ~budget:20 (fun () -> build_xor_chain m 24))
           with Bdd.Budget_exceeded _ -> ());
          ignore (build_xor_chain m 24);
          false)
    with Bdd.Budget_exceeded { budget; _ } -> budget = 30
  in
  check bool_t "inner allocations charged to the outer window" true
    outer_blew

(* ------------------------------------------------------------------ *)
(* Bdd.with_deadline                                                   *)

(* Keep rebuilding until the polling check in [mk] trips — bounded
   iterations so a broken deadline can't hang the suite. *)
let test_deadline_raises_mid_apply () =
  let m = Bdd.create 24 in
  let blown =
    try
      Bdd.with_deadline m ~deadline_ms:20.0 (fun () ->
          for _ = 1 to 1_000_000 do
            ignore (build_xor_chain m 24);
            Bdd.clear_caches m
          done;
          None)
    with Bdd.Deadline_exceeded { elapsed_ms; deadline_ms } ->
      Some (elapsed_ms, deadline_ms)
  in
  (match blown with
  | None -> Alcotest.fail "20ms deadline did not fire in a hot loop"
  | Some (elapsed_ms, deadline_ms) ->
    check bool_t "deadline field" true (deadline_ms = 20.0);
    check bool_t "elapsed covers the window" true (elapsed_ms >= 20.0));
  (* The window is closed again: plenty of work completes untimed. *)
  let f = build_xor_chain m 24 in
  check bool_t "manager usable after expired deadline" true
    (Bdd.check_invariants m f)

let test_deadline_windows_nest () =
  let m = Bdd.create 24 in
  (* An inner window can only tighten the outer one; when the tiny inner
     window blows, the generous outer window must survive it. *)
  let survived =
    Bdd.with_deadline m ~deadline_ms:60_000.0 (fun () ->
        (try
           Bdd.with_deadline m ~deadline_ms:10.0 (fun () ->
               for _ = 1 to 1_000_000 do
                 ignore (build_xor_chain m 24);
                 Bdd.clear_caches m
               done)
         with Bdd.Deadline_exceeded { deadline_ms; _ } ->
           check bool_t "inner window reported" true (deadline_ms = 10.0));
        ignore (build_xor_chain m 24);
        true)
  in
  check bool_t "outer window survives an inner expiry" true survived

let test_deadline_rejects_nonpositive () =
  let m = Bdd.create 4 in
  check bool_t "non-positive deadline rejected" true
    (try
       ignore (Bdd.with_deadline m ~deadline_ms:0.0 (fun () -> 0));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Bdd.collect inside budget / deadline windows                        *)

let test_collect_inside_budget_window () =
  let m = Bdd.create 16 in
  let blown =
    try
      Bdd.with_budget m ~budget:200 (fun () ->
          let f = build_xor_chain m 16 in
          let syndrome = Bdd.sat_fraction m f in
          let used = Bdd.allocated_nodes m in
          (* Compaction rebuilds every survivor with [insert_node], not
             [mk]: it must charge nothing against the open window... *)
          Bdd.collect ~roots:[ [| f |] ] m;
          check bool_t "collect charges no budget" true
            (Bdd.allocated_nodes m <= used);
          (* ...and the permanent sat memo survives the renumbering. *)
          check bool_t "sat memo survives compaction" true
            (Bdd.sat_fraction m f = syndrome);
          (* The window's accounting is still armed: fresh allocation
             after the collect still trips the original cap. *)
          for _ = 1 to 1_000 do
            ignore (build_xor_chain m 16);
            Bdd.clear_caches m;
            Bdd.collect m
          done;
          None)
    with Bdd.Budget_exceeded { nodes; budget } -> Some (nodes, budget)
  in
  match blown with
  | None -> Alcotest.fail "budget window disarmed by collect"
  | Some (nodes, budget) ->
    check int_t "original cap still enforced" 200 budget;
    check int_t "raised exactly at the cap" budget nodes

let test_collect_inside_deadline_window () =
  let m = Bdd.create 16 in
  let blown =
    try
      Bdd.with_deadline m ~deadline_ms:20.0 (fun () ->
          for _ = 1 to 1_000_000 do
            let f = build_xor_chain m 16 in
            (* Collecting mid-window must neither raise nor disarm the
               deadline for the allocations that follow it. *)
            Bdd.collect ~roots:[ [| f |] ] m;
            Bdd.clear_caches m
          done;
          false)
    with Bdd.Deadline_exceeded _ -> true
  in
  check bool_t "deadline still armed across collects" true blown

(* ------------------------------------------------------------------ *)
(* Engine: budget degradation and escalating-retry recovery            *)

let some_fault c =
  Fault.Stuck (List.nth (Sa_fault.collapsed_faults c) 7)

(* Fresh allocations one fault's analysis needs on a pristine engine —
   deterministic, and exactly what a retry on a rebuilt manager pays. *)
let fresh_cost c fault =
  let engine = Engine.create c in
  let before = Bdd.allocated_nodes (Engine.manager engine) in
  let _ = Engine.analyze engine fault in
  Bdd.allocated_nodes (Engine.manager engine) - before

let test_budget_degrades_not_crashes () =
  let c = Bench_suite.find "c95" in
  let fault = some_fault c in
  let used = fresh_cost c fault in
  check bool_t "fault is expensive enough to test budgets" true (used >= 8);
  let budget = (used + 3) / 4 in
  let engine = Engine.create c in
  match
    Engine.analyze_all ~fault_budget:budget ~max_retries:0 ~bounds:false
      engine [ fault ]
  with
  | [ Engine.Budget_exceeded { nodes; budget = b; fault = f } ] ->
    check int_t "reported budget" budget b;
    check int_t "blown exactly at the cap" budget nodes;
    check bool_t "carries the fault" true (Fault.equal f fault)
  | [ Engine.Exact _ ] -> Alcotest.fail "tiny budget did not degrade"
  | [ Engine.Crashed { message; _ } ] ->
    Alcotest.fail ("budget blow-up surfaced as a crash: " ^ message)
  | _ -> Alcotest.fail "expected exactly one outcome"

let test_retry_recovers_to_exact () =
  let c = Bench_suite.find "c95" in
  let fault = some_fault c in
  let used = fresh_cost c fault in
  let budget = (used + 3) / 4 in
  (* budget < used, but 4 * budget >= used: attempt 0 (and possibly 1)
     blows, the 4x attempt must recover. *)
  let clean = Engine.analyze (Engine.create c) fault in
  let engine = Engine.create c in
  match Engine.analyze_all ~fault_budget:budget ~max_retries:2 engine [ fault ] with
  | [ Engine.Exact r ] ->
    check bool_t "recovered result is bit-identical to a clean run" true
      (r = clean)
  | [ o ] ->
    Alcotest.fail ("escalating retry failed to recover: "
                   ^ Engine.outcome_to_string c o)
  | _ -> Alcotest.fail "expected exactly one outcome"

(* ------------------------------------------------------------------ *)
(* Engine: bounded degradation soundness                               *)

(* Every collapsed c95 fault under a budget too small for exact
   analysis: each Bounded outcome's interval must contain the true
   detectability computed by an uncapped run, and must respect the
   syndrome upper bound. *)
let test_bounded_encloses_exact () =
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let exact = Engine.analyze_all (Engine.create c) faults in
  let capped =
    Engine.analyze_all ~fault_budget:60 ~max_retries:0 (Engine.create c)
      faults
  in
  let bounded = ref 0 in
  List.iter2
    (fun e o ->
      match (e, o) with
      | Engine.Exact r, Engine.Bounded { syndrome_bound; samples; _ } ->
        incr bounded;
        check bool_t "syndrome bound itself is sound" true
          (r.Engine.detectability <= syndrome_bound +. 1e-12);
        check bool_t "samples reported" true (samples > 0);
        (match Engine.outcome_bounds o with
        | Some (lower, upper) ->
          check bool_t
            (Printf.sprintf "lower <= exact (%s)"
               (Fault.to_string c r.Engine.fault))
            true
            (lower <= r.Engine.detectability);
          check bool_t
            (Printf.sprintf "exact <= upper (%s)"
               (Fault.to_string c r.Engine.fault))
            true
            (r.Engine.detectability <= upper)
        | None -> Alcotest.fail "Bounded outcome without bounds")
      | Engine.Exact _, (Engine.Exact _ | Engine.Crashed _) -> ()
      | Engine.Exact _, _ ->
        Alcotest.fail "raw degradation escaped the bounds fallback"
      | _ -> Alcotest.fail "uncapped sweep failed to be exact")
    exact capped;
  check bool_t "the tiny budget actually produced Bounded outcomes" true
    (!bounded > 10)

(* Undetectable faults are the soundness edge: their exact
   detectability is 0.0, so the pinned Wilson lower endpoint must be
   exactly 0.0 — any positive rounding would break [lower <= exact]. *)
let test_bounded_pins_undetectable () =
  check bool_t "0 hits pins lower to exactly 0" true
    (fst (Engine.wilson_interval ~z:5.0 0 4096) = 0.0);
  check bool_t "all hits pin upper to exactly 1" true
    (snd (Engine.wilson_interval ~z:5.0 4096 4096) = 1.0);
  let lo, up = Engine.wilson_interval ~z:5.0 2048 4096 in
  check bool_t "two-sided interval is proper" true
    (0.0 < lo && lo < 0.5 && 0.5 < up && up < 1.0)

(* ------------------------------------------------------------------ *)
(* Engine: crash isolation                                             *)

(* A fault naming a net outside the circuit: analysis crashes before
   touching shared scratch state. *)
let crash_fault c =
  Fault.Stuck
    { Sa_fault.line = Sa_fault.Stem (Circuit.num_gates c + 7); value = false }

let insert k x xs =
  List.filteri (fun i _ -> i < k) xs @ (x :: List.filteri (fun i _ -> i >= k) xs)

let crash_isolation_prop c clean faults (pos, domains) =
  let pos = pos mod (List.length faults + 1) in
  let hostile = insert pos (crash_fault c) faults in
  let outcomes = Engine.analyze_all ~domains (Engine.create c) hostile in
  List.length outcomes = List.length hostile
  && List.for_all2
       (fun i outcome ->
         if i = pos then
           match outcome with Engine.Crashed _ -> true | _ -> false
         else outcome = List.nth clean (if i < pos then i else i - 1))
       (List.init (List.length hostile) Fun.id)
       outcomes

let prop_injected_crash_leaves_others_bit_identical =
  let c = Bench_suite.find "c17" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let clean = Engine.analyze_all ~domains:1 (Engine.create c) faults in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"injected crash: all other outcomes bit-identical (any domains)"
       QCheck.(pair (int_bound 1000) (int_range 1 4))
       (crash_isolation_prop c clean faults))

(* The acceptance scenario: one crashing fault and at least one
   budget-blowing fault in the same sweep, at several domain counts. *)
let test_hostile_sweep_completes () =
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  (* Arena sharing makes a fault's in-sweep cost far below its
     fresh-engine cost, so measure the per-fault allocation deltas of an
     actual sequential sweep: a budget just under the largest delta
     guarantees that fault blows it (everything before it evolves the
     arena identically), and no retries keeps it degraded. *)
  let max_cost =
    let engine = Engine.create c in
    let m = Engine.manager engine in
    List.fold_left
      (fun acc f ->
        let before = Bdd.allocated_nodes m in
        let _ = Engine.analyze engine f in
        max acc (Bdd.allocated_nodes m - before))
      0 faults
  in
  check bool_t "sweep has a meaningfully expensive fault" true (max_cost >= 4);
  let budget = max_cost - 1 in
  let pos = List.length faults / 2 in
  let hostile = insert pos (crash_fault c) faults in
  (* ~reorder:false: this scenario asserts the blown fault *stays*
     degraded — with the rescue rung on, the sifted-order retry would
     (correctly) recover it to Exact and there would be nothing left to
     observe.  The rescue rung has its own suite in test_reorder.ml. *)
  let sweep domains =
    Engine.analyze_all ~fault_budget:budget ~max_retries:0 ~reorder:false
      ~bounds:false ~domains (Engine.create c) hostile
  in
  let baseline = sweep 1 in
  check int_t "an outcome for every fault" (List.length hostile)
    (List.length baseline);
  check bool_t "the injected fault crashed, contained" true
    (match List.nth baseline pos with
    | Engine.Crashed _ -> true
    | _ -> false);
  check bool_t "at least one fault degraded on budget" true
    (List.exists
       (function Engine.Budget_exceeded _ -> true | _ -> false)
       baseline);
  check bool_t "and most completed exactly" true
    (List.length (Engine.exact_results baseline) > List.length hostile / 2);
  List.iter
    (fun domains ->
      let outcomes = sweep domains in
      check int_t "same length at any domain count" (List.length baseline)
        (List.length outcomes);
      (* Exact statistics are canonical: wherever both runs completed a
         fault, the records agree bit for bit.  (Whether a borderline
         fault degrades may depend on arena history, hence sharding.) *)
      List.iter2
        (fun a b ->
          match (a, b) with
          | Engine.Exact ra, Engine.Exact rb ->
            check bool_t "Exact outcomes bit-identical across shardings"
              true (ra = rb)
          | _ -> ())
        baseline outcomes)
    [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Parallel supervision                                                *)

let test_supervised_shard_containment () =
  let items = List.init 40 Fun.id in
  let shards =
    Parallel.map_chunked_outcomes ~domains:4
      (fun chunk ->
        if List.mem 13 chunk then failwith "boom" else List.map succ chunk)
      items
  in
  check bool_t "chunks concatenate to the input" true
    (List.concat_map fst shards = items);
  List.iter
    (fun (chunk, res) ->
      match res with
      | Ok results ->
        check bool_t "surviving shard kept its results" true
          (results = List.map succ chunk);
        check bool_t "only the poisoned shard failed" false
          (List.mem 13 chunk)
      | Error exn ->
        check bool_t "failed shard is the poisoned one" true
          (List.mem 13 chunk);
        check bool_t "original exception preserved" true
          (exn = Failure "boom"))
    shards

let test_map_chunked_joins_before_reraise () =
  (* The head chunk (run on the spawning domain) contains 0 and fails;
     the exception must still propagate — after every worker joined. *)
  let raised =
    try
      ignore
        (Parallel.map_chunked ~domains:4
           (fun chunk ->
             if List.mem 0 chunk then failwith "head down"
             else List.map succ chunk)
           (List.init 37 Fun.id));
      false
    with Failure m -> m = "head down"
  in
  check bool_t "head-chunk failure re-raised" true raised

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "robustness"
    [
      ( "bdd budget",
        [
          Alcotest.test_case "tiny budget raises mid-apply, arena intact"
            `Quick test_budget_raises_mid_apply;
          Alcotest.test_case "ample budget changes nothing" `Quick
            test_budget_success_and_restore;
          Alcotest.test_case "windows nest and charge outward" `Quick
            test_budget_windows_nest;
        ] );
      ( "bdd deadline",
        [
          Alcotest.test_case "deadline raises mid-apply, window restored"
            `Quick test_deadline_raises_mid_apply;
          Alcotest.test_case "windows nest, inner only tightens" `Quick
            test_deadline_windows_nest;
          Alcotest.test_case "non-positive deadline rejected" `Quick
            test_deadline_rejects_nonpositive;
        ] );
      ( "collect in window",
        [
          Alcotest.test_case
            "collect charges no budget, memos survive, cap stays armed"
            `Quick test_collect_inside_budget_window;
          Alcotest.test_case "deadline stays armed across collects" `Quick
            test_collect_inside_deadline_window;
        ] );
      ( "engine degradation",
        [
          Alcotest.test_case "tiny fault budget degrades, not crashes"
            `Quick test_budget_degrades_not_crashes;
          Alcotest.test_case "2x/4x retry recovers to Exact" `Quick
            test_retry_recovers_to_exact;
          Alcotest.test_case "Bounded intervals enclose the exact answer"
            `Quick test_bounded_encloses_exact;
          Alcotest.test_case "Wilson endpoints pinned for one-sided samples"
            `Quick test_bounded_pins_undetectable;
        ] );
      ( "crash isolation",
        [
          prop_injected_crash_leaves_others_bit_identical;
          Alcotest.test_case
            "hostile sweep completes with structured outcomes" `Slow
            test_hostile_sweep_completes;
        ] );
      ( "parallel supervision",
        [
          Alcotest.test_case "crashed shard contained, survivors kept"
            `Quick test_supervised_shard_containment;
          Alcotest.test_case "worker exception re-raised after joins" `Quick
            test_map_chunked_joins_before_reraise;
        ] );
    ]
