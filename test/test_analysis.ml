(* Tests for the experiment layer: histograms, trends, bathtub curves,
   PO statistics, and the experiment runner itself (on the small
   circuits to stay fast). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let test_histogram_basic () =
  let h = Histogram.make ~bins:4 [ 0.1; 0.1; 0.3; 0.6; 0.99 ] in
  check int_t "total" 5 h.Histogram.total;
  check (Alcotest.array int_t) "counts" [| 2; 1; 1; 1 |] h.Histogram.counts;
  check float_t "proportion bin 0" 0.4 h.Histogram.proportions.(0);
  check float_t "proportions sum to one" 1.0
    (Array.fold_left ( +. ) 0.0 h.Histogram.proportions)

let test_histogram_boundaries () =
  let h = Histogram.make ~bins:10 [ 0.0; 1.0; 0.999999; -0.5; 1.5 ] in
  (* 0.0 and the clamped -0.5 land in bin 0; 1.0, 1.5 and 0.999999 in
     the last bin. *)
  check int_t "first bin" 2 h.Histogram.counts.(0);
  check int_t "last bin" 3 h.Histogram.counts.(9)

let test_histogram_empty () =
  let h = Histogram.make ~bins:5 [] in
  check int_t "empty total" 0 h.Histogram.total;
  Array.iter (fun p -> check float_t "zero proportions" 0.0 p) h.Histogram.proportions

let test_histogram_rejects_zero_bins () =
  check bool_t "zero bins" true
    (try
       ignore (Histogram.make ~bins:0 [ 0.5 ]);
       false
     with Invalid_argument _ -> true)

let test_bin_geometry () =
  let h = Histogram.make ~bins:4 [ 0.5 ] in
  check float_t "lower" 0.25 (Histogram.bin_lower h 1);
  check float_t "center" 0.375 (Histogram.bin_center h 1)

let test_mean () =
  check float_t "mean" 0.5 (Histogram.mean [ 0.25; 0.75 ]);
  check float_t "empty mean" 0.0 (Histogram.mean [])

(* ------------------------------------------------------------------ *)
(* Trends                                                              *)

let test_trend_row () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let results =
    Engine.analyze_exact engine
      (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))
  in
  let row = Trends.row_of_results c results in
  check int_t "nets" 11 row.Trends.nets;
  check int_t "outputs" 2 row.Trends.outputs;
  check int_t "all detectable on c17" row.Trends.total row.Trends.detectable;
  check float_t "normalized = mean / po"
    (row.Trends.mean_detectability /. 2.0)
    row.Trends.normalized

let test_decreasing_normalized () =
  let row title nets normalized =
    {
      Trends.title;
      nets;
      outputs = 1;
      detectable = 1;
      total = 1;
      mean_detectability = normalized;
      normalized;
    }
  in
  check bool_t "decreasing" true
    (Trends.decreasing_normalized
       [ row "a" 10 0.5; row "b" 20 0.3; row "c" 30 0.3 ]);
  check bool_t "not decreasing" false
    (Trends.decreasing_normalized [ row "a" 10 0.2; row "b" 20 0.3 ]);
  (* Order of the list must not matter. *)
  check bool_t "sorted internally" true
    (Trends.decreasing_normalized [ row "b" 20 0.3; row "a" 10 0.5 ])

(* ------------------------------------------------------------------ *)
(* Bathtub                                                             *)

let test_bathtub_grouping () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let results =
    Engine.analyze_exact engine
      (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))
  in
  let points = Bathtub.by_po_distance c results in
  check bool_t "has groups" true (points <> []);
  let total = List.fold_left (fun a p -> a + p.Bathtub.faults) 0 points in
  check int_t "all faults grouped" (List.length results) total;
  let rec ascending = function
    | (a : Bathtub.point) :: (b :: _ as rest) ->
      a.Bathtub.distance < b.Bathtub.distance && ascending rest
    | [ _ ] | [] -> true
  in
  check bool_t "distances ascending" true (ascending points);
  List.iter
    (fun p ->
      check bool_t "means in [0,1]" true (p.Bathtub.mean >= 0.0 && p.Bathtub.mean <= 1.0))
    points

let test_bathtub_pi_levels () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  let results =
    Engine.analyze_exact engine
      (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))
  in
  let points = Bathtub.by_pi_level c results in
  check bool_t "has PI-level groups" true (points <> [])

let test_correlation () =
  let p distance mean faults = { Bathtub.distance; mean; faults } in
  check bool_t "positive correlation" true
    (Bathtub.correlation [ p 0 0.1 5; p 1 0.2 5; p 2 0.3 5 ] > 0.99);
  check bool_t "negative correlation" true
    (Bathtub.correlation [ p 0 0.3 5; p 1 0.2 5; p 2 0.1 5 ] < -0.99);
  check float_t "degenerate" 0.0 (Bathtub.correlation [ p 1 0.5 3 ]);
  check float_t "empty" 0.0 (Bathtub.correlation [])

(* ------------------------------------------------------------------ *)
(* PO statistics                                                       *)

let test_po_stats () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let results =
    Engine.analyze_exact engine
      (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))
  in
  let s = Po_stats.summarize results in
  check int_t "detectable faults counted" 18 s.Po_stats.faults;
  check bool_t "proportion near one (paper: almost always)" true
    (s.Po_stats.proportion > 0.8);
  check bool_t "mean observed <= mean fed" true
    (s.Po_stats.mean_observed <= s.Po_stats.mean_fed +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Experiments                                                         *)

let small_config =
  { Experiments.default with Experiments.bridge_sample = 20; seed = 1 }

let test_run_caches () =
  Experiments.clear_cache ();
  let a = Experiments.run ~config:small_config "c17" in
  let b = Experiments.run ~config:small_config "c17" in
  check bool_t "cached object reused" true (a == b);
  Experiments.clear_cache ();
  let c = Experiments.run ~config:small_config "c17" in
  check bool_t "fresh after clear" true (a != c)

let test_run_small_uses_full_enumeration () =
  let cr = Experiments.run ~config:small_config "c17" in
  check bool_t "full NFBF set" true (cr.Experiments.bf_sampled = None);
  check int_t "enumerated faults" (Bridge.count (Bench_suite.find "c17"))
    (List.length cr.Experiments.bf_faults)

let test_run_sa_results_present () =
  let cr = Experiments.run ~config:small_config "fulladder" in
  check bool_t "has stuck-at results" true (cr.Experiments.sa_results <> []);
  check bool_t "has bridge results" true (cr.Experiments.bf_results <> [])

let test_split_bridge_results () =
  let cr = Experiments.run ~config:small_config "c17" in
  let ands, ors = Experiments.split_bridge_results cr in
  check int_t "split is a partition"
    (List.length cr.Experiments.bf_results)
    (List.length ands + List.length ors);
  List.iter
    (fun r ->
      match r.Engine.fault with
      | Fault.Bridged { Bridge.kind = Bridge.Wired_and; _ } -> ()
      | _ -> Alcotest.fail "non-AND in AND partition")
    ands

let test_table1_verification () =
  check bool_t "Table 1 verified" true
    (Experiments.table1_verification ~trials:50 ~vars:6)

let test_adherence_values_range () =
  let cr = Experiments.run ~config:small_config "c17" in
  List.iter
    (fun a -> check bool_t "adherence in range" true (a >= 0.0 && a <= 1.0 +. 1e-9))
    (Experiments.adherence_values cr.Experiments.sa_results)

(* ------------------------------------------------------------------ *)
(* DFT planner                                                         *)

let test_dft_objective_range () =
  let v = Dft.objective (Bench_suite.find "c17") in
  check bool_t "objective in [0,1]" true (v >= 0.0 && v <= 1.0)

let test_dft_candidates_internal () =
  let c = Bench_suite.find "c95" in
  let cands = Dft.candidates c ~limit:5 in
  check int_t "limited" 5 (List.length cands);
  List.iter
    (fun g ->
      check bool_t "internal net" true
        ((not (Circuit.is_input c g)) && not (Circuit.is_output c g)))
    cands

let test_dft_greedy_improves () =
  let c = Bench_suite.find "c17" in
  let plan = Dft.greedy ~budget:2 ~candidate_limit:4 c in
  check bool_t "at most budget steps" true (List.length plan.Dft.steps <= 2);
  let rec improving prev = function
    | s :: rest -> s.Dft.mean_after > prev && improving s.Dft.mean_after rest
    | [] -> true
  in
  check bool_t "objective strictly improves" true
    (improving plan.Dft.mean_before plan.Dft.steps);
  (* The instrumented circuit really has the final objective. *)
  (match List.rev plan.Dft.steps with
  | last :: _ ->
    check (Alcotest.float 1e-9) "final objective consistent"
      last.Dft.mean_after
      (Dft.objective plan.Dft.circuit)
  | [] -> ());
  (* Instrumentation preserves the original function on the original
     outputs (observation points only add outputs; any control point
     adds an input that must be held high). *)
  check bool_t "original outputs preserved" true
    (Circuit.num_outputs plan.Dft.circuit >= Circuit.num_outputs c)

let () =
  Alcotest.run "analysis"
    [
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "boundaries" `Quick test_histogram_boundaries;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "zero bins" `Quick test_histogram_rejects_zero_bins;
          Alcotest.test_case "bin geometry" `Quick test_bin_geometry;
          Alcotest.test_case "mean" `Quick test_mean;
        ] );
      ( "trends",
        [
          Alcotest.test_case "row" `Quick test_trend_row;
          Alcotest.test_case "decreasing check" `Quick test_decreasing_normalized;
        ] );
      ( "bathtub",
        [
          Alcotest.test_case "grouping" `Quick test_bathtub_grouping;
          Alcotest.test_case "PI levels" `Quick test_bathtub_pi_levels;
          Alcotest.test_case "correlation" `Quick test_correlation;
        ] );
      ( "po-stats", [ Alcotest.test_case "summary" `Quick test_po_stats ] );
      ( "experiments",
        [
          Alcotest.test_case "caching" `Quick test_run_caches;
          Alcotest.test_case "full enumeration for small" `Quick
            test_run_small_uses_full_enumeration;
          Alcotest.test_case "results present" `Quick test_run_sa_results_present;
          Alcotest.test_case "bridge split" `Quick test_split_bridge_results;
          Alcotest.test_case "table1 verification" `Quick
            test_table1_verification;
          Alcotest.test_case "adherence values" `Quick
            test_adherence_values_range;
        ] );
      ( "order-search",
        [
          Alcotest.test_case "cost matches symbolic build" `Quick (fun () ->
              let c = Bench_suite.find "alu74181" in
              let natural = Ordering.order Ordering.Natural c in
              check int_t "same node count"
                (Symbolic.total_nodes (Symbolic.build c))
                (Order_search.cost c natural));
          Alcotest.test_case "hill climbing never worsens" `Quick (fun () ->
              List.iter
                (fun name ->
                  let c = Bench_suite.find name in
                  let r = Order_search.hill_climb ~max_passes:2 c in
                  check bool_t (name ^ " improved or equal") true
                    (r.Order_search.nodes <= r.Order_search.start_nodes);
                  (* The returned order must still be a permutation and
                     reproduce the claimed cost. *)
                  let seen = Array.make (Circuit.num_inputs c) false in
                  Array.iter (fun v -> seen.(v) <- true) r.Order_search.order;
                  check bool_t "permutation" true (Array.for_all Fun.id seen);
                  check int_t "cost reproducible" r.Order_search.nodes
                    (Order_search.cost c r.Order_search.order))
                [ "c17"; "c95"; "alu74181" ]);
        ] );
      ( "dft",
        [
          Alcotest.test_case "objective range" `Quick test_dft_objective_range;
          Alcotest.test_case "candidates internal" `Quick
            test_dft_candidates_internal;
          Alcotest.test_case "greedy improves" `Quick test_dft_greedy_improves;
        ] );
    ]
