(* Tests for Difference Propagation: the Table-1 rules, the engine's
   exact test sets (validated against exhaustive simulation), the fault
   statistics, cone decomposition, and bridge classification. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-12

let c17 () = Bench_suite.find "c17"

let stem_fault c name value =
  let s = Option.get (Circuit.index_of_name c name) in
  Fault.Stuck { Sa_fault.line = Sa_fault.Stem s; value }

(* ------------------------------------------------------------------ *)
(* Table 1 rules (qcheck)                                              *)

let nvars = 5

let random_bdd rng m =
  let literal () =
    let v = Prng.int rng nvars in
    if Prng.bool rng then Bdd.var m v else Bdd.nvar m v
  in
  let rec build depth =
    if depth = 0 then literal ()
    else
      let a = build (depth - 1) and b = build (depth - 1) in
      match Prng.int rng 3 with
      | 0 -> Bdd.band m a b
      | 1 -> Bdd.bor m a b
      | _ -> Bdd.bxor m a b
  in
  build 2

let rule_kinds =
  [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

let prop_rules_match_direct =
  let test seed =
    let m = Bdd.create nvars in
    let rng = Prng.create ~seed in
    let arity = 2 + Prng.int rng 3 in
    let good = Array.init arity (fun _ -> random_bdd rng m) in
    let delta =
      Array.init arity (fun _ ->
          if Prng.int rng 3 = 0 then Bdd.zero m else random_bdd rng m)
    in
    List.for_all
      (fun kind ->
        Bdd.equal
          (Rules.delta m kind ~good ~delta)
          (Rules.delta_direct m kind ~good ~delta))
      rule_kinds
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Table 1 rules = direct evaluation"
       QCheck.small_nat test)

let prop_inversion_insensitive =
  let test seed =
    let m = Bdd.create nvars in
    let rng = Prng.create ~seed in
    let good = Array.init 2 (fun _ -> random_bdd rng m) in
    let delta = Array.init 2 (fun _ -> random_bdd rng m) in
    let same base inverted =
      Bdd.equal
        (Rules.delta m base ~good ~delta)
        (Rules.delta m inverted ~good ~delta)
    in
    same Gate.And Gate.Nand && same Gate.Or Gate.Nor
    && same Gate.Xor Gate.Xnor
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"output inversion never changes the difference" QCheck.small_nat
       test)

let prop_zero_delta_propagates_zero =
  let test seed =
    let m = Bdd.create nvars in
    let rng = Prng.create ~seed in
    let arity = 2 + Prng.int rng 3 in
    let good = Array.init arity (fun _ -> random_bdd rng m) in
    let delta = Array.make arity (Bdd.zero m) in
    List.for_all
      (fun kind -> Bdd.is_zero m (Rules.delta m kind ~good ~delta))
      rule_kinds
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"all-zero input differences give zero"
       QCheck.small_nat test)

let test_and_rule_closed_form () =
  (* dC = fA.dB xor fB.dA xor dA.dB on a concrete example. *)
  let m = Bdd.create 4 in
  let fa = Bdd.var m 0 and fb = Bdd.var m 1 in
  let da = Bdd.var m 2 and db = Bdd.var m 3 in
  let expected =
    Bdd.bxor m
      (Bdd.bxor m (Bdd.band m fa db) (Bdd.band m fb da))
      (Bdd.band m da db)
  in
  check bool_t "closed form" true
    (Bdd.equal expected
       (Rules.delta m Gate.And ~good:[| fa; fb |] ~delta:[| da; db |]))

let test_table_text_present () =
  check int_t "four rule rows" 4 (List.length Rules.table_text)

(* ------------------------------------------------------------------ *)
(* Engine vs exhaustive simulation (the central soundness check)       *)

let engine_matches_simulation c faults =
  let engine = Engine.create c in
  List.iter
    (fun fault ->
      let dp = (Engine.analyze engine fault).Engine.detectability in
      let sim = Fault_sim.exhaustive_detectability c fault in
      check float_t (Fault.to_string c fault) sim dp)
    faults

let test_engine_c17_all_line_faults () =
  let c = c17 () in
  engine_matches_simulation c
    (List.map (fun f -> Fault.Stuck f) (Sa_fault.all_line_faults c))

let test_engine_c17_all_bridges () =
  let c = c17 () in
  engine_matches_simulation c
    (List.map (fun b -> Fault.Bridged b) (Bridge.enumerate c))

let test_engine_fulladder_everything () =
  let c = Bench_suite.find "fulladder" in
  engine_matches_simulation c
    (List.map (fun f -> Fault.Stuck f) (Sa_fault.all_line_faults c)
    @ List.map (fun b -> Fault.Bridged b) (Bridge.enumerate c))

let test_engine_random_circuits () =
  (* Random structural variety, including heavy fanout and XOR mixes. *)
  List.iter
    (fun seed ->
      let c = Generate.random ~seed ~inputs:7 ~gates:30 ~outputs:3 in
      let faults =
        List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
      in
      engine_matches_simulation c faults)
    [ 101; 102; 103; 104; 105 ]

let test_engine_random_bridges () =
  List.iter
    (fun seed ->
      let c = Generate.random ~seed ~inputs:7 ~gates:25 ~outputs:3 in
      let bridges = Bridge.enumerate c in
      let subset = List.filteri (fun i _ -> i mod 7 = 0) bridges in
      engine_matches_simulation c
        (List.map (fun b -> Fault.Bridged b) subset))
    [ 201; 202 ]

let test_engine_c95_collapsed () =
  let c = Bench_suite.find "c95" in
  engine_matches_simulation c
    (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))

let test_engine_alu_sample () =
  let c = Bench_suite.find "alu74181" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    |> List.filteri (fun i _ -> i mod 5 = 0)
  in
  engine_matches_simulation c faults

(* The central soundness claim as a qcheck property: on a randomly
   generated circuit, a random fault of either model has exactly the
   exhaustive-simulation detectability under DP. *)
let prop_dp_matches_simulation =
  let test seed =
    let rng = Prng.create ~seed:(seed + 1000) in
    let c =
      Generate.random ~seed:(seed + 1) ~inputs:(5 + Prng.int rng 4)
        ~gates:(10 + Prng.int rng 25)
        ~outputs:(1 + Prng.int rng 4)
    in
    let engine = Engine.create c in
    let n = Circuit.num_gates c in
    let fault =
      match Prng.int rng 3 with
      | 0 ->
        Fault.Stuck
          { Sa_fault.line = Sa_fault.Stem (Prng.int rng n);
            value = Prng.bool rng }
      | 1 ->
        let anc = Bridge.ancestors c in
        let rec pick tries =
          if tries = 0 then None
          else
            let a = Prng.int rng n and b = Prng.int rng n in
            if a <> b && not (Bridge.is_feedback anc a b) then
              Some (Fault.Bridged (Bridge.make a b
                      (if Prng.bool rng then Bridge.Wired_and
                       else Bridge.Wired_or)))
            else pick (tries - 1)
        in
        Option.value (pick 20)
          ~default:(Fault.Stuck
                      { Sa_fault.line = Sa_fault.Stem 0; value = true })
      | _ ->
        let a = Prng.int rng n in
        let b = (a + 1 + Prng.int rng (n - 1)) mod n in
        Fault.multi [ (a, Prng.bool rng); (b, Prng.bool rng) ]
    in
    let dp = (Engine.analyze engine fault).Engine.detectability in
    let sim = Fault_sim.exhaustive_detectability c fault in
    Float.abs (dp -. sim) < 1e-12
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80
       ~name:"DP = exhaustive simulation on random circuits and faults"
       QCheck.small_nat test)

(* ------------------------------------------------------------------ *)
(* Test sets and vectors                                               *)

let test_vectors_actually_detect () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  List.iter
    (fun f ->
      let fault = Fault.Stuck f in
      match Engine.test_vector engine fault with
      | None ->
        check float_t "undetectable means zero detectability" 0.0
          (Engine.analyze engine fault).Engine.detectability
      | Some v ->
        check bool_t
          ("vector detects " ^ Fault.to_string c fault)
          true
          (Fault_sim.detects c fault v))
    (Sa_fault.collapsed_faults c)

let test_cubes_cover_test_count () =
  let c = c17 () in
  let engine = Engine.create c in
  let fault = stem_fault c "G1" false in
  let cubes = Engine.test_cubes engine fault in
  (* Expand cubes to minterms over the 5 inputs and compare counts. *)
  let count =
    List.fold_left
      (fun acc cube -> acc + (1 lsl (5 - List.length cube)))
      0 cubes
  in
  check int_t "cube expansion matches count"
    (int_of_float (Engine.analyze engine fault).Engine.test_count)
    count

let test_po_differences_match_outputs () =
  let c = c17 () in
  let engine = Engine.create c in
  let fault = stem_fault c "G7" false in
  let diffs = Engine.po_differences engine fault in
  check int_t "one diff per PO" (Circuit.num_outputs c) (Array.length diffs);
  (* G7 reaches only G23 (the second output). *)
  let m = Engine.manager engine in
  check bool_t "G22 difference empty" true (Bdd.is_zero m diffs.(0));
  check bool_t "G23 difference non-empty" false (Bdd.is_zero m diffs.(1))

(* ------------------------------------------------------------------ *)
(* Result statistics                                                   *)

let test_syndrome_bound_holds () =
  (* detectability <= upper bound, for stuck-at and bridging faults. *)
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    @ List.map (fun b -> Fault.Bridged b)
        (List.filteri (fun i _ -> i mod 11 = 0) (Bridge.enumerate c))
  in
  List.iter
    (fun fault ->
      let r = Engine.analyze engine fault in
      check bool_t
        ("bound " ^ Fault.to_string c fault)
        true
        (r.Engine.detectability <= r.Engine.upper_bound +. 1e-12))
    faults

let test_adherence_definition () =
  let c = c17 () in
  let engine = Engine.create c in
  List.iter
    (fun f ->
      let r = Engine.analyze engine (Fault.Stuck f) in
      match r.Engine.adherence with
      | None -> check float_t "no bound, no tests" 0.0 r.Engine.upper_bound
      | Some a ->
        check bool_t "adherence in [0,1]" true (a >= 0.0 && a <= 1.0 +. 1e-12);
        check float_t "a = d / U" (r.Engine.detectability /. r.Engine.upper_bound) a)
    (Sa_fault.collapsed_faults c)

let test_po_fault_adherence_is_one () =
  (* A stuck-at on a primary-output stem is observed directly, so every
     exciting minterm is a test. *)
  let c = c17 () in
  let engine = Engine.create c in
  let r = Engine.analyze engine (stem_fault c "G22" false) in
  check (Alcotest.option float_t) "adherence 1" (Some 1.0) r.Engine.adherence

let test_pos_fed_and_observed () =
  let c = c17 () in
  let engine = Engine.create c in
  let r = Engine.analyze engine (stem_fault c "G7" false) in
  check int_t "G7 feeds one PO" 1 r.Engine.pos_fed;
  check int_t "observed at one PO" 1 r.Engine.pos_observed;
  let r = Engine.analyze engine (stem_fault c "G3" false) in
  check int_t "G3 feeds both POs" 2 r.Engine.pos_fed

let test_undetectable_redundant_fault () =
  (* y = (a and b) or (a and not b) or (not a): a tautology; any stuck-at
     on the output is only detectable for one polarity. *)
  let c =
    Circuit.create ~title:"red" ~inputs:[ "a"; "b" ] ~outputs:[ "y" ]
      [
        ("t1", Gate.And, [ "a"; "b" ]);
        ("nb", Gate.Not, [ "b" ]);
        ("t2", Gate.And, [ "a"; "nb" ]);
        ("na", Gate.Not, [ "a" ]);
        ("y", Gate.Or, [ "t1"; "t2"; "na" ]);
      ]
  in
  let engine = Engine.create c in
  let y = Option.get (Circuit.index_of_name c "y") in
  let sa1 = Fault.Stuck { Sa_fault.line = Sa_fault.Stem y; value = true } in
  let r = Engine.analyze engine sa1 in
  check bool_t "s-a-1 on constant-one net undetectable" false
    r.Engine.detectable;
  check float_t "upper bound is complement syndrome" 0.0 r.Engine.upper_bound

let test_analyze_all_with_tiny_budget () =
  (* Forcing rebuilds between faults must not change any result. *)
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    |> List.filteri (fun i _ -> i < 20)
  in
  let normal = Engine.analyze_exact engine faults in
  let engine2 = Engine.create c in
  let rebuilt = Engine.analyze_exact ~node_budget:1 engine2 faults in
  List.iter2
    (fun a b ->
      check float_t "same detectability" a.Engine.detectability
        b.Engine.detectability)
    normal rebuilt

let test_heuristic_invariance () =
  (* Detectabilities are order-independent. *)
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    |> List.filteri (fun i _ -> i < 15)
  in
  let base =
    Engine.analyze_exact (Engine.create ~heuristic:Ordering.Natural c) faults
  in
  List.iter
    (fun h ->
      let results = Engine.analyze_exact (Engine.create ~heuristic:h c) faults in
      List.iter2
        (fun a b ->
          check float_t (Ordering.name h) a.Engine.detectability
            b.Engine.detectability)
        base results)
    [ Ordering.Dfs_fanin; Ordering.Reverse; Ordering.Shuffled 3 ]

(* ------------------------------------------------------------------ *)
(* Cone decomposition                                                  *)

let test_decompose_matches_engine () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  let decomposed = Decompose.create c in
  check int_t "one cone per PO" (Circuit.num_outputs c) (Decompose.cones decomposed);
  check bool_t "cones smaller than circuit" true
    (Decompose.max_cone_nets decomposed <= Circuit.num_gates c);
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    @ List.map (fun b -> Fault.Bridged b)
        (List.filteri (fun i _ -> i mod 13 = 0) (Bridge.enumerate c))
  in
  List.iter
    (fun fault ->
      check float_t
        ("decompose " ^ Fault.to_string c fault)
        (Engine.analyze engine fault).Engine.detectability
        (Decompose.detectability decomposed fault))
    faults

let test_decompose_random_circuit () =
  let c = Generate.random ~seed:77 ~inputs:8 ~gates:40 ~outputs:4 in
  let engine = Engine.create c in
  let decomposed = Decompose.create c in
  List.iter
    (fun f ->
      let fault = Fault.Stuck f in
      check float_t
        (Fault.to_string c fault)
        (Engine.analyze engine fault).Engine.detectability
        (Decompose.detectability decomposed fault))
    (Sa_fault.collapsed_faults c)

(* ------------------------------------------------------------------ *)
(* Bridge classification                                               *)

let test_bridge_class_constant_wired () =
  (* Bridging a net with its complement: wired-AND is constant 0, i.e.
     double stuck-at-0 behaviour. *)
  let c =
    Circuit.create ~title:"cls" ~inputs:[ "a"; "b" ] ~outputs:[ "y"; "z" ]
      [
        ("na", Gate.Not, [ "a" ]);
        ("y", Gate.And, [ "a"; "b" ]);
        ("z", Gate.Or, [ "na"; "b" ]);
      ]
  in
  let engine = Engine.create c in
  let a = Option.get (Circuit.index_of_name c "a") in
  let na = Option.get (Circuit.index_of_name c "na") in
  check bool_t "a AND ~a is stuck-like" true
    (Bridge_class.is_stuck_like engine (Bridge.make a na Bridge.Wired_and));
  check bool_t "a OR ~a is stuck-like" true
    (Bridge_class.is_stuck_like engine (Bridge.make a na Bridge.Wired_or));
  let b = Option.get (Circuit.index_of_name c "b") in
  check bool_t "a AND b is not" false
    (Bridge_class.is_stuck_like engine (Bridge.make a b Bridge.Wired_and))

let test_bridge_class_summary () =
  let c = c17 () in
  let engine = Engine.create c in
  let bridges = Bridge.enumerate c in
  let summaries = Bridge_class.classify engine bridges in
  check int_t "two kinds" 2 (List.length summaries);
  List.iter
    (fun s ->
      check int_t "totals add up" s.Bridge_class.total
        (List.length
           (List.filter (fun b -> b.Bridge.kind = s.Bridge_class.kind) bridges));
      check bool_t "proportion in range" true
        (s.Bridge_class.proportion >= 0.0 && s.Bridge_class.proportion <= 1.0))
    summaries

let () =
  Alcotest.run "core"
    [
      ( "rules",
        [
          prop_rules_match_direct;
          prop_inversion_insensitive;
          prop_zero_delta_propagates_zero;
          Alcotest.test_case "AND closed form" `Quick test_and_rule_closed_form;
          Alcotest.test_case "table text" `Quick test_table_text_present;
        ] );
      ( "exactness",
        [
          Alcotest.test_case "c17 all line faults" `Quick
            test_engine_c17_all_line_faults;
          Alcotest.test_case "c17 all bridges" `Quick test_engine_c17_all_bridges;
          Alcotest.test_case "fulladder everything" `Quick
            test_engine_fulladder_everything;
          Alcotest.test_case "random circuits" `Slow test_engine_random_circuits;
          Alcotest.test_case "random bridges" `Slow test_engine_random_bridges;
          Alcotest.test_case "c95 collapsed" `Slow test_engine_c95_collapsed;
          Alcotest.test_case "alu74181 sample" `Slow test_engine_alu_sample;
          prop_dp_matches_simulation;
        ] );
      ( "test-sets",
        [
          Alcotest.test_case "vectors detect" `Quick test_vectors_actually_detect;
          Alcotest.test_case "cube expansion" `Quick test_cubes_cover_test_count;
          Alcotest.test_case "per-PO differences" `Quick
            test_po_differences_match_outputs;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "syndrome bound" `Quick test_syndrome_bound_holds;
          Alcotest.test_case "adherence definition" `Quick
            test_adherence_definition;
          Alcotest.test_case "PO fault adherence" `Quick
            test_po_fault_adherence_is_one;
          Alcotest.test_case "POs fed and observed" `Quick
            test_pos_fed_and_observed;
          Alcotest.test_case "redundant fault" `Quick
            test_undetectable_redundant_fault;
          Alcotest.test_case "rebuild invariance" `Quick
            test_analyze_all_with_tiny_budget;
          Alcotest.test_case "ordering invariance" `Quick
            test_heuristic_invariance;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "matches engine on c95" `Quick
            test_decompose_matches_engine;
          Alcotest.test_case "matches engine on random" `Quick
            test_decompose_random_circuit;
        ] );
      ( "bridge-class",
        [
          Alcotest.test_case "constant wired function" `Quick
            test_bridge_class_constant_wired;
          Alcotest.test_case "summary" `Quick test_bridge_class_summary;
        ] );
    ]
