(* Tests for the netlist substrate: model, parser, transforms, layout,
   ordering, generation, symbolic evaluation. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let sample_bench =
  "# sample\n\
   INPUT(a)\n\
   INPUT(b)\n\
   INPUT(c)\n\
   OUTPUT(y)\n\
   OUTPUT(z)\n\
   t1 = NAND(a, b)\n\
   t2 = XOR(t1, c)\n\
   y = NOT(t2)\n\
   z = OR(t1, c)\n"

let sample () = Bench_format.parse ~title:"sample" sample_bench

(* ------------------------------------------------------------------ *)
(* Circuit model                                                       *)

let test_create_topological () =
  (* Definitions given out of order must still produce a valid circuit. *)
  let c =
    Circuit.create ~title:"ooo" ~inputs:[ "a" ] ~outputs:[ "y" ]
      [ ("y", Gate.Not, [ "t" ]); ("t", Gate.Buf, [ "a" ]) ]
  in
  check int_t "nets" 3 (Circuit.num_gates c);
  let y = Option.get (Circuit.index_of_name c "y") in
  let t = Option.get (Circuit.index_of_name c "t") in
  check bool_t "topological order" true (t < y)

let expect_malformed build =
  try
    ignore (build ());
    false
  with Circuit.Malformed _ -> true

let test_create_rejects_cycle () =
  check bool_t "cycle rejected" true
    (expect_malformed (fun () ->
         Circuit.create ~title:"cycle" ~inputs:[ "a" ] ~outputs:[ "x" ]
           [ ("x", Gate.And, [ "a"; "y" ]); ("y", Gate.Buf, [ "x" ]) ]))

let test_create_rejects_duplicates () =
  check bool_t "duplicate rejected" true
    (expect_malformed (fun () ->
         Circuit.create ~title:"dup" ~inputs:[ "a"; "a" ] ~outputs:[] []))

let test_create_rejects_undefined () =
  check bool_t "undefined fanin rejected" true
    (expect_malformed (fun () ->
         Circuit.create ~title:"und" ~inputs:[ "a" ] ~outputs:[ "y" ]
           [ ("y", Gate.And, [ "a"; "ghost" ]) ]))

let test_create_rejects_arity () =
  check bool_t "arity violation rejected" true
    (expect_malformed (fun () ->
         Circuit.create ~title:"arity" ~inputs:[ "a"; "b" ] ~outputs:[ "y" ]
           [ ("y", Gate.Not, [ "a"; "b" ]) ]))

let test_eval () =
  let c = sample () in
  (* y = not ((a nand b) xor c); z = (a nand b) or c *)
  let cases =
    [
      ([| false; false; false |], [| false; true |]);
      ([| true; true; false |], [| true; false |]);
      ([| true; true; true |], [| false; true |]);
      ([| true; false; true |], [| true; true |]);
    ]
  in
  List.iter
    (fun (input, expected) ->
      let got = Circuit.eval_outputs c input in
      check (Alcotest.array bool_t) "outputs" expected got)
    cases

let test_fanouts_and_branches () =
  let c = sample () in
  let t1 = Option.get (Circuit.index_of_name c "t1") in
  let counts = Circuit.fanout_count c in
  check int_t "t1 fans out twice" 2 counts.(t1);
  let branches = Circuit.branches c in
  let stems =
    branches
    |> List.map (fun b -> b.Circuit.stem)
    |> List.sort_uniq Stdlib.compare
  in
  let c_in = Option.get (Circuit.index_of_name c "c") in
  check (Alcotest.list int_t) "branch stems"
    (List.sort Stdlib.compare [ t1; c_in ])
    stems;
  check int_t "four branches" 4 (List.length branches)

let test_levels_and_depth () =
  let c = sample () in
  let levels = Circuit.levels c in
  let idx n = Option.get (Circuit.index_of_name c n) in
  check int_t "input level" 0 levels.(idx "a");
  check int_t "t1 level" 1 levels.(idx "t1");
  check int_t "t2 level" 2 levels.(idx "t2");
  check int_t "y level" 3 levels.(idx "y");
  check int_t "depth" 3 (Circuit.depth c)

let test_max_levels_to_po () =
  let c = sample () in
  let dist = Circuit.max_levels_to_po c in
  let idx n = Option.get (Circuit.index_of_name c n) in
  check int_t "y is a PO" 0 dist.(idx "y");
  check int_t "t2 one from y" 1 dist.(idx "t2");
  check int_t "a max distance" 3 dist.(idx "a");
  let mins = Circuit.min_levels_to_po c in
  check int_t "c min distance" 1 mins.(idx "c")

let test_cones () =
  let c = sample () in
  let idx n = Option.get (Circuit.index_of_name c n) in
  let fanin = Circuit.fanin_cone c (idx "y") in
  check bool_t "y cone has a" true (List.mem (idx "a") fanin);
  check bool_t "y cone has itself" true (List.mem (idx "y") fanin);
  let reach = Circuit.fanout_cone c [ idx "c" ] in
  check bool_t "c reaches z" true reach.(idx "z");
  check bool_t "c reaches y" true reach.(idx "y");
  check bool_t "c does not reach t1" false reach.(idx "t1");
  check (Alcotest.list int_t) "output cone of t1"
    (List.sort Stdlib.compare [ idx "y"; idx "z" ])
    (List.sort Stdlib.compare (Circuit.output_cone c (idx "t1")))

let test_output_that_is_input () =
  let c = Circuit.create ~title:"thru" ~inputs:[ "a" ] ~outputs:[ "a" ] [] in
  check bool_t "input is output" true
    (Circuit.is_output c (Option.get (Circuit.index_of_name c "a")))

(* ------------------------------------------------------------------ *)
(* Bench format                                                        *)

let test_parse_print_roundtrip () =
  let c = sample () in
  let c' = Bench_format.parse ~title:"sample" (Bench_format.print c) in
  check int_t "same nets" (Circuit.num_gates c) (Circuit.num_gates c');
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 20 do
    let v = Prng.bool_array rng (Circuit.num_inputs c) in
    check (Alcotest.array bool_t) "same function" (Circuit.eval_outputs c v)
      (Circuit.eval_outputs c' v)
  done

let expect_parse_error text =
  try
    ignore (Bench_format.parse ~title:"bad" text);
    false
  with Bench_format.Parse_error _ -> true

let test_parse_errors () =
  check bool_t "dff rejected" true (expect_parse_error "x = DFF(a)\n");
  check bool_t "unknown gate" true (expect_parse_error "x = FROB(a)\n");
  check bool_t "missing paren" true (expect_parse_error "INPUT a\n");
  check bool_t "two args to INPUT" true (expect_parse_error "INPUT(a, b)\n");
  check bool_t "input as gate" true (expect_parse_error "x = INPUT(a)\n")

let parse_error_at text =
  try
    ignore (Bench_format.parse ~title:"bad" text);
    None
  with Bench_format.Parse_error (span, msg) ->
    Some (span.Bench_format.line, msg)

let test_duplicate_definition_diagnosed () =
  (* The second driver is the error, and the diagnostic names the line
     of the first so the user can pick which to keep. *)
  (match
     parse_error_at "INPUT(a)\nINPUT(b)\ng1 = AND(a, b)\ng1 = OR(a, b)\nOUTPUT(g1)\n"
   with
  | Some (4, msg) ->
    check bool_t "message names the net and first line" true
      (msg = "duplicate definition of net \"g1\" (first defined at line 3)")
  | Some (line, msg) ->
    Alcotest.fail (Printf.sprintf "wrong diagnostic %d: %s" line msg)
  | None -> Alcotest.fail "duplicate gate definition accepted");
  (* INPUT repeated, and INPUT colliding with a gate, are the same bug. *)
  check bool_t "duplicate INPUT rejected" true
    (parse_error_at "INPUT(a)\nINPUT(a)\ny = NOT(a)\nOUTPUT(y)\n"
    = Some (2, "duplicate definition of net \"a\" (first defined at line 1)"));
  check bool_t "gate redefining an INPUT rejected" true
    (parse_error_at "INPUT(a)\na = NOT(a)\nOUTPUT(a)\n"
    = Some (2, "duplicate definition of net \"a\" (first defined at line 1)"))

let test_parse_error_columns () =
  (* Spans point at the offending token itself, not at the line start:
     "phantom" starts at the 13th character of its line. *)
  (try
     ignore
       (Bench_format.parse ~title:"bad" "INPUT(a)\ng1 = AND(a, phantom)\nOUTPUT(g1)\n");
     Alcotest.fail "undriven fanin accepted"
   with Bench_format.Parse_error (span, _) ->
     check int_t "line" 2 span.Bench_format.line;
     check int_t "start col" 13 span.Bench_format.start_col;
     check int_t "end col" 20 span.Bench_format.end_col);
  (* The tolerant raw layer keeps every span for the linter. *)
  let raw =
    Bench_format.parse_raw ~title:"raw" "INPUT(a)\n  y = NOT(a)\nOUTPUT(y)\n"
  in
  match raw.Bench_format.r_gates with
  | [ g ] ->
    check int_t "gate line" 2 g.Bench_format.g_span.Bench_format.line;
    check int_t "gate col" 3 g.Bench_format.g_span.Bench_format.start_col
  | _ -> Alcotest.fail "one gate expected"

let test_undriven_net_diagnosed () =
  (* A fanin that nothing drives, reported at its first use. *)
  (match parse_error_at "INPUT(a)\ng1 = AND(a, phantom)\nOUTPUT(g1)\n" with
  | Some (2, msg) ->
    check bool_t "message names the net" true
      (msg = "net \"phantom\" is used but never driven")
  | Some (line, msg) ->
    Alcotest.fail (Printf.sprintf "wrong diagnostic %d: %s" line msg)
  | None -> Alcotest.fail "undriven fanin accepted");
  (* An OUTPUT that nothing drives. *)
  check bool_t "undriven OUTPUT rejected" true
    (parse_error_at "INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n"
    = Some (2, "net \"ghost\" is used but never driven"));
  (* Forward references stay legal: a net may be used before the line
     that drives it. *)
  check bool_t "forward reference still parses" true
    (parse_error_at "INPUT(a)\ny = NOT(z)\nz = NOT(a)\nOUTPUT(y)\n" = None)

let test_parse_aliases_and_comments () =
  let c =
    Bench_format.parse ~title:"alias"
      "INPUT(a) # trailing comment\nOUTPUT(y)\n# full line\ny = INV(a)\n"
  in
  check int_t "two nets" 2 (Circuit.num_gates c);
  check (Alcotest.array bool_t) "inverter" [| false |]
    (Circuit.eval_outputs c [| true |])

(* ------------------------------------------------------------------ *)
(* Transforms                                                          *)

let circuits_equivalent c1 c2 ~trials =
  let rng = Prng.create ~seed:99 in
  let n = Circuit.num_inputs c1 in
  n = Circuit.num_inputs c2
  && Circuit.num_outputs c1 = Circuit.num_outputs c2
  && List.for_all
       (fun _ ->
         let v = Prng.bool_array rng n in
         Circuit.eval_outputs c1 v = Circuit.eval_outputs c2 v)
       (List.init trials Fun.id)

let test_expand_to_two_input () =
  let c =
    Circuit.create ~title:"wide" ~inputs:[ "a"; "b"; "c"; "d"; "e" ]
      ~outputs:[ "y"; "z"; "w" ]
      [
        ("y", Gate.Nand, [ "a"; "b"; "c"; "d"; "e" ]);
        ("z", Gate.Xnor, [ "a"; "b"; "c" ]);
        ("w", Gate.Or, [ "d" ]);
      ]
  in
  let e = Transform.expand_to_two_input c in
  check bool_t "equivalent" true (circuits_equivalent c e ~trials:64);
  Array.iter
    (fun (g : Circuit.gate) ->
      check bool_t "fanin <= 2" true (Array.length g.Circuit.fanins <= 2))
    e.Circuit.gates

let test_xor_to_nand () =
  let c =
    Circuit.create ~title:"xors" ~inputs:[ "a"; "b"; "c" ] ~outputs:[ "y"; "z" ]
      [
        ("t", Gate.Xor, [ "a"; "b" ]);
        ("y", Gate.Xnor, [ "t"; "c" ]);
        ("z", Gate.And, [ "t"; "c" ]);
      ]
  in
  let e = Transform.xor_to_nand c in
  check bool_t "equivalent" true (circuits_equivalent c e ~trials:8);
  Array.iter
    (fun (g : Circuit.gate) ->
      check bool_t "no xor left" true
        (g.Circuit.kind <> Gate.Xor && g.Circuit.kind <> Gate.Xnor))
    e.Circuit.gates

let test_add_observation_points () =
  let c = sample () in
  let t1 = Option.get (Circuit.index_of_name c "t1") in
  let c' = Transform.add_observation_points c [ t1 ] in
  check int_t "one more output" (Circuit.num_outputs c + 1)
    (Circuit.num_outputs c');
  let t1' = Option.get (Circuit.index_of_name c' "t1") in
  check bool_t "t1 now observable" true (Circuit.is_output c' t1')

let test_add_control_point () =
  let c = sample () in
  let t1 = Option.get (Circuit.index_of_name c "t1") in
  let forced = Transform.add_control_point c ~net:t1 ~polarity:`Force0 in
  check int_t "one more input" (Circuit.num_inputs c + 1)
    (Circuit.num_inputs forced);
  (* Control high = transparent: same function as before. *)
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 16 do
    let v = Prng.bool_array rng (Circuit.num_inputs c) in
    let v' = Array.append v [| true |] in
    check (Alcotest.array bool_t) "transparent when control=1"
      (Circuit.eval_outputs c v)
      (Circuit.eval_outputs forced v')
  done;
  (* Control low forces t1 to 0: z = t1 or c becomes just c. *)
  let v = [| true; true; false |] in
  let z_forced =
    (Circuit.eval_outputs forced (Array.append v [| false |])).(1)
  in
  check bool_t "z sees forced 0" false z_forced

let test_strip_unreachable () =
  let c =
    Circuit.create ~title:"dead" ~inputs:[ "a"; "b" ] ~outputs:[ "y" ]
      [
        ("y", Gate.Not, [ "a" ]);
        ("dead1", Gate.And, [ "a"; "b" ]);
        ("dead2", Gate.Or, [ "dead1"; "b" ]);
      ]
  in
  let s = Transform.strip_unreachable c in
  check int_t "dead gates removed" 3 (Circuit.num_gates s);
  check bool_t "function kept" true (circuits_equivalent c s ~trials:4)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)

let test_layout_coordinates () =
  let c = sample () in
  let l = Layout.compute c in
  let idx n = Option.get (Circuit.index_of_name c n) in
  check (Alcotest.float 1e-9) "PI a at y=0" 0.0
    (snd (Layout.position l (idx "a")));
  check (Alcotest.float 1e-9) "PI c at y=2" 2.0
    (snd (Layout.position l (idx "c")));
  let x, y = Layout.position l (idx "t1") in
  check (Alcotest.float 1e-9) "t1 x" 1.0 x;
  check (Alcotest.float 1e-9) "t1 y" 0.5 y;
  check (Alcotest.float 1e-9) "distance symmetric"
    (Layout.distance l (idx "a") (idx "t1"))
    (Layout.distance l (idx "t1") (idx "a"));
  check (Alcotest.float 1e-9) "self distance" 0.0
    (Layout.distance l (idx "a") (idx "a"))

let test_layout_normalization () =
  let c = sample () in
  let l = Layout.compute c in
  let pairs = [ (0, 1); (0, 4); (2, 3) ] in
  let dmax = Layout.max_distance l pairs in
  List.iter
    (fun (a, b) ->
      let z = Layout.normalized_distance l ~max:dmax a b in
      check bool_t "normalized in [0,1]" true (z >= 0.0 && z <= 1.0))
    pairs

(* ------------------------------------------------------------------ *)
(* Ordering                                                            *)

let test_orders_are_permutations () =
  let c = Bench_suite.find "alu74181" in
  List.iter
    (fun h ->
      let order = Ordering.order h c in
      let n = Circuit.num_inputs c in
      check int_t (Ordering.name h ^ " length") n (Array.length order);
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) order;
      check bool_t
        (Ordering.name h ^ " permutation")
        true
        (Array.for_all Fun.id seen))
    Ordering.all

let test_shuffled_deterministic () =
  let c = Bench_suite.find "alu74181" in
  let o1 = Ordering.order (Ordering.Shuffled 7) c in
  let o2 = Ordering.order (Ordering.Shuffled 7) c in
  check bool_t "same seed same order" true (o1 = o2)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let test_random_circuit_deterministic () =
  let c1 = Generate.random ~seed:3 ~inputs:8 ~gates:40 ~outputs:4 in
  let c2 = Generate.random ~seed:3 ~inputs:8 ~gates:40 ~outputs:4 in
  check bool_t "same seed same netlist" true
    (Bench_format.print c1 = Bench_format.print c2);
  check int_t "net count" (8 + 40) (Circuit.num_gates c1)

let test_parity_tree () =
  let c = Generate.parity_tree ~inputs:9 in
  let rng = Prng.create ~seed:1 in
  for _ = 1 to 32 do
    let v = Prng.bool_array rng 9 in
    let expected = Array.fold_left ( <> ) false v in
    check bool_t "parity" expected (Circuit.eval_outputs c v).(0)
  done

let test_comparator () =
  let c = Generate.comparator ~width:5 in
  let rng = Prng.create ~seed:2 in
  for _ = 1 to 32 do
    let a = Prng.bool_array rng 5 and b = Prng.bool_array rng 5 in
    let v = Array.append a b in
    check bool_t "eq" (a = b) (Circuit.eval_outputs c v).(0)
  done;
  let a = Prng.bool_array rng 5 in
  check bool_t "reflexive" true (Circuit.eval_outputs c (Array.append a a)).(0)

(* ------------------------------------------------------------------ *)
(* Symbolic                                                            *)

let test_symbolic_matches_eval () =
  let c = Generate.random ~seed:17 ~inputs:10 ~gates:80 ~outputs:5 in
  let sym = Symbolic.build c in
  let rng = Prng.create ~seed:18 in
  for _ = 1 to 50 do
    let v = Prng.bool_array rng 10 in
    check bool_t "symbolic consistent" true (Symbolic.eval_consistent sym v)
  done

let test_symbolic_syndrome () =
  let c =
    Circuit.create ~title:"syn" ~inputs:[ "a"; "b" ] ~outputs:[ "y" ]
      [ ("y", Gate.And, [ "a"; "b" ]) ]
  in
  let sym = Symbolic.build c in
  let y = Option.get (Circuit.index_of_name c "y") in
  check (Alcotest.float 1e-12) "AND syndrome" 0.25 (Symbolic.syndrome sym y)

let test_symbolic_ordering_variants () =
  let c = Bench_suite.find "c95" in
  List.iter
    (fun h ->
      let sym = Symbolic.build ~heuristic:h c in
      let rng = Prng.create ~seed:4 in
      for _ = 1 to 10 do
        let v = Prng.bool_array rng (Circuit.num_inputs c) in
        check bool_t (Ordering.name h) true (Symbolic.eval_consistent sym v)
      done)
    Ordering.all

(* ------------------------------------------------------------------ *)
(* Sequential circuits and time-frame expansion                        *)

let counter_bench =
  "INPUT(en)\n\
   OUTPUT(carry)\n\
   q0n = XOR(q0, en)\n\
   t = AND(q0, en)\n\
   q1n = XOR(q1, t)\n\
   carry = AND(q1, t)\n\
   q0 = DFF(q0n)\n\
   q1 = DFF(q1n)\n"

let counter () = Seq_circuit.parse ~title:"counter2" counter_bench

(* Reference model: a 2-bit counter with enable; carry pulses on the
   11 -> 00 wrap. *)
let counter_reference state en =
  let value = Bool.to_int state.(0) + (2 * Bool.to_int state.(1)) in
  let next = if en then (value + 1) land 3 else value in
  let carry = en && value = 3 in
  ([| carry |], [| next land 1 = 1; next land 2 = 2 |])

let test_seq_parse () =
  let s = counter () in
  check int_t "inputs" 1 s.Seq_circuit.num_inputs;
  check int_t "outputs" 1 s.Seq_circuit.num_outputs;
  check int_t "flops" 2 s.Seq_circuit.num_flops;
  check (Alcotest.list Alcotest.string) "flop names" [ "q0"; "q1" ]
    (List.sort String.compare s.Seq_circuit.flop_names)

let test_seq_step_matches_reference () =
  let s = counter () in
  (* q0 appears before q1 in flop_names order used by step's state. *)
  let order = s.Seq_circuit.flop_names in
  let to_state bits =
    Array.of_list (List.map (fun q -> List.assoc q bits) order)
  in
  for v = 0 to 3 do
    List.iter
      (fun en ->
        let bits = [ ("q0", v land 1 = 1); ("q1", v land 2 = 2) ] in
        let out, next =
          Seq_circuit.step s ~state:(to_state bits) ~inputs:[| en |]
        in
        let ref_out, ref_next =
          counter_reference [| v land 1 = 1; v land 2 = 2 |] en
        in
        check (Alcotest.array bool_t) "output" ref_out out;
        (* Map next-state back through the flop order. *)
        let expected =
          Array.of_list
            (List.map
               (fun q -> if q = "q0" then ref_next.(0) else ref_next.(1))
               order)
        in
        check (Alcotest.array bool_t) "next state" expected next)
      [ false; true ]
  done

let test_seq_unroll_zero_init () =
  let s = counter () in
  let frames = 4 in
  let unrolled = Seq_circuit.unroll s ~frames ~init:Seq_circuit.Zero in
  check int_t "one PI per frame" frames (Circuit.num_inputs unrolled);
  check int_t "one PO per frame" frames (Circuit.num_outputs unrolled);
  (* Every enable sequence agrees with the iterated reference model. *)
  for bits = 0 to (1 lsl frames) - 1 do
    let ens = Array.init frames (fun i -> (bits lsr i) land 1 = 1) in
    let outs = Circuit.eval_outputs unrolled ens in
    let state = ref [| false; false |] in
    Array.iteri
      (fun i en ->
        let out, next = counter_reference !state en in
        state := next;
        check bool_t
          (Printf.sprintf "frame %d carry" i)
          out.(0) outs.(i))
      ens
  done

let test_seq_unroll_free_init () =
  let s = counter () in
  let unrolled = Seq_circuit.unroll s ~frames:2 ~init:Seq_circuit.Free in
  (* 2 enables + 2 initial-state bits. *)
  check int_t "inputs with free state" 4 (Circuit.num_inputs unrolled)

let test_seq_unroll_supports_fault_analysis () =
  (* The unrolled circuit is ordinary combinational netlist: Difference
     Propagation and exhaustive simulation must agree on it. *)
  let s = counter () in
  let unrolled = Seq_circuit.unroll s ~frames:3 ~init:Seq_circuit.Free in
  let engine = Engine.create unrolled in
  List.iter
    (fun f ->
      let fault = Fault.Stuck f in
      check (Alcotest.float 1e-12)
        (Fault.to_string unrolled fault)
        (Fault_sim.exhaustive_detectability unrolled fault)
        (Engine.analyze engine fault).Engine.detectability)
    (Sa_fault.collapsed_faults unrolled)

let test_seq_rejects_pure_combinational () =
  check bool_t "no DFFs rejected" true
    (try
       ignore (Seq_circuit.parse ~title:"x" "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
       false
     with Seq_circuit.Malformed _ -> true)

(* ------------------------------------------------------------------ *)
(* Gate semantics                                                      *)

let test_gate_word_vs_bool () =
  let kinds = [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ] in
  List.iter
    (fun kind ->
      for bits = 0 to 15 do
        let args = Array.init 4 (fun i -> (bits lsr i) land 1 = 1) in
        let expected = Gate.eval_bool kind args in
        let words =
          Array.map (fun b -> if b then Int64.minus_one else 0L) args
        in
        let got = Int64.logand (Gate.eval_word kind words) 1L = 1L in
        check bool_t (Gate.name kind) expected got
      done)
    kinds

let test_gate_names_roundtrip () =
  List.iter
    (fun kind ->
      check bool_t (Gate.name kind) true
        (Gate.of_name (Gate.name kind) = Some kind))
    Gate.all_kinds

let test_controlling_values () =
  check (Alcotest.option bool_t) "AND" (Some false)
    (Gate.controlling_value Gate.And);
  check (Alcotest.option bool_t) "NOR" (Some true)
    (Gate.controlling_value Gate.Nor);
  check (Alcotest.option bool_t) "XOR" None (Gate.controlling_value Gate.Xor)

let () =
  Alcotest.run "circuit"
    [
      ( "model",
        [
          Alcotest.test_case "topological create" `Quick test_create_topological;
          Alcotest.test_case "cycle rejected" `Quick test_create_rejects_cycle;
          Alcotest.test_case "duplicates rejected" `Quick
            test_create_rejects_duplicates;
          Alcotest.test_case "undefined rejected" `Quick
            test_create_rejects_undefined;
          Alcotest.test_case "arity rejected" `Quick test_create_rejects_arity;
          Alcotest.test_case "evaluation" `Quick test_eval;
          Alcotest.test_case "fanouts and branches" `Quick
            test_fanouts_and_branches;
          Alcotest.test_case "levels and depth" `Quick test_levels_and_depth;
          Alcotest.test_case "max levels to PO" `Quick test_max_levels_to_po;
          Alcotest.test_case "cones" `Quick test_cones;
          Alcotest.test_case "output that is an input" `Quick
            test_output_that_is_input;
        ] );
      ( "bench-format",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_print_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "duplicate definitions diagnosed with lines"
            `Quick test_duplicate_definition_diagnosed;
          Alcotest.test_case "undriven nets diagnosed with lines" `Quick
            test_undriven_net_diagnosed;
          Alcotest.test_case "spans carry columns" `Quick
            test_parse_error_columns;
          Alcotest.test_case "aliases and comments" `Quick
            test_parse_aliases_and_comments;
        ] );
      ( "transform",
        [
          Alcotest.test_case "expand to two-input" `Quick
            test_expand_to_two_input;
          Alcotest.test_case "xor to nand" `Quick test_xor_to_nand;
          Alcotest.test_case "observation points" `Quick
            test_add_observation_points;
          Alcotest.test_case "control point" `Quick test_add_control_point;
          Alcotest.test_case "strip unreachable" `Quick test_strip_unreachable;
        ] );
      ( "layout",
        [
          Alcotest.test_case "coordinates" `Quick test_layout_coordinates;
          Alcotest.test_case "normalization" `Quick test_layout_normalization;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "permutations" `Quick test_orders_are_permutations;
          Alcotest.test_case "deterministic shuffle" `Quick
            test_shuffled_deterministic;
        ] );
      ( "generate",
        [
          Alcotest.test_case "deterministic random circuit" `Quick
            test_random_circuit_deterministic;
          Alcotest.test_case "parity tree" `Quick test_parity_tree;
          Alcotest.test_case "comparator" `Quick test_comparator;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "matches concrete eval" `Quick
            test_symbolic_matches_eval;
          Alcotest.test_case "syndrome" `Quick test_symbolic_syndrome;
          Alcotest.test_case "ordering variants" `Quick
            test_symbolic_ordering_variants;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "parse" `Quick test_seq_parse;
          Alcotest.test_case "step vs reference" `Quick
            test_seq_step_matches_reference;
          Alcotest.test_case "unroll zero init" `Quick test_seq_unroll_zero_init;
          Alcotest.test_case "unroll free init" `Quick test_seq_unroll_free_init;
          Alcotest.test_case "fault analysis on unrolled" `Quick
            test_seq_unroll_supports_fault_analysis;
          Alcotest.test_case "rejects combinational" `Quick
            test_seq_rejects_pure_combinational;
        ] );
      ( "gate",
        [
          Alcotest.test_case "word vs bool semantics" `Quick
            test_gate_word_vs_bool;
          Alcotest.test_case "name roundtrip" `Quick test_gate_names_roundtrip;
          Alcotest.test_case "controlling values" `Quick
            test_controlling_values;
        ] );
    ]
