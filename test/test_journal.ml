(* Checkpoint/resume: JSON-lines journal round trips every outcome
   variant bit-exactly, stale journals are rejected, torn tails are
   tolerated, and — the acceptance property — a sweep killed at any
   point and resumed from its journal produces outcomes bit-identical
   to an uninterrupted run, whatever scheduler or domain count either
   side used. *)

let check = Alcotest.check
let bool_t = Alcotest.bool

let with_temp_file f =
  let path = Filename.temp_file "dpa-journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ()) (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Line round trip                                                     *)

let awkward = 0.1 +. (1.0 /. 3.0)

let sample_result fault =
  {
    Engine.fault;
    detectability = awkward;
    test_count = 12345678.0;
    detectable = true;
    pos_fed = 3;
    pos_observed = 2;
    upper_bound = 0.7;
    adherence = Some (awkward /. 7.0);
    wired_support = None;
    test_set_nodes = 41;
    rescued_by_reorder = false;
  }

let test_roundtrip_all_variants () =
  let c = Bench_suite.find "c17" in
  let faults =
    Array.of_list
      (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))
  in
  let outcomes =
    [
      Engine.Exact (sample_result faults.(0));
      Engine.Exact
        {
          (sample_result faults.(1)) with
          Engine.detectable = false;
          adherence = None;
          wired_support = Some 2;
        };
      Engine.Bounded
        {
          fault = faults.(2);
          lower = 0.0;
          upper = Float.succ 0.25 (* not representable in decimal *);
          syndrome_bound = 0.5;
          samples = 4096;
          reason = Engine.Over_budget { nodes = 17; budget = 16 };
        };
      Engine.Bounded
        {
          fault = faults.(3);
          lower = awkward /. 11.0;
          upper = 1.0;
          syndrome_bound = 1.0;
          samples = 64;
          reason = Engine.Over_deadline { deadline_ms = 12.5 };
        };
      Engine.Budget_exceeded { fault = faults.(4); nodes = 9; budget = 8 };
      Engine.Deadline_exceeded
        { fault = faults.(5); elapsed_ms = 3.25; deadline_ms = 3.0 };
      Engine.Crashed
        { fault = faults.(6); message = "quotes \" and\nnewlines\tand \\" };
      Engine.Exact
        { (sample_result faults.(7)) with Engine.rescued_by_reorder = true };
    ]
  in
  List.iteri
    (fun i o ->
      let line = Journal.outcome_line i o in
      match Journal.outcome_of_line ~faults line with
      | Some (i', o') ->
        check Alcotest.int "index survives" i i';
        check bool_t "outcome bit-identical after round trip" true (o = o')
      | None -> Alcotest.fail ("line did not parse back: " ^ line))
    outcomes

(* ------------------------------------------------------------------ *)
(* Journal validation                                                  *)

let stuck_faults c =
  List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)

let test_stale_journal_rejected () =
  let c17 = Bench_suite.find "c17" and c95 = Bench_suite.find "c95" in
  let f17 = stuck_faults c17 and f95 = stuck_faults c95 in
  with_temp_file (fun path ->
      let sink =
        Journal.create ~path ~digest:(Journal.digest c17 f17)
          ~faults:(List.length f17) ()
      in
      Journal.append sink 0
        (Engine.Crashed { fault = List.hd f17; message = "x" });
      Journal.close sink;
      (* Same file, same fault count requested, different circuit. *)
      (match
         Journal.load ~path ~digest:(Journal.digest c95 f95)
           ~faults:(Array.of_list f17)
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "digest mismatch accepted");
      (* Right digest, wrong fault count. *)
      (match
         Journal.load ~path ~digest:(Journal.digest c17 f17)
           ~faults:(Array.of_list (List.tl f17))
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "fault-count mismatch accepted");
      (* The honest load works and holds the entry. *)
      match
        Journal.load ~path ~digest:(Journal.digest c17 f17)
          ~faults:(Array.of_list f17)
      with
      | Ok table -> check Alcotest.int "one entry" 1 (Hashtbl.length table)
      | Error msg -> Alcotest.fail msg)

let test_corrupt_header_rejected () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "not json at all\n";
      close_out oc;
      match Journal.load ~path ~digest:"d" ~faults:[||] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt header accepted")

(* A v1 journal (no rescue stage) must be rejected up front with a
   diagnostic naming the header line, not crash the parser or — worse —
   resume into outcomes whose degradation ladder never had the rescue
   rung. *)
let test_old_version_rejected () =
  let c = Bench_suite.find "c17" in
  let faults = stuck_faults c in
  let digest = Journal.digest c faults in
  with_temp_file (fun path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\"journal\":\"dpa-sweep\",\"version\":1,\"digest\":%S,\"faults\":%d}\n"
        digest (List.length faults);
      close_out oc;
      match Journal.load ~path ~digest ~faults:(Array.of_list faults) with
      | Error msg ->
        check bool_t "diagnostic names line 1" true
          (String.length msg >= 7 && String.sub msg 0 7 = "line 1:");
        check bool_t "diagnostic mentions the version" true
          (String.exists (fun ch -> ch = '1') msg)
      | Ok _ -> Alcotest.fail "v1 journal accepted")

(* An entry that parses as JSON but does not carry the v2 fields (here:
   an old-schema exact record without "resc") is corruption, not a torn
   tail: the load must fail with the line number instead of silently
   dropping the rest of the journal. *)
let test_schema_mismatch_rejected () =
  let c = Bench_suite.find "c17" in
  let faults = stuck_faults c in
  let arr = Array.of_list faults in
  let digest = Journal.digest c faults in
  with_temp_file (fun path ->
      let sink =
        Journal.create ~path ~digest ~faults:(List.length faults) ()
      in
      Journal.append sink 0 (Engine.Exact (sample_result arr.(0)));
      Journal.close sink;
      let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
      (* Well-formed JSON, wrong shape: a v1-style exact record. *)
      output_string oc
        "{\"i\":1,\"o\":\"exact\",\"d\":\"0x1p-1\",\"tc\":\"0x1p4\",\"det\":true,\"pf\":1,\"po\":1,\"ub\":\"0x1p-1\",\"adh\":null,\"ws\":null,\"tsn\":3}\n";
      close_out oc;
      match Journal.load ~path ~digest ~faults:arr with
      | Error msg ->
        check bool_t "diagnostic names the entry line" true
          (String.length msg >= 7 && String.sub msg 0 7 = "line 3:")
      | Ok _ -> Alcotest.fail "schema-mismatched entry accepted")

let test_torn_tail_and_duplicates () =
  let c = Bench_suite.find "c17" in
  let faults = stuck_faults c in
  let arr = Array.of_list faults in
  let digest = Journal.digest c faults in
  let wrong = Engine.Crashed { fault = arr.(0); message = "superseded" } in
  let right = Engine.Exact (sample_result arr.(0)) in
  with_temp_file (fun path ->
      let sink =
        Journal.create ~path ~digest ~faults:(List.length faults) ()
      in
      Journal.append sink 0 wrong;
      Journal.append sink 0 right;
      Journal.append sink 1 (Engine.Exact (sample_result arr.(1)));
      Journal.close sink;
      (* Tear the file mid-way through the final line, as SIGKILL under
         a buffered writer would. *)
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let cut = String.length text - 25 in
      let oc = open_out_bin path in
      output_string oc (String.sub text 0 cut);
      close_out oc;
      match Journal.load ~path ~digest ~faults:arr with
      | Error msg -> Alcotest.fail msg
      | Ok table ->
        check bool_t "index 1's torn line dropped" true
          (not (Hashtbl.mem table 1));
        check bool_t "later duplicate wins for index 0" true
          (Hashtbl.find_opt table 0 = Some right))

(* ------------------------------------------------------------------ *)
(* Kill-and-resume bit-identity                                        *)

(* Stuck + bridge + multiple faults, as the scheduler tests use. *)
let mixed_faults rng c =
  let n = Circuit.num_gates c in
  let stucks = stuck_faults c in
  let bridges =
    Bridge.enumerate c
    |> List.filteri (fun i _ -> i mod 7 = Prng.int rng 7)
    |> List.map (fun b -> Fault.Bridged b)
  in
  let multis =
    List.init 2 (fun _ ->
        let a = Prng.int rng n in
        let b = (a + 1 + Prng.int rng (n - 1)) mod n in
        Fault.multi [ (a, Prng.bool rng); (b, Prng.bool rng) ])
  in
  stucks @ bridges @ multis

let scheduler_of rng =
  if Prng.bool rng then Engine.Static else Engine.Stealing

(* Reference sweep, then a "killed" journal holding an arbitrary subset
   of its outcomes (plus a torn line), then a resumed sweep under a
   different scheduler/domain draw.  Deterministic mode pins budget
   classification to the canonical arena, so the merged outcome list
   must equal the reference bit for bit. *)
let kill_resume_prop seed =
  let rng = Prng.create ~seed:(seed + 9000) in
  let c =
    Generate.random ~seed:(seed + 1) ~inputs:(5 + Prng.int rng 3)
      ~gates:(10 + Prng.int rng 15)
      ~outputs:(1 + Prng.int rng 3)
  in
  let faults = mixed_faults rng c in
  let n = List.length faults in
  let arr = Array.of_list faults in
  let digest = Journal.digest c faults in
  let fault_budget = 40 + Prng.int rng 150 in
  let sweep ?journal () =
    (* [~reorder:true] spelled out: the rescue rung must preserve the
       kill-and-resume bit-identity this property is about. *)
    Engine.analyze_all ~fault_budget ~max_retries:1 ~reorder:true
      ~deterministic:true ?journal
      ~scheduler:(scheduler_of rng)
      ~domains:(1 + Prng.int rng 3)
      (Engine.create c) faults
  in
  let reference = sweep () in
  let cut = Prng.int rng (n + 1) in
  with_temp_file (fun path ->
      let sink = Journal.create ~path ~digest ~faults:n () in
      List.iteri
        (fun i o -> if i < cut then Journal.append sink i o)
        reference;
      Journal.close sink;
      (* Torn tail: half of the next outcome's line. *)
      if cut < n then begin
        let line = Journal.outcome_line cut (List.nth reference cut) in
        let oc =
          open_out_gen [ Open_append; Open_wronly ] 0o644 path
        in
        output_string oc (String.sub line 0 (String.length line / 2));
        close_out oc
      end;
      match Journal.load ~path ~digest ~faults:arr with
      | Error msg -> Alcotest.fail msg
      | Ok table ->
        let resumed = sweep ~journal:(Journal.engine_journal table) () in
        resumed = reference)

let prop_kill_resume_bit_identical =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15
       ~name:
         "journal kill-and-resume = uninterrupted sweep (random circuits, \
          fault mixes, schedulers, cut points)"
       QCheck.small_nat kill_resume_prop)

(* The same end to end through the file-recording path: a journaled c17
   sweep, the file truncated at an arbitrary byte past the header, a
   resumed journaled sweep — outcome lists bit-identical. *)
let test_file_truncation_resume () =
  let c = Bench_suite.find "c17" in
  let faults = stuck_faults c in
  let arr = Array.of_list faults in
  let digest = Journal.digest c faults in
  let n = List.length faults in
  with_temp_file (fun path ->
      let run ~resume_table =
        let sink =
          match resume_table with
          | None -> Journal.create ~path ~digest ~faults:n ()
          | Some _ -> Journal.reopen ~path ()
        in
        let table =
          Option.value resume_table ~default:(Hashtbl.create 1)
        in
        let outcomes =
          Engine.analyze_all ~fault_budget:60 ~max_retries:0
            ~deterministic:true
            ~journal:(Journal.engine_journal ~sink table)
            (Engine.create c) faults
        in
        Journal.close sink;
        outcomes
      in
      let reference = run ~resume_table:None in
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let header_len = String.index text '\n' + 1 in
      let cut = header_len + ((String.length text - header_len) * 3 / 5) in
      let oc = open_out_bin path in
      output_string oc (String.sub text 0 cut);
      close_out oc;
      match Journal.load ~path ~digest ~faults:arr with
      | Error msg -> Alcotest.fail msg
      | Ok table ->
        check bool_t "truncation left a proper subset" true
          (Hashtbl.length table < n);
        let resumed = run ~resume_table:(Some table) in
        check bool_t "resumed sweep bit-identical to uninterrupted" true
          (resumed = reference))

(* ------------------------------------------------------------------ *)
(* Daemon kill-and-resume byte identity                                *)

(* The same guarantee end to end through the dpa serve daemon: a sweep
   started over the socket, the server SIGKILLed after the client has
   observed an arbitrary prefix of the outcome stream, a fresh server
   started on the same state directory — the restarted request's full
   stream must be byte-identical to an uninterrupted run's, and at
   least the observed prefix must come back from the journal rather
   than recomputation (the daemon fsyncs before it streams). *)

let dpa_exe = Filename.concat (Sys.getcwd ()) "../bin/dpa.exe"

let with_temp_dir f =
  let dir = Filename.temp_file "dpa-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      try rm dir with _ -> ())
    (fun () -> f dir)

let start_daemon ~sock ~state_dir ~sync_every =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process dpa_exe
      [|
        dpa_exe; "serve"; "--socket"; sock; "--state-dir"; state_dir;
        "--workers"; "1"; "--sync-every"; string_of_int sync_every;
      |]
      null null null
  in
  Unix.close null;
  pid

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* Collect one analyze stream: outcome journal-lines in order plus the
   resumed count from the done line. *)
let collect_stream cl ~id ?opts spec =
  match Client.analyze cl ~id ?opts spec with
  | Ok
      {
        Client.outcomes;
        final = Protocol.Done { resumed; _ };
        _;
      } ->
    (List.map snd outcomes, resumed)
  | Ok _ -> Alcotest.fail "analyze stream ended without done"
  | Error msg -> Alcotest.fail msg

let daemon_kill_resume_prop seed =
  let rng = Prng.create ~seed:(seed + 4000) in
  let c =
    Generate.random ~seed:(seed + 7) ~inputs:(5 + Prng.int rng 3)
      ~gates:(12 + Prng.int rng 18)
      ~outputs:(1 + Prng.int rng 3)
  in
  let spec =
    Protocol.Inline { title = "gen"; source = Bench_format.print c }
  in
  let opts =
    {
      Protocol.default_opts with
      Protocol.fault_budget = Some (60 + Prng.int rng 200);
      max_retries = 1;
    }
  in
  let n = List.length (Sa_fault.collapsed_faults c) in
  (* Uninterrupted reference stream, via its own daemon + state dir. *)
  let reference =
    with_temp_dir (fun dir ->
        let sock = Filename.concat dir "s.sock" in
        let pid = start_daemon ~sock ~state_dir:dir ~sync_every:32 in
        Fun.protect
          ~finally:(fun () -> stop_daemon pid)
          (fun () ->
            let cl = Client.connect_unix_retry sock in
            let lines, _ = collect_stream cl ~id:"ref" ~opts spec in
            Client.close cl;
            lines))
  in
  if List.length reference <> n then
    Alcotest.fail "reference stream incomplete";
  with_temp_dir (fun dir ->
      let sock = Filename.concat dir "s.sock" in
      let cut = Prng.int rng (n + 1) in
      (* Round one: observe [cut] outcomes, then SIGKILL the server.
         sync_every = 1 makes every streamed outcome already fsync'd,
         so the journal must hold at least the observed prefix. *)
      let pid = start_daemon ~sock ~state_dir:dir ~sync_every:1 in
      (try
         let cl = Client.connect_unix_retry sock in
         Client.send cl (Protocol.analyze_request ~id:"kill" ~opts spec);
         let rec observe k =
           if k < cut then
             match Client.recv_response cl with
             | Ok (Protocol.Outcome _) -> observe (k + 1)
             | Ok (Protocol.Done _) -> ()
             | Ok _ -> observe k
             | Error _ -> ()
         in
         observe 0;
         Client.close cl
       with e ->
         stop_daemon pid;
         raise e);
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      (* Round two: a fresh server on the same state dir re-serves the
         journaled prefix and computes the rest. *)
      let pid = start_daemon ~sock ~state_dir:dir ~sync_every:1 in
      Fun.protect
        ~finally:(fun () -> stop_daemon pid)
        (fun () ->
          let cl = Client.connect_unix_retry sock in
          let lines, resumed = collect_stream cl ~id:"resume" ~opts spec in
          Client.close cl;
          if resumed < cut then
            QCheck.Test.fail_reportf
              "journal lost observed outcomes: saw %d before SIGKILL, \
               resumed only %d"
              cut resumed;
          if lines <> reference then
            QCheck.Test.fail_reportf
              "restarted stream differs from uninterrupted run (%d vs %d \
               lines)"
              (List.length lines) (List.length reference);
          true))

let prop_daemon_kill_resume =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:6
       ~name:
         "daemon SIGKILL at random cut + restart = uninterrupted stream \
          (byte-identical, observed prefix journal-served)"
       QCheck.small_nat daemon_kill_resume_prop)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "journal"
    [
      ( "line format",
        [
          Alcotest.test_case "every outcome variant round trips bit-exactly"
            `Quick test_roundtrip_all_variants;
        ] );
      ( "validation",
        [
          Alcotest.test_case "stale digest / fault count rejected" `Quick
            test_stale_journal_rejected;
          Alcotest.test_case "corrupt header rejected" `Quick
            test_corrupt_header_rejected;
          Alcotest.test_case "old-version journal rejected with line number"
            `Quick test_old_version_rejected;
          Alcotest.test_case "schema-mismatched entry rejected with line number"
            `Quick test_schema_mismatch_rejected;
          Alcotest.test_case "torn tail tolerated, duplicates last-wins"
            `Quick test_torn_tail_and_duplicates;
        ] );
      ( "kill and resume",
        [
          prop_kill_resume_bit_identical;
          Alcotest.test_case "file truncation resume (c17, journaled)"
            `Quick test_file_truncation_resume;
        ] );
      ("daemon kill and resume", [ prop_daemon_kill_resume ]);
    ]
