(* End-to-end scenarios crossing library boundaries: DP vs PODEM vs
   simulation three-way agreement, functional equivalence of c499/c1355
   seen through fault analysis, DFT monotonicity, file round-trips. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-12

(* Three-way agreement on one circuit: for every collapsed fault,
   Difference Propagation, PODEM and exhaustive simulation must tell the
   same detectability story. *)
let test_three_way_agreement () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  List.iter
    (fun f ->
      let fault = Fault.Stuck f in
      let dp = Engine.analyze engine fault in
      let sim = Fault_sim.exhaustive_detectability c fault in
      check float_t (Sa_fault.to_string c f) sim dp.Engine.detectability;
      match Podem.generate c f with
      | Podem.Test v ->
        check bool_t "podem vector detects" true (Fault_sim.detects c fault v);
        check bool_t "dp detectable" true dp.Engine.detectable
      | Podem.Redundant -> check bool_t "dp undetectable" false dp.Engine.detectable
      | Podem.Aborted -> Alcotest.fail "abort")
    (Sa_fault.collapsed_faults c)

(* c1355 is c499 with XORs expanded; the circuits are functionally
   identical, so a primary-input stuck-at fault must have exactly the
   same detectability in both. *)
let test_c499_c1355_fault_equivalence () =
  let c499 = Bench_suite.find "c499" in
  let c1355 = Bench_suite.find "c1355" in
  let e499 = Engine.create c499 in
  let e1355 = Engine.create c1355 in
  let fault c name value =
    Fault.Stuck
      {
        Sa_fault.line = Sa_fault.Stem (Option.get (Circuit.index_of_name c name));
        value;
      }
  in
  List.iter
    (fun name ->
      List.iter
        (fun value ->
          check float_t
            (Printf.sprintf "%s s-a-%b" name value)
            (Engine.analyze e499 (fault c499 name value)).Engine.detectability
            (Engine.analyze e1355 (fault c1355 name value)).Engine.detectability)
        [ false; true ])
    [ "r0"; "r13"; "r31"; "k0"; "k7"; "en" ]

(* Adding an observation point can only grow test sets: per-fault
   detectability is monotone under DFT observation insertion. *)
let test_observation_point_monotone () =
  let base = Bench_suite.find "c95" in
  let dist = Circuit.max_levels_to_po base in
  let centre = ref 0 in
  Array.iteri (fun g d -> if d > dist.(!centre) then centre := g) dist;
  let improved = Transform.add_observation_points base [ !centre ] in
  let faults = Sa_fault.collapsed_faults base in
  let e_base = Engine.create base in
  let e_impr = Engine.create improved in
  List.iter
    (fun f ->
      (* The same fault on the improved circuit, rebound by net name. *)
      let rebind line =
        match line with
        | Sa_fault.Stem s ->
          let name = (Circuit.gate base s).Circuit.name in
          Sa_fault.Stem (Option.get (Circuit.index_of_name improved name))
        | Sa_fault.Branch br ->
          let stem_name = (Circuit.gate base br.Circuit.stem).Circuit.name in
          let sink_name = (Circuit.gate base br.Circuit.sink).Circuit.name in
          let stem = Option.get (Circuit.index_of_name improved stem_name) in
          let sink = Option.get (Circuit.index_of_name improved sink_name) in
          Sa_fault.Branch { Circuit.stem; sink; pin = br.Circuit.pin }
      in
      let before =
        (Engine.analyze e_base (Fault.Stuck f)).Engine.detectability
      in
      let after =
        (Engine.analyze e_impr
           (Fault.Stuck { f with Sa_fault.line = rebind f.Sa_fault.line }))
          .Engine.detectability
      in
      check bool_t
        ("monotone " ^ Sa_fault.to_string base f)
        true
        (after >= before -. 1e-12))
    faults

(* Random-pattern simulation can never detect a DP-undetectable fault,
   and its final coverage cannot exceed the detectable proportion. *)
let test_random_patterns_respect_redundancy () =
  let c = Bench_suite.find "c432" in
  let engine = Engine.create c in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let results = Engine.analyze_exact engine faults in
  let undetectable =
    List.filter_map
      (fun r -> if r.Engine.detectable then None else Some r.Engine.fault)
      results
  in
  let points = Fault_sim.random_coverage ~seed:9 ~patterns:256 c undetectable in
  List.iter
    (fun p ->
      check Alcotest.int "no undetectable fault ever detected" 0
        p.Fault_sim.faults_detected)
    points

(* Netlist writer/parser round-trip through an actual file, preserving
   fault analysis results. *)
let test_file_roundtrip_preserves_analysis () =
  let c = Bench_suite.find "alu74181" in
  let path = Filename.temp_file "dp" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Bench_format.print c);
      close_out oc;
      let c' = Bench_format.parse_file path in
      let e = Engine.create c and e' = Engine.create c' in
      List.iteri
        (fun i f ->
          if i mod 10 = 0 then begin
            let name = Sa_fault.to_string c f in
            let f' =
              (* Net indices may differ; rebind by name. *)
              match f.Sa_fault.line with
              | Sa_fault.Stem s ->
                {
                  f with
                  Sa_fault.line =
                    Sa_fault.Stem
                      (Option.get
                         (Circuit.index_of_name c'
                            (Circuit.gate c s).Circuit.name));
                }
              | Sa_fault.Branch _ -> f
            in
            check float_t name
              (Engine.analyze e (Fault.Stuck f)).Engine.detectability
              (Engine.analyze e' (Fault.Stuck f')).Engine.detectability
          end)
        (Sa_fault.collapsed_faults c))

(* The experiment runner produces internally consistent figure data. *)
let test_experiment_consistency () =
  let config =
    { Experiments.default with Experiments.bridge_sample = 10 }
  in
  let cr = Experiments.run ~config "c17" in
  (* fig2 row derived from the same results used by fig1-style data. *)
  let row = Trends.row_of_results cr.Experiments.circuit cr.Experiments.sa_results in
  check Alcotest.int "row total matches results" (List.length cr.Experiments.sa_results)
    row.Trends.total;
  let points =
    Bathtub.by_po_distance cr.Experiments.circuit cr.Experiments.sa_results
  in
  let grouped = List.fold_left (fun a p -> a + p.Bathtub.faults) 0 points in
  check Alcotest.int "bathtub covers every fault"
    (List.length cr.Experiments.sa_results)
    grouped

(* Decomposition, engine and simulator agree on bridging faults of a
   mid-size circuit. *)
let test_bridge_three_way () =
  let c = Bench_suite.find "alu74181" in
  let engine = Engine.create c in
  let decomposed = Decompose.create c in
  let bridges =
    Bridge.enumerate c |> List.filteri (fun i _ -> i mod 97 = 0)
  in
  List.iter
    (fun b ->
      let fault = Fault.Bridged b in
      let dp = (Engine.analyze engine fault).Engine.detectability in
      check float_t
        ("sim " ^ Bridge.to_string c b)
        (Fault_sim.exhaustive_detectability c fault)
        dp;
      check float_t
        ("decomp " ^ Bridge.to_string c b)
        dp
        (Decompose.detectability decomposed fault))
    bridges

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "three-way agreement (c95)" `Slow
            test_three_way_agreement;
          Alcotest.test_case "c499/c1355 fault equivalence" `Quick
            test_c499_c1355_fault_equivalence;
          Alcotest.test_case "observation point monotone" `Slow
            test_observation_point_monotone;
          Alcotest.test_case "random patterns respect redundancy" `Quick
            test_random_patterns_respect_redundancy;
          Alcotest.test_case "file round-trip" `Quick
            test_file_roundtrip_preserves_analysis;
          Alcotest.test_case "experiment consistency" `Quick
            test_experiment_consistency;
          Alcotest.test_case "bridge three-way (alu74181)" `Slow
            test_bridge_three_way;
        ] );
    ]
