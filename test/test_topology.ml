(* Topology oracle: FFR decomposition, cut-profile estimation, circuit
   classification, order synthesis, and the engine pre-flag contract
   (jumping the retry ladder never changes an outcome). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let bench text = Bench_format.parse ~title:"<test>" text

(* ------------------------------------------------------------------ *)
(* FFR decomposition and cut profiles                                  *)

let test_ffr_partition () =
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      let f = Ffr.decompose c in
      check int_t
        (name ^ ": FFR sizes partition the nets")
        (Circuit.num_gates c)
        (List.fold_left (fun acc h -> acc + f.Ffr.size.(h)) 0 f.Ffr.heads);
      List.iter
        (fun h -> check int_t (name ^ ": heads head themselves") h f.Ffr.head.(h))
        f.Ffr.heads;
      Array.iteri
        (fun g h ->
          check int_t
            (name ^ ": membership is idempotent")
            h f.Ffr.head.(h)
          |> ignore;
          ignore g)
        f.Ffr.head)
    [ "c17"; "c95"; "c432" ]

let test_reconvergence_detection () =
  (* A pure chain has no reconvergent stem; sharing one net across two
     paths that meet again has exactly one. *)
  let chain = bench "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = NOT(t)\n" in
  check int_t "chain: no reconvergent stems" 0
    (List.length (Ffr.reconvergent_stems chain));
  let diamond =
    bench
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ns = OR(a, b)\nl = NOT(s)\nr = \
       BUF(s)\ny = AND(l, r)\n"
  in
  let stems = Ffr.reconvergent_stems diamond in
  check bool_t "diamond: the shared stem reconverges" true
    (List.exists
       (fun g -> (Circuit.gate diamond g).Circuit.name = "s")
       stems)

let test_cut_profile () =
  let c = Bench_suite.find "c17" in
  let order = Ordering.order Ordering.Natural c in
  check int_t "c17 natural cutwidth" 5 (Ffr.cutwidth c ~order);
  (* Input spans are single levels; gate spans cover their fanins. *)
  let spans = Ffr.support_spans c ~order in
  for g = 0 to Circuit.num_gates c - 1 do
    if Circuit.is_input c g then begin
      let lo, hi = spans.(g) in
      check int_t "input span is a point" lo hi
    end
  done;
  (* A cone's cutwidth never exceeds the whole circuit's. *)
  Array.iter
    (fun po ->
      check bool_t "cone cutwidth bounded by circuit cutwidth" true
        (Ffr.cone_cutwidth c ~order po <= Ffr.cutwidth c ~order))
    c.Circuit.outputs

(* ------------------------------------------------------------------ *)
(* Order synthesis                                                     *)

let is_permutation order inputs =
  Array.length order = inputs
  &&
  let seen = Array.make inputs false in
  Array.for_all
    (fun p ->
      p >= 0 && p < inputs
      && (not seen.(p))
      &&
      (seen.(p) <- true;
       true))
    order

let test_orders_are_permutations () =
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      List.iter
        (fun h ->
          check bool_t
            (Printf.sprintf "%s/%s is a permutation" name (Ordering.name h))
            true
            (is_permutation (Ordering.order h c) (Circuit.num_inputs c)))
        Ordering.all)
    [ "c17"; "c95"; "alu74181"; "c432" ]

let test_oracle_c95 () =
  (* The one bundled circuit where the oracle is confident: dfs-fanin
     roughly halves the estimated cutwidth, and really does build a
     smaller BDD. *)
  let c = Bench_suite.find "c95" in
  let order, winner, cut, confident = Ordering.oracle c in
  check bool_t "c95: oracle is confident" true confident;
  check bool_t "c95: winner is dfs-fanin" true (winner = Ordering.Dfs_fanin);
  check bool_t "c95: estimated cutwidth improved" true
    (cut < Ffr.cutwidth c ~order:(Ordering.order Ordering.Natural c));
  let nodes o = Symbolic.total_nodes (Symbolic.build ~order:o c) in
  check bool_t "c95: the confident order builds a smaller BDD" true
    (nodes order < nodes (Ordering.order Ordering.Natural c))

let test_oracle_c17_natural () =
  let _, winner, _, confident = Ordering.oracle (Bench_suite.find "c17") in
  check bool_t "c17: natural wins the tie" true (winner = Ordering.Natural);
  check bool_t "c17: not confident" false confident

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

let test_classes () =
  let klass c = (Topology.analyze c).Topology.klass in
  check bool_t "parity tree is Tree (no reconvergence)" true
    (klass (Generate.parity_tree ~inputs:8) = Topology.Tree);
  check bool_t "c17 is an adder chain" true
    (klass (Bench_suite.find "c17") = Topology.Adder_chain);
  check bool_t "c432 is fanout-reconvergent" true
    (klass (Bench_suite.find "c432") = Topology.Fanout_reconvergent);
  (* XOR-dominated with reconvergence: a parity chain. *)
  let parity_reconv =
    bench
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(p)\nt = XOR(a, b)\nu = XOR(t, \
       c)\nv = XNOR(t, a)\np = XOR(u, v)\n"
  in
  check bool_t "XOR-dominated reconvergent is Parity_chain" true
    (klass parity_reconv = Topology.Parity_chain)

let test_cone_prediction_monotone () =
  (* Per-cone predictions are positive and the circuit peak is their
     max. *)
  let t = Topology.analyze (Bench_suite.find "c95") in
  Array.iter
    (fun k ->
      check bool_t "cone prediction positive" true
        (k.Topology.predicted_nodes > 0.0);
      check bool_t "hostility in [0,1]" true
        (k.Topology.hostility >= 0.0 && k.Topology.hostility <= 1.0))
    t.Topology.cones;
  check bool_t "peak is the max cone" true
    (Array.for_all
       (fun k -> k.Topology.predicted_nodes <= Topology.predicted_peak t)
       t.Topology.cones)

(* ------------------------------------------------------------------ *)
(* Pre-flag: hostile sites and the engine contract                     *)

let test_hostile_sites_subset () =
  let c = Bench_suite.find "c1908" in
  let t = Topology.analyze c in
  (* A generous budget flags nothing; a tiny one flags the hostile
     cones' whole observation closure. *)
  let none = Topology.hostile_sites t ~budget:100_000_000 in
  check bool_t "huge budget flags nothing" true
    (Array.for_all not none);
  let tiny = Topology.hostile_sites t ~budget:1 in
  check bool_t "tiny budget flags something" true
    (Array.exists (fun b -> b) tiny)

let test_engine_preflag_counters () =
  (* Under a tight budget the whole-fault-list pre-flag must reduce
     ladder entries without changing one outcome; the stats expose both
     counters. *)
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let sweep ?hostile () =
    Engine.analyze_all_stats ~fault_budget:50 ?hostile ~domains:1
      (Engine.create ~heuristic:Ordering.Natural c)
      faults
  in
  let base, base_stats = sweep () in
  let pre, pre_stats = sweep ~hostile:(fun _ -> true) () in
  check bool_t "baseline enters the ladder" true
    (base_stats.Engine.retry_attempts > 0);
  check int_t "baseline pre-flags nothing" 0
    base_stats.Engine.preflagged_faults;
  check bool_t "pre-flag counts failures" true
    (pre_stats.Engine.preflagged_faults > 0);
  check bool_t "pre-flag reduces retry attempts" true
    (pre_stats.Engine.retry_attempts < base_stats.Engine.retry_attempts);
  check bool_t "outcomes bit-identical" true (base = pre)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

(* Random fanout-free circuits: combine unused nets only, so every net
   feeds exactly one reader — the Tree class by construction. *)
let random_tree seed =
  let rng = Prng.create ~seed in
  let buf = Buffer.create 256 in
  let inputs = 3 + Prng.int rng 6 in
  for i = 0 to inputs - 1 do
    Buffer.add_string buf (Printf.sprintf "INPUT(i%d)\n" i)
  done;
  Buffer.add_string buf "OUTPUT(y)\n";
  let avail = ref (List.init inputs (Printf.sprintf "i%d")) in
  let kinds = [| "AND"; "OR"; "NAND"; "NOR"; "XOR"; "XNOR" |] in
  let g = ref 0 in
  while List.length !avail > 1 do
    let pick () =
      let l = !avail in
      let k = Prng.int rng (List.length l) in
      let x = List.nth l k in
      avail := List.filteri (fun i _ -> i <> k) l;
      x
    in
    let a = pick () and b = pick () in
    let name = if List.length !avail = 0 then "y" else Printf.sprintf "g%d" !g in
    incr g;
    Buffer.add_string buf
      (Printf.sprintf "%s = %s(%s, %s)\n" name
         kinds.(Prng.int rng (Array.length kinds))
         a b);
    avail := name :: !avail
  done;
  bench (Buffer.contents buf)

let prop_polynomial_class_linear_build =
  let test seed =
    let c =
      if seed mod 2 = 0 then Generate.parity_tree ~inputs:(4 + (seed mod 9))
      else random_tree (seed + 3)
    in
    let t = Topology.analyze c in
    let polynomial =
      match t.Topology.klass with
      | Topology.Tree | Topology.Parity_chain | Topology.Adder_chain -> true
      | Topology.Fanout_reconvergent | Topology.General -> false
    in
    polynomial
    && Symbolic.total_nodes (Symbolic.build ~order:t.Topology.order c)
       <= 64 * (Circuit.num_gates c + 1)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"polynomial-class circuits build under a linear node budget"
       QCheck.small_nat test)

let prop_dp012_no_false_positives =
  let test seed =
    let rng = Prng.create ~seed:(seed + 515) in
    let c =
      Generate.random ~seed:(seed + 1)
        ~inputs:(3 + Prng.int rng 4)
        ~gates:(10 + Prng.int rng 25)
        ~outputs:(1 + Prng.int rng 3)
    in
    let config =
      {
        Lint.default_config with
        Lint.rules = Some [ "DP012" ];
        verify = false;
      }
    in
    let claims =
      Lint.run ~config c |> List.concat_map (fun d -> d.Diagnostic.claims)
    in
    claims = []
    ||
    let engine = Engine.create c in
    List.for_all
      (fun (name, v) ->
        match Circuit.index_of_name c name with
        | None -> false
        | Some g ->
          Engine.redundant engine
            (Fault.Stuck { Sa_fault.line = Sa_fault.Stem g; value = v }))
      claims
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"DP012 inadmissible-function claims have empty exact test sets"
       QCheck.small_nat test)

(* Pre-flagging is outcome-invariant for budget-classified policies —
   even with every fault flagged, on circuits the predictor never saw. *)
let prop_preflag_bit_identical =
  let test seed =
    let c =
      Generate.random ~seed:(seed + 77) ~inputs:5 ~gates:30 ~outputs:3
    in
    let faults =
      List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    in
    let run ?hostile () =
      Engine.analyze_all ~fault_budget:60 ?hostile ~domains:1
        (Engine.create c) faults
    in
    run () = run ~hostile:(fun _ -> true) ()
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"pre-flagged sweeps are bit-identical under budget policies"
       QCheck.small_nat test)

let () =
  Alcotest.run "topology"
    [
      ( "ffr",
        [
          Alcotest.test_case "FFR partition" `Quick test_ffr_partition;
          Alcotest.test_case "reconvergence detection" `Quick
            test_reconvergence_detection;
          Alcotest.test_case "cut profile" `Quick test_cut_profile;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "orders are permutations" `Quick
            test_orders_are_permutations;
          Alcotest.test_case "oracle confident on c95" `Quick test_oracle_c95;
          Alcotest.test_case "oracle neutral on c17" `Quick
            test_oracle_c17_natural;
        ] );
      ( "classification",
        [
          Alcotest.test_case "circuit classes" `Quick test_classes;
          Alcotest.test_case "cone predictions" `Quick
            test_cone_prediction_monotone;
        ] );
      ( "preflag",
        [
          Alcotest.test_case "hostile sites" `Quick test_hostile_sites_subset;
          Alcotest.test_case "engine counters and identity" `Quick
            test_engine_preflag_counters;
        ] );
      ( "properties",
        [
          prop_polynomial_class_linear_build;
          prop_dp012_no_false_positives;
          prop_preflag_bit_identical;
        ] );
    ]
