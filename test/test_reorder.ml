(* Dynamic variable reordering: swap/sift semantics at the BDD level,
   and the reorder-rescue stage at the engine level. *)

let check = Alcotest.check
let bool_t = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* BDD-level: swaps and sifting preserve every root's function.       *)

let nvars = 7

(* A deterministic batch of random functions over [nvars] variables. *)
let random_roots m ~seed ~count =
  let rng = Prng.create ~seed in
  let literal () =
    let v = Prng.int rng nvars in
    if Prng.bool rng then Bdd.var m v else Bdd.nvar m v
  in
  let rec build depth =
    if depth = 0 then literal ()
    else
      let a = build (depth - 1) and b = build (depth - 1) in
      match Prng.int rng 3 with
      | 0 -> Bdd.band m a b
      | 1 -> Bdd.bor m a b
      | _ -> Bdd.bxor m a b
  in
  Array.init count (fun _ -> build (3 + Prng.int rng 2))

(* Truth table of a root as a bool array indexed by input valuation. *)
let truth m f =
  Array.init (1 lsl nvars) (fun bits ->
      Bdd.eval m f (fun v -> (bits lsr v) land 1 = 1))

let test_swap_preserves_semantics () =
  let m = Bdd.create nvars in
  let roots = random_roots m ~seed:11 ~count:8 in
  let _reg = Bdd.register m roots in
  let before = Array.map (truth m) roots in
  let sats = Array.map (Bdd.sat_fraction m) roots in
  for i = 0 to nvars - 2 do
    Bdd.swap_levels m i;
    Array.iteri
      (fun k f ->
        check bool_t "reduced and ordered" true (Bdd.check_invariants m f);
        check (Alcotest.array bool_t)
          (Printf.sprintf "truth table after swap %d, root %d" i k)
          before.(k) (truth m f))
      roots
  done;
  (* SAT fractions survive the swaps bit-identically: the memo moves
     with the function, and the arithmetic is exact dyadic for small
     variable counts. *)
  Array.iteri
    (fun k f ->
      check bool_t "sat fraction survives swaps" true
        (sats.(k) = Bdd.sat_fraction m f))
    roots

let test_swap_round_trip_restores_order () =
  let m = Bdd.create nvars in
  let roots = random_roots m ~seed:23 ~count:4 in
  let _reg = Bdd.register m roots in
  let order0 = Bdd.current_order m in
  Bdd.swap_levels m 2;
  let order1 = Bdd.current_order m in
  check bool_t "swap changed the order" false (order0 = order1);
  Bdd.swap_levels m 2;
  check bool_t "double swap restores the order" true
    (order0 = Bdd.current_order m);
  (* And the arena is canonical again: same functions, same live size. *)
  Array.iter
    (fun f -> check bool_t "invariants hold" true (Bdd.check_invariants m f))
    roots

let test_sift_shrinks_and_preserves () =
  (* A function with a strongly order-sensitive BDD:
     x0&x3 | x1&x4 | x2&x5 is linear-size under interleaved order and
     exponential-ish under the grouped natural order. *)
  let n = 6 in
  let m = Bdd.create ~order:[| 0; 1; 2; 3; 4; 5 |] n in
  let f =
    Bdd.bor_list m
      [
        Bdd.band m (Bdd.var m 0) (Bdd.var m 3);
        Bdd.band m (Bdd.var m 1) (Bdd.var m 4);
        Bdd.band m (Bdd.var m 2) (Bdd.var m 5);
      ]
  in
  let roots = [| f |] in
  let _reg = Bdd.register m roots in
  let truth_before =
    Array.init (1 lsl n) (fun bits ->
        Bdd.eval m roots.(0) (fun v -> (bits lsr v) land 1 = 1))
  in
  let sat_before = Bdd.sat_fraction m roots.(0) in
  let before, after = Bdd.sift m in
  check bool_t "sift shrank the arena" true (after < before);
  check bool_t "invariants hold after sift" true
    (Bdd.check_invariants m roots.(0));
  check bool_t "sat fraction identical" true
    (sat_before = Bdd.sat_fraction m roots.(0));
  let truth_after =
    Array.init (1 lsl n) (fun bits ->
        Bdd.eval m roots.(0) (fun v -> (bits lsr v) land 1 = 1))
  in
  check (Alcotest.array bool_t) "truth table identical" truth_before
    truth_after;
  (* The optimum for this function is 6 internal nodes (a chain testing
     the pairs adjacently); sifting from the hostile order must land
     well below the 3*2^3-ish start. *)
  check bool_t "reached a small order" true (after <= 8)

let test_sift_rejects_frozen_and_sealed () =
  let m = Bdd.create 4 in
  let roots = [| Bdd.band m (Bdd.var m 0) (Bdd.var m 1) |] in
  let _reg = Bdd.register m roots in
  Bdd.seal m;
  (try
     ignore (Bdd.sift m);
     Alcotest.fail "sift accepted a sealed manager"
   with Invalid_argument _ -> ());
  Bdd.unseal m;
  (* Unsealed but still frozen-tiered: still rejected. *)
  (try
     ignore (Bdd.sift m);
     Alcotest.fail "sift accepted a frozen-tier manager"
   with Invalid_argument _ -> ());
  try
    Bdd.swap_levels m 0;
    Alcotest.fail "swap_levels accepted a frozen-tier manager"
  with Invalid_argument _ -> ()

let sift_semantics_prop seed =
  let m = Bdd.create nvars in
  let roots = random_roots m ~seed ~count:6 in
  let _reg = Bdd.register m roots in
  let before = Array.map (truth m) roots in
  let sats = Array.map (Bdd.sat_fraction m) roots in
  let b, a = Bdd.sift m in
  a <= b
  && Array.for_all (fun f -> Bdd.check_invariants m f) roots
  && Array.for_all2 (fun tt f -> truth m f = tt) before roots
  && Array.for_all2 (fun s f -> s = Bdd.sat_fraction m f) sats roots

let sift_converges_prop seed =
  (* Each improving pass strictly shrinks the live size, so repeated
     sifting reaches a fixpoint; once there, the order stops moving. *)
  let m = Bdd.create nvars in
  let roots = random_roots m ~seed ~count:4 in
  let _reg = Bdd.register m roots in
  let rec fix rounds =
    if rounds = 0 then false
    else
      let b, a = Bdd.sift m in
      if a = b then true else fix (rounds - 1)
  in
  let converged = fix 20 in
  let order = Bdd.current_order m in
  let b, a = Bdd.sift m in
  converged && a = b && order = Bdd.current_order m

(* ------------------------------------------------------------------ *)
(* Engine-level: the reorder-rescue rung of the degradation ladder.
   Both properties run in deterministic mode, which canonicalises the
   arena before every fault — budget classification is then independent
   of arena history, so rescue-on and rescue-off runs climb identical
   ladders up to the rescue rung and the claims below hold exactly. *)

let collapsed_stuck c =
  List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)

(* Sweep results under a starving budget with rescue on/off must agree
   wherever both complete exactly, and rescue can only increase the
   exact count. *)
let rescue_monotone_prop seed =
  let c =
    Generate.random ~seed ~inputs:(4 + (seed mod 4)) ~gates:30 ~outputs:3
  in
  let faults = collapsed_stuck c in
  let budget = 40 + (seed mod 150) in
  let engine_off = Engine.create c in
  let off =
    Engine.analyze_all ~fault_budget:budget ~max_retries:1 ~reorder:false
      ~deterministic:true ~bounds:false ~domains:1 engine_off faults
  in
  let engine_on = Engine.create c in
  let on =
    Engine.analyze_all ~fault_budget:budget ~max_retries:1 ~reorder:true
      ~deterministic:true ~bounds:false ~domains:1 engine_on faults
  in
  let exact_count os =
    List.length (List.filter (function Engine.Exact _ -> true | _ -> false) os)
  in
  exact_count on >= exact_count off
  && List.for_all2
       (fun a b ->
         match (a, b) with
         | Engine.Exact ra, Engine.Exact rb when not rb.Engine.rescued_by_reorder
           ->
           (* Same fault answered exactly on the same ladder rung: the
              detectability must agree bit-for-bit. *)
           ra.Engine.detectability = rb.Engine.detectability
           && ra.Engine.test_count = rb.Engine.test_count
         | _ -> true)
       off on

(* Rescue must be deterministic: two sweeps with reorder enabled are
   bit-identical, across domain counts and schedulers. *)
let rescue_deterministic_prop seed =
  let c =
    Generate.random ~seed:(seed + 1000) ~inputs:(4 + (seed mod 3)) ~gates:25
      ~outputs:2
  in
  let faults = collapsed_stuck c in
  let budget = 50 + (seed mod 100) in
  let run ~domains ~scheduler =
    let e = Engine.create c in
    Engine.analyze_all ~fault_budget:budget ~max_retries:1 ~reorder:true
      ~deterministic:true ~bounds:false ~domains ~scheduler e faults
  in
  let reference = run ~domains:1 ~scheduler:Engine.Static in
  let stealing = run ~domains:2 ~scheduler:Engine.Stealing in
  let again = run ~domains:1 ~scheduler:Engine.Static in
  reference = again && reference = stealing

let tests =
  [
    ("swap preserves semantics", `Quick, test_swap_preserves_semantics);
    ("swap round trip", `Quick, test_swap_round_trip_restores_order);
    ("sift shrinks and preserves", `Quick, test_sift_shrinks_and_preserves);
    ("sift rejects frozen/sealed", `Quick, test_sift_rejects_frozen_and_sealed);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:30 ~name:"sift preserves semantics"
         QCheck.small_nat sift_semantics_prop);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:15 ~name:"sift converges"
         QCheck.small_nat sift_converges_prop);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:15
         ~name:"rescue only adds exact results (and never changes them)"
         QCheck.small_nat rescue_monotone_prop);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:10
         ~name:"rescue is deterministic across schedulers and domains"
         QCheck.small_nat rescue_deterministic_prop);
  ]

let () = Alcotest.run "reorder" [ ("reorder", tests) ]
