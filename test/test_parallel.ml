(* Tests for the domain-sharded analysis path: chunking algebra,
   bit-identical determinism of parallel vs sequential analyze_all,
   exactness against exhaustive fault simulation, and the
   rebuild/cache-invalidation contract. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Parallel chunking                                                   *)

let test_chunk_partitions () =
  let items = List.init 23 Fun.id in
  List.iter
    (fun pieces ->
      let chunks = Parallel.chunk ~pieces items in
      check bool_t "concatenation restores input" true
        (List.concat chunks = items);
      check bool_t "chunk count bounded" true (List.length chunks <= pieces);
      let sizes = List.map List.length chunks in
      let mn = List.fold_left min max_int sizes in
      let mx = List.fold_left max 0 sizes in
      check bool_t "balanced within one" true (mx - mn <= 1))
    [ 1; 2; 3; 7; 23; 100 ];
  check bool_t "empty input, no chunks" true (Parallel.chunk ~pieces:4 [] = [])

let test_map_preserves_order () =
  let items = List.init 101 Fun.id in
  check bool_t "map ~domains:4 = sequential map" true
    (Parallel.map ~domains:4 (fun x -> x * x) items
    = List.map (fun x -> x * x) items);
  check bool_t "map_chunked ~domains:3 keeps order" true
    (Parallel.map_chunked ~domains:3 (List.map succ) items
    = List.map succ items)

(* ------------------------------------------------------------------ *)
(* Watchdog patrol backoff                                             *)

let test_patrol_backoff_schedule () =
  (* The first rounds spin (no sleep at all), so a sweep finishing
     within microseconds pays no latency. *)
  for r = 0 to Parallel.patrol_spin_rounds - 1 do
    check bool_t "early rounds spin" true (Parallel.patrol_backoff_delay r = None)
  done;
  (* After the spins, sleeps are positive, monotone non-decreasing,
     strictly growing until the cap, and capped at 50 ms. *)
  let delay r =
    match Parallel.patrol_backoff_delay r with
    | Some s -> s
    | None -> Alcotest.fail (Printf.sprintf "round %d slipped back to spinning" r)
  in
  let prev = ref 0.0 in
  for r = Parallel.patrol_spin_rounds to Parallel.patrol_spin_rounds + 40 do
    let s = delay r in
    check bool_t "sleep positive" true (s > 0.0);
    check bool_t "monotone non-decreasing" true (s >= !prev);
    check bool_t "growth is exponential until the cap" true
      (s >= 2.0 *. !prev || s = 0.05);
    check bool_t "capped at 50 ms" true (s <= 0.05);
    prev := s
  done;
  check bool_t "cap reached" true (delay (Parallel.patrol_spin_rounds + 40) = 0.05);
  (* No overflow on absurd round counts (a very long wedge). *)
  check bool_t "huge rounds stay at the cap" true
    (Parallel.patrol_backoff_delay max_int = Some 0.05)

let test_supervised_queue_drains_with_backoff () =
  (* One slow batch wedges a worker; the idle workers patrol (through
     the backoff schedule), rescue nothing (the deadline is generous),
     and the queue still drains with every result present exactly once. *)
  let batches = Array.init 16 (fun i -> i) in
  let results =
    Parallel.steal_batches_supervised ~domains:4
      ~batch_deadline:(fun _ -> 30.0)
      ~init:(fun () -> ())
      ~process:(fun () i ->
        if i = 0 then Unix.sleepf 0.15;
        i * i)
      batches
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> check int_t "result correct" (i * i) v
      | Error _ -> Alcotest.fail "batch errored")
    results

(* ------------------------------------------------------------------ *)
(* Determinism: parallel analyze_all is bit-identical to sequential    *)

let suite_faults c =
  List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  @ List.map (fun b -> Fault.Bridged b) (Bridge.enumerate c)

let test_parallel_determinism name () =
  let c = Bench_suite.find name in
  let faults = suite_faults c in
  let sequential = Engine.analyze_all ~domains:1 (Engine.create c) faults in
  let parallel = Engine.analyze_all ~domains:4 (Engine.create c) faults in
  check int_t "same length" (List.length sequential) (List.length parallel);
  (* Bit-identical records, fault order included: polymorphic equality
     compares every float exactly. *)
  check bool_t "bit-identical result lists" true (sequential = parallel)

let test_parallel_determinism_under_rebuilds () =
  (* A tiny node budget forces rebuilds inside every worker; results
     must still match the unconstrained sequential run. *)
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let sequential = Engine.analyze_all (Engine.create c) faults in
  let parallel =
    Engine.analyze_all ~node_budget:1 ~domains:3 (Engine.create c) faults
  in
  check bool_t "identical despite per-worker rebuilds" true
    (sequential = parallel)

let test_parallel_leaves_engine_untouched () =
  let c = Bench_suite.find "c95" in
  let engine = Engine.create c in
  let before = Bdd.allocated_nodes (Engine.manager engine) in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    |> List.filteri (fun i _ -> i < 12)
  in
  let _ = Engine.analyze_all ~domains:2 engine faults in
  check int_t "parent arena unchanged by sharded run" before
    (Bdd.allocated_nodes (Engine.manager engine));
  check int_t "no rebuild of the parent" 0 (Engine.generation engine)

(* ------------------------------------------------------------------ *)
(* Exactness: DP detectability = exhaustive simulation                 *)

let test_exact_vs_exhaustive name () =
  let c = Bench_suite.find name in
  assert (Circuit.num_inputs c <= 11);
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let results = Engine.analyze_exact ~domains:2 (Engine.create c) faults in
  List.iter
    (fun (r : Engine.result) ->
      let exact = Fault_sim.exhaustive_detectability c r.Engine.fault in
      check (Alcotest.float 1e-12)
        (Printf.sprintf "%s: %s" name (Fault.to_string c r.Engine.fault))
        exact r.Engine.detectability)
    results

(* ------------------------------------------------------------------ *)
(* Rebuild generations and the experiments cache                       *)

let test_rebuild_generation_and_hooks () =
  let c = Bench_suite.find "c17" in
  let engine = Engine.create c in
  let fired = ref 0 in
  Engine.on_rebuild engine (fun () -> incr fired);
  check int_t "fresh engine at generation 0" 0 (Engine.generation engine);
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let _ = Engine.analyze_all ~node_budget:1 engine faults in
  check bool_t "budget rebuilds bump the generation" true
    (Engine.generation engine > 0);
  check int_t "hook fired once per rebuild" (Engine.generation engine) !fired

let test_experiments_cache_evicted_on_rebuild () =
  Experiments.clear_cache ();
  let cr1 = Experiments.run "c17" in
  let cached = Experiments.run "c17" in
  check bool_t "second run hits the cache" true
    (cr1.Experiments.engine == cached.Experiments.engine);
  (* Force a rebuild of the cached engine: its BDD handles die, so the
     cache entry must go with it. *)
  let faults =
    List.map (fun f -> Fault.Stuck f)
      (Sa_fault.collapsed_faults cr1.Experiments.circuit)
  in
  let _ = Engine.analyze_all ~node_budget:1 cr1.Experiments.engine faults in
  let cr2 = Experiments.run "c17" in
  check bool_t "rebuild evicts the cached run" false
    (cr1.Experiments.engine == cr2.Experiments.engine);
  (* The recomputed run agrees with the old plain-data results. *)
  check bool_t "results unchanged across eviction" true
    (cr1.Experiments.sa_results = cr2.Experiments.sa_results);
  Experiments.clear_cache ()

(* ------------------------------------------------------------------ *)

let () =
  let det_cases =
    List.map
      (fun name ->
        Alcotest.test_case
          (Printf.sprintf "domains:1 = domains:4 (%s)" name)
          `Slow
          (test_parallel_determinism name))
      [ "c17"; "fulladder"; "c95"; "alu74181" ]
  in
  let exact_cases =
    List.map
      (fun name ->
        Alcotest.test_case
          (Printf.sprintf "DP = exhaustive simulation (%s)" name)
          `Slow (test_exact_vs_exhaustive name))
      [ "c17"; "fulladder"; "c95" ]
  in
  Alcotest.run "parallel"
    [
      ( "chunking",
        [
          Alcotest.test_case "partitions are contiguous and balanced" `Quick
            test_chunk_partitions;
          Alcotest.test_case "map preserves order" `Quick
            test_map_preserves_order;
        ] );
      ( "watchdog backoff",
        [
          Alcotest.test_case "patrol backoff schedule" `Quick
            test_patrol_backoff_schedule;
          Alcotest.test_case "supervised queue drains while patrolling" `Quick
            test_supervised_queue_drains_with_backoff;
        ] );
      ("determinism", det_cases);
      ( "robustness",
        [
          Alcotest.test_case "determinism under forced rebuilds" `Quick
            test_parallel_determinism_under_rebuilds;
          Alcotest.test_case "sharded run leaves parent engine untouched"
            `Quick test_parallel_leaves_engine_untouched;
        ] );
      ("exactness", exact_cases);
      ( "rebuild contract",
        [
          Alcotest.test_case "generation counter and hooks" `Quick
            test_rebuild_generation_and_hooks;
          Alcotest.test_case "experiments cache evicted on rebuild" `Quick
            test_experiments_cache_evicted_on_rebuild;
        ] );
    ]
