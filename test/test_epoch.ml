(* Tests for the epoch/region scratch arena, the warm fork op-cache and
   the lifetime profiler: epoch-bracketed sweeps bit-identical to
   collect-based ones (property-tested over random circuits, schedulers
   and domain counts), survivors tenured intact across a close,
   collect/sift/seal failing loudly inside an open region, warm-cache
   hits returning canonical frozen handles, and the profiler's histogram
   staying on a deterministic logical clock. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* A random function as a XOR/AND/OR mix over literals (the scheduler
   suite's generator). *)
let random_bdd rng m vars =
  let literal () =
    let v = Prng.int rng vars in
    if Prng.bool rng then Bdd.var m v else Bdd.nvar m v
  in
  let rec build depth =
    if depth = 0 then literal ()
    else
      let a = build (depth - 1) and b = build (depth - 1) in
      match Prng.int rng 3 with
      | 0 -> Bdd.band m a b
      | 1 -> Bdd.bor m a b
      | _ -> Bdd.bxor m a b
  in
  build 4

let mixed_faults rng c =
  let n = Circuit.num_gates c in
  let stucks =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let bridges =
    Bridge.enumerate c
    |> List.filteri (fun i _ -> i mod 5 = Prng.int rng 5)
    |> List.map (fun b -> Fault.Bridged b)
  in
  let multis =
    List.init 3 (fun _ ->
        let a = Prng.int rng n in
        let b = (a + 1 + Prng.int rng (n - 1)) mod n in
        Fault.multi [ (a, Prng.bool rng); (b, Prng.bool rng) ])
  in
  stucks @ bridges @ multis

(* ------------------------------------------------------------------ *)
(* Bdd-level epoch mechanics                                           *)

let test_epoch_reclaims_wholesale () =
  let m = Bdd.create 6 in
  let rng = Prng.create ~seed:21 in
  let roots = Array.init 3 (fun _ -> random_bdd rng m 6) in
  ignore (Bdd.register m roots : Bdd.registration);
  let fracs = Array.map (Bdd.sat_fraction m) roots in
  let before = Bdd.allocated_nodes m in
  let e = Bdd.open_epoch m in
  check bool_t "epoch reported open" true (Bdd.epoch_open m);
  for _ = 1 to 6 do
    ignore (random_bdd rng m 6 : Bdd.t)
  done;
  check bool_t "region sees the scratch" true (Bdd.epoch_nodes m > 0);
  Bdd.close_epoch m e;
  check bool_t "epoch reported closed" false (Bdd.epoch_open m);
  check int_t "region reclaimed to the watermark" before
    (Bdd.allocated_nodes m);
  check int_t "reset counted" 1 (Bdd.epoch_resets m);
  check int_t "nothing tenured" 0 (Bdd.tenured_nodes m);
  Array.iteri
    (fun i f ->
      check (Alcotest.float 0.0) "pre-epoch root keeps its semantics"
        fracs.(i) (Bdd.sat_fraction m f);
      check bool_t "invariants hold" true (Bdd.check_invariants m f))
    roots

let test_epoch_tenures_survivors () =
  let m = Bdd.create 6 in
  let rng = Prng.create ~seed:22 in
  let base = random_bdd rng m 6 in
  let e = Bdd.open_epoch m in
  (* Survivors born inside the region, handed over at close: one through
     an explicit survivor array, one through a registered root array. *)
  let keep = [| random_bdd rng m 6 |] in
  let registered = [| random_bdd rng m 6 |] in
  ignore (Bdd.register m registered : Bdd.registration);
  for _ = 1 to 5 do
    ignore (random_bdd rng m 6 : Bdd.t)
  done;
  let keep_frac = Bdd.sat_fraction m keep.(0) in
  let reg_frac = Bdd.sat_fraction m registered.(0) in
  let base_frac = Bdd.sat_fraction m base in
  Bdd.close_epoch ~survivors:[ keep ] m e;
  check bool_t "survivors tenured" true (Bdd.tenured_nodes m > 0);
  check (Alcotest.float 0.0) "explicit survivor keeps its semantics"
    keep_frac
    (Bdd.sat_fraction m keep.(0));
  check (Alcotest.float 0.0) "registered survivor keeps its semantics"
    reg_frac
    (Bdd.sat_fraction m registered.(0));
  check (Alcotest.float 0.0) "sub-watermark node untouched" base_frac
    (Bdd.sat_fraction m base);
  check bool_t "invariants hold after tenure" true
    (Bdd.check_invariants m keep.(0)
    && Bdd.check_invariants m registered.(0)
    && Bdd.check_invariants m base);
  (* Tenured handles stay usable as operands of fresh work. *)
  let combined = Bdd.band m keep.(0) registered.(0) in
  check bool_t "tenured survivors compose" true
    (Bdd.check_invariants m combined)

let expect_invalid name f =
  check bool_t name true
    (match f () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_epoch_guards_fail_loudly () =
  let m = Bdd.create 4 in
  let rng = Prng.create ~seed:23 in
  let roots = [| random_bdd rng m 4 |] in
  ignore (Bdd.register m roots : Bdd.registration);
  let e = Bdd.open_epoch m in
  expect_invalid "second open_epoch raises" (fun () ->
      ignore (Bdd.open_epoch m : Bdd.epoch));
  expect_invalid "collect inside an open epoch raises" (fun () ->
      Bdd.collect m);
  expect_invalid "sift inside an open epoch raises" (fun () ->
      ignore (Bdd.sift m : int * int));
  expect_invalid "seal inside an open epoch raises" (fun () -> Bdd.seal m);
  Bdd.close_epoch m e;
  expect_invalid "closing twice raises" (fun () -> Bdd.close_epoch m e);
  (* With the epoch closed, the guarded operations work again. *)
  Bdd.collect m;
  check bool_t "collect composes after close" true
    (Bdd.check_invariants m roots.(0))

let prop_epoch_preserves_roots =
  let test seed =
    let rng = Prng.create ~seed:(seed + 13000) in
    let vars = 5 + Prng.int rng 4 in
    let m = Bdd.create vars in
    let roots =
      Array.init (2 + Prng.int rng 4) (fun _ -> random_bdd rng m vars)
    in
    ignore (Bdd.register m roots : Bdd.registration);
    let assignments =
      List.init 4 (fun _ -> Array.init vars (fun _ -> Prng.bool rng))
    in
    let snapshot () =
      Array.map
        (fun f ->
          ( Bdd.sat_fraction m f,
            Bdd.size m f,
            Bdd.support m f,
            List.map (fun a -> Bdd.eval m f (fun v -> a.(v))) assignments ))
        roots
    in
    let before = snapshot () in
    let mark = Bdd.allocated_nodes m in
    (* Several epochs in sequence, each leaving garbage behind; roots
       mutated mid-epoch exercise the tenure path. *)
    let ok = ref true in
    for round = 1 to 3 do
      let e = Bdd.open_epoch m in
      for _ = 1 to 3 do
        ignore (random_bdd rng m vars : Bdd.t)
      done;
      if round = 2 then roots.(0) <- random_bdd rng m vars;
      Bdd.close_epoch m e;
      ok := !ok && Bdd.allocated_nodes m <= mark + Bdd.tenured_nodes m
    done;
    let after = snapshot () in
    (* Every root but the replaced one kept its exact observables. *)
    !ok
    && Array.for_all (fun f -> Bdd.check_invariants m f) roots
    && Array.length before = Array.length after
    && Array.for_all2 ( = )
         (Array.sub before 1 (Array.length before - 1))
         (Array.sub after 1 (Array.length after - 1))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"epoch close preserves roots, tenures survivors, reclaims rest"
       QCheck.small_nat test)

(* ------------------------------------------------------------------ *)
(* Engine-level: epoch-bracketed sweeps = collect-based sweeps         *)

let prop_epoch_sweeps_bit_identical =
  let test seed =
    let rng = Prng.create ~seed:(seed + 14000) in
    let c =
      Generate.random ~seed:(seed + 1) ~inputs:(5 + Prng.int rng 3)
        ~gates:(10 + Prng.int rng 20)
        ~outputs:(1 + Prng.int rng 3)
    in
    let faults = mixed_faults rng c in
    let domains = 1 + Prng.int rng 5 in
    (* Tiny region budget: epochs close (and reopen) constantly, the
       hostile case for the reclamation path.  No per-fault budgets, so
       outcome classification cannot depend on arena history and the
       comparison is exact. *)
    let reference =
      Engine.analyze_all ~epochs:false (Engine.create c) faults
    in
    List.for_all
      (fun scheduler ->
        List.for_all
          (fun epoch_nodes ->
            Engine.analyze_all ~epochs:true ~epoch_nodes ~scheduler ~domains
              (Engine.create c) faults
            = reference)
          [ 0; Engine.default_epoch_nodes ])
      [ Engine.Static; Engine.Stealing; Engine.Snapshot ]
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:
         "epoch-bracketed sweeps bit-identical to collect-based sweeps \
          across schedulers and domains"
       QCheck.small_nat test)

let test_deterministic_epochs_identical_under_budgets () =
  (* In deterministic mode a close restores the canonical arena the
     last collect produced, bit for bit — so even budget classification
     (which depends on the arena state at fault start) is identical
     with epochs on or off. *)
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  (* Pin declaration order: the topology oracle's default order tames
     c95 enough that the tight budget would stop degrading anything. *)
  let run epochs =
    Engine.analyze_all ~deterministic:true ~fault_budget:50 ~reorder:false
      ~epochs
      (Engine.create ~heuristic:Ordering.Natural c)
      faults
  in
  check bool_t "deterministic outcomes identical with epochs on/off" true
    (run true = run false);
  check bool_t "some fault actually degraded under the tight budget" true
    (List.exists (fun o -> not (Engine.is_exact o)) (run true))

let test_epoch_resets_counted_in_stats () =
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let outcomes, stats =
    Engine.analyze_all_stats ~epochs:true ~epoch_nodes:0 (Engine.create c)
      faults
  in
  check bool_t "every fault exact" true (List.for_all Engine.is_exact outcomes);
  check bool_t "per-fault regions were reclaimed" true
    (stats.Engine.epoch_resets > 0);
  let _, off = Engine.analyze_all_stats ~epochs:false (Engine.create c) faults in
  check int_t "no resets with epochs off" 0 off.Engine.epoch_resets

let test_engine_usable_after_epoch_sweep () =
  (* A sweep leaves no epoch dangling: seal/collect (which refuse to run
     inside an open region) must work immediately afterwards. *)
  let c = Bench_suite.find "fulladder" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let t = Engine.create c in
  let first = Engine.analyze_all ~epochs:true ~epoch_nodes:0 t faults in
  Engine.collect t;
  Engine.seal t;
  check bool_t "sealed after epoch sweep" true (Engine.sealed t);
  Engine.unseal t;
  let again = Engine.analyze_all ~epochs:true t faults in
  check bool_t "post-seal sweep still bit-identical" true (first = again)

(* ------------------------------------------------------------------ *)
(* Warm fork op-caches                                                 *)

let test_warm_cache_serves_forks () =
  let m = Bdd.create 6 in
  let rng = Prng.create ~seed:31 in
  let a = random_bdd rng m 6 and b = random_bdd rng m 6 in
  (* The product is registered alongside its operands — as gate
     functions are in [Symbolic] — so the build-phase memo entry
     (band, a, b) -> product survives the seal's collect and lands in
     the warm cache. *)
  let roots = [| a; b; Bdd.band m a b |] in
  ignore (Bdd.register m roots : Bdd.registration);
  let product_frac = Bdd.sat_fraction m roots.(2) in
  Bdd.seal m;
  let w = Bdd.fork m in
  check int_t "fork starts with no warm hits" 0 (Bdd.warm_cache_hits w);
  (* Same operands, frozen handles: the fork's private cache is cold, so
     this must be answered by the shared warm cache, without allocating
     (the canonical result is itself frozen). *)
  let allocs0 = Bdd.nodes_allocated w in
  let product' = Bdd.band w roots.(0) roots.(1) in
  check bool_t "warm cache hit recorded" true (Bdd.warm_cache_hits w > 0);
  check int_t "warm hit allocates nothing" allocs0 (Bdd.nodes_allocated w);
  check (Alcotest.float 0.0) "warm result is the canonical product"
    product_frac
    (Bdd.sat_fraction w product');
  check bool_t "warm result is the frozen handle itself" true
    (product' = roots.(2));
  (* A second fork shares the same warm cache by reference. *)
  let w2 = Bdd.fork m in
  let product'' = Bdd.band w2 roots.(0) roots.(1) in
  check bool_t "second fork hits too" true (Bdd.warm_cache_hits w2 > 0);
  check bool_t "forks agree on the canonical handle" true
    (product' = product'');
  Bdd.unseal m

let test_snapshot_sweep_with_warm_cache_matches () =
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    @ List.map (fun b -> Fault.Bridged b) (Bridge.enumerate c)
  in
  let sequential = Engine.analyze_all (Engine.create c) faults in
  let outcomes, stats =
    Engine.analyze_all_stats ~scheduler:Engine.Snapshot ~domains:2
      (Engine.create c) faults
  in
  check bool_t "snapshot sweep bit-identical with warm caches" true
    (outcomes = sequential);
  check bool_t "warm cache reported some hits" true
    (stats.Engine.warm_cache_hits > 0)

(* ------------------------------------------------------------------ *)
(* Cone-batch floor                                                    *)

let test_tiny_circuit_batch_floor () =
  (* c17 at 8 domains used to shred into ~25 batches; the floor must
     collapse a tiny sweep to at most one batch per domain. *)
  let c = Bench_suite.find "c17" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
    @ List.map (fun b -> Fault.Bridged b) (Bridge.enumerate c)
  in
  let sequential = Engine.analyze_all (Engine.create c) faults in
  let outcomes, stats =
    Engine.analyze_all_stats ~scheduler:Engine.Snapshot ~domains:8
      (Engine.create c) faults
  in
  check bool_t "still bit-identical" true (outcomes = sequential);
  check bool_t
    (Printf.sprintf "at most one batch per domain (got %d)"
       stats.Engine.batch_count)
    true
    (stats.Engine.batch_count <= 8)

(* ------------------------------------------------------------------ *)
(* Lifetime profiler                                                   *)

let test_profile_histogram_deterministic () =
  let c = Bench_suite.find "c95" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let run () =
    let t = Engine.create ~mem_profile:true c in
    let outcomes = Engine.analyze_all ~epochs:true ~epoch_nodes:0 t faults in
    (outcomes, Bdd.lifetime_profile (Engine.manager t))
  in
  let o1, p1 = run () in
  let o2, p2 = run () in
  check bool_t "profiled sweep outcomes unchanged" true (o1 = o2);
  check bool_t "logical clock identical across runs" true
    (p1.Bdd.lp_clock = p2.Bdd.lp_clock);
  check bool_t "death counts identical across runs" true
    (p1.Bdd.lp_deaths = p2.Bdd.lp_deaths);
  check bool_t "histograms identical across runs" true
    (p1.Bdd.lp_buckets = p2.Bdd.lp_buckets);
  check bool_t "epoch closes observed deaths" true (p1.Bdd.lp_deaths > 0);
  check int_t "histogram mass equals observed deaths" p1.Bdd.lp_deaths
    (Array.fold_left ( + ) 0 p1.Bdd.lp_buckets)

let test_profile_does_not_change_results () =
  let c = Bench_suite.find "fulladder" in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let plain = Engine.analyze_all (Engine.create c) faults in
  let profiled =
    Engine.analyze_all (Engine.create ~mem_profile:true c) faults
  in
  check bool_t "profiling is observation-only" true (plain = profiled)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "epoch"
    [
      ( "epoch mechanics",
        [
          Alcotest.test_case "region reclaimed wholesale" `Quick
            test_epoch_reclaims_wholesale;
          Alcotest.test_case "survivors tenured intact" `Quick
            test_epoch_tenures_survivors;
          Alcotest.test_case "guards fail loudly" `Quick
            test_epoch_guards_fail_loudly;
          prop_epoch_preserves_roots;
        ] );
      ( "epoch sweeps",
        [
          prop_epoch_sweeps_bit_identical;
          Alcotest.test_case "deterministic mode identical under budgets"
            `Quick test_deterministic_epochs_identical_under_budgets;
          Alcotest.test_case "epoch resets surface in sweep stats" `Quick
            test_epoch_resets_counted_in_stats;
          Alcotest.test_case "engine reusable after epoch sweep" `Quick
            test_engine_usable_after_epoch_sweep;
        ] );
      ( "warm op-caches",
        [
          Alcotest.test_case "fork served by the warm cache" `Quick
            test_warm_cache_serves_forks;
          Alcotest.test_case "snapshot sweep matches with warm caches" `Quick
            test_snapshot_sweep_with_warm_cache_matches;
        ] );
      ( "batch floor",
        [
          Alcotest.test_case "tiny circuits collapse to one batch per domain"
            `Quick test_tiny_circuit_batch_floor;
        ] );
      ( "lifetime profiler",
        [
          Alcotest.test_case "histogram deterministic on the logical clock"
            `Quick test_profile_histogram_deterministic;
          Alcotest.test_case "profiling never changes outcomes" `Quick
            test_profile_does_not_change_results;
        ] );
    ]
