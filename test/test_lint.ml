(* Tests for the static testability linter: one unit test per rule on a
   crafted netlist, the renderer and baseline round-trips, golden SARIF
   and JSON snapshots on an ISCAS'85 circuit, and the soundness
   property that every "definitely redundant" verdict the linter emits
   has a provably empty exact test set. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let lint ?config text =
  fst (Lint.run_source ?config ~file:"t.bench" ~title:"t" text)

let with_rule diags id =
  List.filter (fun d -> String.equal d.Diagnostic.rule id) diags

(* One diagnostic of the given rule, with helpers asserting the parts
   the rule promises: severity, net, claims, verification. *)
let the_finding diags id =
  match with_rule diags id with
  | [ d ] -> d
  | l ->
    Alcotest.failf "expected exactly one %s finding, got %d" id
      (List.length l)

(* ------------------------------------------------------------------ *)
(* Structural rules                                                    *)

let test_cycle () =
  let diags =
    lint "INPUT(x)\nOUTPUT(a)\na = AND(b, x)\nb = OR(a, x)\n"
  in
  let d = the_finding diags "DP001" in
  check bool_t "error severity" true (d.Diagnostic.severity = Diagnostic.Error);
  check bool_t "names a cycle member" true
    (match d.Diagnostic.location.Diagnostic.net with
    | Some ("a" | "b") -> true
    | _ -> false);
  (* A cyclic netlist cannot elaborate. *)
  check bool_t "no circuit returned" true
    (snd (Lint.run_source ~title:"t" "a = AND(b)\nb = BUF(a)\n") = None)

let test_undriven () =
  let diags = lint "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n" in
  let d = the_finding diags "DP002" in
  check bool_t "error severity" true (d.Diagnostic.severity = Diagnostic.Error);
  check (Alcotest.option string_t) "net named" (Some "ghost")
    d.Diagnostic.location.Diagnostic.net;
  (* The span points at the use site: line 3, inside the fanin list. *)
  (match d.Diagnostic.location.Diagnostic.span with
  | Some sp -> check int_t "use line" 3 sp.Bench_format.line
  | None -> Alcotest.fail "span expected")

let test_duplicate () =
  let diags =
    lint "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ny = OR(a, b)\n"
  in
  let d = the_finding diags "DP003" in
  check bool_t "error severity" true (d.Diagnostic.severity = Diagnostic.Error);
  (match d.Diagnostic.location.Diagnostic.span with
  | Some sp -> check int_t "second driver line" 5 sp.Bench_format.line
  | None -> Alcotest.fail "span expected")

let test_arity () =
  let diags = lint "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n" in
  let d = the_finding diags "DP004" in
  check bool_t "error severity" true (d.Diagnostic.severity = Diagnostic.Error);
  check (Alcotest.option string_t) "net named" (Some "y")
    d.Diagnostic.location.Diagnostic.net

let test_floating () =
  let diags =
    lint
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ndead = OR(a, b)\n"
  in
  (* [dead] floats; so do the DP007 unobservable findings it causes.
     Restrict to DP005 and the floating gate itself. *)
  let d = the_finding diags "DP005" in
  check bool_t "warning severity" true
    (d.Diagnostic.severity = Diagnostic.Warning);
  check (Alcotest.option string_t) "net named" (Some "dead")
    d.Diagnostic.location.Diagnostic.net

let test_ffr_audit () =
  (* A 4-net inverter chain is one fanout-free region converging on its
     last net. *)
  let text =
    "INPUT(a)\nOUTPUT(d)\nb = NOT(a)\nc = NOT(b)\nd = NOT(c)\n"
  in
  let config = { Lint.default_config with Lint.ffr_min_size = 4 } in
  let diags = lint ~config text in
  let d = the_finding diags "DP006" in
  check (Alcotest.option string_t) "region head" (Some "d")
    d.Diagnostic.location.Diagnostic.net;
  (* Under the default threshold the same chain is unremarkable. *)
  check int_t "silent at default threshold" 0
    (List.length (with_rule (lint text) "DP006"))

(* ------------------------------------------------------------------ *)
(* Testability rules                                                   *)

let test_unobservable () =
  (* [u] only reaches the floating [v], so no primary output: both
     stuck-at faults on [u] (and [v]) are untestable, and the exact
     engine must confirm every claim. *)
  let diags =
    lint
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\nu = AND(a, b)\nv = NOT(u)\n"
  in
  let findings = with_rule diags "DP007" in
  check int_t "two unobservable nets" 2 (List.length findings);
  List.iter
    (fun d ->
      check bool_t "claims both polarities" true
        (List.length d.Diagnostic.claims = 2);
      check (Alcotest.option bool_t) "exact engine confirms" (Some true)
        d.Diagnostic.verified)
    findings

let test_redundant_constant () =
  (* x XOR x is constant 0: stuck-at-0 on [k] can never be excited. *)
  let diags =
    lint "INPUT(a)\nOUTPUT(y)\nk = XOR(a, a)\ny = OR(a, k)\n"
  in
  let d = the_finding diags "DP008" in
  check bool_t "warning severity" true
    (d.Diagnostic.severity = Diagnostic.Warning);
  check (Alcotest.option string_t) "net named" (Some "k")
    d.Diagnostic.location.Diagnostic.net;
  check bool_t "claims stuck-at-0" true (d.Diagnostic.claims = [ ("k", false) ]);
  check (Alcotest.option bool_t) "exact engine confirms" (Some true)
    d.Diagnostic.verified

let test_bdd_tier_catches_deep_constant () =
  (* (a AND b) AND (NOT a OR NOT b OR c) AND NOT c is unsatisfiable but
     the clause structure hides it from the lattice; the budgeted BDD
     tier settles it.  With the BDD tier disabled the net goes
     unreported. *)
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
     ab = AND(a, b)\nnab = NAND(a, b)\ncl = OR(nab, c)\nnc = NOT(c)\n\
     z = AND(ab, cl, nc)\ny = OR(a, z)\n"
  in
  let off = { Lint.default_config with Lint.bdd_budget = 0 } in
  check int_t "lattice alone misses it" 0
    (List.length (with_rule (lint ~config:off text) "DP008"));
  let d = the_finding (lint text) "DP008" in
  check bool_t "claims z stuck-at-0" true
    (d.Diagnostic.claims = [ ("z", false) ]);
  check (Alcotest.option bool_t) "exact engine confirms" (Some true)
    d.Diagnostic.verified

let test_reconvergence () =
  (* A fanout stem whose branches rejoin after a long inverter chain. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ns = AND(a, b)\n";
  Buffer.add_string buf "p0 = NOT(s)\n";
  for i = 1 to 11 do
    Buffer.add_string buf (Printf.sprintf "p%d = NOT(p%d)\n" i (i - 1))
  done;
  Buffer.add_string buf "y = OR(s, p11)\n";
  let diags = lint (Buffer.contents buf) in
  let d = the_finding diags "DP009" in
  check (Alcotest.option string_t) "stem named" (Some "s")
    d.Diagnostic.location.Diagnostic.net

let test_bridge_topology () =
  let diags = lint "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n" in
  let d = the_finding diags "DP010" in
  check bool_t "info severity" true (d.Diagnostic.severity = Diagnostic.Info);
  (* 2 nets: one pair, non-feedback (a is y's ancestor makes it
     feedback, actually: a drives y).  Just assert the message shape. *)
  check bool_t "mentions the pair count" true
    (String.length d.Diagnostic.message > 0)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

let test_rule_selection () =
  let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\ndead = NOT(a)\n" in
  let only_dp002 =
    lint ~config:{ Lint.default_config with Lint.rules = Some [ "dp002" ] }
      text
  in
  check bool_t "only DP002 fires" true
    (List.for_all (fun d -> d.Diagnostic.rule = "DP002") only_dp002);
  check int_t "and it does fire" 1 (List.length only_dp002);
  check bool_t "unknown rule rejected" true
    (match
       lint
         ~config:{ Lint.default_config with Lint.rules = Some [ "DP999" ] }
         text
     with
    | _ -> false
    | exception Lint.Unknown_rule "DP999" -> true)

let test_cap () =
  (* 30 floating nets against a cap of 5: five findings plus one
     overflow note. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  for i = 1 to 30 do
    Buffer.add_string buf (Printf.sprintf "d%d = BUF(a)\n" i)
  done;
  let config =
    { Lint.default_config with Lint.max_per_rule = 5; Lint.verify = false }
  in
  let dp005 = with_rule (lint ~config (Buffer.contents buf)) "DP005" in
  check int_t "capped plus overflow note" 6 (List.length dp005);
  let note = List.nth dp005 5 in
  check bool_t "overflow is informational" true
    (note.Diagnostic.severity = Diagnostic.Info)

(* ------------------------------------------------------------------ *)
(* Renderers and baseline                                              *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Golden snapshots: lint the bundled ISCAS'85 c17 exactly as the CLI
   does and compare byte-for-byte against the committed renderings. *)
let test_golden_c17 () =
  let diags, c = Lint.run_file "c17.bench" in
  check bool_t "c17 elaborates" true (c <> None);
  check string_t "SARIF snapshot"
    (String.trim (read_file "golden/c17.sarif"))
    (Sarif.render ~uri:"c17.bench" diags);
  check string_t "JSON snapshot"
    (String.trim (read_file "golden/c17.json"))
    (Sarif.render_json ~uri:"c17.bench" diags)

let test_sarif_structure () =
  let diags =
    lint "INPUT(a)\nOUTPUT(y)\nk = XOR(a, a)\ny = OR(a, k)\n"
  in
  let sarif = Sarif.render ~uri:"t.bench" diags in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i =
      i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun fragment ->
      check bool_t (Printf.sprintf "SARIF contains %s" fragment) true
        (contains sarif fragment))
    [
      "\"version\":\"2.1.0\"";
      "\"ruleId\":\"DP008\"";
      "\"partialFingerprints\"";
      "\"redundantFaults\"";
      "\"verifiedByExactEngine\":true";
    ]

let test_baseline_roundtrip () =
  let text = "INPUT(a)\nOUTPUT(y)\nk = XOR(a, a)\ny = OR(a, k)\n" in
  let diags = lint text in
  check bool_t "has findings" true (diags <> []);
  let path = Filename.temp_file "dpa-baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Baseline.save path diags;
      let b = Baseline.load path in
      check int_t "baseline suppresses everything" 0
        (List.length (Baseline.filter b diags));
      (* A fresh finding survives the filter. *)
      let extra =
        Diagnostic.make ~rule:"DP005" ~severity:Diagnostic.Warning
          ~location:{ Diagnostic.no_location with Diagnostic.net = Some "nu" }
          "net \"nu\" drives nothing"
      in
      check int_t "new finding passes" 1
        (List.length (Baseline.filter b [ extra ])));
  check bool_t "malformed header rejected" true
    (let bad = Filename.temp_file "dpa-baseline" ".txt" in
     Fun.protect
       ~finally:(fun () -> Sys.remove bad)
       (fun () ->
         let oc = open_out bad in
         output_string oc "not a baseline\n";
         close_out oc;
         match Baseline.load bad with
         | _ -> false
         | exception Baseline.Malformed _ -> true))

let test_fingerprint_position_independent () =
  let finding text =
    match with_rule (lint text) "DP008" with
    | [ d ] -> d
    | _ -> Alcotest.fail "expected one DP008 finding"
  in
  let a = finding "INPUT(a)\nOUTPUT(y)\nk = XOR(a, a)\ny = OR(a, k)\n" in
  let b =
    finding "# moved\n\nINPUT(a)\nOUTPUT(y)\n\nk = XOR(a, a)\ny = OR(a, k)\n"
  in
  check string_t "same fingerprint after reformatting"
    (Diagnostic.fingerprint a) (Diagnostic.fingerprint b)

(* ------------------------------------------------------------------ *)
(* Soundness: lint redundancy claims vs the exact engine               *)

(* Every "definitely redundant" stuck-at verdict must have an empty
   complete test set under exact Difference Propagation — checked here
   independently of the linter's own verify pass, on random circuits
   biased to contain redundancies (XOR(x, x) patterns appear often in
   random netlists with repeated fanin choices). *)
let prop_no_false_redundancy =
  let test seed =
    let rng = Prng.create ~seed:(seed + 4242) in
    let c =
      Generate.random ~seed:(seed + 1) ~inputs:(3 + Prng.int rng 4)
        ~gates:(10 + Prng.int rng 30)
        ~outputs:(1 + Prng.int rng 3)
    in
    let config = { Lint.default_config with Lint.verify = false } in
    let diags = Lint.run ~config c in
    let claims =
      List.concat_map (fun d -> d.Diagnostic.claims) diags
    in
    claims = []
    ||
    let engine = Engine.create c in
    List.for_all
      (fun (name, v) ->
        match Circuit.index_of_name c name with
        | None -> false
        | Some g ->
          Engine.redundant engine
            (Fault.Stuck { Sa_fault.line = Sa_fault.Stem g; value = v }))
      claims
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"lint redundancy claims have empty exact test sets"
       QCheck.small_nat test)

(* The built-in verify pass agrees: nothing ever comes back refuted. *)
let prop_verify_never_refutes =
  let test seed =
    let c =
      Generate.random ~seed:(seed + 7) ~inputs:5 ~gates:25 ~outputs:2
    in
    Lint.run c
    |> List.for_all (fun d -> d.Diagnostic.verified <> Some false)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"verify pass never refutes a claim"
       QCheck.small_nat test)

let () =
  Alcotest.run "lint"
    [
      ( "structural",
        [
          Alcotest.test_case "combinational cycle" `Quick test_cycle;
          Alcotest.test_case "undriven net" `Quick test_undriven;
          Alcotest.test_case "duplicate driver" `Quick test_duplicate;
          Alcotest.test_case "arity violation" `Quick test_arity;
          Alcotest.test_case "floating net" `Quick test_floating;
          Alcotest.test_case "ffr audit" `Quick test_ffr_audit;
        ] );
      ( "testability",
        [
          Alcotest.test_case "unobservable nets" `Quick test_unobservable;
          Alcotest.test_case "redundant constant" `Quick
            test_redundant_constant;
          Alcotest.test_case "BDD tier" `Quick
            test_bdd_tier_catches_deep_constant;
          Alcotest.test_case "reconvergent fanout" `Quick test_reconvergence;
          Alcotest.test_case "bridge topology" `Quick test_bridge_topology;
        ] );
      ( "config",
        [
          Alcotest.test_case "rule selection" `Quick test_rule_selection;
          Alcotest.test_case "per-rule cap" `Quick test_cap;
        ] );
      ( "output",
        [
          Alcotest.test_case "golden c17 snapshots" `Quick test_golden_c17;
          Alcotest.test_case "SARIF structure" `Quick test_sarif_structure;
          Alcotest.test_case "baseline round-trip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "fingerprint stability" `Quick
            test_fingerprint_position_independent;
        ] );
      ( "soundness",
        [ prop_no_false_redundancy; prop_verify_never_refutes ] );
    ]
